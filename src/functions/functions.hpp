#pragma once

// The three function classes of the paper (Section 2.3):
//     set-based ⊊ frequency-based ⊊ multiset-based,
// plus the frequency-function machinery (ν_v, the canonical ν-frequenced
// vector ⟨ν⟩) used by both the algorithms and the table harnesses.
//
// Input values live in Ω = Z (as int64); outputs live in X = Q (exact
// Rational), which covers every function the paper discusses (min, max,
// average, sum, thresholds as 0/1) under both the discrete and the Euclidean
// metric.

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace anonet {

enum class FunctionClass {
  kSetBased,        // depends only on the support {ω1, ..., ωn}
  kFrequencyBased,  // depends only on the frequency function ν_v
  kMultisetBased,   // depends only on the multiset [ω1, ..., ωn]
};

[[nodiscard]] std::string_view to_string(FunctionClass cls);

// A frequency function ν : Ω -> Q≥0 with finite support summing to 1.
class Frequency {
 public:
  Frequency() = default;
  // Throws std::invalid_argument unless entries are positive and sum to 1.
  explicit Frequency(std::map<std::int64_t, Rational> entries);

  // ν_v for an input vector (Section 2.3).
  static Frequency of(std::span<const std::int64_t> values);

  [[nodiscard]] const std::map<std::int64_t, Rational>& entries() const {
    return entries_;
  }
  [[nodiscard]] Rational at(std::int64_t value) const;  // 0 outside support

  // The canonical ν-frequenced vector ⟨ν⟩: support values in increasing
  // order, each with multiplicity p_k * q / q_k where q = lcm of the reduced
  // denominators. |⟨ν⟩| = q.
  [[nodiscard]] std::vector<std::int64_t> canonical_vector() const;

  friend bool operator==(const Frequency&, const Frequency&) = default;

 private:
  std::map<std::int64_t, Rational> entries_;
};

// A function of arbitrary arity invariant under permutation (Lemma 3.3 shows
// nothing else is computable anonymously), tagged with its declared class.
class SymmetricFunction {
 public:
  using Evaluator = std::function<Rational(std::span<const std::int64_t>)>;
  // Direct evaluation on an approximate (floating-point) frequency vector —
  // meaningful exactly for the functions the paper calls *continuous in
  // frequency* (Section 5.4): the value varies continuously with the
  // frequencies, so feeding converging estimates converges to f(v).
  using ApproxEvaluator =
      std::function<double(const std::map<std::int64_t, double>&)>;

  SymmetricFunction(std::string name, FunctionClass declared_class,
                    Evaluator evaluate);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] FunctionClass declared_class() const { return class_; }

  // Evaluates on a multiset given in any order (sorted internally).
  [[nodiscard]] Rational operator()(std::span<const std::int64_t> values) const;

  // For frequency-based functions: evaluates via the canonical vector ⟨ν⟩,
  // the way the paper's positive algorithms compute f (they recover ν, not
  // the multiset). Meaningless for strictly multiset-based functions.
  [[nodiscard]] Rational eval_frequency(const Frequency& nu) const;

  // Declares f continuous in frequency by supplying a direct evaluator on
  // approximate frequency vectors. Returns *this for chaining.
  SymmetricFunction& with_approx_evaluator(ApproxEvaluator approx);
  [[nodiscard]] bool continuous_in_frequency() const {
    return static_cast<bool>(approx_);
  }
  // Requires continuous_in_frequency(); missing values are frequency 0.
  [[nodiscard]] double eval_approximate(
      const std::map<std::int64_t, double>& frequencies) const;

 private:
  std::string name_;
  FunctionClass class_;
  Evaluator evaluate_;
  ApproxEvaluator approx_;
};

// --- the paper's running examples -----------------------------------------

[[nodiscard]] SymmetricFunction min_function();       // set-based
[[nodiscard]] SymmetricFunction max_function();       // set-based
[[nodiscard]] SymmetricFunction support_size();       // set-based
[[nodiscard]] SymmetricFunction average_function();   // frequency-based
[[nodiscard]] SymmetricFunction median_function();    // frequency-based (lower median)
// Φ_r^ω with rational threshold r: 1 if ν_v(ω) >= r else 0 (Section 5.4).
[[nodiscard]] SymmetricFunction threshold_predicate(std::int64_t omega,
                                                    const Rational& r);
[[nodiscard]] SymmetricFunction range_function();     // set-based (max - min)
// Population variance Σ(ω - mean)²/n: depends only on frequencies.
[[nodiscard]] SymmetricFunction variance_function();  // frequency-based
// Frequency of the most frequent value (not the value itself).
[[nodiscard]] SymmetricFunction mode_frequency();     // frequency-based
[[nodiscard]] SymmetricFunction sum_function();       // multiset-based
[[nodiscard]] SymmetricFunction count_function();     // multiset-based (n itself)
// Σω² — like the sum, multiset-based and uncomputable without n/leaders.
[[nodiscard]] SymmetricFunction sum_of_squares();     // multiset-based

// --- empirical classification ----------------------------------------------

// Tests the declared invariances on randomized vectors: multiset-based
// functions must survive permutations, frequency-based ones duplication of
// the whole vector, set-based ones arbitrary multiplicity changes. Returns
// the *finest* class whose invariance held on all samples (an empirical
// upper bound used by tests to keep the library honest).
[[nodiscard]] FunctionClass classify_empirically(const SymmetricFunction& f,
                                                 int samples,
                                                 std::uint64_t seed);

}  // namespace anonet
