#include "functions/functions.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace anonet {

std::string_view to_string(FunctionClass cls) {
  switch (cls) {
    case FunctionClass::kSetBased:
      return "set-based";
    case FunctionClass::kFrequencyBased:
      return "frequency-based";
    case FunctionClass::kMultisetBased:
      return "multiset-based";
  }
  return "unknown";
}

Frequency::Frequency(std::map<std::int64_t, Rational> entries)
    : entries_(std::move(entries)) {
  Rational total;
  for (const auto& [value, freq] : entries_) {
    if (freq.signum() <= 0) {
      throw std::invalid_argument("Frequency: entries must be positive");
    }
    total += freq;
  }
  if (total != Rational(1)) {
    throw std::invalid_argument("Frequency: entries must sum to 1");
  }
}

Frequency Frequency::of(std::span<const std::int64_t> values) {
  if (values.empty()) {
    throw std::invalid_argument("Frequency::of: empty vector");
  }
  std::map<std::int64_t, int> multiplicity;
  for (std::int64_t v : values) ++multiplicity[v];
  std::map<std::int64_t, Rational> entries;
  const auto n = static_cast<std::int64_t>(values.size());
  for (const auto& [value, count] : multiplicity) {
    entries.emplace(value, Rational(BigInt(count), BigInt(n)));
  }
  return Frequency(std::move(entries));
}

Rational Frequency::at(std::int64_t value) const {
  auto it = entries_.find(value);
  return it == entries_.end() ? Rational(0) : it->second;
}

std::vector<std::int64_t> Frequency::canonical_vector() const {
  // q = lcm of reduced denominators; value ω_k appears p_k * q / q_k times.
  BigInt q(1);
  for (const auto& [value, freq] : entries_) {
    q = lcm(q, freq.denominator());
  }
  std::vector<std::int64_t> result;
  for (const auto& [value, freq] : entries_) {
    const BigInt multiplicity = freq.numerator() * (q / freq.denominator());
    const std::int64_t count = multiplicity.to_int64();
    for (std::int64_t i = 0; i < count; ++i) result.push_back(value);
  }
  return result;
}

SymmetricFunction::SymmetricFunction(std::string name,
                                     FunctionClass declared_class,
                                     Evaluator evaluate)
    : name_(std::move(name)),
      class_(declared_class),
      evaluate_(std::move(evaluate)) {
  if (!evaluate_) {
    throw std::invalid_argument("SymmetricFunction: null evaluator");
  }
}

Rational SymmetricFunction::operator()(
    std::span<const std::int64_t> values) const {
  if (values.empty()) {
    throw std::invalid_argument("SymmetricFunction: empty input");
  }
  std::vector<std::int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return evaluate_(sorted);
}

Rational SymmetricFunction::eval_frequency(const Frequency& nu) const {
  const std::vector<std::int64_t> canonical = nu.canonical_vector();
  return (*this)(canonical);
}

SymmetricFunction& SymmetricFunction::with_approx_evaluator(
    ApproxEvaluator approx) {
  approx_ = std::move(approx);
  return *this;
}

double SymmetricFunction::eval_approximate(
    const std::map<std::int64_t, double>& frequencies) const {
  if (!approx_) {
    throw std::logic_error("SymmetricFunction: " + name_ +
                           " is not declared continuous in frequency");
  }
  return approx_(frequencies);
}

SymmetricFunction min_function() {
  return {"min", FunctionClass::kSetBased,
          [](std::span<const std::int64_t> v) { return Rational(v.front()); }};
}

SymmetricFunction max_function() {
  return {"max", FunctionClass::kSetBased,
          [](std::span<const std::int64_t> v) { return Rational(v.back()); }};
}

SymmetricFunction support_size() {
  return {"support-size", FunctionClass::kSetBased,
          [](std::span<const std::int64_t> v) {
            std::int64_t distinct = 1;
            for (std::size_t i = 1; i < v.size(); ++i) {
              if (v[i] != v[i - 1]) ++distinct;
            }
            return Rational(distinct);
          }};
}

SymmetricFunction average_function() {
  SymmetricFunction f{
      "average", FunctionClass::kFrequencyBased,
      [](std::span<const std::int64_t> v) {
        BigInt total(0);
        for (std::int64_t x : v) total += BigInt(x);
        return Rational(total, BigInt(static_cast<std::int64_t>(v.size())));
      }};
  // Continuous in frequency (Section 5.4's first example): Σ ω ν(ω).
  f.with_approx_evaluator([](const std::map<std::int64_t, double>& nu) {
    double total = 0.0;
    for (const auto& [value, freq] : nu) {
      total += static_cast<double>(value) * freq;
    }
    return total;
  });
  return f;
}

SymmetricFunction median_function() {
  return {"median", FunctionClass::kFrequencyBased,
          [](std::span<const std::int64_t> v) {
            // Lower median: invariant under replicating the whole vector,
            // hence frequency-based.
            return Rational(v[(v.size() - 1) / 2]);
          }};
}

SymmetricFunction threshold_predicate(std::int64_t omega, const Rational& r) {
  SymmetricFunction f{
      "threshold(" + std::to_string(omega) + ">=" + r.to_string() + ")",
      FunctionClass::kFrequencyBased,
      [omega, r](std::span<const std::int64_t> v) {
        std::int64_t count = 0;
        for (std::int64_t x : v) {
          if (x == omega) ++count;
        }
        const Rational frequency(BigInt(count),
                                 BigInt(static_cast<std::int64_t>(v.size())));
        return frequency >= r ? Rational(1) : Rational(0);
      }};
  // Φ_r^ω is δ0-continuous in frequency iff r is irrational (Section 5.4);
  // with a rational r this evaluator is only reliable when ν(ω) is bounded
  // away from r, which is how the table harness uses it.
  const double threshold = r.to_double();
  f.with_approx_evaluator(
      [omega, threshold](const std::map<std::int64_t, double>& nu) {
        auto it = nu.find(omega);
        const double freq = it == nu.end() ? 0.0 : it->second;
        return freq >= threshold ? 1.0 : 0.0;
      });
  return f;
}

SymmetricFunction range_function() {
  return {"range", FunctionClass::kSetBased,
          [](std::span<const std::int64_t> v) {
            return Rational(v.back() - v.front());
          }};
}

SymmetricFunction variance_function() {
  SymmetricFunction f{
      "variance", FunctionClass::kFrequencyBased,
      [](std::span<const std::int64_t> v) {
        const auto n = BigInt(static_cast<std::int64_t>(v.size()));
        BigInt total(0), total_sq(0);
        for (std::int64_t x : v) {
          total += BigInt(x);
          total_sq += BigInt(x) * BigInt(x);
        }
        // E[X²] - E[X]² = (n·Σx² - (Σx)²) / n².
        return Rational(n * total_sq - total * total, n * n);
      }};
  f.with_approx_evaluator([](const std::map<std::int64_t, double>& nu) {
    double mean = 0.0, mean_sq = 0.0;
    for (const auto& [value, freq] : nu) {
      const double x = static_cast<double>(value);
      mean += x * freq;
      mean_sq += x * x * freq;
    }
    return mean_sq - mean * mean;
  });
  return f;
}

SymmetricFunction mode_frequency() {
  SymmetricFunction f{
      "mode-frequency", FunctionClass::kFrequencyBased,
      [](std::span<const std::int64_t> v) {
        std::int64_t best = 0, run = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
          run = (i > 0 && v[i] == v[i - 1]) ? run + 1 : 1;
          best = std::max(best, run);
        }
        return Rational(BigInt(best),
                        BigInt(static_cast<std::int64_t>(v.size())));
      }};
  f.with_approx_evaluator([](const std::map<std::int64_t, double>& nu) {
    double best = 0.0;
    for (const auto& [value, freq] : nu) best = std::max(best, freq);
    return best;
  });
  return f;
}

SymmetricFunction sum_of_squares() {
  return {"sum-of-squares", FunctionClass::kMultisetBased,
          [](std::span<const std::int64_t> v) {
            BigInt total(0);
            for (std::int64_t x : v) total += BigInt(x) * BigInt(x);
            return Rational(std::move(total));
          }};
}

SymmetricFunction sum_function() {
  return {"sum", FunctionClass::kMultisetBased,
          [](std::span<const std::int64_t> v) {
            BigInt total(0);
            for (std::int64_t x : v) total += BigInt(x);
            return Rational(std::move(total));
          }};
}

SymmetricFunction count_function() {
  return {"count", FunctionClass::kMultisetBased,
          [](std::span<const std::int64_t> v) {
            return Rational(static_cast<std::int64_t>(v.size()));
          }};
}

FunctionClass classify_empirically(const SymmetricFunction& f, int samples,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> value_dist(-5, 5);
  std::uniform_int_distribution<int> size_dist(1, 8);
  std::uniform_int_distribution<int> mult_dist(1, 4);

  bool set_invariant = true;
  bool frequency_invariant = true;
  for (int s = 0; s < samples; ++s) {
    const int size = size_dist(rng);
    std::vector<std::int64_t> v(static_cast<std::size_t>(size));
    for (auto& x : v) x = value_dist(rng);
    const Rational reference = f(v);

    // Frequency invariance: duplicate the whole vector k times.
    const int copies = mult_dist(rng) + 1;
    std::vector<std::int64_t> duplicated;
    for (int c = 0; c < copies; ++c) {
      duplicated.insert(duplicated.end(), v.begin(), v.end());
    }
    if (f(duplicated) != reference) frequency_invariant = false;

    // Set invariance: change multiplicities arbitrarily (keep support).
    std::vector<std::int64_t> remultiplied;
    std::vector<std::int64_t> support(v.begin(), v.end());
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()), support.end());
    for (std::int64_t x : support) {
      const int m = mult_dist(rng);
      for (int c = 0; c < m; ++c) remultiplied.push_back(x);
    }
    if (f(remultiplied) != reference) set_invariant = false;
  }
  if (set_invariant) return FunctionClass::kSetBased;
  if (frequency_invariant) return FunctionClass::kFrequencyBased;
  return FunctionClass::kMultisetBased;
}

}  // namespace anonet
