#pragma once

// The four communication models of Section 2.2.

#include <string_view>

namespace anonet {

enum class CommModel {
  // σ : Q -> M. The sender learns nothing about its audience; the executor
  // calls send() once with outdegree 0 (unavailable) and replicates.
  kSimpleBroadcast,
  // σ : Q x N -> M. The sender sees its current outdegree (self-loop
  // included) but sends one identical message to all recipients.
  kOutdegreeAware,
  // Simple broadcast restricted to the class of symmetric networks: the
  // executor additionally verifies that every round graph is bidirectional.
  kSymmetricBroadcast,
  // σ : Q x N -> M^d. The sender addresses each output port individually;
  // the executor requires a valid local output labelling (ports 1..d) and
  // calls send once per port. Only meaningful for static networks.
  kOutputPortAware,
};

[[nodiscard]] std::string_view to_string(CommModel model);

// True for the models where an agent's send() sees its outdegree.
[[nodiscard]] constexpr bool sees_outdegree(CommModel model) {
  return model == CommModel::kOutdegreeAware ||
         model == CommModel::kOutputPortAware;
}

}  // namespace anonet
