#pragma once

// Convergence detection for the two metrics the paper distinguishes
// (Section 2.3): the discrete metric δ0 — outputs must eventually *be* the
// value (finite-time computation) — and the Euclidean metric δ2 — outputs
// need only converge (asymptotic computation).

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace anonet {

// max_i |outputs[i] - target| — the δ2 distance to the goal configuration.
[[nodiscard]] double max_abs_error(std::span<const double> outputs,
                                   double target);

// max - min; convergence of the spread to 0 is agreement.
[[nodiscard]] double spread(std::span<const double> outputs);

template <typename T>
[[nodiscard]] bool all_equal_to(std::span<const T> outputs, const T& target) {
  return std::all_of(outputs.begin(), outputs.end(),
                     [&](const T& x) { return x == target; });
}

// Streamed δ0-stabilization detector: feed the output vector after each
// round; `stabilized_since()` reports the first round from which every
// output equalled `target` without interruption (-1 while not stabilized).
// The detector can only confirm stabilization *so far*; callers run it well
// past the theoretical stabilization bound.
template <typename T>
class StabilizationDetector {
 public:
  explicit StabilizationDetector(T target) : target_(std::move(target)) {}

  void observe(std::span<const T> outputs) {
    ++round_;
    if (!all_equal_to(outputs, target_)) {
      stable_since_ = -1;
    } else if (stable_since_ == -1) {
      stable_since_ = round_;
    }
  }

  [[nodiscard]] int stabilized_since() const { return stable_since_; }
  [[nodiscard]] int rounds_observed() const { return round_; }

 private:
  T target_;
  int round_ = 0;
  int stable_since_ = -1;
};

}  // namespace anonet
