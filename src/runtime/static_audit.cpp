// Central expansion of the core agent registry (see static_audit.hpp).
//
// This translation unit is where the whole-list audits run: the per-header
// ANONET_STATIC_AUDIT_DECLARATIONS invocations check each agent where it is
// defined, but only this file sees every agent *and* the wire codecs at
// once, so only here can "every registered agent has a complete
// MessageTraits specialization" be a compile-time fact rather than a lint
// finding. Deleting a codec from wire/codecs.hpp, or registering an agent
// without one, breaks this TU with a named static_assert.

#include "runtime/static_audit.hpp"

#include "core/exact_pushsum.hpp"
#include "core/gossip.hpp"
#include "core/history_tree.hpp"
#include "core/metropolis.hpp"
#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "core/uniform_consensus.hpp"
#include "wire/codecs.hpp"

namespace anonet {
namespace {

template <typename A>
[[nodiscard]] constexpr bool audit_wire() {
  static_assert(wire::WireEncodable<typename A::Message>,
                "static audit: a registered core agent's Message has no "
                "complete MessageTraits specialization (encoded_bits, "
                "encode, decode) in wire/codecs.hpp — every message that "
                "can cross the channel needs a canonical wire format, or "
                "bandwidth metering and bounded channels silently lie");
  return true;
}

#define ANONET_AUDIT(Agent)                                              \
  static_assert(audit_declarations<Agent>(),                             \
                "declaration audit failed for " #Agent);                 \
  static_assert(audit_wire<Agent>(), "wire audit failed for " #Agent);
ANONET_CORE_AGENT_LIST(ANONET_AUDIT)
#undef ANONET_AUDIT

}  // namespace
}  // namespace anonet
