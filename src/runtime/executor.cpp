#include "runtime/executor.hpp"

#include <algorithm>

namespace anonet {

std::string_view to_string(CommModel model) {
  switch (model) {
    case CommModel::kSimpleBroadcast:
      return "simple broadcast";
    case CommModel::kOutdegreeAware:
      return "outdegree awareness";
    case CommModel::kSymmetricBroadcast:
      return "symmetric communications";
    case CommModel::kOutputPortAware:
      return "output port awareness";
  }
  return "unknown";
}

void validate_output_ports(const Digraph& g) {
  // The verdict is computed once per graph object and cached (the check
  // itself runs in O(E) with a single scratch bitmap; see
  // Digraph::has_valid_output_ports).
  if (!g.has_valid_output_ports()) {
    throw std::invalid_argument(
        "validate_output_ports: out-edges must carry ports 1..d");
  }
}

}  // namespace anonet
