#include "runtime/executor.hpp"

#include <algorithm>

namespace anonet {

std::string_view to_string(CommModel model) {
  switch (model) {
    case CommModel::kSimpleBroadcast:
      return "simple broadcast";
    case CommModel::kOutdegreeAware:
      return "outdegree awareness";
    case CommModel::kSymmetricBroadcast:
      return "symmetric communications";
    case CommModel::kOutputPortAware:
      return "output port awareness";
  }
  return "unknown";
}

void validate_output_ports(const Digraph& g) {
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const auto out = g.out_edges(v);
    std::vector<int> ports;
    ports.reserve(out.size());
    for (EdgeId id : out) ports.push_back(static_cast<int>(g.edge(id).color));
    std::sort(ports.begin(), ports.end());
    for (std::size_t k = 0; k < ports.size(); ++k) {
      if (ports[k] != static_cast<int>(k) + 1) {
        throw std::invalid_argument(
            "validate_output_ports: out-edges must carry ports 1..d");
      }
    }
  }
}

}  // namespace anonet
