#pragma once

// The synchronous anonymous-network executor (Section 2.2).
//
// A round t consists of: every agent generates its message(s) from its
// current state via the model's sending function; messages travel along the
// edges of G(t); every agent then transitions on the *multiset* of messages
// it received. The executor is the model police:
//  - under simple broadcast, send() is called once with the outdegree hidden;
//  - under outdegree awareness, send() is called once with the outdegree,
//    so communications are isotropic by construction;
//  - under output port awareness, send() is called once per port and the
//    round graph must carry a valid local output labelling;
//  - under symmetric broadcast, the round graph must be bidirectional.
// Delivered messages are shuffled with a seeded RNG so an algorithm cannot
// extract information from arrival order (it receives a multiset, not a
// sequence); tests exploit this to verify order independence.
//
// Round engine (docs/round_engine.md): rounds run over a flat message arena
// addressed by receiver-CSR offsets — no per-round inbox allocation — with
// the send and deliver phases optionally parallelized over vertex blocks on
// a persistent ThreadPool. Each inbox is shuffled by a counter-based RNG
// keyed on (seed, round, vertex), so execution is bitwise-identical across
// thread counts. Round graphs are obtained through DynamicGraph::view(t):
// schedules with stable storage lend their graph instead of copying it, and
// validation verdicts are cached per graph object.

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dynamics/dynamic_graph.hpp"
#include "dynamics/perturbation.hpp"
#include "runtime/capabilities.hpp"
#include "runtime/comm_model.hpp"
#include "support/counter_rng.hpp"
#include "support/thread_pool.hpp"
#include "wire/meter.hpp"
#include "wire/wire.hpp"

namespace anonet {

// An agent exposes a message type, a sending function, and a transition.
//   Message send(int outdegree, int port) const;
//     outdegree: 0 when the model hides it, else the round outdegree
//       (self-loop included);
//     port: 0 for isotropic models, else the output port in [1, outdegree].
// and ONE of the two receive forms, a transition on the received multiset
// (shuffled by the executor):
//   void receive(std::span<const Message> messages);
//     zero-copy: `messages` aliases the executor's arena and is only valid
//     during the call. Preferred; every agent in src/core uses it.
//   void receive(std::vector<Message> messages);
//     compatibility form: the executor materializes a vector (one move per
//     message) and hands over ownership.
template <typename A>
concept HasSpanReceive = requires(A agent,
                                  std::span<const typename A::Message> m) {
  { agent.receive(m) };
};

template <typename A>
concept HasVectorReceive = requires(A agent,
                                    std::vector<typename A::Message> m) {
  { agent.receive(std::move(m)) };
};

template <typename A>
concept AnonymousAgent = requires(const A const_agent) {
  typename A::Message;
  requires std::default_initializable<typename A::Message>;
  { const_agent.send(0, 0) } -> std::same_as<typename A::Message>;
} && (HasSpanReceive<A> || HasVectorReceive<A>);

// An agent opts into thread-parallel execution by declaring
//     static constexpr bool kParallelSafe = true;
// promising that send()/receive() touch no state shared between agents.
// Agents that mutate shared structures (MinBaseAgent and
// HistoryFrequencyAgent intern into a shared ViewRegistry) must not
// declare it; the Executor constructor rejects threads > 1 for them
// instead of racing silently.
template <typename A>
inline constexpr bool kParallelSafeAgent = requires {
  requires static_cast<bool>(A::kParallelSafe);
};

// Wall-clock spent in each phase of step(), cumulative over rounds. Timings
// are *measurements*, not semantics: they differ between otherwise identical
// runs and are excluded from determinism comparisons.
struct PhaseTimings {
  double validate_seconds = 0.0;  // model checks + arena offset (re)build
  double send_seconds = 0.0;      // sending-function evaluation
  double deliver_seconds = 0.0;   // arena fill, shuffle, receive transitions
};

struct ExecutorStats {
  std::int64_t rounds = 0;
  std::int64_t messages_delivered = 0;  // self-loop deliveries included
  // Sum of message weights (see message_weight below) over all deliveries —
  // a bandwidth proxy. Equals messages_delivered when no message type
  // declares a weight.
  std::int64_t payload_units = 0;
  PhaseTimings timings;
};

// Bandwidth accounting hook: a message type may expose
//     std::int64_t weight_units() const;
// (e.g. number of scalar fields it carries); unit weight otherwise.
template <typename M>
[[nodiscard]] std::int64_t message_weight(const M& message) {
  if constexpr (requires {
                  { message.weight_units() } -> std::convertible_to<std::int64_t>;
                }) {
    return message.weight_units();
  } else {
    return 1;
  }
}

// Throws std::invalid_argument unless every vertex's out-edges are colored
// with exactly the ports 1..outdegree. The verdict is cached on the graph
// object (Digraph::has_valid_output_ports), so repeated validation of the
// same round graph is O(1).
void validate_output_ports(const Digraph& g);

// Thrown by Executor::step() when a cooperative wall-clock deadline set via
// set_deadline() has passed. The check runs between rounds only (never
// mid-round), so a round that started before the deadline always completes
// and the executor is left in a consistent state: stats(), agents() and the
// round counter reflect exactly the rounds that ran. Campaign runners catch
// this type specifically to record a "timeout" verdict distinguishable from
// ordinary failures.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded(std::int64_t rounds_run, double budget_ms)
      : std::runtime_error("wall-clock deadline of " +
                           std::to_string(budget_ms) + " ms exceeded after " +
                           std::to_string(rounds_run) + " rounds"),
        rounds_run_(rounds_run) {}

  [[nodiscard]] std::int64_t rounds_run() const { return rounds_run_; }

 private:
  std::int64_t rounds_run_;
};

template <AnonymousAgent Alg>
class Executor {
 public:
  using Message = typename Alg::Message;

  // Capability set declared by the agent (runtime/capabilities.hpp);
  // undeclared agents are treated as model-polymorphic.
  static constexpr ModelCapabilities kAgentCapabilities =
      agent_capabilities<Alg>();

  // `threads` is the worker count for the send and deliver phases
  // (1 = serial, no pool is created). Agent states, delivery orders, and
  // the counting fields of ExecutorStats are identical for every value.
  // threads > 1 throws unless Alg declares kParallelSafe (see above).
  // A model that does not provide the agent's declared capabilities
  // (e.g. an outdegree-consuming agent under kSimpleBroadcast) throws
  // std::invalid_argument; use the ModelTag overload below to turn that
  // into a compile error.
  Executor(DynamicGraphPtr network, std::vector<Alg> agents, CommModel model,
           std::uint64_t shuffle_seed = 0x5eedull, int threads = 1)
      : network_(std::move(network)),
        agents_(std::move(agents)),
        model_(model),
        seed_(shuffle_seed),
        threads_(threads < 1 ? 1 : threads) {
    if (network_ == nullptr) {
      throw std::invalid_argument("Executor: null network");
    }
    if (!model_provides(model_, kAgentCapabilities)) {
      throw std::invalid_argument(
          "Executor: " + describe_model_mismatch(model_, kAgentCapabilities));
    }
    if (agents_.size() != static_cast<std::size_t>(network_->vertex_count())) {
      throw std::invalid_argument("Executor: one agent per vertex required");
    }
    if (threads_ > 1) {
      if constexpr (!kParallelSafeAgent<Alg>) {
        throw std::invalid_argument(
            "Executor: threads > 1 requires the agent type to declare "
            "static constexpr bool kParallelSafe = true (its send/receive "
            "must not touch state shared between agents)");
      } else {
        pool_ = std::make_unique<ThreadPool>(threads_);
      }
    }
  }

  // Compile-time-checked model selection: pass `under<CommModel::k...>`
  // instead of the enum and a pairing forbidden by Table 1 fails to compile
  // with an explanation instead of throwing at construction.
  template <CommModel M>
  Executor(DynamicGraphPtr network, std::vector<Alg> agents,
           ModelTag<M> /*model*/, std::uint64_t shuffle_seed = 0x5eedull,
           int threads = 1)
      : Executor(std::move(network), std::move(agents), M, shuffle_seed,
                 threads) {
    static_assert(
        !(has_capability(kAgentCapabilities,
                         ModelCapabilities::kNeedsOutdegree) &&
          !sees_outdegree(M)),
        "anonet model-compliance violation (Table 1): this agent declares "
        "ModelCapabilities::kNeedsOutdegree, but the selected communication "
        "model hides the sender's outdegree — simple and symmetric broadcast "
        "call send() with outdegree 0. Run the agent under kOutdegreeAware "
        "or kOutputPortAware, or rewrite its sending function so it no "
        "longer consumes the outdegree.");
    static_assert(
        !(has_capability(kAgentCapabilities,
                         ModelCapabilities::kNeedsOutputPorts) &&
          M != CommModel::kOutputPortAware),
        "anonet model-compliance violation (Table 1): this agent declares "
        "ModelCapabilities::kNeedsOutputPorts, but only "
        "CommModel::kOutputPortAware addresses output ports individually — "
        "every other model is isotropic and replicates one message to all "
        "out-neighbors. Run the agent under kOutputPortAware, or rewrite "
        "its sending function to ignore the port.");
    static_assert(
        !(has_capability(kAgentCapabilities,
                         ModelCapabilities::kNeedsSymmetricModel) &&
          M != CommModel::kSymmetricBroadcast),
        "anonet model-compliance violation: this agent declares "
        "ModelCapabilities::kNeedsSymmetricModel — it relies on the model "
        "certifying every round graph bidirectional, not merely on being "
        "scheduled over a symmetric network class — and only "
        "CommModel::kSymmetricBroadcast gives that per-round guarantee. Run "
        "the agent under kSymmetricBroadcast, or weaken its declaration to "
        "kSymmetricOnly if a symmetric schedule promise suffices.");
  }

  // Arms (or, with budget_ms <= 0, disarms) a cooperative wall-clock
  // deadline counted from now. step() throws DeadlineExceeded at the start
  // of the first round that begins at or after the deadline; rounds already
  // under way are never interrupted. This is the campaign runner's per-cell
  // timeout hook — a measurement-driven bound, orthogonal to the round
  // budget, so a hung or pathologically slow schedule cannot pin a worker.
  void set_deadline(double budget_ms) {
    if (budget_ms <= 0.0) {
      deadline_armed_ = false;
      return;
    }
    deadline_budget_ms_ = budget_ms;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(budget_ms));
    deadline_armed_ = true;
  }

  // Installs a wire::ChannelPolicy (unbounded | metered | bounded-B-bits).
  // Metered and bounded channels measure every message with the canonical
  // MessageTraits codec, so calling this with a non-unbounded policy
  // requires wire/codecs.hpp in the including translation unit — the
  // static_assert below names the missing specialization otherwise. The
  // executor itself never touches the codec: step() only sees the function
  // pointer installed here, so its instantiation is identical whether or
  // not codecs are visible (no ODR split between metered and unmetered
  // translation units), and with the default unbounded policy the
  // send/deliver path is the pre-wire code byte for byte.
  void set_channel_policy(wire::ChannelPolicy policy) {
    static_assert(
        wire::WireEncodable<Message>,
        "Executor::set_channel_policy requires a canonical codec for the "
        "agent's Message: include wire/codecs.hpp (or specialize "
        "wire::MessageTraits<Message>) in this translation unit.");
    if (policy.mode == wire::ChannelMode::kBounded && policy.budget_bits <= 0) {
      throw std::invalid_argument(
          "Executor: a bounded channel needs a positive per-message budget");
    }
    channel_policy_ = policy;
    measure_ = policy.mode == wire::ChannelMode::kUnbounded
                   ? nullptr
                   : &measure_message;
  }

  [[nodiscard]] const wire::ChannelPolicy& channel_policy() const {
    return channel_policy_;
  }

  // Installs an asynchronous start schedule (dynamics/perturbation.hpp):
  // agent v is inert until round wake_rounds[v] — it sends nothing (and is
  // metered for nothing) and ignores deliveries, its state frozen at the
  // initial state. The round graph itself is untouched: an awake sender
  // still splits across its full outdegree, so messages aimed at sleepers
  // are paid for and lost. An empty schedule (the default) disarms the
  // gate and restores the exact unperturbed code path.
  void set_start_schedule(StartSchedule starts) {
    if (!starts.wake_rounds.empty() &&
        starts.wake_rounds.size() != agents_.size()) {
      throw std::invalid_argument(
          "Executor: start schedule needs one wake round per agent");
    }
    starts_ = std::move(starts);
    update_perturbed();
  }

  // Installs crash-stop and message-drop faults (dynamics/perturbation.hpp).
  // A crashed agent permanently stops sending and transitioning (its last
  // state stays readable); a dropped message is measured at the sender —
  // channel accounting sees it — but never delivered. Drop decisions are a
  // pure function of (drop_seed, round, edge id), so the loss pattern is
  // identical across thread counts. Self-loops never drop. A trivial plan
  // (the default) disarms the gate.
  void set_fault_plan(FaultPlan faults) {
    if (!faults.crash_rounds.empty() &&
        faults.crash_rounds.size() != agents_.size()) {
      throw std::invalid_argument(
          "Executor: fault plan needs one crash round per agent");
    }
    faults_ = std::move(faults);
    drop_threshold_ = drop_threshold(faults_.drop_rate);
    update_perturbed();
  }

  // Overrides the adaptive block grain (see grain_for below) with a fixed
  // item count per block for both phases; 0 restores adaptive sizing. Grain
  // choices never change results — block boundaries affect only which worker
  // runs what and how partial statistics are chunked before their
  // block-order reduction — so this is a measurement knob (the bench's grain
  // sweep), not a semantic one.
  void set_block_grain(std::int64_t grain) {
    forced_grain_ = grain < 0 ? 0 : grain;
  }
  // Per-round bit accounting; empty unless a metered/bounded policy was
  // installed before the rounds of interest ran.
  [[nodiscard]] const wire::BandwidthMeter& bandwidth_meter() const {
    return meter_;
  }

  // Runs one communication-closed round.
  void step() {
    using Clock = std::chrono::steady_clock;
    if (deadline_armed_ && Clock::now() >= deadline_) {
      throw DeadlineExceeded(stats_.rounds, deadline_budget_ms_);
    }
    const auto t_validate = Clock::now();

    const int t = static_cast<int>(stats_.rounds) + 1;
    const RoundGraphRef ref = network_->view(t);
    const Digraph& g = ref.get();
    if (g.vertex_count() != network_->vertex_count()) {
      throw std::logic_error("Executor: schedule changed vertex count");
    }
    if (!g.has_all_self_loops()) {
      throw std::logic_error("Executor: round graph misses a self-loop");
    }
    // kSymmetricOnly agents get their network-class assumption verified
    // under every model (Metropolis runs under kOutdegreeAware but is only
    // correct on bidirectional round graphs); the verdict is cached on the
    // graph object, so static schedules pay once.
    constexpr bool requires_symmetric =
        has_capability(kAgentCapabilities,
                       ModelCapabilities::kSymmetricOnly) ||
        has_capability(kAgentCapabilities,
                       ModelCapabilities::kNeedsSymmetricModel);
    if (model_ == CommModel::kSymmetricBroadcast && !g.is_symmetric()) {
      throw std::logic_error("Executor: asymmetric round under symmetric model");
    }
    if (requires_symmetric && !g.is_symmetric()) {
      throw std::logic_error(
          "Executor: asymmetric round graph for an agent declaring "
          "ModelCapabilities::kSymmetricOnly");
    }
    if (model_ == CommModel::kOutputPortAware) validate_output_ports(g);

    const auto n = static_cast<std::size_t>(g.vertex_count());
    const auto edge_total = static_cast<std::size_t>(g.edge_count());
    prepare_topology(ref, g, n, edge_total);

    const bool port_aware = model_ == CommModel::kOutputPortAware;
    if (port_aware) {
      if (edge_outbox_.size() < edge_total) edge_outbox_.resize(edge_total);
    } else {
      if (outbox_.size() < n) outbox_.resize(n);
      if constexpr (kWeighted) {
        if (outbox_weight_.size() < n) outbox_weight_.resize(n);
      }
    }
    if (arena_.size() < edge_total) arena_.resize(edge_total);

    // Channel accounting is armed per run, not per round: `metering` is a
    // loop-invariant local, so the unbounded path costs one predicted
    // branch per block and allocates nothing.
    const bool metering = measure_ != nullptr;
    if (metering) {
      if (port_aware) {
        if (edge_outbox_bits_.size() < edge_total) {
          edge_outbox_bits_.resize(edge_total);
        }
      } else {
        if (outbox_bits_.size() < n) outbox_bits_.resize(n);
      }
    }

    // Perturbation gate: resolved once per round into a per-sender activity
    // map (send blocks fill their own slots; the phase barrier publishes
    // them to every deliver block). Unperturbed runs never touch it.
    const bool perturbed = perturbed_;
    if (perturbed && sender_active_.size() < n) sender_active_.resize(n);

    const auto n64 = static_cast<std::int64_t>(n);
    const std::int64_t send_grain = grain_for(send_ns_per_item_, n64);
    const std::int64_t send_blocks = ThreadPool::block_count(n64, send_grain);
    const std::int64_t deliver_grain = grain_for(deliver_ns_per_item_, n64);
    const std::int64_t deliver_blocks =
        ThreadPool::block_count(n64, deliver_grain);
    const std::int64_t max_blocks = std::max(send_blocks, deliver_blocks);
    if (partials_.size() < static_cast<std::size_t>(max_blocks)) {
      partials_.resize(static_cast<std::size_t>(max_blocks));
    }
    const auto t_send = Clock::now();

    // Send phase: evaluate each sender's sending function exactly once per
    // model contract. Senders only write their own outbox slots, so vertex
    // blocks are independent.
    parallel(n64, send_grain,
             [&](std::int64_t begin, std::int64_t end, std::int64_t b) {
               Partial local;
               for (std::int64_t i = begin; i < end; ++i) {
                 const auto v = static_cast<Vertex>(i);
                 if (perturbed) {
                   // Pre-wake and crashed agents send nothing: their outbox
                   // slot stays stale and delivery skips it via this map, so
                   // nothing is metered for them either.
                   const bool active =
                       starts_.awake(v, t) && !faults_.crashed(v, t);
                   sender_active_[static_cast<std::size_t>(i)] =
                       active ? 1 : 0;
                   if (!active) continue;
                 }
                 const auto out = g.out_edges(v);
                 const int d = static_cast<int>(out.size());
                 const Alg& agent = agents_[static_cast<std::size_t>(i)];
                 if (port_aware) {
                   for (EdgeId id : out) {
                     edge_outbox_[static_cast<std::size_t>(id)] =
                         agent.send(d, static_cast<int>(g.edge(id).color));
                   }
                   if (metering) {
                     for (EdgeId id : out) {
                       const std::int64_t bits = measure_(
                           edge_outbox_[static_cast<std::size_t>(id)]);
                       edge_outbox_bits_[static_cast<std::size_t>(id)] = bits;
                       local.sent_bits += bits;
                       if (bits > local.max_bits) local.max_bits = bits;
                     }
                   }
                 } else {
                   const int visible = sees_outdegree(model_) ? d : 0;
                   outbox_[static_cast<std::size_t>(i)] = agent.send(visible, 0);
                   if constexpr (kWeighted) {
                     // Isotropic broadcast replicates one message to all
                     // out-neighbors: weigh it once per sender, not once per
                     // delivery (heavy payloads make the difference).
                     outbox_weight_[static_cast<std::size_t>(i)] =
                         message_weight(outbox_[static_cast<std::size_t>(i)]);
                   }
                   if (metering) {
                     // Measure once per sender; the channel carries it once
                     // per out-edge (self-loop included), matching the
                     // delivery count on the receive side.
                     const std::int64_t bits =
                         measure_(outbox_[static_cast<std::size_t>(i)]);
                     outbox_bits_[static_cast<std::size_t>(i)] = bits;
                     local.sent_bits += bits * d;
                     if (bits > local.max_bits) local.max_bits = bits;
                   }
                 }
               }
               if (metering) partials_[static_cast<std::size_t>(b)] = local;
             });

    // The channel sits between the sending functions and delivery: every
    // round-t message now exists and is measured, none has traveled. A
    // bounded policy rejects the round here, so BandwidthExceeded leaves
    // agents untransitioned with exactly stats_.rounds completed rounds
    // (the same contract as DeadlineExceeded).
    wire::RoundBandwidth round_bits;
    if (metering) {
      for (std::int64_t b = 0; b < send_blocks; ++b) {
        const Partial& p = partials_[static_cast<std::size_t>(b)];
        round_bits.bits_sent += p.sent_bits;
        if (p.max_bits > round_bits.max_message_bits) {
          round_bits.max_message_bits = p.max_bits;
        }
      }
      if (channel_policy_.mode == wire::ChannelMode::kBounded &&
          round_bits.max_message_bits > channel_policy_.budget_bits) {
        throw wire::BandwidthExceeded(stats_.rounds,
                                      round_bits.max_message_bits,
                                      channel_policy_.budget_bits);
      }
    }

    const auto t_deliver = Clock::now();

    // Deliver phase: each receiver gathers its in-edges into its arena
    // slice, shuffles with its own counter-keyed stream, and transitions.
    // Receivers only touch their own slice and their own agent, so vertex
    // blocks are independent and the outcome is thread-count-invariant.
    parallel(n64, deliver_grain,
             [&](std::int64_t begin, std::int64_t end, std::int64_t b) {
               Partial local;
               for (std::int64_t i = begin; i < end; ++i) {
                 const auto v = static_cast<Vertex>(i);
                 if (perturbed &&
                     !sender_active_[static_cast<std::size_t>(i)]) {
                   // Pre-wake or crashed receiver: deliveries evaporate and
                   // the state stays frozen (no transition, no counts).
                   continue;
                 }
                 const std::size_t base = in_offset_[static_cast<std::size_t>(i)];
                 const std::size_t deg =
                     in_offset_[static_cast<std::size_t>(i) + 1] - base;
                 std::size_t got = 0;
                 for (std::size_t k = 0; k < deg; ++k) {
                   if (perturbed) {
                     // A message exists only if its sender was active this
                     // round, and travels only if the wire keeps it: drops
                     // are decided per (round, edge) by a counter RNG —
                     // thread-invariant — and self-loops never drop. Either
                     // way the sender already paid for it (metered at send).
                     const auto src =
                         static_cast<std::size_t>(in_source_[base + k]);
                     if (!sender_active_[src]) continue;
                     if (static_cast<Vertex>(src) != v &&
                         drops_message(faults_.drop_seed, t,
                                       in_edge_[base + k], drop_threshold_)) {
                       continue;
                     }
                   }
                   // Slot-aligned topology arrays (prepare_topology): no
                   // indirection through the graph in the hot loop.
                   if (port_aware) {
                     const auto slot =
                         static_cast<std::size_t>(in_edge_[base + k]);
                     arena_[base + got] = edge_outbox_[slot];
                     local.payload += message_weight(arena_[base + got]);
                     if (metering) local.recv_bits += edge_outbox_bits_[slot];
                   } else {
                     const auto src =
                         static_cast<std::size_t>(in_source_[base + k]);
                     arena_[base + got] = outbox_[src];
                     if constexpr (kWeighted) {
                       local.payload += outbox_weight_[src];
                     } else {
                       local.payload += 1;
                     }
                     if (metering) local.recv_bits += outbox_bits_[src];
                   }
                   ++got;
                 }
                 local.messages += static_cast<std::int64_t>(got);
                 if (got > 1) {
                   // Fisher–Yates keyed on (seed, round, vertex): cheaper
                   // than std::shuffle's division-based bounded draws and
                   // still a pure function of the key (thread-invariant).
                   // Under perturbation the key is unchanged and the shuffle
                   // runs over the compacted survivor count, so the order is
                   // still a pure function of (seed, t, v, survivors).
                   CounterRng rng(seed_, static_cast<std::uint64_t>(t),
                                  static_cast<std::uint64_t>(v));
                   Message* slice = arena_.data() + base;
                   for (std::size_t k = got - 1; k > 0; --k) {
                     std::swap(slice[k], slice[rng.bounded(k + 1)]);
                   }
                 }
                 Alg& agent = agents_[static_cast<std::size_t>(i)];
                 if constexpr (HasSpanReceive<Alg>) {
                   agent.receive(
                       std::span<const Message>(arena_.data() + base, got));
                 } else {
                   const auto slice_begin =
                       arena_.begin() + static_cast<std::ptrdiff_t>(base);
                   agent.receive(std::vector<Message>(
                       std::make_move_iterator(slice_begin),
                       std::make_move_iterator(
                           slice_begin + static_cast<std::ptrdiff_t>(got))));
                 }
               }
               partials_[static_cast<std::size_t>(b)] = local;
             });
    for (std::int64_t b = 0; b < deliver_blocks; ++b) {
      const Partial& p = partials_[static_cast<std::size_t>(b)];
      stats_.messages_delivered += p.messages;
      stats_.payload_units += p.payload;
      round_bits.bits_received += p.recv_bits;
    }
    if (metering) meter_.record_round(round_bits);
    ++stats_.rounds;

    const auto t_end = Clock::now();
    const auto seconds = [](auto from, auto to) {
      return std::chrono::duration<double>(to - from).count();
    };
    stats_.timings.validate_seconds += seconds(t_validate, t_send);
    stats_.timings.send_seconds += seconds(t_send, t_deliver);
    stats_.timings.deliver_seconds += seconds(t_deliver, t_end);
    update_phase_cost(send_ns_per_item_, seconds(t_send, t_deliver), n);
    update_phase_cost(deliver_ns_per_item_, seconds(t_deliver, t_end), n);
  }

  void run(int rounds) {
    for (int i = 0; i < rounds; ++i) step();
  }

  [[nodiscard]] int round() const { return static_cast<int>(stats_.rounds); }
  [[nodiscard]] const Alg& agent(Vertex v) const {
    return agents_[static_cast<std::size_t>(v)];
  }
  // Mutable access, used by self-stabilization tests to corrupt states.
  [[nodiscard]] std::vector<Alg>& agents() { return agents_; }
  [[nodiscard]] const std::vector<Alg>& agents() const { return agents_; }
  [[nodiscard]] const ExecutorStats& stats() const { return stats_; }
  [[nodiscard]] CommModel model() const { return model_; }
  [[nodiscard]] int threads() const { return threads_; }

 private:
  static constexpr bool kWeighted = requires(const Message& m) {
    { m.weight_units() } -> std::convertible_to<std::int64_t>;
  };

  // Per-block partial statistics, reduced in block order after each phase
  // (deterministic regardless of which worker ran which block). The same
  // array serves both phases: the send phase fills the bit fields when a
  // channel policy is armed and is reduced before delivery (the bounded
  // check); the deliver phase then overwrites each slot with its own
  // counts. Bit totals are integer sums and maxima, so the reduced values
  // are independent of thread count and block assignment by construction.
  // Padded to a cache line: adjacent blocks usually run on different
  // workers, and the five counters would otherwise share lines and bounce
  // between cores on every delivery.
  struct alignas(64) Partial {
    std::int64_t messages = 0;
    std::int64_t payload = 0;
    std::int64_t sent_bits = 0;  // send phase: bits pushed onto out-edges
    std::int64_t max_bits = 0;   // send phase: largest single message
    std::int64_t recv_bits = 0;  // deliver phase: bits gathered from in-edges
  };

  // Items per block for a phase. The grain is a throughput knob only: block
  // boundaries decide worker assignment and partial-statistics chunking,
  // both invisible after the block-order reduction, so any grain yields
  // bitwise-identical results. Policy: a phase cheaper than ~2 futex wakes
  // runs as a single block (the pool's serial fast path — dispatch must
  // never dominate); otherwise aim for ~kGrainTargetNs of measured work per
  // cursor claim, clamped so every worker still sees a few blocks. The cost
  // estimate is the phase's own EWMA from previous rounds; round 1 falls
  // back to the pure load-balance grain.
  [[nodiscard]] std::int64_t grain_for(double ns_per_item,
                                       std::int64_t n) const {
    if (forced_grain_ > 0) return forced_grain_;
    if (pool_ == nullptr) return n;  // serial: one block, no claim traffic
    const std::int64_t balance = std::max<std::int64_t>(
        64, n / (4ll * static_cast<std::int64_t>(threads_)));
    if (ns_per_item <= 0.0) return balance;
    if (ns_per_item * static_cast<double>(n) < kSerialCutoffNs) return n;
    const auto target = static_cast<std::int64_t>(kGrainTargetNs / ns_per_item);
    return std::clamp<std::int64_t>(target, 64, balance);
  }

  static void update_phase_cost(double& ewma, double phase_seconds,
                                std::size_t n) {
    if (n == 0) return;
    const double ns = phase_seconds * 1e9 / static_cast<double>(n);
    ewma = ewma <= 0.0 ? ns : 0.75 * ewma + 0.25 * ns;
  }

  static constexpr double kGrainTargetNs = 128.0 * 1000.0;  // ~128 µs/claim
  static constexpr double kSerialCutoffNs = 30.0 * 1000.0;

  // The one point where the executor touches the codec. Only instantiated
  // from set_channel_policy (taking its address), so translation units that
  // never arm a channel policy compile without wire/codecs.hpp.
  static std::int64_t measure_message(const Message& message) {
    return wire::MessageTraits<Message>::encoded_bits(message);
  }

  template <typename Fn>
  void parallel(std::int64_t count, std::int64_t block, Fn&& fn) {
    if (pool_ != nullptr) {
      // BlockFn borrows `fn` without allocating (parallel_blocks is
      // synchronous), so the pooled path stays heap-free per round too.
      pool_->parallel_blocks(count, block, fn);
    } else {
      const std::int64_t blocks = ThreadPool::block_count(count, block);
      for (std::int64_t b = 0; b < blocks; ++b) {
        const std::int64_t begin = b * block;
        fn(begin, std::min(begin + block, count), b);
      }
    }
  }

  // (Re)builds the receiver-CSR arena offsets and the slot-aligned
  // topology arrays for g. Skipped entirely when the schedule lends the
  // same graph object as last round (borrowed views have stable identity);
  // fresh owned graphs rebuild in O(n + E). Also forces the graph's
  // adjacency cache so the parallel phases never race to build it lazily.
  void prepare_topology(const RoundGraphRef& ref, const Digraph& g,
                        std::size_t n, std::size_t edge_total) {
    if (ref.is_borrowed() && topology_key_ == &g &&
        in_offset_.size() == n + 1 &&
        in_offset_[n] == edge_total) {
      return;
    }
    in_offset_.resize(n + 1);
    if (in_edge_.size() < edge_total) in_edge_.resize(edge_total);
    if (in_source_.size() < edge_total) in_source_.resize(edge_total);
    std::size_t offset = 0;
    for (std::size_t v = 0; v < n; ++v) {
      in_offset_[v] = offset;
      for (EdgeId id : g.in_edges(static_cast<Vertex>(v))) {
        in_edge_[offset] = id;
        in_source_[offset] = g.edge(id).source;
        ++offset;
      }
    }
    in_offset_[n] = offset;
    // Ensure the out-CSR side is built too (parallel send must not race to
    // build it lazily).
    if (n > 0) static_cast<void>(g.out_edges(0));
    topology_key_ = ref.is_borrowed() ? &g : nullptr;
  }

  DynamicGraphPtr network_;
  std::vector<Alg> agents_;
  CommModel model_;
  std::uint64_t seed_;
  int threads_;
  std::unique_ptr<ThreadPool> pool_;
  ExecutorStats stats_;

  void update_perturbed() {
    perturbed_ = !starts_.trivial() || !faults_.trivial();
  }

  // Perturbation state (set_start_schedule / set_fault_plan). perturbed_
  // caches "any gate armed" so the unperturbed hot path pays one branch.
  StartSchedule starts_;
  FaultPlan faults_;
  std::uint64_t drop_threshold_ = 0;
  bool perturbed_ = false;
  std::vector<unsigned char> sender_active_;  // per-round activity map

  // Cooperative deadline (set_deadline): checked at the top of step().
  bool deadline_armed_ = false;
  double deadline_budget_ms_ = 0.0;
  std::chrono::steady_clock::time_point deadline_{};

  // Channel policy (set_channel_policy): measure_ doubles as the on/off
  // switch — nullptr means unbounded and step() skips all accounting.
  using MeasureFn = std::int64_t (*)(const Message&);
  MeasureFn measure_ = nullptr;
  wire::ChannelPolicy channel_policy_{};
  wire::BandwidthMeter meter_;

  // Round-engine arena state, reused across rounds (no per-round heap
  // churn once capacities have grown to the schedule's maxima).
  const Digraph* topology_key_ = nullptr;  // borrowed graph offsets refer to
  std::vector<std::size_t> in_offset_;     // receiver-CSR offsets, size n+1
  std::vector<EdgeId> in_edge_;            // slot -> edge id (port-aware path)
  std::vector<Vertex> in_source_;          // slot -> sender (isotropic path)
  std::vector<Message> arena_;             // delivered messages, receiver-major
  std::vector<Message> outbox_;            // one message per sender (isotropic)
  std::vector<std::int64_t> outbox_weight_;  // per-sender weight (isotropic)
  std::vector<Message> edge_outbox_;       // one message per edge (port-aware)
  std::vector<Partial> partials_;          // per-block per-phase stats
  // Adaptive-grain state (grain_for): measured per-item phase cost EWMAs
  // and the bench's fixed-grain override (0 = adaptive).
  double send_ns_per_item_ = 0.0;
  double deliver_ns_per_item_ = 0.0;
  std::int64_t forced_grain_ = 0;
  std::vector<std::int64_t> outbox_bits_;  // per-sender bits (metered only)
  std::vector<std::int64_t> edge_outbox_bits_;  // per-edge bits (metered only)
};

}  // namespace anonet
