#pragma once

// The synchronous anonymous-network executor (Section 2.2).
//
// A round t consists of: every agent generates its message(s) from its
// current state via the model's sending function; messages travel along the
// edges of G(t); every agent then transitions on the *multiset* of messages
// it received. The executor is the model police:
//  - under simple broadcast, send() is called once with the outdegree hidden;
//  - under outdegree awareness, send() is called once with the outdegree,
//    so communications are isotropic by construction;
//  - under output port awareness, send() is called once per port and the
//    round graph must carry a valid local output labelling;
//  - under symmetric broadcast, the round graph must be bidirectional.
// Delivered messages are shuffled with a seeded RNG so an algorithm cannot
// extract information from arrival order (it receives a multiset, not a
// sequence); tests exploit this to verify order independence.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dynamics/dynamic_graph.hpp"
#include "runtime/comm_model.hpp"

namespace anonet {

// An agent exposes a message type, a sending function, and a transition.
//   Message send(int outdegree, int port) const;
//     outdegree: 0 when the model hides it, else the round outdegree
//       (self-loop included);
//     port: 0 for isotropic models, else the output port in [1, outdegree].
//   void receive(std::vector<Message> messages);
//     one transition on the received multiset (shuffled by the executor).
template <typename A>
concept AnonymousAgent = requires(A agent, const A const_agent,
                                  std::vector<typename A::Message> messages) {
  typename A::Message;
  { const_agent.send(0, 0) } -> std::same_as<typename A::Message>;
  { agent.receive(std::move(messages)) };
};

struct ExecutorStats {
  std::int64_t rounds = 0;
  std::int64_t messages_delivered = 0;  // self-loop deliveries included
  // Sum of message weights (see message_weight below) over all deliveries —
  // a bandwidth proxy. Equals messages_delivered when no message type
  // declares a weight.
  std::int64_t payload_units = 0;
};

// Bandwidth accounting hook: a message type may expose
//     std::int64_t weight_units() const;
// (e.g. number of scalar fields it carries); unit weight otherwise.
template <typename M>
[[nodiscard]] std::int64_t message_weight(const M& message) {
  if constexpr (requires {
                  { message.weight_units() } -> std::convertible_to<std::int64_t>;
                }) {
    return message.weight_units();
  } else {
    return 1;
  }
}

// Throws std::invalid_argument unless every vertex's out-edges are colored
// with exactly the ports 1..outdegree.
void validate_output_ports(const Digraph& g);

template <AnonymousAgent Alg>
class Executor {
 public:
  Executor(DynamicGraphPtr network, std::vector<Alg> agents, CommModel model,
           std::uint64_t shuffle_seed = 0x5eedull)
      : network_(std::move(network)),
        agents_(std::move(agents)),
        model_(model),
        rng_(shuffle_seed) {
    if (network_ == nullptr) {
      throw std::invalid_argument("Executor: null network");
    }
    if (agents_.size() != static_cast<std::size_t>(network_->vertex_count())) {
      throw std::invalid_argument("Executor: one agent per vertex required");
    }
  }

  // Runs one communication-closed round.
  void step() {
    using Message = typename Alg::Message;
    const int t = static_cast<int>(stats_.rounds) + 1;
    const Digraph g = network_->at(t);
    if (g.vertex_count() != network_->vertex_count()) {
      throw std::logic_error("Executor: schedule changed vertex count");
    }
    if (!g.has_all_self_loops()) {
      throw std::logic_error("Executor: round graph misses a self-loop");
    }
    if (model_ == CommModel::kSymmetricBroadcast && !g.is_symmetric()) {
      throw std::logic_error("Executor: asymmetric round under symmetric model");
    }
    if (model_ == CommModel::kOutputPortAware) validate_output_ports(g);

    const auto n = static_cast<std::size_t>(g.vertex_count());
    std::vector<std::vector<Message>> inbox(n);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const auto out = g.out_edges(v);
      const int d = static_cast<int>(out.size());
      const Alg& agent = agents_[static_cast<std::size_t>(v)];
      if (model_ == CommModel::kOutputPortAware) {
        for (EdgeId id : out) {
          const Edge& e = g.edge(id);
          inbox[static_cast<std::size_t>(e.target)].push_back(
              agent.send(d, static_cast<int>(e.color)));
        }
      } else {
        const int visible = sees_outdegree(model_) ? d : 0;
        const Message message = agent.send(visible, 0);
        for (EdgeId id : out) {
          inbox[static_cast<std::size_t>(g.edge(id).target)].push_back(
              message);
        }
      }
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      auto& messages = inbox[static_cast<std::size_t>(v)];
      std::shuffle(messages.begin(), messages.end(), rng_);
      stats_.messages_delivered += static_cast<std::int64_t>(messages.size());
      for (const Message& message : messages) {
        stats_.payload_units += message_weight(message);
      }
      agents_[static_cast<std::size_t>(v)].receive(std::move(messages));
    }
    ++stats_.rounds;
  }

  void run(int rounds) {
    for (int i = 0; i < rounds; ++i) step();
  }

  [[nodiscard]] int round() const { return static_cast<int>(stats_.rounds); }
  [[nodiscard]] const Alg& agent(Vertex v) const {
    return agents_[static_cast<std::size_t>(v)];
  }
  // Mutable access, used by self-stabilization tests to corrupt states.
  [[nodiscard]] std::vector<Alg>& agents() { return agents_; }
  [[nodiscard]] const std::vector<Alg>& agents() const { return agents_; }
  [[nodiscard]] const ExecutorStats& stats() const { return stats_; }
  [[nodiscard]] CommModel model() const { return model_; }

 private:
  DynamicGraphPtr network_;
  std::vector<Alg> agents_;
  CommModel model_;
  std::mt19937_64 rng_;
  ExecutorStats stats_;
};

}  // namespace anonet
