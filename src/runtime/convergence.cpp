#include "runtime/convergence.hpp"

namespace anonet {

double max_abs_error(std::span<const double> outputs, double target) {
  double result = 0.0;
  for (double x : outputs) result = std::max(result, std::abs(x - target));
  return result;
}

double spread(std::span<const double> outputs) {
  if (outputs.empty()) return 0.0;
  const auto [min_it, max_it] =
      std::minmax_element(outputs.begin(), outputs.end());
  return *max_it - *min_it;
}

}  // namespace anonet
