#pragma once

// Per-round trace recording: collect each agent's output after every round
// and export CSV for external plotting. Used by examples and available to
// downstream experiment code; benches print their own tables.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace anonet {

class TraceRecorder {
 public:
  // One column per agent, plus the round column. `labels` optional; default
  // labels are agent0, agent1, ...
  explicit TraceRecorder(std::vector<std::string> labels = {});

  // Appends a row; all rows must have the same width (throws otherwise).
  void record(int round, std::span<const double> outputs);
  // Integer rows (per-round bit counters from wire::BandwidthMeter, message
  // counts, ...) widen to double: exact up to 2^53, far beyond any per-round
  // volume a simulation here produces.
  void record(int round, std::span<const std::int64_t> outputs);

  [[nodiscard]] std::size_t rows() const { return rounds_.size(); }
  [[nodiscard]] std::string to_csv() const;
  // One JSON object per row — {"round":t,"agent0":...} — rendered through
  // support/jsonl.hpp, the same escaping/formatting path as the campaign
  // metrics records, so traces and campaign output stay byte-compatible
  // consumers of one format.
  [[nodiscard]] std::string to_jsonl() const;
  // Convenience: write to_csv()/to_jsonl() to `path`; throw
  // std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

 private:
  std::vector<std::string> labels_;
  std::vector<int> rounds_;
  std::vector<std::vector<double>> values_;
};

}  // namespace anonet
