#pragma once

// Compile-time capability traits: machine-checked Table 1.
//
// The paper's separation results are statements about what a sending
// function is *allowed to see*: simple broadcast hides the outdegree,
// outdegree awareness reveals it, output-port awareness addresses ports
// individually, and the symmetric column restricts the network class rather
// than the sending function. An algorithm only witnesses a row of Table 1
// if it genuinely stays inside its cell — an agent that peeks at the
// outdegree under simple broadcast silently proves a theorem the paper
// forbids. Agents therefore declare what they consume:
//
//     static constexpr ModelCapabilities kModelCapabilities =
//         ModelCapabilities::kNeedsOutdegree | ModelCapabilities::kSymmetricOnly;
//
// and the Executor enforces the declaration twice: at compile time when the
// model is a constant (the ModelTag constructor overload static_asserts with
// an explanation), and at construction time for runtime-chosen models (the
// CommModel constructor throws std::invalid_argument). The standalone
// anonet_lint tool (tools/anonet_lint/) closes the loop from the other side:
// rule M1 flags agent code that reads the outdegree/port parameters without
// declaring the matching capability. See docs/static_analysis.md.

#include <cstdint>
#include <string>

#include "runtime/comm_model.hpp"

namespace anonet {

// What an agent's sending/transition functions consume from the
// communication model. Combine with operator|.
enum class ModelCapabilities : std::uint8_t {
  // The sending function is a pure function of the state: runs under every
  // model (the executor passes outdegree 0 / port 0 and the agent must not
  // care). SetGossipAgent is the canonical example.
  kNone = 0,
  // send() reads its outdegree parameter: requires a model for which
  // sees_outdegree() holds (outdegree or output-port awareness).
  kNeedsOutdegree = 1u << 0,
  // send() distinguishes recipients through its port parameter: requires
  // CommModel::kOutputPortAware, the only non-isotropic model.
  kNeedsOutputPorts = 1u << 1,
  // Correctness relies on bidirectional round graphs (the "symmetric
  // communications" columns of Tables 1 and 2). No model is excluded, but
  // the executor additionally verifies every round graph is symmetric —
  // also under models that would not otherwise check (e.g. Metropolis runs
  // under kOutdegreeAware; the paper states it for symmetric networks).
  kSymmetricOnly = 1u << 2,
  // The agent adapts its behavior to whatever the model provides (it may
  // read outdegree/port when present and degrade gracefully when hidden).
  // MinBaseAgent, which takes the CommModel as a constructor argument and
  // labels views accordingly, is the canonical example. Disables the
  // compile-time pairing checks.
  kModelPolymorphic = 1u << 3,
  // Correctness relies on the *model* certifying symmetry every round —
  // strictly stronger than kSymmetricOnly, which merely assumes the
  // schedule is drawn from the symmetric network class. The distinction is
  // the paper's "symmetric communications" column read as a model
  // guarantee: only CommModel::kSymmetricBroadcast rejects an asymmetric
  // round at delivery time, so an agent whose reasoning quantifies over
  // "every round the executor accepts" (HistoryFrequencyAgent's
  // double-counting argument) must run under it, not merely alongside a
  // symmetric schedule. kSymmetricOnly stays admissible under any model;
  // kNeedsSymmetricModel restricts the model itself.
  kNeedsSymmetricModel = 1u << 4,
};

[[nodiscard]] constexpr ModelCapabilities operator|(ModelCapabilities a,
                                                    ModelCapabilities b) {
  return static_cast<ModelCapabilities>(static_cast<std::uint8_t>(a) |
                                        static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr bool has_capability(ModelCapabilities set,
                                            ModelCapabilities bit) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(bit)) !=
         0;
}

template <typename A>
concept DeclaresModelCapabilities = requires {
  { A::kModelCapabilities } -> std::convertible_to<ModelCapabilities>;
};

// The declared capability set, or kModelPolymorphic when the agent predates
// the annotation scheme (test probes, downstream agents). Library and
// example agents are required to declare — anonet_lint rule M1 enforces it
// syntactically for any agent whose send() names its outdegree/port
// parameters.
template <typename A>
[[nodiscard]] constexpr ModelCapabilities agent_capabilities() {
  if constexpr (DeclaresModelCapabilities<A>) {
    return A::kModelCapabilities;
  } else {
    return ModelCapabilities::kModelPolymorphic;
  }
}

// Whether a model satisfies a capability set — the admissibility predicate
// of Table 1. kSymmetricOnly is deliberately absent: it restricts the
// network class, not the model, and is enforced per round by the executor.
// kNeedsSymmetricModel, by contrast, restricts the model itself and is
// checked here.
[[nodiscard]] constexpr bool model_provides(CommModel model,
                                            ModelCapabilities caps) {
  if (has_capability(caps, ModelCapabilities::kModelPolymorphic)) return true;
  if (has_capability(caps, ModelCapabilities::kNeedsOutdegree) &&
      !sees_outdegree(model)) {
    return false;
  }
  if (has_capability(caps, ModelCapabilities::kNeedsOutputPorts) &&
      model != CommModel::kOutputPortAware) {
    return false;
  }
  if (has_capability(caps, ModelCapabilities::kNeedsSymmetricModel) &&
      model != CommModel::kSymmetricBroadcast) {
    return false;
  }
  return true;
}

// What perturbations (dynamics/perturbation.hpp) an agent provably
// survives — the robustness analogue of ModelCapabilities, consumed by the
// campaign layer's prediction table: running an agent under a perturbation
// it does not claim makes the cell a theory-predicted failure
// (`expected_failure`), and a success there is a *prediction mismatch*,
// not good news. Claims are about the executor-level perturbations:
//
//  - kAsyncStart: correct when agents wake at different rounds (frozen
//    pre-wake, mass sent toward sleepers lost). SetGossip qualifies
//    (flooding a max is idempotent); FrequencyPushSum does NOT — the 1/d
//    split leaks mass to sleeping receivers, breaking conservation (the
//    graph-wrapper AsyncStartSchedule, where edges are absent instead, is
//    the variant it does tolerate).
//  - kCrashStop: correct when an agent halts permanently with its output
//    stuck at its last state. Nobody in src/core claims it: every family
//    computes over *all* inputs, and a crashed agent's value can become
//    unreachable while its frozen output stays wrong.
//  - kMessageDrop: correct under iid message loss (self-loops immune).
//    SetGossip qualifies (flooding is idempotent and monotone); mass- and
//    average-conserving protocols do not (a one-directional loss breaks
//    conservation / pairwise cancellation).
//  - kChurn: correct under epoch join/leave where an absent vertex keeps
//    only its self-loop and rejoins with state intact. All three core
//    families qualify: an absent agent is just isolated for a while, which
//    finite-dynamic-diameter arguments absorb.
enum class FaultTolerance : std::uint8_t {
  kNone = 0,
  kAsyncStart = 1u << 0,
  kCrashStop = 1u << 1,
  kMessageDrop = 1u << 2,
  kChurn = 1u << 3,
};

[[nodiscard]] constexpr FaultTolerance operator|(FaultTolerance a,
                                                 FaultTolerance b) {
  return static_cast<FaultTolerance>(static_cast<std::uint8_t>(a) |
                                     static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr bool tolerates(FaultTolerance set, FaultTolerance bit) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(bit)) !=
         0;
}

template <typename A>
concept DeclaresFaultTolerance = requires {
  { A::kFaultTolerance } -> std::convertible_to<FaultTolerance>;
};

// The declared tolerance set; undeclared agents claim nothing, so every
// perturbed cell they run in is predicted to fail (the conservative
// reading — a claim must be explicit to be gated on).
template <typename A>
[[nodiscard]] constexpr FaultTolerance agent_fault_tolerance() {
  if constexpr (DeclaresFaultTolerance<A>) {
    return A::kFaultTolerance;
  } else {
    return FaultTolerance::kNone;
  }
}

// Compile-time model selection. Passing a tag instead of the runtime enum
//     Executor<PushSumAgent> exec(net, agents, under<CommModel::kOutdegreeAware>);
// turns a forbidden agent/model pairing into a static_assert instead of a
// construction-time throw.
template <CommModel M>
struct ModelTag {
  static constexpr CommModel value = M;
};

template <CommModel M>
inline constexpr ModelTag<M> under{};

// Diagnosis string for the runtime throw on a forbidden pairing.
[[nodiscard]] inline std::string describe_model_mismatch(
    CommModel model, ModelCapabilities caps) {
  std::string out = "agent/model pairing forbidden by Table 1: the agent";
  if (has_capability(caps, ModelCapabilities::kNeedsOutdegree) &&
      !sees_outdegree(model)) {
    out += " declares kNeedsOutdegree, but ";
    out += to_string(model);
    out += " hides the sender's outdegree";
  }
  if (has_capability(caps, ModelCapabilities::kNeedsOutputPorts) &&
      model != CommModel::kOutputPortAware) {
    out += " declares kNeedsOutputPorts, but ";
    out += to_string(model);
    out += " is isotropic (one message replicated to all out-neighbors)";
  }
  if (has_capability(caps, ModelCapabilities::kNeedsSymmetricModel) &&
      model != CommModel::kSymmetricBroadcast) {
    out += " declares kNeedsSymmetricModel, but only symmetric broadcast "
           "certifies every round graph bidirectional — ";
    out += to_string(model);
    out += " accepts asymmetric rounds";
  }
  return out;
}

}  // namespace anonet
