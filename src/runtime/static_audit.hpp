#pragma once

// Compile-time agent audit: the declaration side of docs/static_analysis.md.
//
// anonet_lint (tools/anonet_lint/) analyzes *source text*; this header
// mirrors its contract in the type system so the two can cross-check each
// other. Every core agent header invokes
//
//     ANONET_STATIC_AUDIT_DECLARATIONS(TheAgent);
//
// right after the class definition, which static_asserts — with named,
// greppable messages — that the class declares the two annotations the
// runtime dispatches on:
//
//   - kModelCapabilities (runtime/capabilities.hpp): the machine-checked
//     Table 1 row. Without it, agent_capabilities<A>() silently defaults to
//     kModelPolymorphic and every agent/model pairing check degrades to a
//     no-op — exactly the hole a refactor that renames the member would
//     open. lint rule M1 is the textual twin of this assert.
//
//   - kParallelSafe (runtime/executor.hpp's kParallelSafeAgent concept):
//     whether the executor may fan receive() out across thread-pool blocks.
//     `false` is a perfectly good declaration (HistoryFrequencyAgent and
//     MinBaseAgent intern into a shared registry and say so); *absence* is
//     not, because the concept treats "undeclared" and "false" identically
//     and a typo'd member name would silently serialize every campaign.
//     lint rule C1/P1 are the textual twins.
//
// ANONET_CORE_AGENT_LIST is the registry: an X-macro over every core agent.
// src/runtime/static_audit.cpp expands it twice — once to re-run the
// declaration audit centrally, once (with wire/codecs.hpp in scope) to
// static_assert that each agent's Message satisfies wire::WireEncodable,
// i.e. has a complete MessageTraits specialization. lint rule W1 keeps the
// list honest in the other direction: an agent class defined under
// src/core/ that is missing from this list, or whose header does not invoke
// the audit macro, is a W1 finding.

#include <concepts>

#include "runtime/capabilities.hpp"

namespace anonet {

// kParallelSafe declared explicitly — true or false, but stated. The
// executor's kParallelSafeAgent concept only asks "is it true?"; the audit
// additionally rejects silence.
template <typename A>
concept DeclaresParallelSafety = requires {
  { A::kParallelSafe } -> std::convertible_to<bool>;
};

template <typename A>
[[nodiscard]] constexpr bool audit_declarations() {
  static_assert(DeclaresModelCapabilities<A>,
                "static audit: agent must declare `static constexpr "
                "ModelCapabilities kModelCapabilities` (its Table 1 row) — "
                "without it agent_capabilities<A>() defaults to "
                "kModelPolymorphic and the agent/model pairing checks of "
                "runtime/capabilities.hpp are silently disabled");
  static_assert(DeclaresParallelSafety<A>,
                "static audit: agent must declare `static constexpr bool "
                "kParallelSafe` explicitly (true or false) — the executor "
                "treats an undeclared agent as unsafe, so a renamed or "
                "missing member serializes every campaign without any "
                "diagnostic");
  return true;
}

}  // namespace anonet

// Invoked at namespace scope in the agent's own header, right after the
// class definition, so the audit fires wherever the class is visible.
#define ANONET_STATIC_AUDIT_DECLARATIONS(Agent)                         \
  static_assert(::anonet::audit_declarations<Agent>(),                  \
                "static audit failed for " #Agent)

// The core agent registry. One X(...) entry per agent class defined under
// src/core/; anonet_lint rule W1 flags any core agent missing from this
// list. Keep the entries contiguous (no blank lines) — the lint front end
// reads the block.
#define ANONET_CORE_AGENT_LIST(X) \
  X(SetGossipAgent)               \
  X(PushSumAgent)                 \
  X(FrequencyPushSumAgent)        \
  X(ExactPushSumAgent)            \
  X(MetropolisAgent)              \
  X(FrequencyMetropolisAgent)     \
  X(UniformWeightAgent)           \
  X(FrequencyUniformAgent)        \
  X(HistoryFrequencyAgent)        \
  X(MinBaseAgent)

// (blank line above terminates the list for the lint front end)
