#include "runtime/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/jsonl.hpp"

namespace anonet {

TraceRecorder::TraceRecorder(std::vector<std::string> labels)
    : labels_(std::move(labels)) {}

void TraceRecorder::record(int round, std::span<const double> outputs) {
  if (labels_.empty()) {
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      labels_.push_back("agent" + std::to_string(i));
    }
  }
  if (outputs.size() != labels_.size()) {
    throw std::invalid_argument("TraceRecorder: row width mismatch");
  }
  rounds_.push_back(round);
  values_.emplace_back(outputs.begin(), outputs.end());
}

void TraceRecorder::record(int round, std::span<const std::int64_t> outputs) {
  std::vector<double> widened(outputs.begin(), outputs.end());
  record(round, std::span<const double>(widened));
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "round";
  for (const std::string& label : labels_) os << "," << label;
  os << "\n";
  os.precision(17);
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    os << rounds_[r];
    for (double v : values_[r]) os << "," << v;
    os << "\n";
  }
  return os.str();
}

std::string TraceRecorder::to_jsonl() const {
  std::string out;
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    JsonObject o;
    o.field("round", rounds_[r]);
    for (std::size_t c = 0; c < labels_.size(); ++c) {
      o.field(labels_[c], values_[r][c]);
    }
    out += o.str();
    out += '\n';
  }
  return out;
}

namespace {

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceRecorder: cannot open " + path);
  out << text;
  if (!out) throw std::runtime_error("TraceRecorder: write failed: " + path);
}

}  // namespace

void TraceRecorder::write_csv(const std::string& path) const {
  write_text(path, to_csv());
}

void TraceRecorder::write_jsonl(const std::string& path) const {
  write_text(path, to_jsonl());
}

}  // namespace anonet
