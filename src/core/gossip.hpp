#pragma once

// The simple gossip (flooding) algorithm: the positive half of the
// simple-broadcast row of Tables 1 and 2.
//
// Each agent maintains the set of input values it has heard of and
// broadcasts it every round. After D rounds (D the [dynamic] diameter) every
// agent knows the full support of the input vector, hence can compute any
// set-based function in finite time — under any communication model, static
// or dynamic, with or without knowledge of n. This is also the strongest
// possible algorithm for simple broadcast: Hendrickx & Tsitsiklis (and Boldi
// & Vigna for known n) show nothing beyond set-based functions is
// computable there, which bench/lifting_obstruction demonstrates
// executably.

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "functions/functions.hpp"
#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"

namespace anonet {

class SetGossipAgent {
 public:
  struct Message {
    std::vector<std::int64_t> values;  // sorted known-set snapshot

    // Bandwidth accounting: one unit per carried value.
    [[nodiscard]] std::int64_t weight_units() const {
      return static_cast<std::int64_t>(values.size());
    }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // The sending function is a pure function of the state — the simple
  // broadcast cell of Table 1, hence runnable under every model.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kNone;
  // Flooding a monotone set union is idempotent: late wake-ups, lost
  // copies and temporary absences only delay dissemination, they never
  // corrupt it. Crash-stop is fatal — a crashed agent's known-set (and
  // hence its output) freezes, and its value may never have been sent.
  static constexpr FaultTolerance kFaultTolerance =
      FaultTolerance::kAsyncStart | FaultTolerance::kMessageDrop |
      FaultTolerance::kChurn;

  explicit SetGossipAgent(std::int64_t input) : input_(input) {
    known_.insert(input);
  }

  // Simple broadcast: the message depends on the state alone.
  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{{known_.begin(), known_.end()}};
  }

  void receive(std::span<const Message> messages) {
    for (const Message& m : messages) {
      known_.insert(m.values.begin(), m.values.end());
    }
  }

  [[nodiscard]] std::int64_t input() const { return input_; }
  [[nodiscard]] const std::set<std::int64_t>& known() const { return known_; }

  // Output variable: f applied to the currently known support (one
  // representative per value). Stabilizes on f(v) for set-based f.
  [[nodiscard]] Rational output(const SymmetricFunction& f) const {
    const std::vector<std::int64_t> support(known_.begin(), known_.end());
    return f(support);
  }

 private:
  std::int64_t input_;
  std::set<std::int64_t> known_;
};

ANONET_STATIC_AUDIT_DECLARATIONS(SetGossipAgent);

}  // namespace anonet
