#include "core/exact_pushsum.hpp"

#include <stdexcept>

namespace anonet {

ExactPushSumAgent::ExactPushSumAgent(Rational value, Rational weight)
    : y_(std::move(value)), z_(std::move(weight)) {
  if (z_.signum() <= 0) {
    throw std::invalid_argument("ExactPushSumAgent: weight must be positive");
  }
}

ExactPushSumAgent::Message ExactPushSumAgent::send(int outdegree,
                                                   int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error("ExactPushSumAgent: requires outdegree awareness");
  }
  const Rational divisor(outdegree);
  return Message{y_ / divisor, z_ / divisor};
}

void ExactPushSumAgent::receive(std::span<const Message> messages) {
  Rational y, z;
  for (const Message& m : messages) {
    y += m.y_share;
    z += m.z_share;
  }
  y_ = std::move(y);
  z_ = std::move(z);
}

}  // namespace anonet
