#include "core/computability.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "core/census.hpp"
#include "core/freq_static.hpp"
#include "core/gossip.hpp"
#include "core/history_tree.hpp"
#include "core/metropolis.hpp"
#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "core/uniform_consensus.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "runtime/executor.hpp"
#include "wire/codecs.hpp"
#include "wire/meter.hpp"

namespace anonet {

namespace {

std::vector<std::int64_t> decoded_inputs(
    const std::vector<std::int64_t>& inputs, Knowledge knowledge) {
  if (knowledge != Knowledge::kLeaders) return inputs;
  std::vector<std::int64_t> result;
  result.reserve(inputs.size());
  for (std::int64_t coded : inputs) {
    result.push_back(decode_leader_value(coded));
  }
  return result;
}

// Per-round agreement tracker for δ0 (exact, stable) computation.
class ExactnessTracker {
 public:
  explicit ExactnessTracker(Rational truth) : truth_(std::move(truth)) {}

  void observe(const std::vector<std::optional<Rational>>& outputs) {
    ++round_;
    const bool all_exact =
        std::all_of(outputs.begin(), outputs.end(), [&](const auto& out) {
          return out.has_value() && *out == truth_;
        });
    if (!all_exact) {
      stable_since_ = -1;
    } else if (stable_since_ == -1) {
      stable_since_ = round_;
    }
    last_outputs_ = outputs;
  }

  [[nodiscard]] int stable_since() const { return stable_since_; }

  [[nodiscard]] double final_error() const {
    double error = 0.0;
    for (const auto& out : last_outputs_) {
      if (!out.has_value()) return std::numeric_limits<double>::quiet_NaN();
      error = std::max(error,
                       std::abs(out->to_double() - truth_.to_double()));
    }
    return error;
  }

 private:
  Rational truth_;
  int round_ = 0;
  int stable_since_ = -1;
  std::vector<std::optional<Rational>> last_outputs_;
};

AttemptResult failure(std::string reason) {
  AttemptResult result;
  result.mechanism = std::move(reason);
  return result;
}

// Runs `executor` for attempt.rounds rounds, collecting per-agent exact
// outputs with `outputs_fn(agent)` after every round. An Attempt deadline
// and channel policy are armed on the executor, so DeadlineExceeded and
// wire::BandwidthExceeded escape from step() here.
template <typename Alg, typename OutputsFn>
AttemptResult run_exact(Executor<Alg>& executor, const Attempt& attempt,
                        const Rational& truth, OutputsFn outputs_fn,
                        std::string mechanism) {
  executor.set_deadline(attempt.deadline_ms);
  executor.set_channel_policy(
      wire::channel_policy_from_bits(attempt.bandwidth_bits));
  ExactnessTracker tracker(truth);
  std::vector<std::optional<Rational>> outputs(executor.agents().size());
  for (int r = 0; r < attempt.rounds; ++r) {
    executor.step();
    for (std::size_t i = 0; i < executor.agents().size(); ++i) {
      outputs[i] = outputs_fn(executor.agents()[i]);
    }
    tracker.observe(outputs);
  }
  AttemptResult result;
  result.stabilization_round = tracker.stable_since();
  result.success = result.stabilization_round != -1;
  result.final_error = tracker.final_error();
  result.mechanism = std::move(mechanism);
  result.rounds_run = executor.stats().rounds;
  result.messages_delivered = executor.stats().messages_delivered;
  result.payload_units = executor.stats().payload_units;
  if (attempt.bandwidth_bits != 0) {
    result.bits_total = executor.bandwidth_meter().total_bits_sent();
  }
  return result;
}

// Asymptotic (δ2) variant: judge only the final outputs.
template <typename Alg, typename OutputsFn>
AttemptResult run_approximate(Executor<Alg>& executor, const Attempt& attempt,
                              const Rational& truth, OutputsFn outputs_fn,
                              std::string mechanism) {
  executor.set_deadline(attempt.deadline_ms);
  executor.set_channel_policy(
      wire::channel_policy_from_bits(attempt.bandwidth_bits));
  executor.run(attempt.rounds);
  double error = 0.0;
  for (const Alg& agent : executor.agents()) {
    const double out = outputs_fn(agent);
    if (!std::isfinite(out)) {
      error = std::numeric_limits<double>::infinity();
      break;
    }
    error = std::max(error, std::abs(out - truth.to_double()));
  }
  AttemptResult result;
  result.success = error <= attempt.tolerance;
  result.final_error = error;
  result.mechanism = std::move(mechanism);
  result.rounds_run = executor.stats().rounds;
  result.messages_delivered = executor.stats().messages_delivered;
  result.payload_units = executor.stats().payload_units;
  if (attempt.bandwidth_bits != 0) {
    result.bits_total = executor.bandwidth_meter().total_bits_sent();
  }
  return result;
}

AttemptResult run_gossip(const DynamicGraphPtr& network,
                         const std::vector<std::int64_t>& inputs,
                         const SymmetricFunction& f, const Attempt& attempt,
                         const Rational& truth) {
  std::vector<SetGossipAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) agents.emplace_back(input);
  Executor<SetGossipAgent> executor(network, std::move(agents), attempt.model,
                                    attempt.seed);
  // Under leader coding the set of *values* is the decoded support: agents
  // strip the (commonly known) flag bit before applying f.
  const bool leader_coded = attempt.knowledge == Knowledge::kLeaders;
  return run_exact(
      executor, attempt, truth,
      [&f, leader_coded](const SetGossipAgent& agent)
          -> std::optional<Rational> {
        if (!leader_coded) return agent.output(f);
        std::set<std::int64_t> decoded;
        for (std::int64_t coded : agent.known()) {
          decoded.insert(decode_leader_value(coded));
        }
        return f(std::vector<std::int64_t>(decoded.begin(), decoded.end()));
      },
      "gossip (set flooding)");
}

// Turns a recovered frequency into the attempt's output value, applying the
// knowledge-specific multiset recovery when available.
std::optional<Rational> output_from_frequency(const Frequency& nu,
                                              const SymmetricFunction& f,
                                              const Attempt& attempt) {
  switch (attempt.knowledge) {
    case Knowledge::kNone:
    case Knowledge::kUpperBound: {
      if (f.declared_class() == FunctionClass::kMultisetBased) {
        return std::nullopt;
      }
      return f.eval_frequency(nu);
    }
    case Knowledge::kExactSize: {
      const auto multiset = multiset_from_frequency(nu, attempt.parameter);
      if (!multiset.has_value()) return std::nullopt;
      std::vector<std::int64_t> values;
      std::vector<BigInt> sizes;
      for (const auto& [value, count] : *multiset) {
        values.push_back(value);
        sizes.push_back(count);
      }
      const std::vector<std::int64_t> flat = expand_multiset(values, sizes);
      if (flat.empty()) return std::nullopt;
      return f(flat);
    }
    case Knowledge::kLeaders:
      // Handled by the dedicated leader paths.
      return std::nullopt;
  }
  return std::nullopt;
}

// --- static attempts ---------------------------------------------------------

AttemptResult run_minbase_static(const Digraph& g,
                                 const std::vector<std::int64_t>& inputs,
                                 const SymmetricFunction& f,
                                 const Attempt& attempt,
                                 const Rational& truth) {
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<MinBaseAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) {
    agents.emplace_back(registry, codec, input, attempt.model);
  }
  Executor<MinBaseAgent> executor(std::make_shared<StaticSchedule>(g),
                                  std::move(agents), attempt.model,
                                  attempt.seed);

  auto leader_output =
      [&](const MinBaseAgent& agent) -> std::optional<Rational> {
    const ExtractedBase& candidate = agent.candidate();
    if (!candidate.plausible) return std::nullopt;
    const auto decoded = decode_base(candidate, *codec);
    if (!decoded.has_value()) return std::nullopt;
    std::optional<std::vector<BigInt>> ratios;
    switch (attempt.model) {
      case CommModel::kOutdegreeAware:
        if (decoded->outdegrees.empty()) return std::nullopt;
        ratios = fibre_ratios_outdegree(candidate.base, decoded->outdegrees);
        break;
      case CommModel::kSymmetricBroadcast:
        ratios = fibre_ratios_symmetric(candidate.base);
        break;
      case CommModel::kOutputPortAware:
        ratios = fibre_ratios_ports(candidate.base);
        break;
      case CommModel::kSimpleBroadcast:
        return std::nullopt;
    }
    if (!ratios.has_value()) return std::nullopt;
    std::vector<bool> leader_class(decoded->values.size(), false);
    std::vector<std::int64_t> true_values(decoded->values.size(), 0);
    for (std::size_t i = 0; i < decoded->values.size(); ++i) {
      leader_class[i] = decode_leader_flag(decoded->values[i]);
      true_values[i] = decode_leader_value(decoded->values[i]);
    }
    const auto sizes =
        fibre_sizes_with_leaders(leader_class, *ratios, attempt.parameter);
    if (!sizes.has_value()) return std::nullopt;
    const std::vector<std::int64_t> flat = expand_multiset(true_values, *sizes);
    if (flat.empty()) return std::nullopt;
    return f(flat);
  };

  auto frequency_output =
      [&](const MinBaseAgent& agent) -> std::optional<Rational> {
    const auto nu =
        static_frequency_estimate(agent.candidate(), *codec, attempt.model);
    if (!nu.has_value()) return std::nullopt;
    return output_from_frequency(*nu, f, attempt);
  };

  const std::string mechanism =
      std::string("minimum base + ") +
      (attempt.model == CommModel::kOutdegreeAware ? "fibre-equation kernel"
       : attempt.model == CommModel::kSymmetricBroadcast
           ? "eq. (4) ratio propagation"
           : "covering (eq. 3)") +
      (attempt.knowledge == Knowledge::kExactSize ? " + known n (Cor. 4.3)"
       : attempt.knowledge == Knowledge::kLeaders ? " + leaders (eq. 5)"
                                                  : "");
  if (attempt.knowledge == Knowledge::kLeaders) {
    return run_exact(executor, attempt, truth, leader_output, mechanism);
  }
  return run_exact(executor, attempt, truth, frequency_output, mechanism);
}

// --- dynamic attempts --------------------------------------------------------

AttemptResult run_pushsum_dynamic(const DynamicGraphPtr& network,
                                  const std::vector<std::int64_t>& inputs,
                                  const SymmetricFunction& f,
                                  const Attempt& attempt,
                                  const Rational& truth) {
  std::vector<FrequencyPushSumAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) {
    if (attempt.knowledge == Knowledge::kLeaders) {
      agents.emplace_back(input, decode_leader_flag(input));
    } else {
      agents.emplace_back(input);
    }
  }
  // The model is structurally kOutdegreeAware on this path (attempt_dynamic
  // dispatches here for exactly that model); saying so with a ModelTag turns
  // the agent/model pairing check into a compile-time static_assert.
  Executor<FrequencyPushSumAgent> executor(network, std::move(agents),
                                           under<CommModel::kOutdegreeAware>,
                                           attempt.seed);

  switch (attempt.knowledge) {
    case Knowledge::kNone: {
      if (!f.continuous_in_frequency()) {
        return failure(
            "impossible without a bound on n unless f is continuous in "
            "frequency (Cor. 5.5)");
      }
      return run_approximate(
          executor, attempt, truth,
          [&f](const FrequencyPushSumAgent& agent) {
            return f.eval_approximate(agent.normalized_estimates());
          },
          "Push-Sum (Algorithm 1), approximate (Cor. 5.5)");
    }
    case Knowledge::kUpperBound:
    case Knowledge::kExactSize: {
      const auto bound = static_cast<std::uint32_t>(attempt.parameter);
      return run_exact(
          executor, attempt, truth,
          [&](const FrequencyPushSumAgent& agent) -> std::optional<Rational> {
            const auto nu = agent.rounded_frequency(bound);
            if (!nu.has_value()) return std::nullopt;
            return output_from_frequency(*nu, f, attempt);
          },
          attempt.knowledge == Knowledge::kExactSize
              ? "Push-Sum + Q_N rounding + known n (Cor. 5.4)"
              : "Push-Sum + Q_N rounding (Cor. 5.3)");
    }
    case Knowledge::kLeaders: {
      const std::int64_t leaders = attempt.parameter;
      return run_exact(
          executor, attempt, truth,
          [&](const FrequencyPushSumAgent& agent) -> std::optional<Rational> {
            // ℓ·x[ω] -> integer multiplicities (Section 5.5); accept once
            // every estimate is unambiguously close to an integer.
            std::map<std::int64_t, std::int64_t> multiset;
            for (const auto& [coded, estimate] :
                 agent.multiplicity_estimates(leaders)) {
              if (!std::isfinite(estimate)) return std::nullopt;
              const double rounded = std::round(estimate);
              if (std::abs(estimate - rounded) > 0.25 || rounded < 0.0) {
                return std::nullopt;
              }
              multiset[decode_leader_value(coded)] +=
                  static_cast<std::int64_t>(rounded);
            }
            std::vector<std::int64_t> flat;
            for (const auto& [value, count] : multiset) {
              for (std::int64_t k = 0; k < count; ++k) flat.push_back(value);
            }
            if (flat.empty()) return std::nullopt;
            return f(flat);
          },
          "Push-Sum leader variant (Section 5.5)");
    }
  }
  return failure("unreachable");
}

AttemptResult run_history_symmetric(const DynamicGraphPtr& network,
                                    const std::vector<std::int64_t>& inputs,
                                    const SymmetricFunction& f,
                                    const Attempt& attempt,
                                    const Rational& truth);

// Asserts bidirectionality of every round graph: the symmetric-communications
// network class of Section 2.1 as a checked wrapper.
class SymmetricCheckedSchedule final : public DynamicGraph {
 public:
  explicit SymmetricCheckedSchedule(DynamicGraphPtr inner)
      : inner_(std::move(inner)) {}
  [[nodiscard]] Vertex vertex_count() const override {
    return inner_->vertex_count();
  }
  [[nodiscard]] Digraph at(int t) const override {
    Digraph g = inner_->at(t);
    if (!g.is_symmetric()) {
      throw std::logic_error(
          "Metropolis attempt: round graph is not symmetric");
    }
    return g;
  }

 private:
  DynamicGraphPtr inner_;
};

// Bounded-knowledge symmetric cells: uniform-weight consensus with step 1/N
// is *degree-oblivious* — a genuine simple-broadcast sending function — so
// these cells run strictly inside the symmetric-communications model, with
// no outdegree-awareness substitution (cf. the paper's [11, 24] remark).
AttemptResult run_uniform_symmetric(const DynamicGraphPtr& network,
                                    const std::vector<std::int64_t>& inputs,
                                    const SymmetricFunction& f,
                                    const Attempt& attempt,
                                    const Rational& truth) {
  const auto bound = static_cast<std::uint32_t>(attempt.parameter);
  std::vector<FrequencyUniformAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) agents.emplace_back(input, bound);
  Executor<FrequencyUniformAgent> executor(
      network, std::move(agents), under<CommModel::kSymmetricBroadcast>,
      attempt.seed);
  return run_exact(
      executor, attempt, truth,
      [&](const FrequencyUniformAgent& agent) -> std::optional<Rational> {
        const auto nu = agent.rounded_frequency();
        if (!nu.has_value()) return std::nullopt;
        return output_from_frequency(*nu, f, attempt);
      },
      attempt.knowledge == Knowledge::kExactSize
          ? "uniform-weight consensus (degree-oblivious) + Q_N rounding + "
            "known n"
          : "uniform-weight consensus (degree-oblivious, after [11]) + Q_N "
            "rounding");
}

AttemptResult run_metropolis_dynamic(const DynamicGraphPtr& network,
                                     const std::vector<std::int64_t>& inputs,
                                     const SymmetricFunction& f,
                                     const Attempt& attempt,
                                     const Rational& truth) {
  if (attempt.knowledge == Knowledge::kUpperBound ||
      attempt.knowledge == Knowledge::kExactSize) {
    return run_uniform_symmetric(network, inputs, f, attempt, truth);
  }
  if (attempt.knowledge == Knowledge::kNone ||
      attempt.knowledge == Knowledge::kLeaders) {
    return run_history_symmetric(network, inputs, f, attempt, truth);
  }
  std::vector<FrequencyMetropolisAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) agents.emplace_back(input);
  // Metropolis weights need round degrees, which the paper provides through
  // outdegree awareness on a symmetric network (Section 5); we therefore run
  // the executor in the outdegree-aware model but *verify* the schedule stays
  // symmetric, matching the paper's setting.
  Executor<FrequencyMetropolisAgent> executor(
      std::make_shared<SymmetricCheckedSchedule>(network), std::move(agents),
      under<CommModel::kOutdegreeAware>, attempt.seed);

  switch (attempt.knowledge) {
    case Knowledge::kNone:
      // Handled before the Metropolis executor is built (history-tree
      // classes; see run_history_symmetric).
      return failure("unreachable: symmetric no-help handled elsewhere");
    case Knowledge::kUpperBound:
    case Knowledge::kExactSize:
      // Handled before the Metropolis executor is built (degree-oblivious
      // uniform-weight consensus; see run_uniform_symmetric).
      return failure("unreachable: bounded symmetric handled elsewhere");
    case Knowledge::kLeaders:
      // Handled by run_history_symmetric.
      return failure("unreachable: symmetric leaders handled elsewhere");
  }
  return failure("unreachable");
}

// No-help and leader cells of the symmetric column: history-tree classes
// (core/history_tree.hpp, after Di Luna & Viglietta [25, 26]) compute the
// class cardinalities exactly with no bound on n and no outdegree
// awareness. The exact solve is expensive per round, so the horizon is
// capped at what stabilization needs — well past 2D + the solver window.
AttemptResult run_history_symmetric(const DynamicGraphPtr& network,
                                    const std::vector<std::int64_t>& inputs,
                                    const SymmetricFunction& f,
                                    const Attempt& attempt,
                                    const Rational& truth) {
  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  std::vector<HistoryFrequencyAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) {
    agents.emplace_back(registry, codec, input);
  }
  Executor<HistoryFrequencyAgent> executor(
      network, std::move(agents), under<CommModel::kSymmetricBroadcast>,
      attempt.seed);
  Attempt capped = attempt;
  capped.rounds =
      std::min(attempt.rounds,
               8 * static_cast<int>(inputs.size()) + 24);

  if (attempt.knowledge == Knowledge::kLeaders) {
    const std::int64_t leaders = attempt.parameter;
    return run_exact(
        executor, capped, truth,
        [&](const HistoryFrequencyAgent& agent) -> std::optional<Rational> {
          const auto multiset = agent.multiset_estimate(leaders);
          if (!multiset.has_value()) return std::nullopt;
          std::vector<std::int64_t> values;
          std::vector<BigInt> sizes;
          for (const auto& [value, count] : *multiset) {
            values.push_back(value);
            sizes.push_back(count);
          }
          const auto flat = expand_multiset(values, sizes);
          if (flat.empty()) return std::nullopt;
          return f(flat);
        },
        "history-tree classes + leaders (after Di Luna & Viglietta [25])");
  }
  return run_exact(
      executor, capped, truth,
      [&](const HistoryFrequencyAgent& agent) -> std::optional<Rational> {
        const auto nu = agent.frequency_estimate();
        if (!nu.has_value()) return std::nullopt;
        return output_from_frequency(*nu, f, attempt);
      },
      "history-tree classes (after Di Luna & Viglietta [26]), exact, no "
      "bound needed");
}

}  // namespace

std::string_view to_string(Knowledge knowledge) {
  switch (knowledge) {
    case Knowledge::kNone:
      return "no centralized help";
    case Knowledge::kUpperBound:
      return "a bound over n is known";
    case Knowledge::kExactSize:
      return "n is known";
    case Knowledge::kLeaders:
      return "leader(s)";
  }
  return "unknown";
}

Rational ground_truth(const std::vector<std::int64_t>& inputs,
                      const SymmetricFunction& f, Knowledge knowledge) {
  return f(decoded_inputs(inputs, knowledge));
}

AttemptResult attempt_static(const Digraph& g,
                             const std::vector<std::int64_t>& inputs,
                             const SymmetricFunction& f,
                             const Attempt& attempt) {
  if (inputs.size() != static_cast<std::size_t>(g.vertex_count())) {
    throw std::invalid_argument("attempt_static: one input per vertex");
  }
  if (!is_strongly_connected(g)) {
    throw std::invalid_argument("attempt_static: graph must be strongly "
                                "connected (the class of Theorem 4.1)");
  }
  if (attempt.model == CommModel::kSymmetricBroadcast && !g.is_symmetric()) {
    throw std::invalid_argument(
        "attempt_static: symmetric model requires a symmetric graph");
  }
  Digraph prepared = g;
  prepared.ensure_self_loops();
  if (attempt.model == CommModel::kOutputPortAware) {
    prepared.assign_output_ports();
  }
  const Rational truth = ground_truth(inputs, f, attempt.knowledge);

  // Set-based functions: gossip computes them in every cell of Table 1.
  if (f.declared_class() == FunctionClass::kSetBased) {
    return run_gossip(std::make_shared<StaticSchedule>(prepared), inputs, f,
                      attempt, truth);
  }
  if (attempt.model == CommModel::kSimpleBroadcast) {
    return failure(
        "impossible: simple broadcast computes only set-based functions "
        "(Hendrickx et al.; Boldi & Vigna for known n)");
  }
  if (f.declared_class() == FunctionClass::kMultisetBased &&
      (attempt.knowledge == Knowledge::kNone ||
       attempt.knowledge == Knowledge::kUpperBound)) {
    return failure(
        "impossible: without n or a leader only frequency-based functions "
        "are computable (Theorem 4.1, Cor. 4.2)");
  }
  return run_minbase_static(prepared, inputs, f, attempt, truth);
}

AttemptResult attempt_dynamic(const DynamicGraphPtr& network,
                              const std::vector<std::int64_t>& inputs,
                              const SymmetricFunction& f,
                              const Attempt& attempt) {
  if (network == nullptr) {
    throw std::invalid_argument("attempt_dynamic: null network");
  }
  if (inputs.size() != static_cast<std::size_t>(network->vertex_count())) {
    throw std::invalid_argument("attempt_dynamic: one input per vertex");
  }
  const Rational truth = ground_truth(inputs, f, attempt.knowledge);

  if (f.declared_class() == FunctionClass::kSetBased) {
    return run_gossip(network, inputs, f, attempt, truth);
  }
  if (attempt.model == CommModel::kSimpleBroadcast) {
    return failure(
        "impossible: simple broadcast computes only set-based functions "
        "(Hendrickx et al.)");
  }
  if (f.declared_class() == FunctionClass::kMultisetBased &&
      (attempt.knowledge == Knowledge::kNone ||
       attempt.knowledge == Knowledge::kUpperBound)) {
    return failure(
        "impossible: without n or a leader only frequency-based functions "
        "are computable (Cor. 5.3)");
  }
  if (attempt.model == CommModel::kOutputPortAware) {
    return failure(
        "output port awareness is only meaningful for static networks "
        "(Section 2.2)");
  }
  if (attempt.model == CommModel::kOutdegreeAware) {
    return run_pushsum_dynamic(network, inputs, f, attempt, truth);
  }
  return run_metropolis_dynamic(network, inputs, f, attempt, truth);
}

}  // namespace anonet
