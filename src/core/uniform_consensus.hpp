#pragma once

// Degree-oblivious average consensus for symmetric networks with a known
// bound N >= n (in the spirit of Charron-Bost & Lambein-Monette [11] and
// Lambein-Monette's thesis [24], cited in Section 5).
//
// The Metropolis weights need the endpoint degrees; in the *simple*
// symmetric-communications model a sender knows nothing about its audience.
// But a bound N on the network size bounds every degree, so the uniform
// step 1/N is safe for everyone:
//     x_i(t) = x_i(t-1) + (1/N) Σ_{j ∈ N_i(t)} (x_j(t-1) - x_i(t-1)).
// The implied weight matrix is symmetric and doubly stochastic with
// diagonal >= 1/N, hence sum-preserving and convergent to the average on
// every connected symmetric round graph — at the price of a much smaller
// spectral gap than Metropolis (the O(n^4)-ish regime the paper mentions;
// bench/degree_oblivious_ablation.cpp measures the contrast).
//
// Messages carry only the state: this is genuinely the simple broadcast
// sending function, so these agents run under CommModel::kSymmetricBroadcast
// with the executor hiding the outdegree.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "functions/functions.hpp"
#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"
#include "support/farey.hpp"

namespace anonet {

// Scalar version: averages one real value.
class UniformWeightAgent {
 public:
  struct Message {
    double x = 0.0;

    [[nodiscard]] std::int64_t weight_units() const { return 1; }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // Genuinely degree-oblivious (the whole point), but the 1/N step is only
  // sum-preserving on bidirectional round graphs: symmetric networks only.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kSymmetricOnly;

  // `bound_on_n` is the common knowledge N >= n.
  UniformWeightAgent(double value, std::uint32_t bound_on_n);

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{x_};
  }
  void receive(std::span<const Message> messages);

  [[nodiscard]] double output() const { return x_; }

 private:
  double x_;
  double step_;  // 1/N
};

ANONET_STATIC_AUDIT_DECLARATIONS(UniformWeightAgent);

// Per-value indicator version: x[ω] -> ν_v(ω), with the lazy per-value
// joining of Algorithm 1 (both endpoints of a symmetric edge treat a
// missing entry as an exact 0, so the pairwise updates cancel and each
// per-value sum is invariant).
class FrequencyUniformAgent {
 public:
  struct Message {
    std::map<std::int64_t, double> x;

    [[nodiscard]] std::int64_t weight_units() const {
      return 2 * static_cast<std::int64_t>(x.size());
    }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // Same cell as UniformWeightAgent: degree-oblivious, symmetric networks.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kSymmetricOnly;

  FrequencyUniformAgent(std::int64_t input, std::uint32_t bound_on_n);

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{x_};
  }
  void receive(std::span<const Message> messages);

  [[nodiscard]] std::int64_t input() const { return input_; }
  [[nodiscard]] const std::map<std::int64_t, double>& estimates() const {
    return x_;
  }
  // Corollary 5.3-style exact lock under the same bound N.
  [[nodiscard]] std::optional<Frequency> rounded_frequency() const;

 private:
  std::int64_t input_;
  std::uint32_t bound_;
  double step_;
  std::map<std::int64_t, double> x_;
};

ANONET_STATIC_AUDIT_DECLARATIONS(FrequencyUniformAgent);

}  // namespace anonet
