#pragma once

// Executable impossibility machinery (Section 4.1).
//
// The negative halves of Theorem 4.1 and Corollaries 4.2-4.4 rest on one
// mechanism: for frequency-equivalent inputs v (size n) and w (size m) there
// are fibrations R^n -> R^p and R^m -> R^p of bidirectional rings, and by the
// Lifting lemma any algorithm run on the lifts with fibrewise inputs is
// *forced* to trace the fibrewise copy of its execution on R^p — so its
// outputs on v and w coincide, and any f with f(v) != f(w) is uncomputable.
//
// This module makes that argument a measurement: it runs the strongest
// algorithm of this library (distributed minimum base) on base and lifts,
// verifies state-by-state that the lifted execution is an execution (the
// shared view registry makes state equality exact), and reports the
// disagreement |f(v) - f(w)| the algorithm would have to achieve — but
// provably cannot.

#include <cstdint>
#include <string>
#include <vector>

#include "functions/functions.hpp"
#include "graph/generators.hpp"
#include "runtime/comm_model.hpp"

namespace anonet {

// Bidirectional ring with the canonical direction-respecting port labelling
// (self = 1, clockwise = 2, counter-clockwise = 3), which the mod-p
// projection preserves. Requires n >= 3.
[[nodiscard]] Digraph ported_ring(Vertex n);

struct LiftingObstruction {
  int p = 0;                     // size of the common base ring
  bool applicable = false;       // a usable common ring size was found
  bool lifting_verified = false; // Lemma 3.1 held on every round, both lifts
  int rounds_checked = 0;
  // f(v) and f(w): any algorithm computing f would need these to differ,
  // yet its executions on R^n and R^m are fibrewise copies of the same
  // execution on R^p.
  Rational f_of_v;
  Rational f_of_w;
  std::string detail;
};

// v and w must be frequency-equivalent (checked; throws otherwise).
// `model` selects the valuation/coloring carried by the rings: outdegree
// labels, port colors, or nothing — the obstruction holds in all of them.
[[nodiscard]] LiftingObstruction demonstrate_ring_obstruction(
    const std::vector<std::int64_t>& v, const std::vector<std::int64_t>& w,
    CommModel model, const SymmetricFunction& f, int rounds);

// Property-test form of Lemma 3.1 on arbitrary fibrations: runs simple
// gossip on `lift.graph` with inputs copied fibrewise from `base_inputs`,
// and in parallel on `base`; true iff every agent's state equals its fibre
// representative's state after every round.
[[nodiscard]] bool gossip_lifting_holds(const LiftedGraph& lift,
                                        const Digraph& base,
                                        const std::vector<std::int64_t>& base_inputs,
                                        int rounds);

}  // namespace anonet
