#pragma once

// Push-Sum (Sections 5.1-5.5).
//
// PushSumAgent is the bare quot-sum algorithm of Theorem 5.2: weights y, z
// flow along edges scaled by 1/outdegree (column-stochastic mass splitting),
// and the output x = y/z converges to Σv_k / Σw_k in any dynamic network
// with a finite dynamic diameter. The paper remarks that "by the very
// definition of its update rules, the Push-Sum algorithm requires output
// port awareness" (§5.1) — that applies to the general form where shares
// may differ per recipient; the equal 1/d split used here (and in the
// paper's own analysis, eq. 6-7) is isotropic, so outdegree awareness
// suffices and that is the model this agent runs under. It tolerates
// asynchronous starts and is *not* self-stabilizing (the y, z
// initialization is part of its correctness; see the negative demonstration
// in pushsum_test.cpp).
//
// FrequencyPushSumAgent is Algorithm 1: one Push-Sum instance per input
// value ω, started lazily by the agents holding ω and joined by others upon
// first hearing of ω (an asynchronous start, which Push-Sum tolerates).
// x[ω] -> ν_v(ω). With a known bound N >= n, rounding each estimate to the
// nearest rational with denominator <= N (support/farey.hpp) yields the
// exact frequency function in finite time (Corollary 5.3); with a leader
// count ℓ, initializing z to 0 at non-leaders turns estimates into
// multiplicities (Section 5.5).

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "functions/functions.hpp"
#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"
#include "support/farey.hpp"

namespace anonet {

class PushSumAgent {
 public:
  struct Message {
    double y_share = 0.0;
    double z_share = 0.0;

    [[nodiscard]] std::int64_t weight_units() const { return 2; }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // The 1/d mass split consumes the round outdegree (Table 1, outdegree
  // awareness); the executor rejects this agent under broadcast models.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kNeedsOutdegree;
  // Mass conservation survives churn (an absent vertex holds its y, z on
  // its self-loop and rejoins intact) but nothing else: an executor-level
  // sleeping or crashed receiver swallows its 1/d share, and a dropped
  // message destroys mass outright. (Graph-level async starts, where the
  // edge is absent and the outdegree shrinks accordingly, are the variant
  // Push-Sum does tolerate — see AsyncStartSchedule.)
  static constexpr FaultTolerance kFaultTolerance = FaultTolerance::kChurn;

  // y(0) = value, z(0) = weight (> 0); x converges to Σ values / Σ weights.
  PushSumAgent(double value, double weight);

  // Outdegree awareness: shares are the state split d ways.
  [[nodiscard]] Message send(int outdegree, int /*port*/) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] double y() const { return y_; }
  [[nodiscard]] double z() const { return z_; }
  [[nodiscard]] double output() const { return y_ / z_; }

 private:
  double y_;
  double z_;
};

ANONET_STATIC_AUDIT_DECLARATIONS(PushSumAgent);

class FrequencyPushSumAgent {
 public:
  struct Message {
    // Structure-of-arrays snapshot of the sender's per-value state: parallel
    // vectors sorted by key (keys strictly increasing), plus the sender's
    // outdegree (receivers divide). The SoA layout keeps the receive-side
    // accumulation a dense double loop once dissemination completes and every
    // agent carries the same key set.
    std::vector<std::int64_t> keys;
    std::vector<double> ys;
    std::vector<double> zs;
    int outdegree = 1;

    // Bandwidth: (value, y, z) per entry plus the outdegree field.
    [[nodiscard]] std::int64_t weight_units() const {
      return 3 * static_cast<std::int64_t>(keys.size()) + 1;
    }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // Per-value Push-Sum inherits the 1/d split: outdegree awareness required.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kNeedsOutdegree;
  // Inherits Push-Sum's robustness profile: churn only (see PushSumAgent).
  static constexpr FaultTolerance kFaultTolerance = FaultTolerance::kChurn;

  // `leader_count` empty: Algorithm 1 (z defaults to 1 everywhere).
  // `leader_count` set: the Section 5.5 variant — z defaults to 1 at leaders
  // and 0 elsewhere, and multiplicity(ω) = ℓ · x[ω].
  explicit FrequencyPushSumAgent(std::int64_t input,
                                 std::optional<bool> is_leader = std::nullopt);

  [[nodiscard]] Message send(int outdegree, int /*port*/) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] std::int64_t input() const { return input_; }

  // Raw estimates x[ω] = y[ω]/z[ω]; +inf while z[ω] == 0 (leader variant,
  // finitely many rounds).
  [[nodiscard]] std::map<std::int64_t, double> estimates() const;

  // §5.4: estimates normalized to sum to 1 — a bona fide frequency vector
  // even before convergence.
  [[nodiscard]] std::map<std::int64_t, double> normalized_estimates() const;

  // Corollary 5.3: exact-frequency candidate under a known bound N >= n.
  // Returns nullopt while the rounded values don't form a frequency
  // function; eventually stabilizes on ν_v exactly.
  [[nodiscard]] std::optional<Frequency> rounded_frequency(
      std::uint32_t bound_on_n) const;

  // Section 5.5: multiplicity estimates ℓ·x[ω] (leader variant only).
  [[nodiscard]] std::map<std::int64_t, double> multiplicity_estimates(
      std::int64_t leader_count) const;

 private:
  std::int64_t input_;
  double z_default_;  // 1.0, or 0.0 for non-leaders in the leader variant
  // Per-value state as sorted parallel vectors (same layout as Message).
  std::vector<std::int64_t> keys_;
  std::vector<double> ys_;
  std::vector<double> zs_;
  // Receive-phase scratch, kept across rounds so steady state allocates
  // nothing: the merged key union and its (y, z) accumulators, swapped into
  // the state vectors at the end of every receive.
  std::vector<std::int64_t> merged_;
  std::vector<double> acc_y_;
  std::vector<double> acc_z_;
};

ANONET_STATIC_AUDIT_DECLARATIONS(FrequencyPushSumAgent);

}  // namespace anonet
