#include "core/metropolis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anonet {

namespace {

double metropolis_weight(int degree_a, int degree_b) {
  return 1.0 / static_cast<double>(std::max(degree_a, degree_b));
}

}  // namespace

MetropolisAgent::Message MetropolisAgent::send(int outdegree,
                                               int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error("MetropolisAgent: requires outdegree awareness");
  }
  degree_ = outdegree;
  return Message{x_, outdegree};
}

void MetropolisAgent::receive(std::span<const Message> messages) {
  // x_i += Σ_j W_ij (x_j - x_i). The agent's own message contributes zero,
  // so no self-identification is needed (the multiset stays anonymous).
  double delta = 0.0;
  for (const Message& m : messages) {
    delta += metropolis_weight(degree_, m.degree) * (m.x - x_);
  }
  x_ += delta;
}

FrequencyMetropolisAgent::FrequencyMetropolisAgent(std::int64_t input)
    : input_(input) {
  keys_.push_back(input_);
  xs_.push_back(1.0);
}

FrequencyMetropolisAgent::Message FrequencyMetropolisAgent::send(
    int outdegree, int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error(
        "FrequencyMetropolisAgent: requires outdegree awareness");
  }
  degree_ = outdegree;
  return Message{keys_, xs_, outdegree};
}

void FrequencyMetropolisAgent::receive(std::span<const Message> messages) {
  // Materialize every value any sender knows: a missing entry is an exact 0
  // (indicator average), so processing it keeps the pairwise update
  // symmetric — the neighbor treats our missing entry as 0 too, and the two
  // corrections cancel, preserving the global sum per value. Per-value
  // floating-point order is message order in both the map-based original and
  // this SoA merge, so outputs are bit-identical.
  merged_.clear();
  bool uniform = true;
  for (const Message& m : messages) {
    if (m.keys != keys_) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    merged_ = keys_;
  } else {
    merged_ = keys_;
    for (const Message& m : messages) {
      merged_.insert(merged_.end(), m.keys.begin(), m.keys.end());
    }
    std::sort(merged_.begin(), merged_.end());
    merged_.erase(std::unique(merged_.begin(), merged_.end()), merged_.end());
  }

  // Pre-round values aligned to the union; values this agent does not hold
  // yet enter as exact zeros.
  if (merged_.size() == keys_.size()) {
    before_ = xs_;
  } else {
    before_.assign(merged_.size(), 0.0);
    std::size_t j = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      while (merged_[j] < keys_[i]) ++j;
      before_[j] = xs_[i];
    }
  }

  delta_.assign(merged_.size(), 0.0);
  for (const Message& m : messages) {
    const double w = metropolis_weight(degree_, m.degree);
    if (m.keys.size() == merged_.size()) {
      // Key sets equal (sorted-unique subset of the union, same size): the
      // dense multiply-add lane.
      for (std::size_t j = 0; j < merged_.size(); ++j) {
        delta_[j] += w * (m.xs[j] - before_[j]);
      }
    } else {
      // A sender without a value contributes w * (0 - before): walk the
      // whole union, consuming the message's keys in lockstep.
      std::size_t i = 0;
      for (std::size_t j = 0; j < merged_.size(); ++j) {
        double x_sender = 0.0;
        if (i < m.keys.size() && m.keys[i] == merged_[j]) {
          x_sender = m.xs[i];
          ++i;
        }
        delta_[j] += w * (x_sender - before_[j]);
      }
    }
  }
  for (std::size_t j = 0; j < merged_.size(); ++j) before_[j] += delta_[j];
  keys_.swap(merged_);
  xs_.swap(before_);
}

std::map<std::int64_t, double> FrequencyMetropolisAgent::estimates() const {
  std::map<std::int64_t, double> result;
  for (std::size_t i = 0; i < keys_.size(); ++i) result[keys_[i]] = xs_[i];
  return result;
}

std::optional<Frequency> FrequencyMetropolisAgent::rounded_frequency(
    std::uint32_t bound_on_n) const {
  std::map<std::int64_t, Rational> entries;
  Rational total;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const double x = xs_[i];
    if (!std::isfinite(x)) return std::nullopt;
    const Rational rounded = nearest_rational(x, bound_on_n);
    if (rounded.signum() < 0) return std::nullopt;
    if (rounded.signum() > 0) entries.emplace(keys_[i], rounded);
    total += rounded;
  }
  if (total != Rational(1) || entries.empty()) return std::nullopt;
  return Frequency(std::move(entries));
}

}  // namespace anonet
