#include "core/metropolis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anonet {

namespace {

double metropolis_weight(int degree_a, int degree_b) {
  return 1.0 / static_cast<double>(std::max(degree_a, degree_b));
}

}  // namespace

MetropolisAgent::Message MetropolisAgent::send(int outdegree,
                                               int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error("MetropolisAgent: requires outdegree awareness");
  }
  degree_ = outdegree;
  return Message{x_, outdegree};
}

void MetropolisAgent::receive(std::span<const Message> messages) {
  // x_i += Σ_j W_ij (x_j - x_i). The agent's own message contributes zero,
  // so no self-identification is needed (the multiset stays anonymous).
  double delta = 0.0;
  for (const Message& m : messages) {
    delta += metropolis_weight(degree_, m.degree) * (m.x - x_);
  }
  x_ += delta;
}

FrequencyMetropolisAgent::FrequencyMetropolisAgent(std::int64_t input)
    : input_(input) {
  x_[input_] = 1.0;
}

FrequencyMetropolisAgent::Message FrequencyMetropolisAgent::send(
    int outdegree, int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error(
        "FrequencyMetropolisAgent: requires outdegree awareness");
  }
  degree_ = outdegree;
  return Message{x_, outdegree};
}

void FrequencyMetropolisAgent::receive(std::span<const Message> messages) {
  // Materialize every value any sender knows: a missing entry is an exact 0
  // (indicator average), so processing it keeps the pairwise update
  // symmetric — the neighbor treats our missing entry as 0 too, and the two
  // corrections cancel, preserving the global sum per value.
  std::map<std::int64_t, double> next = x_;
  for (const Message& m : messages) {
    for (const auto& [value, x] : m.x) next.try_emplace(value, 0.0);
  }
  for (auto& [value, x_own] : next) {
    const double before = x_own;
    double delta = 0.0;
    for (const Message& m : messages) {
      auto it = m.x.find(value);
      const double x_sender = it == m.x.end() ? 0.0 : it->second;
      delta += metropolis_weight(degree_, m.degree) * (x_sender - before);
    }
    x_own = before + delta;
  }
  x_ = std::move(next);
}

std::optional<Frequency> FrequencyMetropolisAgent::rounded_frequency(
    std::uint32_t bound_on_n) const {
  std::map<std::int64_t, Rational> entries;
  Rational total;
  for (const auto& [value, x] : x_) {
    if (!std::isfinite(x)) return std::nullopt;
    const Rational rounded = nearest_rational(x, bound_on_n);
    if (rounded.signum() < 0) return std::nullopt;
    if (rounded.signum() > 0) entries.emplace(value, rounded);
    total += rounded;
  }
  if (total != Rational(1) || entries.empty()) return std::nullopt;
  return Frequency(std::move(entries));
}

}  // namespace anonet
