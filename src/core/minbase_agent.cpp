#include "core/minbase_agent.hpp"

#include <algorithm>
#include <stdexcept>

namespace anonet {

MinBaseAgent::MinBaseAgent(std::shared_ptr<ViewRegistry> registry,
                           std::shared_ptr<LabelCodec> codec,
                           std::int64_t input, CommModel model,
                           int max_view_depth)
    : registry_(std::move(registry)),
      codec_(std::move(codec)),
      input_(input),
      model_(model),
      max_view_depth_(max_view_depth) {
  if (registry_ == nullptr || codec_ == nullptr) {
    throw std::invalid_argument("MinBaseAgent: null registry or codec");
  }
  if (max_view_depth < 0) {
    throw std::invalid_argument("MinBaseAgent: negative max_view_depth");
  }
}

int MinBaseAgent::own_label() const {
  if (model_ == CommModel::kOutdegreeAware) {
    if (observed_outdegree_ < 0) {
      throw std::logic_error("MinBaseAgent: outdegree not observed yet");
    }
    return codec_->valued_degree_label(input_, observed_outdegree_);
  }
  return codec_->value_label(input_);
}

MinBaseAgent::Message MinBaseAgent::send(int outdegree, int port) const {
  if (sees_outdegree(model_)) observed_outdegree_ = outdegree;
  const ViewId current =
      view_ == kInvalidView ? registry_->leaf(own_label()) : view_;
  return Message{current, port};
}

void MinBaseAgent::receive(std::span<const Message> messages) {
  if (messages.empty()) {
    throw std::logic_error("MinBaseAgent: no messages (missing self-loop?)");
  }
  // Under arbitrary initialization (self-stabilization) received views can
  // have inconsistent depths; align on the shallowest, discarding the deeper
  // views' old layers. In a clean synchronous execution all depths agree and
  // this is a no-op.
  int min_depth = registry_->depth(messages.front().view);
  for (const Message& m : messages) {
    min_depth = std::min(min_depth, registry_->depth(m.view));
  }
  ViewRegistry::ChildList children;
  children.reserve(messages.size());
  for (const Message& m : messages) {
    children.emplace_back(registry_->truncate(m.view, min_depth), m.port);
  }
  view_ = registry_->node(own_label(), std::move(children));
  if (max_view_depth_ > 0 && registry_->depth(view_) > max_view_depth_) {
    // Finite-state variant: forget the oldest layers (truncation keeps the
    // *top* of the tree, i.e. the most recent information).
    view_ = registry_->truncate(view_, max_view_depth_);
  }
  ++rounds_;
}

const ExtractedBase& MinBaseAgent::candidate() const {
  // Lazy extraction: table harnesses only inspect candidates occasionally,
  // and extraction dominates the cost of a round.
  if (candidate_round_ != rounds_ || view_ == kInvalidView) {
    candidate_ = view_ == kInvalidView ? ExtractedBase{}
                                       : extract_base(*registry_, view_);
    candidate_round_ = rounds_;
  }
  return candidate_;
}

void MinBaseAgent::corrupt(ViewId garbage_view) {
  view_ = garbage_view;
  candidate_round_ = -1;
}

}  // namespace anonet
