#pragma once

// High-level "can this network class compute f?" harness.
//
// This is the executable form of Tables 1 and 2: pick a communication model,
// a level of centralized help, a network (static graph or dynamic schedule)
// and a target function, and `attempt_*` selects the paper's algorithm for
// that cell, runs it, and reports whether the outputs reached f(v) — exactly
// (δ0, with the stabilization round) or asymptotically (δ2, with the final
// sup-error). Cells the paper proves impossible return success = false with
// the reason; bench/lifting_obstruction demonstrates *why* they fail.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dynamics/dynamic_graph.hpp"
#include "functions/functions.hpp"
#include "graph/digraph.hpp"
#include "runtime/comm_model.hpp"

namespace anonet {

enum class Knowledge {
  kNone,       // no centralized help
  kUpperBound, // a bound N >= n is known (parameter = N)
  kExactSize,  // n is known (parameter = n)
  kLeaders,    // parameter = ℓ; inputs must be encode_leader_input()-coded
};

[[nodiscard]] std::string_view to_string(Knowledge knowledge);

struct Attempt {
  CommModel model = CommModel::kSimpleBroadcast;
  Knowledge knowledge = Knowledge::kNone;
  std::int64_t parameter = 0;  // N, n, or ℓ depending on `knowledge`
  int rounds = 50;             // simulation horizon
  double tolerance = 1e-4;     // δ2 acceptance for asymptotic computation
  std::uint64_t seed = 1;      // executor shuffle seed
  // Cooperative wall-clock budget for the attempt (<= 0: unlimited). When
  // the budget elapses, the executor throws DeadlineExceeded between rounds
  // and the exception propagates out of attempt_* — callers that want a
  // distinguishable timeout verdict (the campaign runner) catch it there.
  double deadline_ms = 0.0;
  // Channel policy (wire/meter.hpp): 0 = unbounded, -1 = metered, B > 0 =
  // bounded to B bits per message. Under a bounded channel an over-budget
  // message makes the executor throw wire::BandwidthExceeded between the
  // send phase and delivery; as with the deadline, the campaign runner
  // catches it for a distinguishable "bandwidth_exceeded" verdict.
  std::int64_t bandwidth_bits = 0;
};

struct AttemptResult {
  bool success = false;
  // First round from which every agent's output was exactly f(v) and stayed
  // so (δ0 stabilization); -1 for asymptotic-only or failed attempts.
  int stabilization_round = -1;
  // Sup-distance of the final outputs from f(v) under δ2 (NaN when outputs
  // are non-numeric failures).
  double final_error = std::numeric_limits<double>::quiet_NaN();
  std::string mechanism;  // algorithm (or impossibility reason) used
  // Executor accounting for the attempt (campaign metrics): rounds actually
  // run, messages delivered, and payload units (the executor's bandwidth
  // proxy). All zero when the attempt was rejected before running.
  std::int64_t rounds_run = 0;
  std::int64_t messages_delivered = 0;
  std::int64_t payload_units = 0;
  // Measured wire bits sent over the whole attempt (canonical MessageTraits
  // sizes, each message counted once per out-edge); -1 when the channel was
  // off (bandwidth_bits == 0) or the attempt never ran.
  std::int64_t bits_total = -1;
};

// Static strongly connected networks (Theorem 4.1, Corollaries 4.2-4.4).
// For kOutputPortAware the graph's ports are assigned automatically when
// absent. For kLeaders, code the inputs with encode_leader_input().
[[nodiscard]] AttemptResult attempt_static(
    const Digraph& g, const std::vector<std::int64_t>& inputs,
    const SymmetricFunction& f, const Attempt& attempt);

// Dynamic networks with finite dynamic diameter (Section 5): Push-Sum for
// outdegree awareness, Metropolis for symmetric communications, gossip for
// set-based functions everywhere.
[[nodiscard]] AttemptResult attempt_dynamic(
    const DynamicGraphPtr& network, const std::vector<std::int64_t>& inputs,
    const SymmetricFunction& f, const Attempt& attempt);

// Ground truth f(v) with leader coding stripped when applicable.
[[nodiscard]] Rational ground_truth(const std::vector<std::int64_t>& inputs,
                                    const SymmetricFunction& f,
                                    Knowledge knowledge);

}  // namespace anonet
