#pragma once

// From frequencies to multisets: the centralized-help corollaries.
//
//   - Corollary 4.3: with n known, multiplicities are ν(ω) · n.
//   - Corollary 4.4 / eq. (5): with ℓ leaders (ℓ known to all), the leader
//     classes of the base pin the common factor: |φ⁻¹(i)| = ℓ z_i / Σ_{j∈L} z_j.
// Either way the agents recover the full multiset [ω1, ..., ωn] and can
// compute any multiset-based function — e.g. the sum.
//
// Leaders are modeled as a flag on the input: an agent's value for labelling
// purposes is the pair (ω, is_leader), which is how "one or several agents
// are distinguished as leaders" breaks anonymity in the paper. The flag is
// packed into the int64 input (LSB) so every algorithm layer is unchanged.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "functions/functions.hpp"
#include "support/bigint.hpp"

namespace anonet {

// --- leader encoding ---------------------------------------------------------

[[nodiscard]] constexpr std::int64_t encode_leader_input(std::int64_t value,
                                                         bool is_leader) {
  return value * 2 + (is_leader ? 1 : 0);
}
[[nodiscard]] constexpr std::int64_t decode_leader_value(std::int64_t coded) {
  // Floor division keeps negatives correct: encode(-3, 1) = -5 -> -3.
  return coded >= 0 ? coded / 2 : (coded - 1) / 2;
}
[[nodiscard]] constexpr bool decode_leader_flag(std::int64_t coded) {
  return (coded % 2 + 2) % 2 == 1;
}

// --- multiset recovery -------------------------------------------------------

// Corollary 4.3: multiplicities ν(ω)·n; nullopt if any is not an integer
// (bogus frequency estimate for this n).
[[nodiscard]] std::optional<std::map<std::int64_t, BigInt>>
multiset_from_frequency(const Frequency& nu, std::int64_t n);

// Eq. (5): exact fibre cardinalities from ratios plus leader classes.
// `is_leader_class[i]` marks base vertices whose fibre consists of leaders;
// nullopt when ℓ Σ... does not divide evenly (bogus candidate) or when no
// leader class exists.
[[nodiscard]] std::optional<std::vector<BigInt>> fibre_sizes_with_leaders(
    const std::vector<bool>& is_leader_class,
    const std::vector<BigInt>& ratios, std::int64_t leader_count);

// Corollary 4.3's analogue from ratios: fibre cardinalities n z_i / Σ z_j.
[[nodiscard]] std::optional<std::vector<BigInt>> fibre_sizes_with_known_n(
    const std::vector<BigInt>& ratios, std::int64_t n);

// Expands per-class (value, cardinality) into a flat multiset vector usable
// by SymmetricFunction. Throws if a cardinality does not fit an int.
[[nodiscard]] std::vector<std::int64_t> expand_multiset(
    const std::vector<std::int64_t>& class_values,
    const std::vector<BigInt>& class_sizes);

}  // namespace anonet
