#pragma once

// Distributed minimum-base construction (Section 3.2, after Boldi & Vigna).
//
// Each round, an agent broadcasts its current view and rebuilds a one-level
// deeper view from the views it receives; from its own view it extracts a
// minimum-base candidate B(T_t) (views/base_extraction.hpp). In a static
// strongly connected network of n agents and diameter D, the candidate is
// guaranteed to *be* the minimum base — of the valued graph matching the
// communication model — from round n + 2D onwards (the paper's refined
// extraction achieves n + D; ours trades that D for a self-stabilizing
// window, see views/base_extraction.cpp):
//   - simple broadcast / symmetric: vertices labeled with input values;
//   - outdegree awareness: labels are (value, outdegree) pairs, the G_{v,d}
//     double valuation of Section 4.2;
//   - output port awareness: values as labels plus port-colored view edges.
// The algorithm is self-stabilizing: a corrupted view only pollutes the
// deepest layers of the growing view, and the extraction only looks at
// recent layers, so any initial state is flushed once enough fresh rounds
// have run. Agents
// never halt (the paper's computability notion has no termination); the
// candidate is the agent's output variable.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "runtime/capabilities.hpp"
#include "runtime/comm_model.hpp"
#include "runtime/static_audit.hpp"
#include "views/base_extraction.hpp"
#include "views/label_codec.hpp"
#include "views/view_registry.hpp"

namespace anonet {

class MinBaseAgent {
 public:
  struct Message {
    ViewId view = kInvalidView;
    // Output port the message left through (0 for isotropic models); becomes
    // the edge color of the corresponding child in the receiver's view.
    int port = 0;
  };

  // Adapts to whatever the model provides: views are labeled with values,
  // (value, outdegree) pairs, or port-colored edges depending on the
  // CommModel handed to the constructor (Section 3.2), so every pairing is
  // legitimate. NOT kParallelSafe: agents intern into the shared registry.
  static constexpr bool kParallelSafe = false;
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kModelPolymorphic;

  // All agents of an execution share `registry` and `codec` (see the
  // interning rationale in views/view_registry.hpp).
  //
  // `max_view_depth` > 0 selects the *finite-state* variant the paper
  // mentions at the end of Section 3.2: the view is truncated to its most
  // recent `max_view_depth` layers after every round, bounding the state
  // space at the price of a window large enough to stabilize — any
  // max_view_depth >= n + 2D works (their refined version loses only
  // O(D log D) rounds; ours simply needs the window to contain the
  // extraction horizon). 0 keeps the unbounded view.
  MinBaseAgent(std::shared_ptr<ViewRegistry> registry,
               std::shared_ptr<LabelCodec> codec, std::int64_t input,
               CommModel model, int max_view_depth = 0);

  [[nodiscard]] Message send(int outdegree, int port) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] std::int64_t input() const { return input_; }
  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] int rounds_run() const { return rounds_; }

  // The candidate extracted from the current view (computed lazily and
  // cached per round). `plausible` is false until enough structure has been
  // seen.
  [[nodiscard]] const ExtractedBase& candidate() const;

  // Self-stabilization fault injection: replaces the state by an arbitrary
  // (possibly nonsensical) view. Used by tests.
  void corrupt(ViewId garbage_view);

 private:
  [[nodiscard]] int own_label() const;

  std::shared_ptr<ViewRegistry> registry_;
  std::shared_ptr<LabelCodec> codec_;
  std::int64_t input_;
  CommModel model_;
  int max_view_depth_ = 0;  // 0 = unbounded
  // Outdegree reported by the model at the latest send; -1 before the first
  // send. In the outdegree-aware model this value is part of the agent's own
  // vertex label (the model hands it to the sending function, Section 2.2).
  mutable int observed_outdegree_ = -1;
  ViewId view_ = kInvalidView;
  int rounds_ = 0;
  mutable ExtractedBase candidate_;
  mutable int candidate_round_ = -1;
};

ANONET_STATIC_AUDIT_DECLARATIONS(MinBaseAgent);

}  // namespace anonet
