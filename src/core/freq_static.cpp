#include "core/freq_static.hpp"

#include <deque>
#include <map>
#include <stdexcept>

#include "graph/analysis.hpp"
#include "linalg/kernel.hpp"

namespace anonet {

RationalMatrix fibre_matrix(const Digraph& base,
                            const std::vector<int>& outdegrees) {
  const auto m = static_cast<std::size_t>(base.vertex_count());
  if (outdegrees.size() != m) {
    throw std::invalid_argument("fibre_matrix: outdegree size mismatch");
  }
  RationalMatrix matrix(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      matrix.at(i, j) = Rational(base.edge_multiplicity(
          static_cast<Vertex>(i), static_cast<Vertex>(j)));
    }
    matrix.at(i, i) -= Rational(outdegrees[i]);
  }
  return matrix;
}

std::optional<std::vector<BigInt>> fibre_ratios_outdegree(
    const Digraph& base, const std::vector<int>& base_outdegrees) {
  return positive_coprime_kernel_vector(fibre_matrix(base, base_outdegrees));
}

std::optional<std::vector<BigInt>> fibre_ratios_symmetric(const Digraph& base) {
  const Vertex m = base.vertex_count();
  if (m == 0) return std::nullopt;
  // z_j / z_i = d_{j,i} / d_{i,j} (eq. 4); propagate from vertex 0 by BFS
  // over the support, then check every support edge for consistency.
  std::vector<Rational> z(static_cast<std::size_t>(m));
  std::vector<bool> assigned(static_cast<std::size_t>(m), false);
  z[0] = Rational(1);
  assigned[0] = true;
  std::deque<Vertex> queue{0};
  while (!queue.empty()) {
    const Vertex i = queue.front();
    queue.pop_front();
    for (EdgeId id : base.out_edges(i)) {
      const Vertex j = base.edge(id).target;
      if (assigned[static_cast<std::size_t>(j)]) continue;
      const int d_ij = base.edge_multiplicity(i, j);
      const int d_ji = base.edge_multiplicity(j, i);
      if (d_ji == 0) return std::nullopt;  // asymmetric support: bad base
      z[static_cast<std::size_t>(j)] = z[static_cast<std::size_t>(i)] *
                                       Rational(BigInt(d_ji), BigInt(d_ij));
      assigned[static_cast<std::size_t>(j)] = true;
      queue.push_back(j);
    }
  }
  for (Vertex v = 0; v < m; ++v) {
    if (!assigned[static_cast<std::size_t>(v)]) return std::nullopt;
  }
  for (Vertex i = 0; i < m; ++i) {
    for (EdgeId id : base.out_edges(i)) {
      const Vertex j = base.edge(id).target;
      const int d_ij = base.edge_multiplicity(i, j);
      const int d_ji = base.edge_multiplicity(j, i);
      if (d_ji == 0) return std::nullopt;
      if (z[static_cast<std::size_t>(j)] * Rational(d_ij) !=
          z[static_cast<std::size_t>(i)] * Rational(d_ji)) {
        return std::nullopt;  // eq. (4) violated: candidate base is bogus
      }
    }
  }
  return coprime_integer_vector(z);
}

std::vector<BigInt> fibre_ratios_ports(const Digraph& base) {
  return std::vector<BigInt>(static_cast<std::size_t>(base.vertex_count()),
                             BigInt(1));
}

Frequency frequency_from_ratios(const std::vector<std::int64_t>& base_values,
                                const std::vector<BigInt>& ratios) {
  if (base_values.size() != ratios.size() || base_values.empty()) {
    throw std::invalid_argument("frequency_from_ratios: size mismatch");
  }
  BigInt total(0);
  for (const BigInt& z : ratios) {
    if (z.signum() <= 0) {
      throw std::invalid_argument("frequency_from_ratios: ratios must be > 0");
    }
    total += z;
  }
  std::map<std::int64_t, BigInt> weight;
  for (std::size_t i = 0; i < base_values.size(); ++i) {
    auto [it, inserted] = weight.emplace(base_values[i], ratios[i]);
    if (!inserted) it->second += ratios[i];
  }
  std::map<std::int64_t, Rational> entries;
  for (auto& [value, w] : weight) {
    entries.emplace(value, Rational(w, total));
  }
  return Frequency(std::move(entries));
}

std::optional<DecodedBase> decode_base(const ExtractedBase& candidate,
                                       const LabelCodec& codec) {
  DecodedBase decoded;
  decoded.values.reserve(candidate.values.size());
  bool any_outdegree = false;
  for (int label : candidate.values) {
    try {
      decoded.values.push_back(codec.value_of(label));
      if (codec.has_outdegree(label)) {
        any_outdegree = true;
        decoded.outdegrees.push_back(codec.outdegree_of(label));
      }
    } catch (const std::out_of_range&) {
      return std::nullopt;  // garbage label (e.g. injected corruption)
    }
  }
  if (any_outdegree && decoded.outdegrees.size() != decoded.values.size()) {
    return std::nullopt;  // mixed label kinds: corrupted candidate
  }
  return decoded;
}

std::optional<Frequency> static_frequency_estimate(
    const ExtractedBase& candidate, const LabelCodec& codec, CommModel model) {
  if (!candidate.plausible) return std::nullopt;
  const std::optional<DecodedBase> decoded = decode_base(candidate, codec);
  if (!decoded.has_value()) return std::nullopt;

  std::optional<std::vector<BigInt>> ratios;
  switch (model) {
    case CommModel::kSimpleBroadcast:
      // Theorem 4.1 / Hendrickx et al.: frequencies are not recoverable.
      return std::nullopt;
    case CommModel::kOutdegreeAware:
      if (decoded->outdegrees.empty()) return std::nullopt;
      ratios = fibre_ratios_outdegree(candidate.base, decoded->outdegrees);
      break;
    case CommModel::kSymmetricBroadcast:
      ratios = fibre_ratios_symmetric(candidate.base);
      break;
    case CommModel::kOutputPortAware:
      ratios = fibre_ratios_ports(candidate.base);
      break;
  }
  if (!ratios.has_value()) return std::nullopt;
  return frequency_from_ratios(decoded->values, *ratios);
}

}  // namespace anonet
