#pragma once

// Metropolis averaging (Section 5).
//
// On symmetric networks the Metropolis weights
//     W_{ij} = 1 / max(d_i, d_j)          (i != j, (i,j) an edge)
//     W_{ii} = 1 - Σ_{j != i} W_{ij}
// form a doubly-stochastic matrix whose repeated application drives every
// x_i to the average of the initial values; the paper uses it as the
// frequency engine for the dynamic symmetric-communications column of
// Table 2. Each message carries (x, d): the receiver can compute W_{ij}
// because it knows its own round degree from the sending phase (outdegree
// awareness — the model the paper states Metropolis under; in a *static*
// symmetric network degrees could instead be learned in round one). The
// update is sum-preserving pairwise, needs no persistent memory beyond x,
// and tolerates asynchronous starts.
//
// MetropolisAgent averages one scalar. FrequencyMetropolisAgent runs one
// instance per input value over indicator initializations — the average of
// 1{v_i = ω} is exactly ν_v(ω) — with lazy per-value joining mirroring
// Algorithm 1 (both endpoints of an edge process a value as soon as either
// knows it, keeping the pairwise cancellation exact).

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "functions/functions.hpp"
#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"
#include "support/farey.hpp"

namespace anonet {

class MetropolisAgent {
 public:
  struct Message {
    double x = 0.0;
    int degree = 1;

    [[nodiscard]] std::int64_t weight_units() const { return 2; }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // Metropolis weights consume the round degree (outdegree awareness) and
  // the pairwise cancellation is only sum-preserving on bidirectional round
  // graphs: the executor verifies symmetry every round.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kNeedsOutdegree | ModelCapabilities::kSymmetricOnly;
  // The pairwise terms vanish *symmetrically* when a neighbor is inert: a
  // sleeping or absent vertex neither sends nor transitions, so both sides
  // of the (u, v) term are missing and the sum is still conserved — async
  // starts and churn are safe. A one-directional message drop is not (one
  // side applies the term, the other does not), and a crashed agent's
  // output is stuck off-average forever.
  static constexpr FaultTolerance kFaultTolerance =
      FaultTolerance::kAsyncStart | FaultTolerance::kChurn;

  explicit MetropolisAgent(double value) : x_(value) {}

  [[nodiscard]] Message send(int outdegree, int /*port*/) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] double output() const { return x_; }

 private:
  double x_ = 0.0;
  mutable int degree_ = 1;  // round degree recorded at send time
};

ANONET_STATIC_AUDIT_DECLARATIONS(MetropolisAgent);

class FrequencyMetropolisAgent {
 public:
  struct Message {
    // Structure-of-arrays snapshot: parallel vectors sorted by key (keys
    // strictly increasing) plus the announced round degree. Once every agent
    // knows every value the receive update degenerates to one dense
    // multiply-add loop per message.
    std::vector<std::int64_t> keys;
    std::vector<double> xs;
    int degree = 1;

    [[nodiscard]] std::int64_t weight_units() const {
      return 2 * static_cast<std::int64_t>(keys.size()) + 1;
    }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // Same cell as MetropolisAgent: round degrees + symmetric networks.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kNeedsOutdegree | ModelCapabilities::kSymmetricOnly;
  // Same robustness profile as MetropolisAgent: symmetric omission is
  // conserved, one-sided loss is not.
  static constexpr FaultTolerance kFaultTolerance =
      FaultTolerance::kAsyncStart | FaultTolerance::kChurn;

  explicit FrequencyMetropolisAgent(std::int64_t input);

  [[nodiscard]] Message send(int outdegree, int /*port*/) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] std::int64_t input() const { return input_; }
  // Materialized from the internal parallel vectors.
  [[nodiscard]] std::map<std::int64_t, double> estimates() const;

  // Corollary-5.3-style exact rounding under a known bound N >= n; the same
  // Farey argument applies to any convergent frequency estimate.
  [[nodiscard]] std::optional<Frequency> rounded_frequency(
      std::uint32_t bound_on_n) const;

 private:
  std::int64_t input_;
  // Per-value state as sorted parallel vectors (same layout as Message).
  std::vector<std::int64_t> keys_;
  std::vector<double> xs_;
  // Receive-phase scratch, reused across rounds: merged key union, the
  // pre-round values aligned to it, and the per-value weighted deltas.
  std::vector<std::int64_t> merged_;
  std::vector<double> before_;
  std::vector<double> delta_;
  mutable int degree_ = 1;
};

ANONET_STATIC_AUDIT_DECLARATIONS(FrequencyMetropolisAgent);

}  // namespace anonet
