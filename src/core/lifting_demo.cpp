#include "core/lifting_demo.hpp"

#include <numeric>
#include <stdexcept>

#include "core/gossip.hpp"
#include "core/minbase_agent.hpp"
#include "dynamics/schedules.hpp"
#include "runtime/executor.hpp"

namespace anonet {

namespace {

constexpr EdgeColor kSelfPort = 1;
constexpr EdgeColor kClockwisePort = 2;
constexpr EdgeColor kCounterPort = 3;

// Runs the distributed minimum-base algorithm on a ported/valued ring and
// returns the state (view id) sequence of every agent. Sharing `registry`
// and `codec` across the base and lift executions makes cross-execution
// state comparison exact.
std::vector<std::vector<ViewId>> run_minbase_on_ring(
    const Digraph& ring, const std::vector<std::int64_t>& inputs,
    CommModel model, int rounds, const std::shared_ptr<ViewRegistry>& registry,
    const std::shared_ptr<LabelCodec>& codec) {
  std::vector<MinBaseAgent> agents;
  agents.reserve(inputs.size());
  for (std::int64_t input : inputs) {
    agents.emplace_back(registry, codec, input, model);
  }
  Executor<MinBaseAgent> executor(std::make_shared<StaticSchedule>(ring),
                                  std::move(agents), model);
  std::vector<std::vector<ViewId>> history;
  history.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    executor.step();
    std::vector<ViewId> states;
    states.reserve(inputs.size());
    for (const MinBaseAgent& agent : executor.agents()) {
      states.push_back(agent.view());
    }
    history.push_back(std::move(states));
  }
  return history;
}

// True iff at every recorded round, the state of lift vertex i equals the
// state of base vertex i mod p — i.e. the lifted execution *is* the
// execution on the lift (Lemma 3.1).
bool fibrewise_equal(const std::vector<std::vector<ViewId>>& lift_history,
                     const std::vector<std::vector<ViewId>>& base_history,
                     int p) {
  for (std::size_t r = 0; r < lift_history.size(); ++r) {
    for (std::size_t i = 0; i < lift_history[r].size(); ++i) {
      if (lift_history[r][i] !=
          base_history[r][i % static_cast<std::size_t>(p)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Digraph ported_ring(Vertex n) {
  if (n < 3) throw std::invalid_argument("ported_ring: need n >= 3");
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) {
    g.add_edge(v, v, kSelfPort);
    g.add_edge(v, (v + 1) % n, kClockwisePort);
    g.add_edge(v, (v + n - 1) % n, kCounterPort);
  }
  return g;
}

LiftingObstruction demonstrate_ring_obstruction(
    const std::vector<std::int64_t>& v, const std::vector<std::int64_t>& w,
    CommModel model, const SymmetricFunction& f, int rounds) {
  const Frequency nu = Frequency::of(v);
  if (!(nu == Frequency::of(w))) {
    throw std::invalid_argument(
        "demonstrate_ring_obstruction: v and w must be frequency-equivalent");
  }
  LiftingObstruction result;
  result.f_of_v = f(v);
  result.f_of_w = f(w);

  // The canonical frequenced vector has size p dividing both |v| and |w|
  // (Section 4.1); the projection only yields honest simple-graph ring
  // fibrations for p >= 3, so scale p up within gcd(n, m) if needed.
  const std::vector<std::int64_t> canonical = nu.canonical_vector();
  const auto n = static_cast<int>(v.size());
  const auto m = static_cast<int>(w.size());
  const int unit = static_cast<int>(canonical.size());
  const int g = std::gcd(n, m);
  int p = 0;
  for (int k = unit; k <= g; k += unit) {
    if (k >= 3 && g % k == 0) {
      p = k;
      break;
    }
  }
  if (p == 0) {
    result.detail = "no common ring size >= 3 divides both |v| and |w|";
    return result;
  }
  result.applicable = true;
  result.p = p;

  // Base inputs: the first p entries of the fibrewise layout u[i mod p];
  // lift inputs are a permutation of v (resp. w), which by Lemma 3.3 leaves
  // f unchanged.
  std::vector<std::int64_t> base_inputs;
  for (int i = 0; i < p; ++i) {
    base_inputs.push_back(canonical[static_cast<std::size_t>(i) %
                                    canonical.size()]);
  }
  auto lifted_inputs = [&](int size) {
    std::vector<std::int64_t> inputs(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      inputs[static_cast<std::size_t>(i)] =
          base_inputs[static_cast<std::size_t>(i % p)];
    }
    return inputs;
  };

  auto registry = std::make_shared<ViewRegistry>();
  auto codec = std::make_shared<LabelCodec>();
  auto ring_for = [&](int size) {
    return model == CommModel::kOutputPortAware
               ? ported_ring(size)
               : bidirectional_ring(size);
  };

  const auto base_history = run_minbase_on_ring(
      ring_for(p), base_inputs, model, rounds, registry, codec);
  const auto lift_n_history = run_minbase_on_ring(
      ring_for(n), lifted_inputs(n), model, rounds, registry, codec);
  const auto lift_m_history = run_minbase_on_ring(
      ring_for(m), lifted_inputs(m), model, rounds, registry, codec);

  result.rounds_checked = rounds;
  result.lifting_verified = fibrewise_equal(lift_n_history, base_history, p) &&
                            fibrewise_equal(lift_m_history, base_history, p);
  result.detail = result.lifting_verified
                      ? "both lifted executions are fibrewise copies of the "
                        "base execution; outputs on v and w are forced equal"
                      : "lifting lemma violated (simulator bug)";
  return result;
}

bool gossip_lifting_holds(const LiftedGraph& lift, const Digraph& base,
                          const std::vector<std::int64_t>& base_inputs,
                          int rounds) {
  if (base_inputs.size() != static_cast<std::size_t>(base.vertex_count())) {
    throw std::invalid_argument("gossip_lifting_holds: input size mismatch");
  }
  std::vector<SetGossipAgent> base_agents;
  for (std::int64_t input : base_inputs) base_agents.emplace_back(input);
  std::vector<SetGossipAgent> lift_agents;
  for (Vertex projection : lift.projection) {
    lift_agents.emplace_back(
        base_inputs[static_cast<std::size_t>(projection)]);
  }
  Digraph base_graph = base;
  base_graph.ensure_self_loops();
  Digraph lift_graph = lift.graph;
  lift_graph.ensure_self_loops();
  Executor<SetGossipAgent> base_exec(
      std::make_shared<StaticSchedule>(base_graph), std::move(base_agents),
      CommModel::kSimpleBroadcast);
  Executor<SetGossipAgent> lift_exec(
      std::make_shared<StaticSchedule>(lift_graph), std::move(lift_agents),
      CommModel::kSimpleBroadcast);
  for (int r = 0; r < rounds; ++r) {
    base_exec.step();
    lift_exec.step();
    for (Vertex i = 0; i < lift.graph.vertex_count(); ++i) {
      const Vertex b = lift.projection[static_cast<std::size_t>(i)];
      if (lift_exec.agent(i).known() != base_exec.agent(b).known()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace anonet
