#include "core/census.hpp"

#include <stdexcept>

namespace anonet {

std::optional<std::map<std::int64_t, BigInt>> multiset_from_frequency(
    const Frequency& nu, std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("multiset_from_frequency: n <= 0");
  std::map<std::int64_t, BigInt> result;
  for (const auto& [value, freq] : nu.entries()) {
    const BigInt numerator = freq.numerator() * BigInt(n);
    if (!(numerator % freq.denominator()).is_zero()) return std::nullopt;
    result.emplace(value, numerator / freq.denominator());
  }
  return result;
}

std::optional<std::vector<BigInt>> fibre_sizes_with_leaders(
    const std::vector<bool>& is_leader_class,
    const std::vector<BigInt>& ratios, std::int64_t leader_count) {
  if (is_leader_class.size() != ratios.size()) {
    throw std::invalid_argument("fibre_sizes_with_leaders: size mismatch");
  }
  if (leader_count <= 0) {
    throw std::invalid_argument("fibre_sizes_with_leaders: need >= 1 leader");
  }
  BigInt leader_ratio_sum(0);
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (is_leader_class[i]) leader_ratio_sum += ratios[i];
  }
  if (leader_ratio_sum.is_zero()) return std::nullopt;
  std::vector<BigInt> sizes;
  sizes.reserve(ratios.size());
  for (const BigInt& z : ratios) {
    const BigInt numerator = BigInt(leader_count) * z;
    if (!(numerator % leader_ratio_sum).is_zero()) return std::nullopt;
    sizes.push_back(numerator / leader_ratio_sum);
  }
  return sizes;
}

std::optional<std::vector<BigInt>> fibre_sizes_with_known_n(
    const std::vector<BigInt>& ratios, std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("fibre_sizes_with_known_n: n <= 0");
  BigInt total(0);
  for (const BigInt& z : ratios) total += z;
  if (total.is_zero()) return std::nullopt;
  std::vector<BigInt> sizes;
  sizes.reserve(ratios.size());
  for (const BigInt& z : ratios) {
    const BigInt numerator = BigInt(n) * z;
    if (!(numerator % total).is_zero()) return std::nullopt;
    sizes.push_back(numerator / total);
  }
  return sizes;
}

std::vector<std::int64_t> expand_multiset(
    const std::vector<std::int64_t>& class_values,
    const std::vector<BigInt>& class_sizes) {
  if (class_values.size() != class_sizes.size()) {
    throw std::invalid_argument("expand_multiset: size mismatch");
  }
  std::vector<std::int64_t> result;
  for (std::size_t i = 0; i < class_values.size(); ++i) {
    const std::int64_t count = class_sizes[i].to_int64();
    if (count < 0) throw std::invalid_argument("expand_multiset: negative");
    for (std::int64_t k = 0; k < count; ++k) {
      result.push_back(class_values[i]);
    }
  }
  return result;
}

}  // namespace anonet
