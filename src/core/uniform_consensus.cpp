#include "core/uniform_consensus.hpp"

#include <cmath>
#include <stdexcept>

namespace anonet {

namespace {

double step_for(std::uint32_t bound_on_n) {
  if (bound_on_n == 0) {
    throw std::invalid_argument("uniform consensus: bound must be positive");
  }
  return 1.0 / static_cast<double>(bound_on_n);
}

}  // namespace

UniformWeightAgent::UniformWeightAgent(double value, std::uint32_t bound_on_n)
    : x_(value), step_(step_for(bound_on_n)) {}

void UniformWeightAgent::receive(std::span<const Message> messages) {
  // The agent's own message contributes zero to the correction, so the
  // anonymous multiset needs no self-identification.
  double delta = 0.0;
  for (const Message& m : messages) delta += m.x - x_;
  x_ += step_ * delta;
}

FrequencyUniformAgent::FrequencyUniformAgent(std::int64_t input,
                                             std::uint32_t bound_on_n)
    : input_(input), bound_(bound_on_n), step_(step_for(bound_on_n)) {
  x_[input_] = 1.0;
}

void FrequencyUniformAgent::receive(std::span<const Message> messages) {
  std::map<std::int64_t, double> next = x_;
  for (const Message& m : messages) {
    for (const auto& [value, x] : m.x) next.try_emplace(value, 0.0);
  }
  for (auto& [value, x_own] : next) {
    const double before = x_own;
    double delta = 0.0;
    for (const Message& m : messages) {
      auto it = m.x.find(value);
      delta += (it == m.x.end() ? 0.0 : it->second) - before;
    }
    x_own = before + step_ * delta;
  }
  x_ = std::move(next);
}

std::optional<Frequency> FrequencyUniformAgent::rounded_frequency() const {
  std::map<std::int64_t, Rational> entries;
  Rational total;
  for (const auto& [value, x] : x_) {
    if (!std::isfinite(x)) return std::nullopt;
    const Rational rounded = nearest_rational(x, bound_);
    if (rounded.signum() < 0) return std::nullopt;
    if (rounded.signum() > 0) entries.emplace(value, rounded);
    total += rounded;
  }
  if (total != Rational(1) || entries.empty()) return std::nullopt;
  return Frequency(std::move(entries));
}

}  // namespace anonet
