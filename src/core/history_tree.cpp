#include "core/history_tree.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/census.hpp"
#include "linalg/kernel.hpp"
#include "linalg/matrix.hpp"

namespace anonet {

HistoryFrequencyAgent::HistoryFrequencyAgent(
    std::shared_ptr<ViewRegistry> registry, std::shared_ptr<LabelCodec> codec,
    std::int64_t input)
    : registry_(std::move(registry)),
      codec_(std::move(codec)),
      input_(input) {
  if (registry_ == nullptr || codec_ == nullptr) {
    throw std::invalid_argument("HistoryFrequencyAgent: null registry/codec");
  }
}

HistoryFrequencyAgent::Message HistoryFrequencyAgent::send(int /*outdegree*/,
                                                           int /*port*/) const {
  const ViewId current = view_ == kInvalidView
                             ? registry_->leaf(codec_->value_label(input_))
                             : view_;
  return Message{current};
}

void HistoryFrequencyAgent::receive(std::span<const Message> messages) {
  if (messages.empty()) {
    throw std::logic_error("HistoryFrequencyAgent: missing self-loop?");
  }
  // History-tree node: the agent's own previous view in a distinguished
  // slot (color 1: the parent chain of the history tree, which DLV's agents
  // carry explicitly) plus the received multiset (color 0: one entry per
  // round-t in-edge, self-loop included). Unlike the static view agent
  // there is no truncation: levels are anchored at round 1, so a node of
  // depth k *is* some agent's genuine round-k view.
  const ViewId previous = view_ == kInvalidView
                              ? registry_->leaf(codec_->value_label(input_))
                              : view_;
  ViewRegistry::ChildList children;
  children.reserve(messages.size() + 1);
  children.emplace_back(previous, 1);
  for (const Message& m : messages) {
    children.emplace_back(m.view, 0);
  }
  view_ = registry_->node(codec_->value_label(input_), std::move(children));
  ++rounds_;
}

namespace {

// The distinguished own-predecessor child (color 1).
ViewId parent_class(const ViewRegistry& registry, ViewId node) {
  for (const auto& [child, color] : registry.children(node)) {
    if (color == 1) return child;
  }
  throw std::logic_error("HistoryFrequencyAgent: node without parent chain");
}

// Number of round-k in-edges from members of class `from` (color-0 slots).
int in_edge_count(const ViewRegistry& registry, ViewId node, ViewId from) {
  int count = 0;
  for (const auto& [child, color] : registry.children(node)) {
    if (color == 0 && child == from) ++count;
  }
  return count;
}

}  // namespace

const std::optional<HistoryFrequencyAgent::Solution>&
HistoryFrequencyAgent::solve() const {
  if (solution_round_ == rounds_) return solution_;
  solution_round_ = rounds_;
  solution_.reset();
  if (view_ == kInvalidView) return solution_;

  // Window of levels [t0, t1]: deep enough that the class sets are complete
  // (an agent sees every level-k class once k <= t - D), long enough to
  // carry the refinement relations. D is unknown; t/2 becomes valid once
  // t >= 2D, which the eventual-correctness contract absorbs.
  const int t = registry_->depth(view_);
  const int t1 = t / 2;
  // Cap the window length: deep history adds variables without adding
  // information once the classes have stabilized (each stable level repeats
  // the same relations), and the exact solve is cubic in the variable count.
  constexpr int kMaxWindowLevels = 12;
  const int t0 = std::max(t / 4, t1 - kMaxWindowLevels);
  if (t1 - t0 < 1) return solution_;

  // Class sets per level: every embedded sub-view of depth k is some
  // agent's genuine round-k view (level-k history-tree node).
  const std::vector<ViewId> subviews = registry_->subviews(view_);
  std::vector<std::set<ViewId>> levels(static_cast<std::size_t>(t1 - t0 + 1));
  for (ViewId s : subviews) {
    const int k = registry_->depth(s);
    if (k >= t0 && k <= t1) {
      levels[static_cast<std::size_t>(k - t0)].insert(s);
    }
  }

  // Variable index per (level, class).
  std::map<std::pair<int, ViewId>, std::size_t> var;
  std::vector<std::pair<int, ViewId>> var_keys;
  for (int k = t0; k <= t1; ++k) {
    for (ViewId c : levels[static_cast<std::size_t>(k - t0)]) {
      var.emplace(std::pair{k, c}, var_keys.size());
      var_keys.emplace_back(k, c);
    }
  }

  std::vector<std::vector<Rational>> rows;
  auto child_count = [&](ViewId node, ViewId child) {
    return in_edge_count(*registry_, node, child);
  };

  for (int k = t0 + 1; k <= t1; ++k) {
    const auto& lower = levels[static_cast<std::size_t>(k - 1 - t0)];
    const auto& upper = levels[static_cast<std::size_t>(k - t0)];
    // Children-of-parents map for this level (the parent chain).
    std::map<ViewId, std::vector<ViewId>> children_of;
    for (ViewId c : upper) {
      children_of[parent_class(*registry_, c)].push_back(c);
    }
    // Refinement: z_{parent} = Σ z_{children}.
    for (ViewId parent : lower) {
      std::vector<Rational> row(var_keys.size());
      row[var.at({k - 1, parent})] = Rational(1);
      auto it = children_of.find(parent);
      if (it == children_of.end()) return solution_;  // incomplete window
      for (ViewId child : it->second) {
        row[var.at({k, child})] -= Rational(1);
      }
      rows.push_back(std::move(row));
    }
    // Symmetry double count, per unordered pair of level-(k-1) classes:
    //   Σ_{C child of B} c_{C,D} z_C = Σ_{C child of D} c_{C,B} z_C.
    std::vector<ViewId> lower_list(lower.begin(), lower.end());
    for (std::size_t i = 0; i < lower_list.size(); ++i) {
      for (std::size_t j = i; j < lower_list.size(); ++j) {
        const ViewId b = lower_list[i];
        const ViewId d = lower_list[j];
        std::vector<Rational> row(var_keys.size());
        bool nontrivial = false;
        for (ViewId c : children_of[b]) {
          const int count = child_count(c, d);
          if (count != 0) {
            row[var.at({k, c})] += Rational(count);
            nontrivial = true;
          }
        }
        for (ViewId c : children_of[d]) {
          const int count = child_count(c, b);
          if (count != 0) {
            row[var.at({k, c})] -= Rational(count);
            nontrivial = true;
          }
        }
        // For b == d the row cancels only when both sums agree termwise;
        // keep nontrivial rows, they still constrain unequal-class splits.
        if (nontrivial) rows.push_back(std::move(row));
      }
    }
  }
  if (rows.empty()) return solution_;

  RationalMatrix system(rows.size(), var_keys.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < var_keys.size(); ++c) {
      system.at(r, c) = rows[r][c];
    }
  }
  const auto kernel = positive_coprime_kernel_vector(system);
  if (!kernel.has_value()) return solution_;

  Solution solution;
  for (std::size_t i = 0; i < var_keys.size(); ++i) {
    if (var_keys[i].first == t1) {
      solution.classes.push_back(var_keys[i].second);
      solution.sizes.push_back((*kernel)[i]);
    }
  }
  if (!solution.classes.empty()) solution_ = std::move(solution);
  return solution_;
}

std::optional<Frequency> HistoryFrequencyAgent::frequency_estimate() const {
  const auto& solution = solve();
  if (!solution.has_value()) return std::nullopt;
  BigInt total(0);
  std::map<std::int64_t, BigInt> weight;
  for (std::size_t i = 0; i < solution->classes.size(); ++i) {
    const std::int64_t value =
        codec_->value_of(registry_->label(solution->classes[i]));
    auto [it, inserted] = weight.emplace(value, solution->sizes[i]);
    if (!inserted) it->second += solution->sizes[i];
    total += solution->sizes[i];
  }
  std::map<std::int64_t, Rational> entries;
  for (auto& [value, w] : weight) entries.emplace(value, Rational(w, total));
  try {
    return Frequency(std::move(entries));
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::optional<std::map<std::int64_t, BigInt>>
HistoryFrequencyAgent::multiset_estimate(std::int64_t leader_count) const {
  if (leader_count <= 0) {
    throw std::invalid_argument("multiset_estimate: need >= 1 leader");
  }
  const auto& solution = solve();
  if (!solution.has_value()) return std::nullopt;
  BigInt leader_total(0);
  for (std::size_t i = 0; i < solution->classes.size(); ++i) {
    const std::int64_t coded =
        codec_->value_of(registry_->label(solution->classes[i]));
    if (decode_leader_flag(coded)) leader_total += solution->sizes[i];
  }
  if (leader_total.is_zero()) return std::nullopt;
  std::map<std::int64_t, BigInt> multiset;
  for (std::size_t i = 0; i < solution->classes.size(); ++i) {
    const std::int64_t coded =
        codec_->value_of(registry_->label(solution->classes[i]));
    const BigInt scaled = BigInt(leader_count) * solution->sizes[i];
    if (!(scaled % leader_total).is_zero()) return std::nullopt;
    auto [it, inserted] =
        multiset.emplace(decode_leader_value(coded), scaled / leader_total);
    if (!inserted) it->second += scaled / leader_total;
  }
  return multiset;
}

}  // namespace anonet
