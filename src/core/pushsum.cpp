#include "core/pushsum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace anonet {

PushSumAgent::PushSumAgent(double value, double weight)
    : y_(value), z_(weight) {
  if (weight <= 0.0) {
    throw std::invalid_argument("PushSumAgent: weight must be positive");
  }
}

PushSumAgent::Message PushSumAgent::send(int outdegree, int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error("PushSumAgent: requires outdegree awareness");
  }
  const double d = static_cast<double>(outdegree);
  return Message{y_ / d, z_ / d};
}

void PushSumAgent::receive(std::span<const Message> messages) {
  double y = 0.0;
  double z = 0.0;
  for (const Message& m : messages) {
    y += m.y_share;
    z += m.z_share;
  }
  y_ = y;
  z_ = z;
}

FrequencyPushSumAgent::FrequencyPushSumAgent(std::int64_t input,
                                             std::optional<bool> is_leader)
    : input_(input),
      z_default_(is_leader.has_value() && !*is_leader ? 0.0 : 1.0) {
  // Algorithm 1, line 3: y[v_i] <- 1, z[v_i] <- z-default.
  keys_.push_back(input_);
  ys_.push_back(1.0);
  zs_.push_back(z_default_);
}

FrequencyPushSumAgent::Message FrequencyPushSumAgent::send(
    int outdegree, int /*port*/) const {
  if (outdegree <= 0) {
    throw std::logic_error(
        "FrequencyPushSumAgent: requires outdegree awareness");
  }
  return Message{keys_, ys_, zs_, outdegree};
}

void FrequencyPushSumAgent::receive(std::span<const Message> messages) {
  // Per-value asynchronous starts, implemented *conservatively*: a sender
  // that does not know ω contributes nothing (in the G̃ construction of
  // Section 5.3 its edges do not exist yet for ω's instance), and an agent
  // deposits its whole z-default the first time it materializes ω (its
  // banked, never-circulated initial weight joining the instance). This
  // keeps Σy[ω] and Σz[ω] exactly invariant — Σz[ω] = n (or ℓ in the leader
  // variant) once every agent knows ω, so x[ω] -> multiplicity/n exactly.
  // Algorithm 1 as printed instead has *receivers* supply defaults for
  // unknowing senders (lines 9-10), which double-counts a unit that is also
  // re-deposited at the sender and measurably inflates Σz on directed
  // topologies (see pushsum_test.cpp, ConservativeJoiningIsExact); the
  // deviation is documented in DESIGN.md.
  //
  // Per-accumulator floating-point order is message order (each message
  // contributes at most one add per value), identical whether the outer loop
  // runs value-major over a map or message-major over vectors — so this SoA
  // merge is bit-for-bit the same as the original map-based update.
  merged_.clear();
  bool uniform = !messages.empty();
  for (const Message& m : messages) {
    if (m.keys != messages.front().keys) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    merged_ = messages.front().keys;
  } else {
    for (const Message& m : messages) {
      merged_.insert(merged_.end(), m.keys.begin(), m.keys.end());
    }
    std::sort(merged_.begin(), merged_.end());
    merged_.erase(std::unique(merged_.begin(), merged_.end()), merged_.end());
  }

  acc_y_.assign(merged_.size(), 0.0);
  acc_z_.assign(merged_.size(), 0.0);
  for (const Message& m : messages) {
    const double d = static_cast<double>(m.outdegree);
    if (m.keys.size() == merged_.size()) {
      // Equal sizes of sorted-unique subset and union mean equal key sets:
      // the dense lane the SoA layout exists for (vectorizable, no search).
      for (std::size_t i = 0; i < m.keys.size(); ++i) {
        acc_y_[i] += m.ys[i] / d;
        acc_z_[i] += m.zs[i] / d;
      }
    } else {
      std::size_t j = 0;
      for (std::size_t i = 0; i < m.keys.size(); ++i) {
        while (merged_[j] < m.keys[i]) ++j;
        acc_y_[j] += m.ys[i] / d;
        acc_z_[j] += m.zs[i] / d;
      }
    }
  }
  // Banked z-defaults for values this agent materializes just now.
  std::size_t i = 0;
  for (std::size_t j = 0; j < merged_.size(); ++j) {
    while (i < keys_.size() && keys_[i] < merged_[j]) ++i;
    if (i >= keys_.size() || keys_[i] != merged_[j]) acc_z_[j] += z_default_;
  }
  keys_.swap(merged_);
  ys_.swap(acc_y_);
  zs_.swap(acc_z_);
}

std::map<std::int64_t, double> FrequencyPushSumAgent::estimates() const {
  std::map<std::int64_t, double> result;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    result[keys_[i]] = zs_[i] > 0.0
                           ? ys_[i] / zs_[i]
                           : std::numeric_limits<double>::infinity();
  }
  return result;
}

std::map<std::int64_t, double> FrequencyPushSumAgent::normalized_estimates()
    const {
  std::map<std::int64_t, double> raw = estimates();
  double total = 0.0;
  for (const auto& [value, x] : raw) total += x;
  if (total > 0.0 && std::isfinite(total)) {
    for (auto& [value, x] : raw) x /= total;
  }
  return raw;
}

std::optional<Frequency> FrequencyPushSumAgent::rounded_frequency(
    std::uint32_t bound_on_n) const {
  std::map<std::int64_t, Rational> entries;
  Rational total;
  for (const auto& [value, x] : estimates()) {
    if (!std::isfinite(x)) return std::nullopt;
    const Rational rounded = nearest_rational(x, bound_on_n);
    if (rounded.signum() < 0) return std::nullopt;
    if (rounded.signum() > 0) entries.emplace(value, rounded);
    total += rounded;
  }
  if (total != Rational(1) || entries.empty()) return std::nullopt;
  return Frequency(std::move(entries));
}

std::map<std::int64_t, double> FrequencyPushSumAgent::multiplicity_estimates(
    std::int64_t leader_count) const {
  if (leader_count <= 0) {
    throw std::invalid_argument(
        "FrequencyPushSumAgent: leader_count must be positive");
  }
  std::map<std::int64_t, double> result = estimates();
  for (auto& [value, x] : result) x *= static_cast<double>(leader_count);
  return result;
}

}  // namespace anonet
