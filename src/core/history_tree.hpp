#pragma once

// History-tree frequency computation for dynamic symmetric networks,
// after the approach of Di Luna & Viglietta [25, 26] cited in Section 5.
//
// The paper's Table 2 credits [26] with *exact* computation of
// frequency-based functions in dynamic symmetric networks with no
// centralized help at all — no bound on n, no outdegree awareness — and
// [25] with exact multisets given leaders. The mechanism behind those
// results is the *history tree*: the per-round hierarchy of agent classes
// under view equivalence, which in our codebase is literally the view
// machinery run on the dynamic graph (level-t classes = depth-t views).
//
// What makes symmetric networks special is a per-round double count: all
// members of a level-t class A received the same number c_{A,B'} of round-t
// messages from members of each level-(t-1) class B' (it is part of their
// shared view), and in a bidirectional round graph the directed edge count
// between two agent sets is the same in both directions. Summed over the
// children of two level-(t-1) classes B', D' this yields, for the true
// class cardinalities z:
//     Σ_{C child of B'} c_{C,D'} · z_C  =  Σ_{C child of D'} c_{C,B'} · z_C,
// together with the refinement identities z_{B'} = Σ_{C child of B'} z_C.
// Every agent can read all coefficients off its own view; collecting the
// relations over a window of levels and solving the homogeneous system
// exactly (linalg/kernel.hpp) recovers the class cardinalities up to a
// common factor — hence the frequency function, with no knowledge of n.
//
// This module reproduces that mechanism and verifies it experimentally; the
// *guarantees* of [25, 26] (linear-time stabilization, disconnected
// networks) rest on their analysis and are not re-proved here — our agent
// is eventually exact on finite-dynamic-diameter symmetric networks in the
// same empirical sense as the rest of the library, and like DLV's algorithm
// it is not self-stabilizing and uses unbounded state.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "functions/functions.hpp"
#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"
#include "support/bigint.hpp"
#include "views/label_codec.hpp"
#include "views/view_registry.hpp"

namespace anonet {

class HistoryFrequencyAgent {
 public:
  struct Message {
    ViewId view = kInvalidView;

    [[nodiscard]] std::int64_t weight_units() const { return 1; }
  };

  // Degree-oblivious (simple broadcast sending function), but the whole
  // double-count mechanism rests on bidirectional round graphs — and not
  // just as a schedule promise: the correctness argument quantifies over
  // every round the executor accepts, so the *model* must certify symmetry
  // at delivery time. kNeedsSymmetricModel restricts this agent to
  // CommModel::kSymmetricBroadcast (compile error under any other model);
  // kSymmetricOnly additionally keeps the per-round symmetry check armed.
  // NOT kParallelSafe: agents intern into the shared registry.
  static constexpr bool kParallelSafe = false;
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kSymmetricOnly |
      ModelCapabilities::kNeedsSymmetricModel;

  // All agents of an execution share `registry` and `codec` (interning).
  HistoryFrequencyAgent(std::shared_ptr<ViewRegistry> registry,
                        std::shared_ptr<LabelCodec> codec, std::int64_t input);

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] std::int64_t input() const { return input_; }
  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] int rounds_run() const { return rounds_; }

  // Exact frequency estimate from the history-tree relations; nullopt while
  // the window is incomplete or the relation system does not yet pin a
  // one-dimensional positive solution. Cached per round.
  [[nodiscard]] std::optional<Frequency> frequency_estimate() const;

  // Section 5.5 analogue with leaders: inputs are
  // encode_leader_input()-coded; the leader classes pin the common factor,
  // turning class cardinalities into absolute multiplicities (of decoded
  // values). `leader_count` = ℓ, known to all.
  [[nodiscard]] std::optional<std::map<std::int64_t, BigInt>>
  multiset_estimate(std::int64_t leader_count) const;

 private:
  struct Solution {
    std::vector<ViewId> classes;  // deepest-window-level classes
    std::vector<BigInt> sizes;    // cardinalities up to a common factor
  };
  [[nodiscard]] const std::optional<Solution>& solve() const;

  std::shared_ptr<ViewRegistry> registry_;
  std::shared_ptr<LabelCodec> codec_;
  std::int64_t input_;
  ViewId view_ = kInvalidView;
  int rounds_ = 0;
  mutable std::optional<Solution> solution_;
  mutable int solution_round_ = -1;
};

ANONET_STATIC_AUDIT_DECLARATIONS(HistoryFrequencyAgent);

}  // namespace anonet
