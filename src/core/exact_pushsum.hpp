#pragma once

// Exact-arithmetic Push-Sum.
//
// The Push-Sum update is linear with rational coefficients 1/d, so the
// entire execution can be carried in exact rationals: Σy and Σz are then
// *identically* invariant (not up to float roundoff), and the iterates are
// the true mathematical trajectory of Theorem 5.2. Denominators grow like
// (max degree)^t, which BigInt absorbs comfortably at test scale; the
// double-based PushSumAgent remains the workhorse, and tests cross-validate
// it against this agent trajectory-by-trajectory.

#include <span>
#include <vector>

#include "runtime/capabilities.hpp"
#include "runtime/static_audit.hpp"
#include "support/rational.hpp"

namespace anonet {

class ExactPushSumAgent {
 public:
  struct Message {
    Rational y_share;
    Rational z_share;

    [[nodiscard]] std::int64_t weight_units() const { return 2; }
  };

  // All state is per-agent: safe under the executor's thread-parallel phases.
  static constexpr bool kParallelSafe = true;
  // Same 1/d rational mass split as PushSumAgent: outdegree awareness.
  static constexpr ModelCapabilities kModelCapabilities =
      ModelCapabilities::kNeedsOutdegree;

  // z(0) must be positive; x = y/z converges to Σvalues / Σweights.
  ExactPushSumAgent(Rational value, Rational weight);

  [[nodiscard]] Message send(int outdegree, int /*port*/) const;
  void receive(std::span<const Message> messages);

  [[nodiscard]] const Rational& y() const { return y_; }
  [[nodiscard]] const Rational& z() const { return z_; }
  [[nodiscard]] Rational output() const { return y_ / z_; }

 private:
  Rational y_;
  Rational z_;
};

ANONET_STATIC_AUDIT_DECLARATIONS(ExactPushSumAgent);

}  // namespace anonet
