#pragma once

// The three static frequency computations of Theorem 4.1 (Sections 4.2-4.3).
//
// All three start from the (distributively computed) minimum base and
// recover the fibre cardinalities up to a common positive factor:
//   - outdegree awareness: solve the homogeneous fibre-equation system
//     M z = 0 (eq. 1), whose kernel the paper proves one-dimensional with a
//     positive generator via the à-la-Perron-Frobenius argument;
//   - symmetric communications: propagate the pairwise ratios of eq. (4)
//     d_{i,j} |φ⁻¹(j)| = d_{j,i} |φ⁻¹(i)| along a spanning tree;
//   - output port awareness: fibrations are coverings, so all fibres have
//     the same cardinality (eq. 3) and no system needs solving.
// The ratios determine the frequency function of the input vector, hence
// f(v) for every frequency-based f.
//
// These functions accept *candidate* bases (possibly wrong in early rounds)
// and return nullopt when the candidate cannot support a consistent
// solution; from round n + D onwards they succeed and are exact.

#include <cstdint>
#include <optional>
#include <vector>

#include "functions/functions.hpp"
#include "graph/digraph.hpp"
#include "linalg/matrix.hpp"
#include "runtime/comm_model.hpp"
#include "support/bigint.hpp"
#include "views/base_extraction.hpp"
#include "views/label_codec.hpp"

namespace anonet {

// The Section 4.2 matrix: M_{i,j} = d_{i,j} (i != j), M_{i,i} = d_{i,i} - b_i
// where d_{i,j} counts base edges i -> j and b_i is the common outdegree of
// the fibre over i.
[[nodiscard]] RationalMatrix fibre_matrix(const Digraph& base,
                                          const std::vector<int>& outdegrees);

// Outdegree awareness: the positive coprime generator of ker M, i.e. the
// fibre cardinalities up to a common factor (eq. 2).
[[nodiscard]] std::optional<std::vector<BigInt>> fibre_ratios_outdegree(
    const Digraph& base, const std::vector<int>& base_outdegrees);

// Symmetric communications: ratios from eq. (4). Verifies consistency of
// every support edge (a failed check flags a bogus candidate base).
[[nodiscard]] std::optional<std::vector<BigInt>> fibre_ratios_symmetric(
    const Digraph& base);

// Output port awareness: all-ones (eq. 3).
[[nodiscard]] std::vector<BigInt> fibre_ratios_ports(const Digraph& base);

// ν_v from base values and fibre ratios: ν(ω) = Σ_{i: w_i = ω} z_i / Σ_i z_i.
[[nodiscard]] Frequency frequency_from_ratios(
    const std::vector<std::int64_t>& base_values,
    const std::vector<BigInt>& ratios);

// End-to-end, per model: decode the candidate's labels with `codec`, pick
// the model's ratio rule, return ν_v. nullopt for kSimpleBroadcast (Theorem
// 4.1's negative side — no rule exists) or when the candidate is inconsistent.
[[nodiscard]] std::optional<Frequency> static_frequency_estimate(
    const ExtractedBase& candidate, const LabelCodec& codec, CommModel model);

// Decoded view of a candidate base (labels -> input values / outdegrees).
struct DecodedBase {
  std::vector<std::int64_t> values;
  std::vector<int> outdegrees;  // empty unless labels carry outdegrees
};
[[nodiscard]] std::optional<DecodedBase> decode_base(
    const ExtractedBase& candidate, const LabelCodec& codec);

}  // namespace anonet
