#include "dynamics/perturbation.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

namespace anonet {

namespace {

void require_round(int t) {
  if (t < 1) throw std::invalid_argument("DynamicGraph::at: rounds start at 1");
}

void require_positive(Vertex n, const char* who) {
  if (n <= 0) throw std::invalid_argument(std::string(who) + ": n > 0");
}

}  // namespace

StartSchedule StartSchedule::staggered(Vertex n, int stride) {
  if (n <= 0 || stride < 0) {
    throw std::invalid_argument("StartSchedule::staggered: n > 0, stride >= 0");
  }
  StartSchedule s;
  s.wake_rounds.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    s.wake_rounds[static_cast<std::size_t>(v)] = 1 + stride * v;
  }
  return s;
}

StartSchedule StartSchedule::straggler(Vertex n, int wake_round) {
  if (n <= 0 || wake_round < 1) {
    throw std::invalid_argument(
        "StartSchedule::straggler: n > 0, wake_round >= 1");
  }
  StartSchedule s;
  s.wake_rounds.assign(static_cast<std::size_t>(n), 1);
  s.wake_rounds.back() = wake_round;
  return s;
}

FaultPlan FaultPlan::crash_first_agent(Vertex n, int round) {
  if (n <= 0 || round < 1) {
    throw std::invalid_argument("FaultPlan::crash_first_agent: bad arguments");
  }
  FaultPlan plan;
  plan.crash_rounds.assign(static_cast<std::size_t>(n), 0);
  plan.crash_rounds.front() = round;
  return plan;
}

FaultPlan FaultPlan::drop(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.drop_rate = rate;
  plan.drop_seed = seed;
  return plan;
}

std::uint64_t drop_threshold(double rate) {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return ~0ull;
  // Scale into the u64 draw range; ldexp keeps the full 53-bit precision.
  return static_cast<std::uint64_t>(std::ldexp(rate, 64));
}

ChurnSchedule::ChurnSchedule(DynamicGraphPtr inner, int epoch_length,
                             double churn_rate, std::uint64_t seed)
    : inner_(std::move(inner)),
      epoch_length_(epoch_length),
      leave_threshold_(drop_threshold(churn_rate)),
      seed_(seed) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("ChurnSchedule: null inner schedule");
  }
  if (epoch_length <= 0) {
    throw std::invalid_argument("ChurnSchedule: epoch_length > 0");
  }
  if (churn_rate < 0.0 || churn_rate >= 1.0) {
    throw std::invalid_argument("ChurnSchedule: churn_rate in [0, 1)");
  }
}

bool ChurnSchedule::present(Vertex v, int t) const {
  require_round(t);
  const int epoch = (t - 1) / epoch_length_;
  // Epoch 0 is the warm-up with everyone on; vertex 0 anchors the overlay.
  if (epoch == 0 || v == 0) return true;
  return CounterRng(seed_, static_cast<std::uint64_t>(epoch),
                    static_cast<std::uint64_t>(v))() >= leave_threshold_;
}

Digraph ChurnSchedule::at(int t) const {
  require_round(t);
  const Digraph inner = inner_->at(t);
  Digraph g(inner.vertex_count());
  for (const Edge& e : inner.edges()) {
    if (e.source == e.target ||
        (present(e.source, t) && present(e.target, t))) {
      g.add_edge(e.source, e.target, e.color);
    }
  }
  g.ensure_self_loops();
  return g;
}

RoundGraphRef ChurnSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(cache_.get(t, [this](int round) { return at(round); }));
}

Digraph preferential_attachment_graph(Vertex n, int m, std::uint64_t seed) {
  require_positive(n, "preferential_attachment_graph");
  if (m < 1) {
    throw std::invalid_argument("preferential_attachment_graph: m >= 1");
  }
  std::mt19937_64 rng(seed);
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, v);
  // Classic endpoint-list trick: sampling a uniform element of `endpoints`
  // is sampling a vertex proportionally to its (undirected) degree.
  std::vector<Vertex> endpoints;
  std::vector<Vertex> picked;
  for (Vertex v = 1; v < n; ++v) {
    const int links = std::min<int>(m, v);
    picked.clear();
    while (static_cast<int>(picked.size()) < links) {
      Vertex target;
      if (endpoints.empty()) {
        target = 0;
      } else {
        std::uniform_int_distribution<std::size_t> pick(0,
                                                        endpoints.size() - 1);
        target = endpoints[pick(rng)];
      }
      if (std::find(picked.begin(), picked.end(), target) == picked.end()) {
        picked.push_back(target);
      }
    }
    for (Vertex target : picked) {
      g.add_edge(v, target);
      g.add_edge(target, v);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return g;
}

Digraph random_geometric_graph(Vertex n, double radius, std::uint64_t seed) {
  require_positive(n, "random_geometric_graph");
  if (!(radius > 0.0)) {
    throw std::invalid_argument("random_geometric_graph: radius > 0");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    x[static_cast<std::size_t>(v)] = coord(rng);
    y[static_cast<std::size_t>(v)] = coord(rng);
  }
  const auto dist2 = [&](Vertex a, Vertex b) {
    const double dx = x[static_cast<std::size_t>(a)] -
                      x[static_cast<std::size_t>(b)];
    const double dy = y[static_cast<std::size_t>(a)] -
                      y[static_cast<std::size_t>(b)];
    return dx * dx + dy * dy;
  };
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, v);
  const double r2 = radius * radius;
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = static_cast<Vertex>(a + 1); b < n; ++b) {
      if (dist2(a, b) <= r2) {
        g.add_edge(a, b);
        g.add_edge(b, a);
      }
    }
  }
  // Connectivity backbone: link every vertex to its geometrically nearest
  // predecessor (deterministic given the positions), so sparse placements
  // still form one component instead of radius-dependent islands.
  for (Vertex v = 1; v < n; ++v) {
    Vertex nearest = 0;
    for (Vertex u = 1; u < v; ++u) {
      if (dist2(v, u) < dist2(v, nearest)) nearest = u;
    }
    if (!g.has_edge(v, nearest)) {
      g.add_edge(v, nearest);
      g.add_edge(nearest, v);
    }
  }
  return g;
}

namespace {

// Shared churn parameters for the campaign factories: epochs long enough
// that a protocol makes progress inside one, churn heavy enough that most
// epochs lose somebody.
constexpr int kChurnEpochLength = 8;
constexpr double kChurnRate = 0.25;

}  // namespace

DynamicGraphPtr preferential_churn_schedule(Vertex n, std::uint64_t seed) {
  auto base = std::make_shared<StaticSchedule>(
      preferential_attachment_graph(n, /*m=*/2, seed));
  return std::make_shared<ChurnSchedule>(std::move(base), kChurnEpochLength,
                                         kChurnRate, seed ^ 0xc4ceb9fe1a85ec53ull);
}

DynamicGraphPtr geometric_churn_schedule(Vertex n, std::uint64_t seed) {
  // Radius targeting ~8 expected neighbors; the backbone keeps small or
  // unlucky placements connected regardless.
  const double radius =
      std::sqrt(2.5 / static_cast<double>(std::max<Vertex>(n, 2)));
  auto base = std::make_shared<StaticSchedule>(
      random_geometric_graph(n, radius, seed));
  return std::make_shared<ChurnSchedule>(std::move(base), kChurnEpochLength,
                                         kChurnRate, seed ^ 0xff51afd7ed558ccdull);
}

}  // namespace anonet
