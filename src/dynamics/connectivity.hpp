#pragma once

// Dynamic-diameter measurement (Section 2.1).
//
// The dynamic diameter of G is the smallest D such that for every t the
// product G(t) ∘ ... ∘ G(t+D-1) is complete: every agent hears (possibly
// indirectly) from every agent within any window of D rounds. Experiments
// use these helpers to certify that a schedule belongs to the network class
// a theorem quantifies over before measuring anything on it.

#include "dynamics/dynamic_graph.hpp"

namespace anonet {

// Smallest w such that G(t) ∘ ... ∘ G(t+w-1) is complete, or -1 if no
// window up to max_window suffices.
[[nodiscard]] int window_to_complete(const DynamicGraph& g, int t,
                                     int max_window);

// Max of window_to_complete over t in [1, horizon] — an empirical dynamic
// diameter over the measured horizon. Returns -1 when some window fails.
[[nodiscard]] int dynamic_diameter(const DynamicGraph& g, int horizon,
                                   int max_window);

}  // namespace anonet
