#include "dynamics/schedules.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

#include "graph/generators.hpp"

namespace anonet {

namespace {

// Splitmix-style mixing so per-round seeds are decorrelated.
std::uint64_t mix_seed(std::uint64_t seed, int t) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void require_round(int t) {
  if (t < 1) throw std::invalid_argument("DynamicGraph::at: rounds start at 1");
}

}  // namespace

StaticSchedule::StaticSchedule(Digraph g) : graph_(std::move(g)) {
  graph_.ensure_self_loops();
}

Digraph StaticSchedule::at(int t) const {
  require_round(t);
  return graph_;
}

RoundGraphRef StaticSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(&graph_);
}

PeriodicSchedule::PeriodicSchedule(std::vector<Digraph> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw std::invalid_argument("PeriodicSchedule: need at least one phase");
  }
  for (Digraph& g : phases_) {
    if (g.vertex_count() != phases_.front().vertex_count()) {
      throw std::invalid_argument("PeriodicSchedule: vertex count mismatch");
    }
    g.ensure_self_loops();
  }
}

Vertex PeriodicSchedule::vertex_count() const {
  return phases_.front().vertex_count();
}

Digraph PeriodicSchedule::at(int t) const {
  require_round(t);
  return phases_[static_cast<std::size_t>(t - 1) % phases_.size()];
}

RoundGraphRef PeriodicSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(&phases_[static_cast<std::size_t>(t - 1) % phases_.size()]);
}

RandomStronglyConnectedSchedule::RandomStronglyConnectedSchedule(
    Vertex n, int extra_edges, std::uint64_t seed)
    : n_(n), extra_edges_(extra_edges), seed_(seed) {
  if (n <= 0) {
    throw std::invalid_argument("RandomStronglyConnectedSchedule: n > 0");
  }
}

Digraph RandomStronglyConnectedSchedule::at(int t) const {
  require_round(t);
  return random_strongly_connected(n_, extra_edges_, mix_seed(seed_, t));
}

RoundGraphRef RandomStronglyConnectedSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(cache_.get(t, [this](int round) { return at(round); }));
}

RandomSymmetricSchedule::RandomSymmetricSchedule(Vertex n, int extra_pairs,
                                                 std::uint64_t seed)
    : n_(n), extra_pairs_(extra_pairs), seed_(seed) {
  if (n <= 0) throw std::invalid_argument("RandomSymmetricSchedule: n > 0");
}

Digraph RandomSymmetricSchedule::at(int t) const {
  require_round(t);
  return random_symmetric_connected(n_, extra_pairs_, mix_seed(seed_, t));
}

RoundGraphRef RandomSymmetricSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(cache_.get(t, [this](int round) { return at(round); }));
}

TokenRingSchedule::TokenRingSchedule(Vertex n) : n_(n) {
  if (n <= 0) throw std::invalid_argument("TokenRingSchedule: n > 0");
}

Digraph TokenRingSchedule::at(int t) const {
  require_round(t);
  Digraph g(n_);
  for (Vertex v = 0; v < n_; ++v) g.add_edge(v, v);
  if (n_ > 1) {
    const Vertex src = static_cast<Vertex>((t - 1) % n_);
    g.add_edge(src, (src + 1) % n_);
  }
  return g;
}

RandomMatchingSchedule::RandomMatchingSchedule(Vertex n, std::uint64_t seed)
    : n_(n), seed_(seed) {
  if (n <= 0) throw std::invalid_argument("RandomMatchingSchedule: n > 0");
}

Digraph RandomMatchingSchedule::at(int t) const {
  require_round(t);
  std::mt19937_64 rng(mix_seed(seed_, t));
  std::vector<Vertex> order(static_cast<std::size_t>(n_));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  Digraph g(n_);
  for (Vertex v = 0; v < n_; ++v) g.add_edge(v, v);
  // Pair consecutive vertices of the shuffled order; odd leftover stays
  // isolated this round (degree zero, footnote 2 of the paper).
  for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
    g.add_edge(order[i], order[i + 1]);
    g.add_edge(order[i + 1], order[i]);
  }
  return g;
}

RoundGraphRef RandomMatchingSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(cache_.get(t, [this](int round) { return at(round); }));
}

GrowingGapSchedule::GrowingGapSchedule(Digraph base, int burst_length,
                                       int initial_gap)
    : base_(std::move(base)),
      burst_length_(burst_length),
      initial_gap_(initial_gap) {
  if (burst_length <= 0 || initial_gap <= 0) {
    throw std::invalid_argument("GrowingGapSchedule: positive lengths only");
  }
  base_.ensure_self_loops();
  isolated_ = Digraph(base_.vertex_count());
  isolated_.ensure_self_loops();
}

bool GrowingGapSchedule::in_burst(int t) const {
  require_round(t);
  // Bursts start at 1, 1 + (burst + gap), 1 + 2*burst + 3*gap, ... with the
  // gap doubling each time.
  long long start = 1;
  long long gap = initial_gap_;
  while (start <= t) {
    if (t < start + burst_length_) return true;
    start += burst_length_ + gap;
    gap *= 2;
  }
  return false;
}

Digraph GrowingGapSchedule::at(int t) const {
  require_round(t);
  return in_burst(t) ? base_ : isolated_;
}

RoundGraphRef GrowingGapSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(in_burst(t) ? &base_ : &isolated_);
}

AsyncStartSchedule::AsyncStartSchedule(DynamicGraphPtr inner,
                                       std::vector<int> start_rounds)
    : inner_(std::move(inner)), start_rounds_(std::move(start_rounds)) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("AsyncStartSchedule: null inner schedule");
  }
  if (start_rounds_.size() !=
      static_cast<std::size_t>(inner_->vertex_count())) {
    throw std::invalid_argument("AsyncStartSchedule: start_rounds size");
  }
}

Digraph AsyncStartSchedule::at(int t) const {
  require_round(t);
  const Digraph inner = inner_->at(t);
  Digraph g(inner.vertex_count());
  for (const Edge& e : inner.edges()) {
    const int needed =
        std::max(start_rounds_[static_cast<std::size_t>(e.source)],
                 start_rounds_[static_cast<std::size_t>(e.target)]);
    if (e.source == e.target || t >= needed) {
      g.add_edge(e.source, e.target, e.color);
    }
  }
  g.ensure_self_loops();
  return g;
}

}  // namespace anonet
