#pragma once

// Dynamic graphs: an infinite sequence G(1), G(2), ... over a fixed vertex
// set (Section 2.1). Implementations must be deterministic functions of the
// round (randomized schedules derive their round graph from a seed and t) so
// executions are reproducible and the same schedule can be replayed for
// analysis and for simulation.

#include <memory>
#include <utility>

#include "graph/digraph.hpp"

namespace anonet {

// A round graph handed out by a schedule, either *borrowed* (a pointer into
// storage the schedule keeps alive — static and periodic schedules serve
// the same Digraph object every round) or *owned* (a graph materialized for
// this round). Borrowed views are what lets the executor skip per-round
// graph copies and key its per-graph caches (validation verdicts, arena
// offsets) on object identity: a borrowed pointer is stable for the
// lifetime of the schedule, so `&view.get()` identifies the topology.
class RoundGraphRef {
 public:
  // Owned: wraps a freshly built graph (identity is NOT stable across
  // rounds; callers must not cache on the address).
  explicit RoundGraphRef(Digraph graph)
      : owned_(std::make_shared<const Digraph>(std::move(graph))),
        ptr_(owned_.get()) {}

  // Borrowed: `graph` must outlive every use of this ref (schedules return
  // pointers to members, which the executor holds via DynamicGraphPtr).
  explicit RoundGraphRef(const Digraph* graph) : ptr_(graph) {}

  [[nodiscard]] const Digraph& get() const { return *ptr_; }
  [[nodiscard]] bool is_borrowed() const { return owned_ == nullptr; }

 private:
  std::shared_ptr<const Digraph> owned_;  // null when borrowed
  const Digraph* ptr_;
};

class DynamicGraph {
 public:
  virtual ~DynamicGraph() = default;

  [[nodiscard]] virtual Vertex vertex_count() const = 0;

  // Communication graph of round t (t >= 1). Must contain a self-loop at
  // every vertex (an agent always hears itself).
  [[nodiscard]] virtual Digraph at(int t) const = 0;

  // Borrowed-or-owned access to the round-t graph. The default materializes
  // at(t); schedules that store their round graphs (static, periodic,
  // growing-gap) override this to lend the stored object instead, saving a
  // full graph copy per round. Semantically view(t).get() == at(t) always.
  [[nodiscard]] virtual RoundGraphRef view(int t) const {
    return RoundGraphRef(at(t));
  }
};

using DynamicGraphPtr = std::shared_ptr<const DynamicGraph>;

}  // namespace anonet
