#pragma once

// Dynamic graphs: an infinite sequence G(1), G(2), ... over a fixed vertex
// set (Section 2.1). Implementations must be deterministic functions of the
// round (randomized schedules derive their round graph from a seed and t) so
// executions are reproducible and the same schedule can be replayed for
// analysis and for simulation.

#include <memory>

#include "graph/digraph.hpp"

namespace anonet {

class DynamicGraph {
 public:
  virtual ~DynamicGraph() = default;

  [[nodiscard]] virtual Vertex vertex_count() const = 0;

  // Communication graph of round t (t >= 1). Must contain a self-loop at
  // every vertex (an agent always hears itself).
  [[nodiscard]] virtual Digraph at(int t) const = 0;
};

using DynamicGraphPtr = std::shared_ptr<const DynamicGraph>;

}  // namespace anonet
