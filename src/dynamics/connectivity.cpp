#include "dynamics/connectivity.hpp"

#include <algorithm>

namespace anonet {

int window_to_complete(const DynamicGraph& g, int t, int max_window) {
  Digraph product = g.at(t);
  if (is_complete_with_self_loops(product)) return 1;
  for (int w = 2; w <= max_window; ++w) {
    product = graph_product(product, g.at(t + w - 1));
    if (is_complete_with_self_loops(product)) return w;
  }
  return -1;
}

int dynamic_diameter(const DynamicGraph& g, int horizon, int max_window) {
  int result = 0;
  for (int t = 1; t <= horizon; ++t) {
    const int w = window_to_complete(g, t, max_window);
    if (w == -1) return -1;
    result = std::max(result, w);
  }
  return result;
}

}  // namespace anonet
