#pragma once

// Adversarial dynamic-graph schedules for the campaign subsystem.
//
// The random schedules (schedules.hpp) have dynamic diameter close to their
// expectation almost every round; worst-case claims — Theorem 5.2's
// O(n^{2D}·D·log(1/ε)) Push-Sum bound, the n + D minimum-base stabilization
// of Sections 3.2/4.2 — are about the *maximum* over schedules of a class.
// These two adversaries pin the corners the random families never hit, in
// the spirit of the dynamic-network separations of Di Luna & Viglietta
// (PAPERS.md): a schedule that realizes a prescribed dynamic diameter D by
// maximally delaying cross-network information, and a schedule that is
// connected only in the union — no single round graph is connected — yet
// still has finite dynamic diameter.
//
// Both serve borrowed views from precomputed phase storage, so campaigns
// over them pay no per-round graph materialization.

#include <vector>

#include "dynamics/dynamic_graph.hpp"

namespace anonet {

// Bounded-dynamic-diameter delay adversary ("spooner": a spoon-shaped round
// graph — a well-mixed bowl with one long handle it feeds only reluctantly).
//
// Vertices {0, ..., n-2} form a bidirectional star around hub 0 (the bowl:
// any bowl vertex reaches any other within 2 rounds through the hub). The
// handle vertex n-1 is attached through the bidirectional bridge
// {n-2, n-1}, but the adversary serves the bridge only on rounds that are
// multiples of `period` — every other round the handle is isolated (its
// self-loop only). Information between the handle and the rest of the
// network therefore waits up to `period` rounds at the bridge in each
// direction, which maximizes the information delay achievable for the
// resulting dynamic diameter D (measured: D = period + 2 for period >= 2;
// tests certify this with dynamics/connectivity.hpp). Every round graph is
// symmetric, so the schedule is admissible for every communication model
// and for kSymmetricOnly agents.
//
// Requires n >= 3 and period >= 1.
class SpoonerSchedule final : public DynamicGraph {
 public:
  SpoonerSchedule(Vertex n, int period);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed: both phase graphs are precomputed members.
  [[nodiscard]] RoundGraphRef view(int t) const override;
  // True when round t carries the bridge to the handle vertex.
  [[nodiscard]] bool bridge_round(int t) const;
  [[nodiscard]] int period() const { return period_; }

 private:
  Vertex n_;
  int period_;
  Digraph with_bridge_;     // star + bridge + self-loops
  Digraph without_bridge_;  // star + isolated handle + self-loops
};

// Eventually-connected union adversary: a proper partition of a
// bidirectional ring's edges into `parts` groups, served round-robin — round
// t carries only the ring edges with index ≡ (t-1) (mod parts), both
// orientations, plus all self-loops. With parts >= 2 and n >= 4 every
// single round graph is disconnected (it is a partial matching of the
// ring), yet the union of any `parts` consecutive rounds is the full ring,
// so the dynamic diameter is finite (at most parts · n). This is the
// "connected only in the union" regime: algorithms that implicitly assume
// per-round connectivity (or per-round strong connectivity) break here
// while the paper's finite-dynamic-diameter machinery must not.
//
// Every round graph is symmetric. Requires n >= 2 and parts >= 1; rounds
// cycle deterministically, no randomness involved.
class UnionRingSchedule final : public DynamicGraph {
 public:
  UnionRingSchedule(Vertex n, int parts);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed: one precomputed graph per part.
  [[nodiscard]] RoundGraphRef view(int t) const override;
  [[nodiscard]] int parts() const { return static_cast<int>(phases_.size()); }

 private:
  Vertex n_;
  std::vector<Digraph> phases_;
};

// Weak-connectivity adversary with unboundedly growing silent gaps: the
// full bidirectional ring is served exactly on rounds that are powers of
// two (1, 2, 4, 8, ...); every other round every vertex is isolated (its
// self-loop only). The schedule is connected infinitely often — every
// finite suffix still contains a connected round — so it sits inside the
// weakest connectivity class the paper's eventual-stabilization results
// tolerate. But the gap between consecutive connected rounds doubles
// forever, so the dynamic diameter is *unbounded*: no function of n bounds
// the information delay, which is exactly the regime where round-counted
// convergence bounds (Theorem 5.2's Push-Sum rate, fixed round budgets)
// lose their footing while stabilization-style claims survive. The
// complement of UnionRingSchedule: there every round is disconnected but
// delay is bounded; here single rounds are fully connected but delay is
// not.
//
// Sibling of schedules.hpp's GrowingGapSchedule (bursts of a caller-chosen
// base graph with doubling gaps): this variant is campaign-friendly — fully
// determined by n, ring base, single-round bursts pinned to powers of two —
// so a campaign cell can name it as a schedule axis value with no extra
// parameters.
//
// Every round graph is symmetric (a ring or the empty graph plus
// self-loops), so the schedule is admissible for every communication model
// and for kSymmetricOnly agents. Requires n >= 2; deterministic.
class GrowingGapRingSchedule final : public DynamicGraph {
 public:
  explicit GrowingGapRingSchedule(Vertex n);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed: both phase graphs are precomputed members.
  [[nodiscard]] RoundGraphRef view(int t) const override;
  // True when round t serves the ring (t a power of two).
  [[nodiscard]] static bool connected_round(int t);

 private:
  Vertex n_;
  Digraph ring_;  // bidirectional ring + self-loops
  Digraph idle_;  // self-loops only
};

}  // namespace anonet
