#pragma once

// Perturbations: the ways a run can deviate from the clean synchronous
// model while staying a deterministic function of (inputs, schedule, seed).
//
// Three axes, composable over any schedule:
//
//  - StartSchedule: executor-level asynchronous starts. Agent v wakes at
//    round w(v); before that it sends nothing and ignores deliveries (its
//    state is frozen at the initial state). This is the Section 2.2 regime
//    that the paper's self-stabilizing window extraction is built to
//    survive, expressed at the executor rather than by thinning the round
//    graphs (cf. AsyncStartSchedule, which models the same adversary as a
//    graph wrapper).
//
//  - FaultPlan: crash-stop rounds per vertex plus an iid message-drop
//    rate. A crashed agent permanently stops sending and receiving; its
//    last state remains readable (its output is stuck — exactly why
//    termination-detecting protocols break). Drops are decided per
//    (round, edge) by a counter RNG, so the loss pattern is a pure
//    function of the fault seed no matter how many threads deliver.
//
//  - ChurnSchedule: join/leave dynamics à la P2P overlays (Michail,
//    Chatzigiannakis & Spirakis: "Naming and Counting in Anonymous
//    Unknown Dynamic Networks"). Membership is resampled per epoch; an
//    absent vertex keeps only its self-loop (state frozen, rejoins with
//    state intact — a leave/rejoin, not a crash).
//
// Plus two realistic static topology families beyond rings and spooners:
// preferential-attachment (scale-free) and random-geometric graphs, the
// usual substrates for churn experiments.

#include <cstdint>
#include <vector>

#include "dynamics/dynamic_graph.hpp"
#include "dynamics/schedules.hpp"
#include "support/counter_rng.hpp"

namespace anonet {

// Round at which each agent wakes. Empty = synchronous (everyone awake
// from round 1). A sleeping agent neither sends nor receives; the round
// graph is untouched, so senders still split their state across the full
// outdegree — mass sent toward a sleeper is lost, which is the honest
// price of an executor-level async start.
struct StartSchedule {
  std::vector<int> wake_rounds;

  [[nodiscard]] bool awake(Vertex v, int t) const {
    return wake_rounds.empty() || t >= wake_rounds[static_cast<std::size_t>(v)];
  }
  // True when the schedule gates nothing (everyone awake from round 1).
  [[nodiscard]] bool trivial() const {
    for (int w : wake_rounds) {
      if (w > 1) return false;
    }
    return true;
  }

  static StartSchedule synchronous() { return {}; }
  // Agent v wakes at round 1 + stride * v.
  static StartSchedule staggered(Vertex n, int stride);
  // Everyone wakes at round 1 except the last agent, who sleeps until
  // `wake_round`.
  static StartSchedule straggler(Vertex n, int wake_round);
};

// Crash-stop rounds and message-drop rate. Entries <= 0 in `crash_rounds`
// mean "never crashes"; a vertex with crash round c is gone from round c
// onward. `drop_rate` in [0, 1] is the iid per-(round, edge) loss
// probability; self-loops never drop (an agent always hears itself).
struct FaultPlan {
  std::vector<int> crash_rounds;
  double drop_rate = 0.0;
  std::uint64_t drop_seed = 0;

  [[nodiscard]] bool crashed(Vertex v, int t) const {
    if (crash_rounds.empty()) return false;
    const int c = crash_rounds[static_cast<std::size_t>(v)];
    return c > 0 && t >= c;
  }
  [[nodiscard]] bool trivial() const {
    if (drop_rate > 0.0) return false;
    for (int c : crash_rounds) {
      if (c > 0) return false;
    }
    return true;
  }

  // Agent 0 crashes at round `round`, nobody else.
  static FaultPlan crash_first_agent(Vertex n, int round);
  static FaultPlan drop(double rate, std::uint64_t seed);
};

// `rate` scaled to a u64 comparison threshold (clamped to [0, 1]).
[[nodiscard]] std::uint64_t drop_threshold(double rate);

// Deterministic per-(round, edge) drop decision: a pure function of the
// key, so delivery threads agree without coordination.
[[nodiscard]] inline bool drops_message(std::uint64_t seed, int t, EdgeId e,
                                        std::uint64_t threshold) {
  return threshold != 0 &&
         CounterRng(seed, static_cast<std::uint64_t>(t),
                    static_cast<std::uint64_t>(e))() < threshold;
}

// Join/leave churn over any schedule: membership is resampled every
// `epoch_length` rounds — each vertex is independently present with
// probability 1 - churn_rate, decided by a counter RNG keyed on
// (seed, epoch, vertex). Absent vertices keep only their self-loop: their
// state freezes and survives to the rejoin (leave/rejoin, not crash).
// Epoch 1 (rounds 1..epoch_length) always has full membership so every
// input value is heard at least once, and vertex 0 is a permanent anchor
// so the population never empties. at(t) is a pure function of
// (construction arguments, t); like the random schedules, the borrowed
// view goes through a RoundGraphCache and must not be shared between
// concurrently stepping executors.
class ChurnSchedule final : public DynamicGraph {
 public:
  ChurnSchedule(DynamicGraphPtr inner, int epoch_length, double churn_rate,
                std::uint64_t seed);

  [[nodiscard]] Vertex vertex_count() const override {
    return inner_->vertex_count();
  }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed through the double-buffered round cache (see RoundGraphCache).
  [[nodiscard]] RoundGraphRef view(int t) const override;

  // Is vertex v a member during round t?
  [[nodiscard]] bool present(Vertex v, int t) const;

 private:
  DynamicGraphPtr inner_;
  int epoch_length_;
  std::uint64_t leave_threshold_;
  std::uint64_t seed_;
  RoundGraphCache cache_;
};

// Barabási–Albert style preferential attachment: vertex i attaches to
// min(m, i) distinct earlier vertices chosen proportionally to degree,
// both orientations plus self-loops. Connected, symmetric, scale-free-ish
// degree tail — the shape of a real unstructured overlay.
[[nodiscard]] Digraph preferential_attachment_graph(Vertex n, int m,
                                                    std::uint64_t seed);

// Random geometric graph: positions uniform in the unit square, an edge
// (both orientations) between vertices within `radius`, plus a
// deterministic nearest-predecessor link from every vertex so the graph
// is connected even below the connectivity threshold. Symmetric, with
// self-loops.
[[nodiscard]] Digraph random_geometric_graph(Vertex n, double radius,
                                             std::uint64_t seed);

// Campaign-facing factories: a churn overlay over a static realistic
// topology, all parameters derived from (n, seed).
[[nodiscard]] DynamicGraphPtr preferential_churn_schedule(Vertex n,
                                                          std::uint64_t seed);
[[nodiscard]] DynamicGraphPtr geometric_churn_schedule(Vertex n,
                                                       std::uint64_t seed);

}  // namespace anonet
