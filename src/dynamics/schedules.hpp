#pragma once

// Dynamic-graph schedules used by the experiments.

#include <cstdint>
#include <vector>

#include "dynamics/dynamic_graph.hpp"

namespace anonet {

// The same graph every round (a static network seen dynamically).
class StaticSchedule final : public DynamicGraph {
 public:
  explicit StaticSchedule(Digraph g);

  [[nodiscard]] Vertex vertex_count() const override {
    return graph_.vertex_count();
  }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed: the same stored graph every round, no copy.
  [[nodiscard]] RoundGraphRef view(int t) const override;

 private:
  Digraph graph_;
};

// Cycles through a fixed list of graphs: G(t) = phases[(t-1) % phases.size()].
class PeriodicSchedule final : public DynamicGraph {
 public:
  explicit PeriodicSchedule(std::vector<Digraph> phases);

  [[nodiscard]] Vertex vertex_count() const override;
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed: phase storage is immutable after construction, so the
  // returned pointers are stable and identify the phase topology.
  [[nodiscard]] RoundGraphRef view(int t) const override;

 private:
  std::vector<Digraph> phases_;
};

// Double-buffered per-schedule cache backing borrowed view(t) for schedules
// that materialize an independent graph per round. Without it the executor
// falls back to the owning view(t) path and re-materializes (allocates,
// copies, re-validates) a graph every round; with it the schedule builds
// the round graph once into stable storage and lends it out.
//
// Two slots alternate between consecutive materialized rounds, so the
// borrowed address *changes* whenever the topology changes — this is what
// keeps the executor's address-keyed caches (arena offsets, validation
// verdicts) honest: reusing one slot would present a different random graph
// at an unchanged address. A borrowed ref for round t therefore stays valid
// until the cache materializes a second further round. Like the Digraph
// adjacency cache, the slots are an unsynchronized mutable const path: a
// schedule with a round cache must not be shared between concurrently
// stepping executors — give each executor (each campaign cell) its own
// schedule object.
class RoundGraphCache {
 public:
  // Returns stable storage holding build(t), reusing it when round t is
  // already cached (repeated view(t) calls lend the same object).
  template <typename BuildFn>
  [[nodiscard]] const Digraph* get(int t, BuildFn&& build) const {
    for (const Slot& slot : slots_) {
      if (slot.round == t) return &slot.graph;
    }
    Slot& slot = slots_[next_];
    next_ = 1 - next_;
    slot.round = t;
    slot.graph = build(t);
    return &slot.graph;
  }

 private:
  struct Slot {
    int round = -1;  // rounds start at 1; -1 = empty
    Digraph graph;
  };
  mutable Slot slots_[2];
  mutable int next_ = 0;
};

// Each round: an independent random Hamiltonian cycle plus `extra_edges`
// random edges plus self-loops. Every round graph is strongly connected, so
// the dynamic diameter is at most n - 1. Deterministic in (seed, t).
class RandomStronglyConnectedSchedule final : public DynamicGraph {
 public:
  RandomStronglyConnectedSchedule(Vertex n, int extra_edges,
                                  std::uint64_t seed);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed through the double-buffered round cache (see RoundGraphCache).
  [[nodiscard]] RoundGraphRef view(int t) const override;

 private:
  Vertex n_;
  int extra_edges_;
  std::uint64_t seed_;
  RoundGraphCache cache_;
};

// Each round: an independent random symmetric connected graph (random
// attachment tree, both orientations, plus extras). Models the dynamic
// symmetric-communications class; dynamic diameter at most n - 1.
class RandomSymmetricSchedule final : public DynamicGraph {
 public:
  RandomSymmetricSchedule(Vertex n, int extra_pairs, std::uint64_t seed);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed through the double-buffered round cache (see RoundGraphCache).
  [[nodiscard]] RoundGraphRef view(int t) const override;

 private:
  Vertex n_;
  int extra_pairs_;
  std::uint64_t seed_;
  RoundGraphCache cache_;
};

// Sparse adversarial schedule: round t carries only the single ring edge
// (t mod n) -> (t mod n + 1), plus all self-loops. Individual rounds are
// maximally disconnected yet the dynamic diameter is finite (at most n^2),
// exercising the "intermediate graphs may be disconnected" regime of
// Section 2.1.
class TokenRingSchedule final : public DynamicGraph {
 public:
  explicit TokenRingSchedule(Vertex n);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;

 private:
  Vertex n_;
};

// Pairwise interactions: each round an independent random partial matching
// (plus self-loops), both orientations. This is the footnote-2 regime of the
// paper — population protocols correspond to dynamic symmetric networks
// whose vertices have degree zero or one. Individual rounds are heavily
// disconnected; the dynamic diameter is finite with overwhelming probability
// (experiments certify it empirically via dynamics/connectivity.hpp).
class RandomMatchingSchedule final : public DynamicGraph {
 public:
  RandomMatchingSchedule(Vertex n, std::uint64_t seed);

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed through the double-buffered round cache (see RoundGraphCache).
  [[nodiscard]] RoundGraphRef view(int t) const override;

 private:
  Vertex n_;
  std::uint64_t seed_;
  RoundGraphCache cache_;
};

// Weak connectivity (the concluding-remarks regime of Section 6): the
// network is "never permanently split" yet has NO finite dynamic diameter.
// Communication happens in bursts — the base graph is fully present for
// `burst_length` rounds starting at rounds 1, 1+gap, 1+gap+2·gap, ... with
// the gap doubling after every burst; between bursts only self-loops
// remain. Every pair of agents still communicates infinitely often, but any
// window bound D is eventually violated. Used to probe which algorithms
// survive losing the finite-diameter assumption (Moreau's theorem covers
// the symmetric averaging family; the paper asks what happens beyond it).
class GrowingGapSchedule final : public DynamicGraph {
 public:
  GrowingGapSchedule(Digraph base, int burst_length, int initial_gap);

  [[nodiscard]] Vertex vertex_count() const override {
    return base_.vertex_count();
  }
  [[nodiscard]] Digraph at(int t) const override;
  // Borrowed: the burst graph and the self-loop-only gap graph are both
  // precomputed members.
  [[nodiscard]] RoundGraphRef view(int t) const override;
  // True when round t falls inside a communication burst.
  [[nodiscard]] bool in_burst(int t) const;

 private:
  Digraph base_;
  Digraph isolated_;  // self-loops only, served between bursts
  int burst_length_;
  int initial_gap_;
};

// Asynchronous starts (Section 2.2 / end of Section 5.3): the wrapped
// schedule with edge (i, j) removed while t < max(start[i], start[j]);
// self-loops always remain. Not-yet-started agents are thereby isolated.
class AsyncStartSchedule final : public DynamicGraph {
 public:
  AsyncStartSchedule(DynamicGraphPtr inner, std::vector<int> start_rounds);

  [[nodiscard]] Vertex vertex_count() const override {
    return inner_->vertex_count();
  }
  [[nodiscard]] Digraph at(int t) const override;

 private:
  DynamicGraphPtr inner_;
  std::vector<int> start_rounds_;
};

}  // namespace anonet
