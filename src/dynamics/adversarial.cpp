#include "dynamics/adversarial.hpp"

#include <stdexcept>

namespace anonet {

namespace {

void require_round(int t) {
  if (t < 1) throw std::invalid_argument("DynamicGraph::at: rounds start at 1");
}

}  // namespace

SpoonerSchedule::SpoonerSchedule(Vertex n, int period)
    : n_(n), period_(period) {
  if (n < 3) {
    throw std::invalid_argument(
        "SpoonerSchedule: need n >= 3 (bowl of at least two plus the handle)");
  }
  if (period < 1) throw std::invalid_argument("SpoonerSchedule: period >= 1");
  Digraph star(n_);
  for (Vertex v = 0; v < n_; ++v) star.add_edge(v, v);
  for (Vertex v = 1; v < n_ - 1; ++v) {
    star.add_edge(0, v);
    star.add_edge(v, 0);
  }
  without_bridge_ = star;
  star.add_edge(n_ - 2, n_ - 1);
  star.add_edge(n_ - 1, n_ - 2);
  with_bridge_ = std::move(star);
}

bool SpoonerSchedule::bridge_round(int t) const {
  require_round(t);
  return t % period_ == 0;
}

Digraph SpoonerSchedule::at(int t) const {
  return bridge_round(t) ? with_bridge_ : without_bridge_;
}

RoundGraphRef SpoonerSchedule::view(int t) const {
  return RoundGraphRef(bridge_round(t) ? &with_bridge_ : &without_bridge_);
}

UnionRingSchedule::UnionRingSchedule(Vertex n, int parts) : n_(n) {
  if (n < 2) throw std::invalid_argument("UnionRingSchedule: need n >= 2");
  if (parts < 1) throw std::invalid_argument("UnionRingSchedule: parts >= 1");
  phases_.reserve(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    Digraph g(n_);
    for (Vertex v = 0; v < n_; ++v) g.add_edge(v, v);
    // Ring edge i connects i and i+1 (mod n); part p serves edges i ≡ p.
    for (Vertex i = p; i < n_; i += parts) {
      const Vertex j = (i + 1) % n_;
      if (i == j) continue;  // n == 1 degenerate, excluded above anyway
      g.add_edge(i, j);
      g.add_edge(j, i);
    }
    phases_.push_back(std::move(g));
  }
}

Digraph UnionRingSchedule::at(int t) const {
  require_round(t);
  return phases_[static_cast<std::size_t>(t - 1) % phases_.size()];
}

RoundGraphRef UnionRingSchedule::view(int t) const {
  require_round(t);
  return RoundGraphRef(
      &phases_[static_cast<std::size_t>(t - 1) % phases_.size()]);
}

GrowingGapRingSchedule::GrowingGapRingSchedule(Vertex n) : n_(n) {
  if (n < 2) throw std::invalid_argument("GrowingGapRingSchedule: need n >= 2");
  Digraph ring(n_);
  Digraph idle(n_);
  for (Vertex v = 0; v < n_; ++v) {
    ring.add_edge(v, v);
    idle.add_edge(v, v);
  }
  for (Vertex v = 0; v + 1 < n_; ++v) {
    ring.add_edge(v, v + 1);
    ring.add_edge(v + 1, v);
  }
  if (n_ > 2) {  // closing edge; n == 2 is already the complete ring
    ring.add_edge(n_ - 1, 0);
    ring.add_edge(0, n_ - 1);
  }
  ring_ = std::move(ring);
  idle_ = std::move(idle);
}

bool GrowingGapRingSchedule::connected_round(int t) {
  require_round(t);
  return (t & (t - 1)) == 0;  // powers of two (round numbering starts at 1)
}

Digraph GrowingGapRingSchedule::at(int t) const {
  return connected_round(t) ? ring_ : idle_;
}

RoundGraphRef GrowingGapRingSchedule::view(int t) const {
  return RoundGraphRef(connected_round(t) ? &ring_ : &idle_);
}

}  // namespace anonet
