#pragma once

// Length-prefixed frame layer for the socket transport (docs/transport.md).
//
// A frame is the unit the TCP byte stream is cut into:
//
//     u32 LE length | u8 type | payload bytes | u32 LE crc
//
// where `length` counts the type byte plus the payload (so an empty frame
// has length 1), and `crc` is CRC-32 (IEEE 802.3, reflected) over the type
// byte and the payload. The CRC is not cryptography — TCP already
// checksums — it is a *framing* check: a desynchronized reader (a peer
// speaking another protocol, a half-written buffer, a length field hit by
// corruption) fails loudly as a FrameError instead of decoding garbage
// into a campaign record.
//
// Control frames (HELLO/WELCOME/ASSIGN/ROUND_BARRIER/VERDICT/SHUTDOWN)
// drive the coordinator/worker protocol (net/protocol.hpp); MESSAGE frames
// carry one wire-encoded agent message (wire/codecs.hpp) and exist so a
// message can cross a real socket in exactly the bits the bandwidth meter
// charges for it. Payload bodies are rendered with wire::BitWriter, the
// same bit-level encoder the agent codecs use — the transport adds no
// second serialization dialect.
//
// FrameDecoder is an incremental parser: feed() it whatever read() returned
// and take complete frames off with next(). It never reads ahead of a
// complete frame and never allocates beyond the declared payload size (the
// length field is validated against kMaxFramePayload *before* buffering).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace anonet::net {

// Corrupt, oversized, or protocol-violating frame data. The socket that
// produced it cannot be resynchronized and must be dropped.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

enum class FrameType : std::uint8_t {
  kHello = 1,         // worker -> coordinator: version + desired window
  kWelcome = 2,       // coordinator -> worker: campaign parameters
  kAssign = 3,        // coordinator -> worker: run this cell
  kRoundBarrier = 4,  // coordinator -> workers: epoch fence + pending count
  kVerdict = 5,       // worker -> coordinator: finished-cell record line
  kShutdown = 6,      // coordinator -> worker: campaign complete, exit
  kMessage = 7,       // either way: one wire-encoded agent message
};

[[nodiscard]] std::string_view to_string(FrameType type);
[[nodiscard]] bool frame_type_known(std::uint8_t raw);

struct Frame {
  FrameType type = FrameType::kShutdown;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

// Upper bound on a payload, enforced on both ends: encode_frame refuses to
// build a larger frame, FrameDecoder refuses to buffer one. Generous for
// every protocol body (a VERDICT is one JSONL line), tight enough that a
// garbage length field cannot drive a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 22;  // 4 MiB

// CRC-32 (IEEE 802.3 polynomial 0xEDB88320, reflected, init/final 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

// Renders a frame to its wire bytes. Throws FrameError when the payload
// exceeds kMaxFramePayload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

// Incremental frame parser over an arbitrary byte-chunk sequence.
class FrameDecoder {
 public:
  // Appends raw socket bytes to the internal buffer.
  void feed(const std::uint8_t* data, std::size_t size);

  // Extracts the next complete frame, or nullopt when the buffer holds only
  // a partial one. Throws FrameError on a bad length, unknown type, or CRC
  // mismatch — the stream is poisoned and cannot be re-synchronized.
  [[nodiscard]] std::optional<Frame> next();

  // Bytes buffered but not yet consumed (a non-zero value at EOF means the
  // peer died mid-frame).
  [[nodiscard]] std::size_t buffered() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace anonet::net
