#pragma once

// Thin RAII wrappers over POSIX TCP sockets (docs/transport.md).
//
// Deliberately minimal: blocking I/O, IPv4, move-only ownership of the file
// descriptor. Everything protocol-shaped lives a layer up (net/frame.hpp,
// net/protocol.hpp); this file only turns errno conventions into exceptions
// and hides the SIGPIPE / EINTR / partial-write folklore.
//
// A read returning 0 is end-of-stream, not an error — disconnection is an
// *expected* event the coordinator handles by reassigning cells, so it is
// surfaced as a value (read_some() == 0, read_frame() == nullopt), while
// genuine socket failures throw SocketError.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/frame.hpp"

namespace anonet::net {

// OS-level socket failure (connect refused, write on a closed peer, ...).
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

// Move-only owner of a connected TCP stream socket.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { close(); }

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;
  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  // Reads up to `cap` bytes; blocks until at least one byte or EOF.
  // Returns 0 on orderly peer shutdown. Throws SocketError on failure.
  [[nodiscard]] std::size_t read_some(void* buffer, std::size_t cap);

  // Writes all `size` bytes, looping over partial writes. A peer that went
  // away surfaces as SocketError (EPIPE/ECONNRESET), never as SIGPIPE.
  void write_all(const void* data, std::size_t size);

  void close();

 private:
  int fd_ = -1;
};

// Move-only owner of a listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }

  // Binds `host`:`port` (port 0 picks an ephemeral port — read it back from
  // port()) with SO_REUSEADDR, listening backlog 64.
  [[nodiscard]] static TcpListener bind(const std::string& host,
                                        std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Blocks until one connection arrives.
  [[nodiscard]] TcpSocket accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Connects to `host`:`port` (IPv4 literal or resolvable name). Throws
// SocketError when the connection cannot be established.
[[nodiscard]] TcpSocket connect_tcp(const std::string& host,
                                    std::uint16_t port);

// Sends one frame over the socket.
void write_frame(TcpSocket& socket, const Frame& frame);

// Blocks until one complete frame is decodable (feeding `decoder` from the
// socket as needed) or the peer closes. Returns nullopt on a clean EOF at a
// frame boundary; throws FrameError when the peer died mid-frame or sent
// corrupt bytes, SocketError on I/O failure.
[[nodiscard]] std::optional<Frame> read_frame(TcpSocket& socket,
                                              FrameDecoder& decoder);

}  // namespace anonet::net
