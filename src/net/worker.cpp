#include "net/worker.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/metrics.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "net/protocol.hpp"

namespace anonet::net {

namespace {

using campaign::Cell;
using campaign::CellRecord;
using campaign::MetricsSink;

TcpSocket connect_with_retry(const std::string& host, std::uint16_t port,
                             double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (true) {
    try {
      return connect_tcp(host, port);
    } catch (const SocketError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

}  // namespace

WorkerNode::WorkerNode(WorkerOptions options) : options_(std::move(options)) {
  if (options_.threads < 1) options_.threads = 1;
}

bool WorkerNode::run() {
  stats_ = WorkerStats{};
  TcpSocket socket = connect_with_retry(options_.host, options_.port,
                                        options_.connect_timeout_ms);
  FrameDecoder decoder;

  HelloPayload hello;
  hello.window = static_cast<std::uint32_t>(options_.threads);
  write_frame(socket, encode_hello(hello));

  std::optional<Frame> first = read_frame(socket, decoder);
  if (!first.has_value()) {
    throw SocketError("WorkerNode: coordinator closed during handshake");
  }
  const WelcomePayload welcome = decode_welcome(*first);
  if (welcome.version != kProtocolVersion) {
    throw FrameError("WorkerNode: protocol version mismatch (coordinator " +
                     std::to_string(welcome.version) + ", worker " +
                     std::to_string(kProtocolVersion) + ")");
  }

  // Local re-expansion: the same deterministic cell list the coordinator
  // holds, with the same overrides, hence the same keys.
  std::vector<Cell> cells = campaign::Grid::preset(welcome.grid).expand();
  campaign::apply_cell_overrides(cells, welcome.cell_timeout_ms,
                                 welcome.bandwidth_bits);
  const bool timings = welcome.include_timings;

  // Cell pool: the frame loop enqueues, pool threads run cells and send
  // VERDICTs under a write mutex so frames never interleave on the socket.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<AssignPayload> tasks;
  bool closing = false;
  std::mutex write_mutex;
  std::atomic<std::uint32_t> epoch{0};
  std::atomic<std::int64_t> cells_run{0};
  std::mutex error_mutex;
  std::string pool_error;  // first send failure; frame loop surfaces it

  const auto pool_main = [&] {
    while (true) {
      AssignPayload task;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return closing || !tasks.empty(); });
        if (tasks.empty()) return;  // closing with nothing left
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      const CellRecord record =
          campaign::Runner::run_cell(cells[task.cell_index], timings);
      VerdictPayload verdict;
      verdict.epoch = epoch.load(std::memory_order_relaxed);
      verdict.cell_index = task.cell_index;
      verdict.key = std::move(task.key);
      verdict.line = MetricsSink::to_json(record, timings);
      try {
        const std::lock_guard<std::mutex> lock(write_mutex);
        write_frame(socket, encode_verdict(verdict));
      } catch (const std::exception& error) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (pool_error.empty()) pool_error = error.what();
        return;  // the frame loop will see the broken socket too
      }
      cells_run.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) pool.emplace_back(pool_main);

  const auto stop_pool = [&] {
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      closing = true;
    }
    queue_cv.notify_all();
    for (std::thread& thread : pool) thread.join();
  };

  bool clean = false;
  bool abandoned = false;
  std::int64_t accepted = 0;
  try {
    while (std::optional<Frame> frame = read_frame(socket, decoder)) {
      switch (frame->type) {
        case FrameType::kAssign: {
          AssignPayload assign = decode_assign(*frame);
          if (assign.cell_index >= cells.size() ||
              cells[assign.cell_index].key() != assign.key) {
            throw FrameError(
                "WorkerNode: assignment key skew for cell index " +
                std::to_string(assign.cell_index) +
                " (grid or option mismatch with the coordinator)");
          }
          if (options_.abandon_after >= 0 &&
              accepted >= options_.abandon_after) {
            // Fault injection: die with exactly this cell unacknowledged
            // (plus anything still queued). The socket is closed after the
            // pool joins — never concurrently with a pool-thread write —
            // and the coordinator sees EOF and reassigns.
            {
              const std::lock_guard<std::mutex> lock(queue_mutex);
              tasks.clear();
            }
            abandoned = true;
            break;
          }
          ++accepted;
          {
            const std::lock_guard<std::mutex> lock(queue_mutex);
            tasks.push_back(std::move(assign));
          }
          queue_cv.notify_one();
          break;
        }
        case FrameType::kRoundBarrier: {
          const BarrierPayload barrier = decode_barrier(*frame);
          epoch.store(barrier.epoch, std::memory_order_relaxed);
          stats_.epoch = barrier.epoch;
          break;
        }
        case FrameType::kShutdown:
          decode_shutdown(*frame);
          clean = true;
          break;
        default:
          throw FrameError(std::string("WorkerNode: unexpected ") +
                           std::string(to_string(frame->type)) +
                           " from the coordinator");
      }
      if (clean || abandoned) break;
    }
  } catch (...) {
    stop_pool();
    throw;
  }
  stop_pool();

  stats_.cells_run = cells_run.load(std::memory_order_relaxed);
  stats_.clean_shutdown = clean;
  if (abandoned) {
    socket.close();
    return false;
  }
  {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (!pool_error.empty()) {
      throw SocketError("WorkerNode: verdict send failed: " + pool_error);
    }
  }
  if (!clean) {
    throw SocketError("WorkerNode: coordinator vanished before SHUTDOWN");
  }
  socket.close();
  return true;
}

}  // namespace anonet::net
