#include "net/frame.hpp"

#include <array>
#include <cstring>

namespace anonet::net {

namespace {

// Reflected CRC-32 table for the IEEE 802.3 polynomial, built once.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_u32_le(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         (static_cast<std::uint32_t>(data[1]) << 8) |
         (static_cast<std::uint32_t>(data[2]) << 16) |
         (static_cast<std::uint32_t>(data[3]) << 24);
}

}  // namespace

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kWelcome: return "WELCOME";
    case FrameType::kAssign: return "ASSIGN";
    case FrameType::kRoundBarrier: return "ROUND_BARRIER";
    case FrameType::kVerdict: return "VERDICT";
    case FrameType::kShutdown: return "SHUTDOWN";
    case FrameType::kMessage: return "MESSAGE";
  }
  return "UNKNOWN";
}

bool frame_type_known(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kMessage);
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw FrameError("encode_frame: payload exceeds kMaxFramePayload");
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + frame.payload.size() + 4);
  put_u32_le(out, static_cast<std::uint32_t>(1 + frame.payload.size()));
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  // CRC over type byte + payload: everything the length field covers.
  put_u32_le(out, crc32(out.data() + 4, 1 + frame.payload.size()));
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Reclaim consumed prefix before growing, so a long-lived connection's
  // buffer stays proportional to the largest in-flight frame.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= (std::size_t{1} << 16)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint32_t length = get_u32_le(head);
  if (length < 1) {
    throw FrameError("FrameDecoder: frame length 0 (missing type byte)");
  }
  if (length > 1 + kMaxFramePayload) {
    throw FrameError("FrameDecoder: declared length " +
                     std::to_string(length) + " exceeds the 4 MiB cap");
  }
  const std::size_t total = 4 + static_cast<std::size_t>(length) + 4;
  if (available < total) return std::nullopt;
  const std::uint32_t declared_crc = get_u32_le(head + 4 + length);
  const std::uint32_t actual_crc = crc32(head + 4, length);
  if (declared_crc != actual_crc) {
    throw FrameError("FrameDecoder: CRC mismatch (stream corrupt)");
  }
  const std::uint8_t raw_type = head[4];
  if (!frame_type_known(raw_type)) {
    throw FrameError("FrameDecoder: unknown frame type " +
                     std::to_string(static_cast<int>(raw_type)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(head + 5, head + 4 + length);
  consumed_ += total;
  return frame;
}

}  // namespace anonet::net
