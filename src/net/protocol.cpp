#include "net/protocol.hpp"

namespace anonet::net {

namespace {

// Strings on the wire: uvarint byte length, then the raw bytes. Lengths are
// implicitly bounded by the frame payload (read_count(8) clamps against the
// bits actually present, so a forged length fails fast).
void write_string(wire::BitWriter& writer, const std::string& text) {
  writer.write_uvarint(text.size());
  for (const char c : text) {
    writer.write_bits(static_cast<std::uint8_t>(c), 8);
  }
}

std::string read_string(wire::BitReader& reader) {
  const std::uint64_t size = reader.read_count(8);
  std::string text;
  text.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    text.push_back(static_cast<char>(reader.read_bits(8)));
  }
  return text;
}

Frame seal(FrameType type, const wire::BitWriter& writer) {
  return Frame{type, writer.bytes()};
}

}  // namespace

namespace detail {

wire::BitReader open_payload(const Frame& frame, FrameType expected) {
  if (frame.type != expected) {
    throw FrameError(std::string("decode: expected ") +
                     std::string(to_string(expected)) + ", got " +
                     std::string(to_string(frame.type)));
  }
  return wire::BitReader(frame.payload.data(),
                         static_cast<std::int64_t>(frame.payload.size()) * 8);
}

void finish_payload(const wire::BitReader& reader, FrameType type) {
  // Payloads are byte-aligned; up to 7 zero pad bits of the final byte are
  // the only tolerated slack. Whole trailing bytes mean a skewed peer.
  if (reader.remaining() >= 8) {
    throw FrameError(std::string("decode ") + std::string(to_string(type)) +
                     ": trailing bytes after payload");
  }
}

void rethrow_as_frame_error(FrameType type, const std::exception& error) {
  throw FrameError(std::string("decode ") + std::string(to_string(type)) +
                   ": " + error.what());
}

}  // namespace detail

Frame encode_hello(const HelloPayload& payload) {
  wire::BitWriter writer;
  writer.write_uvarint(kMagic);
  writer.write_uvarint(payload.version);
  writer.write_uvarint(payload.window);
  return seal(FrameType::kHello, writer);
}

HelloPayload decode_hello(const Frame& frame) {
  try {
    wire::BitReader reader = detail::open_payload(frame, FrameType::kHello);
    if (reader.read_uvarint() != kMagic) {
      throw FrameError("decode HELLO: bad magic (not an anonet peer)");
    }
    HelloPayload payload;
    payload.version = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.window = static_cast<std::uint32_t>(reader.read_uvarint());
    detail::finish_payload(reader, FrameType::kHello);
    return payload;
  } catch (const wire::DecodeError& error) {
    detail::rethrow_as_frame_error(FrameType::kHello, error);
  }
}

Frame encode_welcome(const WelcomePayload& payload) {
  wire::BitWriter writer;
  writer.write_uvarint(payload.version);
  write_string(writer, payload.grid);
  writer.write_bits(payload.include_timings ? 1u : 0u, 8);
  writer.write_svarint(payload.bandwidth_bits);
  writer.write_double(payload.cell_timeout_ms);
  return seal(FrameType::kWelcome, writer);
}

WelcomePayload decode_welcome(const Frame& frame) {
  try {
    wire::BitReader reader = detail::open_payload(frame, FrameType::kWelcome);
    WelcomePayload payload;
    payload.version = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.grid = read_string(reader);
    payload.include_timings = reader.read_bits(8) != 0;
    payload.bandwidth_bits = reader.read_svarint();
    payload.cell_timeout_ms = reader.read_double();
    detail::finish_payload(reader, FrameType::kWelcome);
    return payload;
  } catch (const wire::DecodeError& error) {
    detail::rethrow_as_frame_error(FrameType::kWelcome, error);
  }
}

Frame encode_assign(const AssignPayload& payload) {
  wire::BitWriter writer;
  writer.write_uvarint(payload.epoch);
  writer.write_uvarint(payload.cell_index);
  write_string(writer, payload.key);
  return seal(FrameType::kAssign, writer);
}

AssignPayload decode_assign(const Frame& frame) {
  try {
    wire::BitReader reader = detail::open_payload(frame, FrameType::kAssign);
    AssignPayload payload;
    payload.epoch = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.cell_index = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.key = read_string(reader);
    detail::finish_payload(reader, FrameType::kAssign);
    return payload;
  } catch (const wire::DecodeError& error) {
    detail::rethrow_as_frame_error(FrameType::kAssign, error);
  }
}

Frame encode_barrier(const BarrierPayload& payload) {
  wire::BitWriter writer;
  writer.write_uvarint(payload.epoch);
  writer.write_uvarint(payload.pending);
  return seal(FrameType::kRoundBarrier, writer);
}

BarrierPayload decode_barrier(const Frame& frame) {
  try {
    wire::BitReader reader =
        detail::open_payload(frame, FrameType::kRoundBarrier);
    BarrierPayload payload;
    payload.epoch = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.pending = static_cast<std::uint32_t>(reader.read_uvarint());
    detail::finish_payload(reader, FrameType::kRoundBarrier);
    return payload;
  } catch (const wire::DecodeError& error) {
    detail::rethrow_as_frame_error(FrameType::kRoundBarrier, error);
  }
}

Frame encode_verdict(const VerdictPayload& payload) {
  wire::BitWriter writer;
  writer.write_uvarint(payload.epoch);
  writer.write_uvarint(payload.cell_index);
  write_string(writer, payload.key);
  write_string(writer, payload.line);
  return seal(FrameType::kVerdict, writer);
}

VerdictPayload decode_verdict(const Frame& frame) {
  try {
    wire::BitReader reader = detail::open_payload(frame, FrameType::kVerdict);
    VerdictPayload payload;
    payload.epoch = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.cell_index = static_cast<std::uint32_t>(reader.read_uvarint());
    payload.key = read_string(reader);
    payload.line = read_string(reader);
    detail::finish_payload(reader, FrameType::kVerdict);
    return payload;
  } catch (const wire::DecodeError& error) {
    detail::rethrow_as_frame_error(FrameType::kVerdict, error);
  }
}

Frame encode_shutdown() { return Frame{FrameType::kShutdown, {}}; }

void decode_shutdown(const Frame& frame) {
  if (frame.type != FrameType::kShutdown || !frame.payload.empty()) {
    throw FrameError("decode SHUTDOWN: unexpected payload");
  }
}

}  // namespace anonet::net
