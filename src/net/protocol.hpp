#pragma once

// Coordinator/worker control protocol (docs/transport.md).
//
// Control payloads are rendered with wire::BitWriter — the same bit-level
// encoder the agent codecs use — with byte-aligned fields (uvarint/svarint/
// double/length-prefixed strings), so the transport introduces no second
// serialization dialect. Each payload has an encode_* returning a complete
// Frame and a decode_* taking one; decoders validate the frame type, the
// handshake magic/version, and reject trailing bytes, converting every
// wire::DecodeError into a FrameError — one exception type means "this
// peer's stream is poisoned".
//
// The conversation (one coordinator, N workers):
//
//   worker  -> HELLO{magic, version, window}
//   coord   -> WELCOME{version, grid, include_timings, bandwidth_bits,
//                      cell_timeout_ms}         (or drops on mismatch)
//   coord   -> ROUND_BARRIER{epoch, pending}    (campaign start fence)
//   coord   -> ASSIGN{epoch, cell_index, key}   (demand-driven, LPT order)
//   worker  -> VERDICT{epoch, cell_index, key, line}
//   ...                                         (ASSIGN/VERDICT repeats)
//   coord   -> ROUND_BARRIER{epoch+1, pending}  (after a reassignment wave)
//   coord   -> SHUTDOWN                         (queue drained)
//
// Workers never receive cells by value: WELCOME names a grid preset, both
// sides expand it locally (Grid::expand() is deterministic — same cells,
// same indices everywhere), and ASSIGN carries only (index, key). The key
// echo lets a worker detect a version- or option-skewed expansion before
// running the wrong cell.

#include <cstdint>
#include <string>

#include "net/frame.hpp"
#include "wire/wire.hpp"

namespace anonet::net {

// "ANET" — rejects peers that speak TCP but not this protocol.
inline constexpr std::uint32_t kMagic = 0x414E4554;
inline constexpr std::uint32_t kProtocolVersion = 1;

struct HelloPayload {
  std::uint32_t version = kProtocolVersion;
  // How many cells the worker wants in flight at once (its thread count).
  std::uint32_t window = 1;

  bool operator==(const HelloPayload&) const = default;
};

struct WelcomePayload {
  std::uint32_t version = kProtocolVersion;
  std::string grid;            // Grid::preset name to expand locally
  bool include_timings = false;
  std::int64_t bandwidth_bits = 0;   // campaign::apply_cell_overrides args —
  double cell_timeout_ms = 0.0;      // shipped so keys match the coordinator

  bool operator==(const WelcomePayload&) const = default;
};

struct AssignPayload {
  std::uint32_t epoch = 1;
  std::uint32_t cell_index = 0;  // Cell::index in expansion order
  std::string key;               // Cell::key() echo (skew detection)

  bool operator==(const AssignPayload&) const = default;
};

struct BarrierPayload {
  std::uint32_t epoch = 1;   // bumped after every reassignment wave
  std::uint32_t pending = 0; // cells not yet durably recorded

  bool operator==(const BarrierPayload&) const = default;
};

struct VerdictPayload {
  std::uint32_t epoch = 1;
  std::uint32_t cell_index = 0;
  std::string key;
  std::string line;  // MetricsSink::to_json rendering of the record

  bool operator==(const VerdictPayload&) const = default;
};

[[nodiscard]] Frame encode_hello(const HelloPayload& payload);
[[nodiscard]] Frame encode_welcome(const WelcomePayload& payload);
[[nodiscard]] Frame encode_assign(const AssignPayload& payload);
[[nodiscard]] Frame encode_barrier(const BarrierPayload& payload);
[[nodiscard]] Frame encode_verdict(const VerdictPayload& payload);
[[nodiscard]] Frame encode_shutdown();

// Decoders throw FrameError on a type mismatch, bad magic/overlong fields,
// truncated payloads, or trailing bytes.
[[nodiscard]] HelloPayload decode_hello(const Frame& frame);
[[nodiscard]] WelcomePayload decode_welcome(const Frame& frame);
[[nodiscard]] AssignPayload decode_assign(const Frame& frame);
[[nodiscard]] BarrierPayload decode_barrier(const Frame& frame);
[[nodiscard]] VerdictPayload decode_verdict(const Frame& frame);
void decode_shutdown(const Frame& frame);

namespace detail {

// Shared scaffolding for the typed decoders: type check, reader setup,
// trailing-data check, DecodeError -> FrameError translation.
[[nodiscard]] wire::BitReader open_payload(const Frame& frame,
                                           FrameType expected);
void finish_payload(const wire::BitReader& reader, FrameType type);
[[noreturn]] void rethrow_as_frame_error(FrameType type,
                                         const std::exception& error);

}  // namespace detail

// One wire-encoded agent message as a MESSAGE frame. The payload is the
// message's exact canonical bit stream (wire/codecs.hpp) behind a uvarint
// bit count — frames are byte-granular, encodings are bit-granular, and the
// count preserves the exact size the bandwidth meter would charge. All
// encoding routes through MessageTraits: the transport cannot invent a
// second wire dialect for a payload type (enforced by anonet_lint W1).
template <wire::WireEncodable M>
[[nodiscard]] Frame make_message_frame(const M& message) {
  wire::BitWriter writer;
  writer.write_uvarint(static_cast<std::uint64_t>(wire::encoded_bits(message)));
  wire::encode(message, writer);
  return Frame{FrameType::kMessage, writer.bytes()};
}

template <wire::WireEncodable M>
[[nodiscard]] M parse_message_frame(const Frame& frame) {
  if (frame.type != FrameType::kMessage) {
    throw FrameError("parse_message_frame: not a MESSAGE frame");
  }
  try {
    wire::BitReader reader(frame.payload.data(),
                           static_cast<std::int64_t>(frame.payload.size()) * 8);
    const std::uint64_t declared_bits = reader.read_uvarint();
    const std::int64_t body_start = reader.cursor();
    if (declared_bits > static_cast<std::uint64_t>(reader.remaining())) {
      throw FrameError("parse_message_frame: declared bit count exceeds frame");
    }
    M message = wire::decode<M>(reader);
    if (static_cast<std::uint64_t>(reader.cursor() - body_start) !=
        declared_bits) {
      throw FrameError(
          "parse_message_frame: decoded size disagrees with declared bits");
    }
    return message;
  } catch (const wire::DecodeError& error) {
    detail::rethrow_as_frame_error(FrameType::kMessage, error);
  }
}

}  // namespace anonet::net
