#include "net/coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "campaign/cost_model.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "net/protocol.hpp"

namespace anonet::net {

namespace {

using campaign::Cell;
using campaign::CellRecord;
using campaign::MetricsSink;

// One connected worker. `inflight` holds positions into the pending-cell
// vector, so a disconnect can return exactly those cells to the queue.
struct Peer {
  TcpSocket socket;
  FrameDecoder decoder;
  bool greeted = false;
  std::uint32_t window = 1;
  std::vector<std::size_t> inflight;
};

const auto canonical_less = [](const CellRecord& a, const CellRecord& b) {
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.key < b.key;
};

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.workers < 1) {
    throw std::invalid_argument("Coordinator: workers must be >= 1");
  }
  if (options_.grid.empty()) {
    throw std::invalid_argument("Coordinator: grid name must be non-empty");
  }
}

std::uint16_t Coordinator::listen() {
  if (!listener_.valid()) {
    listener_ = TcpListener::bind(options_.host, options_.port);
  }
  return listener_.port();
}

std::vector<CellRecord> Coordinator::run() {
  listen();
  stats_ = CoordinatorStats{};

  // Expansion + overrides, identical to Runner::run. Workers re-expand the
  // same grid from the WELCOME parameters, so (index, key) pairs agree on
  // both ends of every socket.
  std::vector<Cell> cells = campaign::Grid::preset(options_.grid).expand();
  campaign::apply_cell_overrides(cells, options_.cell_timeout_ms,
                                 options_.bandwidth_bits);

  campaign::CostModel costs;
  if (!options_.cost_path.empty()) {
    costs = campaign::CostModel::from_timings_file(options_.cost_path);
  }

  // Resume, mirroring Runner::run with this process owning every cell:
  // matching records are reused and re-anchored, unmatched ("foreign")
  // records are preserved verbatim for the canonical rewrite.
  std::vector<CellRecord> kept;
  std::vector<CellRecord> foreign;
  std::unordered_set<std::string> finished;
  bool had_output = false;
  if (!options_.out_path.empty() && options_.resume) {
    std::unordered_map<std::string, const Cell*> wanted;
    for (const Cell& cell : cells) wanted.emplace(cell.key(), &cell);
    std::unordered_set<std::string> seen;
    for (CellRecord& record : MetricsSink::read_file(options_.out_path)) {
      had_output = true;
      if (!seen.insert(record.key).second) continue;
      const auto it = wanted.find(record.key);
      if (it == wanted.end()) {
        foreign.push_back(std::move(record));
        continue;
      }
      // Same reuse policy as the in-process Runner: a "timeout" facing a
      // larger budget is dropped here so the cell is dispatched again.
      if (!campaign::reusable_on_resume(record, *it->second)) continue;
      record.cell = it->second->index;
      finished.insert(record.key);
      kept.push_back(std::move(record));
    }
  }

  std::vector<Cell> pending;
  std::vector<std::string> pending_keys;  // computed once, reused per frame
  for (Cell& cell : cells) {
    if (finished.count(cell.key()) == 0) pending.push_back(std::move(cell));
  }
  pending_keys.reserve(pending.size());
  for (const Cell& cell : pending) pending_keys.push_back(cell.key());
  std::unordered_map<std::uint32_t, std::size_t> pos_by_index;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    pos_by_index.emplace(static_cast<std::uint32_t>(pending[i].index), i);
  }

  std::unique_ptr<MetricsSink> sink;
  if (!options_.out_path.empty()) {
    sink = std::make_unique<MetricsSink>(
        options_.out_path, options_.include_timings,
        /*append=*/options_.resume && had_output);
  }

  // Demand queue in the same cost-descending order the in-process pool
  // steals from; reassigned cells go to the *front* (they blocked a worker
  // already — they should not wait out the whole queue again).
  std::deque<std::size_t> queue;
  for (std::size_t pos : campaign::cost_descending_order(pending, costs)) {
    queue.push_back(pos);
  }
  std::vector<std::optional<CellRecord>> fresh(pending.size());
  std::size_t outstanding = 0;  // cells assigned but not yet recorded

  std::vector<std::unique_ptr<Peer>> peers;
  std::uint32_t epoch = 1;
  int joined_now = 0;  // currently-connected greeted workers
  bool started = false;

  WelcomePayload welcome;
  welcome.grid = options_.grid;
  welcome.include_timings = options_.include_timings;
  welcome.bandwidth_bits = options_.bandwidth_bits;
  welcome.cell_timeout_ms = options_.cell_timeout_ms;

  // --- event-loop helpers -------------------------------------------------

  const auto send_frame = [](Peer& peer, const Frame& frame) -> bool {
    try {
      write_frame(peer.socket, frame);
      return true;
    } catch (const SocketError&) {
      return false;  // caller drops the peer; its cells are reassigned
    }
  };

  // Fills a peer's window from the queue. Returns false when a write failed
  // (peer must be dropped; the cell just queued to it is in `inflight`, so
  // the normal reassignment path recovers it).
  const auto assign_work = [&](Peer& peer) -> bool {
    while (peer.inflight.size() < peer.window && !queue.empty()) {
      const std::size_t pos = queue.front();
      queue.pop_front();
      peer.inflight.push_back(pos);
      ++outstanding;
      ++stats_.cells_assigned;
      AssignPayload assign;
      assign.epoch = epoch;
      assign.cell_index = static_cast<std::uint32_t>(pending[pos].index);
      assign.key = pending_keys[pos];
      if (!send_frame(peer, encode_assign(assign))) return false;
    }
    return true;
  };

  const auto broadcast_barrier = [&]() {
    BarrierPayload barrier;
    barrier.epoch = epoch;
    barrier.pending =
        static_cast<std::uint32_t>(queue.size() + outstanding);
    const Frame frame = encode_barrier(barrier);
    for (const std::unique_ptr<Peer>& peer : peers) {
      if (peer->greeted && peer->socket.valid()) {
        (void)send_frame(*peer, frame);  // failure surfaces as EOF next poll
      }
    }
  };

  // Disconnect handling: return in-flight cells to the queue front (in
  // their original relative order), bump the epoch, fence the survivors.
  // Idempotent — a peer closed mid-dispatch is swept through here again.
  const auto drop_peer = [&](Peer& peer) {
    peer.socket.close();
    if (peer.greeted) {
      ++stats_.workers_lost;
      --joined_now;
      peer.greeted = false;
    }
    if (!peer.inflight.empty()) {
      for (auto it = peer.inflight.rbegin(); it != peer.inflight.rend();
           ++it) {
        queue.push_front(*it);
        --outstanding;
        ++stats_.cells_reassigned;
      }
      peer.inflight.clear();
      ++epoch;
      stats_.epochs = epoch;
      if (started) broadcast_barrier();
    }
  };

  // Frame dispatch for one peer. Returns false when the peer violated the
  // protocol and must be dropped.
  const auto handle_frame = [&](Peer& peer, const Frame& frame) -> bool {
    if (!peer.greeted) {
      const HelloPayload hello = decode_hello(frame);  // throws on non-HELLO
      if (hello.version != kProtocolVersion) {
        ++stats_.workers_rejected;
        return false;
      }
      peer.greeted = true;
      peer.window = std::max<std::uint32_t>(1, hello.window);
      ++stats_.workers_joined;
      ++joined_now;
      if (!send_frame(peer, encode_welcome(welcome))) return false;
      if (!started && joined_now >= options_.workers) {
        started = true;
        broadcast_barrier();
        for (const std::unique_ptr<Peer>& other : peers) {
          if (other->greeted && other->socket.valid() &&
              !assign_work(*other)) {
            // A failed kickoff write is indistinguishable from a dead
            // worker: let the poll loop reap it via EOF.
            other->socket.close();
          }
        }
        return peer.socket.valid();
      }
      if (started) {
        // Late joiner (or a replacement): fence it to the current epoch
        // and put it to work immediately.
        BarrierPayload barrier;
        barrier.epoch = epoch;
        barrier.pending =
            static_cast<std::uint32_t>(queue.size() + outstanding);
        if (!send_frame(peer, encode_barrier(barrier))) return false;
        if (!assign_work(peer)) return false;
      }
      return true;
    }
    if (frame.type != FrameType::kVerdict) {
      throw FrameError(std::string("coordinator: unexpected ") +
                       std::string(to_string(frame.type)) +
                       " from a greeted worker");
    }
    const VerdictPayload verdict = decode_verdict(frame);
    const auto pos_it = pos_by_index.find(verdict.cell_index);
    if (pos_it == pos_by_index.end() ||
        pending_keys[pos_it->second] != verdict.key) {
      throw FrameError("coordinator: verdict for unknown cell " +
                       verdict.key);
    }
    const std::size_t pos = pos_it->second;
    const auto inflight_it =
        std::find(peer.inflight.begin(), peer.inflight.end(), pos);
    if (inflight_it != peer.inflight.end()) {
      peer.inflight.erase(inflight_it);
      --outstanding;
    }
    if (fresh[pos].has_value()) {
      ++stats_.duplicate_verdicts;  // settled in an earlier epoch
    } else {
      std::optional<CellRecord> record = MetricsSink::parse_line(verdict.line);
      if (!record.has_value() || record->key != verdict.key) {
        throw FrameError("coordinator: unparseable verdict line for " +
                         verdict.key);
      }
      record->cell = pending[pos].index;  // re-anchor, as resume does
      if (sink != nullptr) sink->append(*record);  // durable before ack
      fresh[pos] = std::move(record);
      ++stats_.verdicts;
    }
    return assign_work(peer);
  };

  // Drains the peer's decoder after a read. Returns false to drop.
  const auto handle_input = [&](Peer& peer) -> bool {
    std::uint8_t chunk[64 * 1024];
    std::size_t got = 0;
    try {
      got = peer.socket.read_some(chunk, sizeof(chunk));
    } catch (const SocketError&) {
      return false;
    }
    if (got == 0) return false;  // EOF (mid-frame or not: cells come back)
    try {
      peer.decoder.feed(chunk, got);
      while (std::optional<Frame> frame = peer.decoder.next()) {
        if (!handle_frame(peer, *frame)) return false;
      }
    } catch (const FrameError&) {
      return false;  // poisoned stream: drop, reassign
    }
    return true;
  };

  // --- event loop ---------------------------------------------------------

  while (!(started && outstanding == 0 && queue.empty())) {
    if (started && joined_now == 0 && (outstanding > 0 || !queue.empty())) {
      throw std::runtime_error(
          "Coordinator: all workers disconnected with " +
          std::to_string(outstanding + queue.size()) + " cells outstanding");
    }
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    std::vector<Peer*> polled;
    for (const std::unique_ptr<Peer>& peer : peers) {
      if (peer->socket.valid()) {
        fds.push_back(pollfd{peer->socket.fd(), POLLIN, 0});
        polled.push_back(peer.get());
      }
    }
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError("Coordinator: poll failed");
    }
    if ((fds[0].revents & POLLIN) != 0) {
      auto peer = std::make_unique<Peer>();
      peer->socket = listener_.accept();
      peers.push_back(std::move(peer));
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const short events = fds[i + 1].revents;
      if (events == 0) continue;
      if (!handle_input(*polled[i])) drop_peer(*polled[i]);
    }
    // Sweep peers closed mid-dispatch (e.g. a failed kickoff write) through
    // the same reassignment path, then reap them.
    for (const std::unique_ptr<Peer>& peer : peers) {
      if (!peer->socket.valid()) drop_peer(*peer);
    }
    // Demand-feed after the sweep. Assignment is otherwise driven only by
    // verdict and HELLO frames, but a reap can refill the queue when every
    // surviving (or replacement) worker has already drained its window —
    // those workers have no verdict left to send, so nothing would ever
    // hand them the returned cells and the campaign would hang with work
    // queued and every worker idle.
    for (const std::unique_ptr<Peer>& peer : peers) {
      if (queue.empty()) break;
      if (started && peer->greeted && peer->socket.valid() &&
          !assign_work(*peer)) {
        drop_peer(*peer);
      }
    }
    std::erase_if(peers, [](const std::unique_ptr<Peer>& peer) {
      return !peer->socket.valid();
    });
  }

  // Orderly teardown: every worker gets a SHUTDOWN, failures ignored.
  const Frame shutdown = encode_shutdown();
  for (const std::unique_ptr<Peer>& peer : peers) {
    if (peer->greeted && peer->socket.valid()) {
      (void)send_frame(*peer, shutdown);
    }
    peer->socket.close();
  }
  peers.clear();
  listener_.close();

  // Canonical finish, identical to Runner::run: kept + fresh sorted by
  // (cell, key); the file additionally merges foreign records.
  std::vector<CellRecord> all = std::move(kept);
  all.reserve(all.size() + fresh.size());
  for (std::optional<CellRecord>& record : fresh) {
    if (!record.has_value()) {
      throw std::runtime_error("Coordinator: campaign ended with a hole");
    }
    all.push_back(std::move(*record));
  }
  std::stable_sort(all.begin(), all.end(), canonical_less);
  if (sink != nullptr) {
    sink->close();
    std::vector<CellRecord> file_records = all;
    file_records.insert(file_records.end(),
                        std::make_move_iterator(foreign.begin()),
                        std::make_move_iterator(foreign.end()));
    std::stable_sort(file_records.begin(), file_records.end(),
                     canonical_less);
    MetricsSink::write_canonical(options_.out_path, std::move(file_records),
                                 options_.include_timings);
  }
  return all;
}

}  // namespace anonet::net
