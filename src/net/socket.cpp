#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace anonet::net {

namespace {

[[noreturn]] void throw_errno(const std::string& context) {
  throw SocketError(context + ": " + std::strerror(errno));
}

// Resolves an IPv4 address for host:port. Numeric literals short-circuit;
// names go through getaddrinfo.
sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw SocketError("resolve " + host + ": " + gai_strerror(rc));
  }
  addr.sin_addr =
      reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr;
  freeaddrinfo(result);
  return addr;
}

void set_nodelay(int fd) {
  // Control frames are tiny and latency-sensitive (a barrier fence should
  // not wait out Nagle); throughput frames are batched by the caller.
  int on = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
}

}  // namespace

std::size_t TcpSocket::read_some(void* buffer, std::size_t cap) {
  if (fd_ < 0) throw SocketError("read_some: socket is closed");
  while (true) {
    const ssize_t got = ::recv(fd_, buffer, cap, 0);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    // A peer that vanished (reset) reads as EOF for our purposes: the
    // coordinator treats both identically (reassign the peer's cells).
    if (errno == ECONNRESET) return 0;
    throw_errno("read_some");
  }
}

void TcpSocket::write_all(const void* data, std::size_t size) {
  if (fd_ < 0) throw SocketError("write_all: socket is closed");
  const auto* cursor = static_cast<const std::uint8_t*>(data);
  std::size_t left = size;
  while (left > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t sent = ::send(fd_, cursor, left, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("write_all");
    }
    cursor += sent;
    left -= static_cast<std::size_t>(sent);
  }
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::bind(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  TcpListener listener;
  listener.fd_ = fd;
  int on = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  sockaddr_in addr = resolve_ipv4(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    throw_errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

TcpSocket TcpListener::accept() {
  if (fd_ < 0) throw SocketError("accept: listener is closed");
  while (true) {
    const int peer = ::accept(fd_, nullptr, nullptr);
    if (peer >= 0) {
      set_nodelay(peer);
      return TcpSocket(peer);
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket connect_tcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = resolve_ipv4(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  TcpSocket socket(fd);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd);
  return socket;
}

void write_frame(TcpSocket& socket, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  socket.write_all(bytes.data(), bytes.size());
}

std::optional<Frame> read_frame(TcpSocket& socket, FrameDecoder& decoder) {
  while (true) {
    if (std::optional<Frame> frame = decoder.next()) return frame;
    std::uint8_t chunk[64 * 1024];
    const std::size_t got = socket.read_some(chunk, sizeof(chunk));
    if (got == 0) {
      if (decoder.buffered() > 0) {
        throw FrameError("read_frame: peer closed mid-frame");
      }
      return std::nullopt;
    }
    decoder.feed(chunk, got);
  }
}

}  // namespace anonet::net
