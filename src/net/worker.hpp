#pragma once

// Worker side of the distributed campaign (docs/transport.md).
//
// A WorkerNode connects to a Coordinator, introduces itself (HELLO with a
// window equal to its thread count), re-expands the campaign grid named in
// the WELCOME — Grid::expand() is deterministic, so both ends agree on
// every (index, key) pair without cells ever crossing the wire — and then
// serves ASSIGN frames until SHUTDOWN: each assigned cell runs through the
// exact same campaign::Runner::run_cell the in-process runner uses, and its
// record goes back as a VERDICT carrying the MetricsSink::to_json line.
// Rendering on the worker and parse→re-render on the coordinator is
// byte-exact (support/jsonl.hpp), which is what makes a distributed run's
// canonical output identical to a single-process one.
//
// With threads > 1 the frame loop stays on the calling thread and cells run
// on an internal pool; VERDICT writes are serialized by a mutex so frames
// never interleave. Cells are serial *internally* (Executor threads = 1),
// exactly like the in-process runner's pool — parallelism between cells
// only, so per-cell results stay bit-identical.

#include <cstdint>
#include <string>

#include "net/socket.hpp"

namespace anonet::net {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int threads = 1;  // concurrent cells; advertised as the HELLO window
  // Retry budget for the initial connect (covers the coordinator still
  // binding when the worker launches first).
  double connect_timeout_ms = 10000.0;
  // Fault-injection hook for disconnect tests: after completing this many
  // cells, the worker reacts to its next ASSIGN by closing the socket
  // abruptly — leaving exactly that one cell in flight for the coordinator
  // to reassign. Negative = never (the normal mode).
  int abandon_after = -1;
};

struct WorkerStats {
  std::int64_t cells_run = 0;
  std::uint32_t epoch = 0;  // last ROUND_BARRIER epoch observed
  bool clean_shutdown = false;
};

class WorkerNode {
 public:
  explicit WorkerNode(WorkerOptions options);

  // Connects, handshakes, and serves until SHUTDOWN (returns true) or until
  // the abandon_after hook fires (returns false). Throws SocketError when
  // the coordinator is unreachable or vanishes, FrameError on a protocol
  // violation (version mismatch, key skew, corrupt frame).
  bool run();

  [[nodiscard]] const WorkerStats& stats() const { return stats_; }

 private:
  WorkerOptions options_;
  WorkerStats stats_;
};

}  // namespace anonet::net
