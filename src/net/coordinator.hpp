#pragma once

// Campaign coordinator for distributed runs (docs/transport.md).
//
// The coordinator is the distributed twin of campaign::Runner::run(): it
// expands the grid, resumes from an existing output file, and canonicalizes
// the result identically — but instead of a thread pool it feeds cells to
// worker *processes* over TCP (net/protocol.hpp), demand-driven in the same
// cost-descending LPT order the in-process pool steals from. A worker with
// window W holds at most W cells in flight; finishing one (VERDICT) pulls
// the next, so fast workers naturally take more of the queue — the online
// form of the CostModel's LPT assignment.
//
// Fault model: a worker disconnect (EOF, reset, corrupt frame) returns its
// in-flight cells to the *front* of the queue — each such cell is
// reassigned exactly once per loss — and bumps the epoch, fencing the new
// wave behind a ROUND_BARRIER so every surviving worker knows records from
// older epochs are settled. Verdicts are deduplicated by cell key and the
// sink flushes every verdict-bearing record (campaign/metrics.hpp), so a
// crash on either side never loses an acknowledged cell and the final
// canonical file is byte-identical to a fault-free single-process run.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/metrics.hpp"
#include "net/socket.hpp"

namespace anonet::net {

struct CoordinatorOptions {
  std::string grid;                // Grid::preset name (shipped in WELCOME)
  int workers = 1;                 // HELLOs to wait for before assigning
  std::string host = "127.0.0.1";  // listen address
  std::uint16_t port = 0;          // 0 = ephemeral (read back via listen())
  std::string out_path;            // JSONL output; empty = records only
  bool resume = true;              // reuse finished cells found in out_path
  bool include_timings = false;    // emit wall_ms (breaks byte-parity)
  std::int64_t bandwidth_bits = 0; // campaign-level overrides, shipped in
  double cell_timeout_ms = 0.0;    //   WELCOME so worker keys agree
  std::string cost_path;           // timings JSONL feeding the CostModel
};

struct CoordinatorStats {
  int workers_joined = 0;      // HELLOs accepted over the whole run
  int workers_rejected = 0;    // bad magic/version handshakes dropped
  int workers_lost = 0;        // accepted workers that disconnected
  std::int64_t cells_assigned = 0;    // ASSIGN frames sent (incl. re-sends)
  std::int64_t cells_reassigned = 0;  // cells returned by a lost worker
  std::int64_t verdicts = 0;          // fresh verdicts recorded
  std::int64_t duplicate_verdicts = 0;
  std::uint32_t epochs = 1;    // final epoch (1 + reassignment waves)
};

class Coordinator {
 public:
  // Throws std::invalid_argument on workers < 1 or an empty grid name.
  explicit Coordinator(CoordinatorOptions options);

  // Binds and listens; returns the bound port (resolves port 0). Separate
  // from run() so a caller can publish the ephemeral port before workers
  // race to connect.
  std::uint16_t listen();

  // Runs the campaign to completion and returns this run's records (reused
  // and fresh) in canonical order, exactly as Runner::run() would. Calls
  // listen() if it has not happened yet. Throws SocketError/FrameError on
  // unrecoverable transport failure and std::runtime_error when every
  // worker is gone with cells still outstanding.
  std::vector<campaign::CellRecord> run();

  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }

 private:
  CoordinatorOptions options_;
  TcpListener listener_;
  CoordinatorStats stats_;
};

}  // namespace anonet::net
