#pragma once

// Structural analysis used to certify that experiment graphs belong to the
// network classes the theorems quantify over (strong connectivity, diameter).

#include <vector>

#include "graph/digraph.hpp"

namespace anonet {

// Strongly connected components (Tarjan, iterative). Component ids are in
// reverse topological order of the condensation (a source component of the
// condensation gets the highest id).
struct SccResult {
  int component_count = 0;
  std::vector<int> component;  // vertex -> component id
};
[[nodiscard]] SccResult strongly_connected_components(const Digraph& g);

[[nodiscard]] bool is_strongly_connected(const Digraph& g);

// BFS hop distances from `source`; unreachable vertices get -1.
[[nodiscard]] std::vector<int> bfs_distances(const Digraph& g, Vertex source);

// Directed diameter: max over ordered pairs of BFS distance. Returns -1 when
// the graph is not strongly connected.
[[nodiscard]] int diameter(const Digraph& g);

}  // namespace anonet
