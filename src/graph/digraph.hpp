#pragma once

// Directed multigraphs with explicit edge identity.
//
// Following Section 3 of the paper, a graph is a vertex set [n] together with
// a set of edges given by source and target maps; parallel edges are
// meaningful (minimum bases are multigraphs), and each edge carries a color
// used to model *output port awareness* (a local labelling of the outgoing
// edges of each vertex). Vertex valuations (input values, outdegrees) are kept
// outside the structure, as plain vectors indexed by vertex, so the same
// topology can carry several valuations at once.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace anonet {

using Vertex = std::int32_t;
using EdgeId = std::int32_t;

// Edge colors model output-port labels; kNoColor means "uncolored".
using EdgeColor = std::int32_t;
inline constexpr EdgeColor kNoColor = 0;

struct Edge {
  Vertex source = 0;
  Vertex target = 0;
  EdgeColor color = kNoColor;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// A lazily computed tri-state verdict (-1 unknown, 0 false, 1 true) held in
// an atomic so concurrent const queries on a shared graph are race-free:
// two threads may both compute the predicate, but it is a pure function of
// the edge multiset, so they store the same value (benign double-checked
// compute, relaxed ordering suffices). Copyable so graph copies carry their
// verdicts along.
class CachedVerdict {
 public:
  CachedVerdict() = default;
  CachedVerdict(const CachedVerdict& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  CachedVerdict& operator=(const CachedVerdict& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  // -1 unknown, 0 false, 1 true.
  [[nodiscard]] std::int8_t get() const {
    return value_.load(std::memory_order_relaxed);
  }
  void set(bool verdict) {
    value_.store(verdict ? 1 : 0, std::memory_order_relaxed);
  }
  void reset() { value_.store(-1, std::memory_order_relaxed); }

 private:
  std::atomic<std::int8_t> value_{-1};
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(Vertex vertex_count);

  [[nodiscard]] Vertex vertex_count() const { return vertex_count_; }
  [[nodiscard]] EdgeId edge_count() const {
    return static_cast<EdgeId>(edges_.size());
  }

  // Returns the id of the new edge. Invalidates adjacency spans.
  EdgeId add_edge(Vertex source, Vertex target, EdgeColor color = kNoColor);

  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  // Edge ids whose target / source is `v` (multiplicities included,
  // self-loops included). Built lazily and cached; cheap to call repeatedly.
  [[nodiscard]] std::span<const EdgeId> in_edges(Vertex v) const;
  [[nodiscard]] std::span<const EdgeId> out_edges(Vertex v) const;

  // Degrees count parallel edges and self-loops, matching the paper's
  // convention that every communication graph has a self-loop (an agent
  // always hears itself).
  [[nodiscard]] int indegree(Vertex v) const;
  [[nodiscard]] int outdegree(Vertex v) const;

  [[nodiscard]] bool has_edge(Vertex source, Vertex target) const;
  // Number of parallel source->target edges (the d_{i,j} of Section 4.2).
  [[nodiscard]] int edge_multiplicity(Vertex source, Vertex target) const;

  [[nodiscard]] bool has_all_self_loops() const;
  // Adds a self-loop at every vertex lacking one; returns number added.
  int ensure_self_loops();

  // True when the edge *multiset* is symmetric: for all (i, j),
  // multiplicity(i, j) == multiplicity(j, i). Colors are ignored.
  [[nodiscard]] bool is_symmetric() const;

  // True when every vertex's out-edges are colored with exactly the ports
  // 1..outdegree (a valid local output labelling, Section 2.2).
  [[nodiscard]] bool has_valid_output_ports() const;

  // Graph with every edge reversed (colors preserved).
  [[nodiscard]] Digraph reversed() const;

  // Relabels outgoing edges of every vertex with distinct port colors
  // 1..outdegree(v), in edge-id order. Models giving the network output port
  // awareness (Section 2.2). Deterministic.
  void assign_output_ports();

 private:
  void build_adjacency() const;
  void invalidate_caches();

  Vertex vertex_count_ = 0;
  std::vector<Edge> edges_;

  // Lazy adjacency cache (CSR-style), rebuilt after mutation.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<EdgeId> in_list_, out_list_;
  mutable std::vector<std::int32_t> in_start_, out_start_;

  // Cached validation verdicts, keyed on this graph object: the executor
  // validates each round graph once instead of re-walking the edge set every
  // round. Copies carry the verdicts along (they describe the edge multiset,
  // which is copied too); any mutation resets them. Atomic, so concurrent
  // const verdict queries on a shared graph are race-free; the lazy
  // adjacency cache is the remaining unsynchronized const path — force it
  // (any in_edges/out_edges call) before sharing a graph across threads, as
  // Executor::prepare_topology does.
  mutable CachedVerdict self_loops_cache_;
  mutable CachedVerdict symmetric_cache_;
  mutable CachedVerdict output_ports_cache_;
};

// Footnote 3 of the paper: the product G1 ∘ G2 has an edge (i, j) whenever
// some k has (i, k) in G1 and (k, j) in G2. Used to define the dynamic
// diameter. Result edges are uncolored and deduplicated.
[[nodiscard]] Digraph graph_product(const Digraph& g1, const Digraph& g2);

// The complete graph on the same vertex set (with self-loops), the identity
// for recognising "G(t) ∘ ... ∘ G(t+D-1) is complete".
[[nodiscard]] bool is_complete_with_self_loops(const Digraph& g);

}  // namespace anonet
