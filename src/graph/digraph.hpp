#pragma once

// Directed multigraphs with explicit edge identity.
//
// Following Section 3 of the paper, a graph is a vertex set [n] together with
// a set of edges given by source and target maps; parallel edges are
// meaningful (minimum bases are multigraphs), and each edge carries a color
// used to model *output port awareness* (a local labelling of the outgoing
// edges of each vertex). Vertex valuations (input values, outdegrees) are kept
// outside the structure, as plain vectors indexed by vertex, so the same
// topology can carry several valuations at once.

#include <cstdint>
#include <span>
#include <vector>

namespace anonet {

using Vertex = std::int32_t;
using EdgeId = std::int32_t;

// Edge colors model output-port labels; kNoColor means "uncolored".
using EdgeColor = std::int32_t;
inline constexpr EdgeColor kNoColor = 0;

struct Edge {
  Vertex source = 0;
  Vertex target = 0;
  EdgeColor color = kNoColor;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(Vertex vertex_count);

  [[nodiscard]] Vertex vertex_count() const { return vertex_count_; }
  [[nodiscard]] EdgeId edge_count() const {
    return static_cast<EdgeId>(edges_.size());
  }

  // Returns the id of the new edge. Invalidates adjacency spans.
  EdgeId add_edge(Vertex source, Vertex target, EdgeColor color = kNoColor);

  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  // Edge ids whose target / source is `v` (multiplicities included,
  // self-loops included). Built lazily and cached; cheap to call repeatedly.
  [[nodiscard]] std::span<const EdgeId> in_edges(Vertex v) const;
  [[nodiscard]] std::span<const EdgeId> out_edges(Vertex v) const;

  // Degrees count parallel edges and self-loops, matching the paper's
  // convention that every communication graph has a self-loop (an agent
  // always hears itself).
  [[nodiscard]] int indegree(Vertex v) const;
  [[nodiscard]] int outdegree(Vertex v) const;

  [[nodiscard]] bool has_edge(Vertex source, Vertex target) const;
  // Number of parallel source->target edges (the d_{i,j} of Section 4.2).
  [[nodiscard]] int edge_multiplicity(Vertex source, Vertex target) const;

  [[nodiscard]] bool has_all_self_loops() const;
  // Adds a self-loop at every vertex lacking one; returns number added.
  int ensure_self_loops();

  // True when the edge *multiset* is symmetric: for all (i, j),
  // multiplicity(i, j) == multiplicity(j, i). Colors are ignored.
  [[nodiscard]] bool is_symmetric() const;

  // True when every vertex's out-edges are colored with exactly the ports
  // 1..outdegree (a valid local output labelling, Section 2.2).
  [[nodiscard]] bool has_valid_output_ports() const;

  // Graph with every edge reversed (colors preserved).
  [[nodiscard]] Digraph reversed() const;

  // Relabels outgoing edges of every vertex with distinct port colors
  // 1..outdegree(v), in edge-id order. Models giving the network output port
  // awareness (Section 2.2). Deterministic.
  void assign_output_ports();

 private:
  void build_adjacency() const;
  void invalidate_caches();

  Vertex vertex_count_ = 0;
  std::vector<Edge> edges_;

  // Lazy adjacency cache (CSR-style), rebuilt after mutation.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<EdgeId> in_list_, out_list_;
  mutable std::vector<std::int32_t> in_start_, out_start_;

  // Cached validation verdicts (-1 unknown, 0 false, 1 true), keyed on this
  // graph object: the executor validates each round graph once instead of
  // re-walking the edge set every round. Copies carry the verdicts along
  // (they describe the edge multiset, which is copied too); any mutation
  // resets them.
  mutable std::int8_t self_loops_cache_ = -1;
  mutable std::int8_t symmetric_cache_ = -1;
  mutable std::int8_t output_ports_cache_ = -1;
};

// Footnote 3 of the paper: the product G1 ∘ G2 has an edge (i, j) whenever
// some k has (i, k) in G1 and (k, j) in G2. Used to define the dynamic
// diameter. Result edges are uncolored and deduplicated.
[[nodiscard]] Digraph graph_product(const Digraph& g1, const Digraph& g2);

// The complete graph on the same vertex set (with self-loops), the identity
// for recognising "G(t) ∘ ... ∘ G(t+D-1) is complete".
[[nodiscard]] bool is_complete_with_self_loops(const Digraph& g);

}  // namespace anonet
