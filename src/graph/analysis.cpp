#include "graph/analysis.hpp"

#include <algorithm>
#include <deque>

namespace anonet {

SccResult strongly_connected_components(const Digraph& g) {
  const Vertex n = g.vertex_count();
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<Vertex> stack;
  int next_index = 0;

  // Iterative Tarjan: each frame tracks the vertex and its progress through
  // its out-edge list.
  struct Frame {
    Vertex vertex;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (Vertex root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    call_stack.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = next_index;
    lowlink[static_cast<std::size_t>(root)] = next_index;
    ++next_index;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const Vertex v = frame.vertex;
      auto out = g.out_edges(v);
      if (frame.edge_pos < out.size()) {
        const Vertex w = g.edge(out[frame.edge_pos]).target;
        ++frame.edge_pos;
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = next_index;
          lowlink[static_cast<std::size_t>(w)] = next_index;
          ++next_index;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      // Post-order: close the component or propagate the lowlink up.
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        Vertex w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          result.component[static_cast<std::size_t>(w)] =
              result.component_count;
        } while (w != v);
        ++result.component_count;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const Vertex parent = call_stack.back().vertex;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.vertex_count() == 0) return false;
  return strongly_connected_components(g).component_count == 1;
}

std::vector<int> bfs_distances(const Digraph& g, Vertex source) {
  std::vector<int> dist(static_cast<std::size_t>(g.vertex_count()), -1);
  std::deque<Vertex> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    Vertex v = queue.front();
    queue.pop_front();
    for (EdgeId id : g.out_edges(v)) {
      Vertex w = g.edge(id).target;
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

int diameter(const Digraph& g) {
  int result = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (int d : bfs_distances(g, v)) {
      if (d == -1) return -1;
      result = std::max(result, d);
    }
  }
  return result;
}

}  // namespace anonet
