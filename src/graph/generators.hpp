#pragma once

// Graph families used throughout the paper's arguments and our experiments.
//
// Every generator returns a graph with a self-loop at each vertex, matching
// the model assumption of Section 2.1 (an agent always hears itself).

#include <cstdint>
#include <random>
#include <vector>

#include "graph/digraph.hpp"

namespace anonet {

// Unidirectional ring 0 -> 1 -> ... -> n-1 -> 0 (plus self-loops).
[[nodiscard]] Digraph directed_ring(Vertex n);

// Ring with both orientations of every ring edge; the R^n of Section 4.1.
[[nodiscard]] Digraph bidirectional_ring(Vertex n);

// Complete graph with self-loops.
[[nodiscard]] Digraph complete_graph(Vertex n);

// Bidirectional rows x cols torus grid.
[[nodiscard]] Digraph torus(Vertex rows, Vertex cols);

// Bidirectional hypercube on 2^dimension vertices.
[[nodiscard]] Digraph hypercube(int dimension);

// Directed de Bruijn graph B(symbols, word_length): vertices are words,
// edges shift one symbol in. Strongly connected, non-symmetric.
[[nodiscard]] Digraph de_bruijn(int symbols, int word_length);

// Random strongly connected digraph: a random Hamiltonian cycle plus
// `extra_edges` uniform random edges (duplicates allowed, giving parallel
// edges with small probability), plus self-loops.
[[nodiscard]] Digraph random_strongly_connected(Vertex n, int extra_edges,
                                                std::uint64_t seed);

// Random connected symmetric graph: a uniform random spanning tree with both
// edge orientations, plus `extra_pairs` random bidirectional pairs, plus
// self-loops.
[[nodiscard]] Digraph random_symmetric_connected(Vertex n, int extra_pairs,
                                                 std::uint64_t seed);

// A graph together with a fibration onto a base: projection[v] is the base
// vertex below v. The witness for all lifting-lemma experiments.
struct LiftedGraph {
  Digraph graph;
  std::vector<Vertex> projection;
};

// Random lift of `base` with prescribed fibre sizes: for each base edge
// e : i -> j and each vertex v in the fibre over j, one lifted edge into v
// from a uniformly chosen vertex of the fibre over i (self-loop base edges
// lift to genuine self-loops so the model assumption is preserved). The
// projection is a fibration by construction. fibre_sizes must have one
// positive entry per base vertex.
//
// A random lift of a strongly connected base need not be strongly connected
// (a vertex may receive no non-loop out-edges), but the paper's network
// classes are: the generator therefore resamples, up to a few hundred
// attempts, until the lift is strongly connected, and returns the last
// attempt if none is found (callers in pathological regimes can check).
[[nodiscard]] LiftedGraph random_lift(const Digraph& base,
                                      const std::vector<int>& fibre_sizes,
                                      std::uint64_t seed);

// Covering lift: every fibre has size `fibre_size` and each base edge lifts
// to a random bijection between fibres, so out-neighbourhoods are in
// bijection too — the port-colored case of Section 4.3. Base edge colors are
// inherited and remain a valid local output labelling.
[[nodiscard]] LiftedGraph random_covering_lift(const Digraph& base,
                                               int fibre_size,
                                               std::uint64_t seed);

// The Section 4.1 fibration R^n -> R^p (p divides n), i |-> i mod p, on
// bidirectional rings. Returns the lift R^n with its projection.
[[nodiscard]] LiftedGraph ring_fibration(Vertex n, Vertex p);

}  // namespace anonet
