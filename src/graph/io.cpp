#include "graph/io.hpp"

#include <sstream>
#include <stdexcept>

namespace anonet {

std::string to_dot(const Digraph& g, const std::vector<std::int64_t>* values,
                   std::string_view name) {
  if (values != nullptr &&
      values->size() != static_cast<std::size_t>(g.vertex_count())) {
    throw std::invalid_argument("to_dot: valuation size mismatch");
  }
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    os << "  " << v;
    if (values != nullptr) {
      os << " [label=\"" << v << ": "
         << (*values)[static_cast<std::size_t>(v)] << "\"]";
    }
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  " << e.source << " -> " << e.target;
    if (e.color != kNoColor) os << " [label=\"" << e.color << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_edge_list(const Digraph& g) {
  std::ostringstream os;
  os << "n " << g.vertex_count() << "\n";
  for (const Edge& e : g.edges()) {
    os << "e " << e.source << " " << e.target;
    if (e.color != kNoColor) os << " " << e.color;
    os << "\n";
  }
  return os.str();
}

Digraph parse_edge_list(std::string_view text) {
  std::istringstream input{std::string(text)};
  std::string line;
  std::optional<Digraph> graph;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "n") {
      Vertex n = -1;
      if (!(fields >> n) || n < 0 || graph.has_value()) {
        throw std::invalid_argument("parse_edge_list: bad header at line " +
                                    std::to_string(line_number));
      }
      graph.emplace(n);
    } else if (directive == "e") {
      if (!graph.has_value()) {
        throw std::invalid_argument("parse_edge_list: edge before header");
      }
      Vertex source = -1, target = -1;
      EdgeColor color = kNoColor;
      if (!(fields >> source >> target)) {
        throw std::invalid_argument("parse_edge_list: bad edge at line " +
                                    std::to_string(line_number));
      }
      fields >> color;  // optional
      graph->add_edge(source, target, color);  // range-checks internally
    } else {
      throw std::invalid_argument("parse_edge_list: unknown directive '" +
                                  directive + "' at line " +
                                  std::to_string(line_number));
    }
  }
  if (!graph.has_value()) {
    throw std::invalid_argument("parse_edge_list: missing 'n' header");
  }
  return *std::move(graph);
}

}  // namespace anonet
