#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace anonet {

namespace {

// Multiplicity of (source, target, color) triples, the invariant an
// isomorphism must transport.
using EdgeProfile = std::map<std::tuple<Vertex, Vertex, EdgeColor>, int>;

EdgeProfile edge_profile(const Digraph& g) {
  EdgeProfile profile;
  for (const Edge& e : g.edges()) ++profile[{e.source, e.target, e.color}];
  return profile;
}

// Per-vertex fingerprint used to prune the search: value, degree pair, and
// sorted multiset of (color, multiplicity) over loops.
struct VertexSignature {
  int value;
  int indegree;
  int outdegree;
  std::vector<std::pair<EdgeColor, int>> loop_colors;

  friend bool operator==(const VertexSignature&, const VertexSignature&) =
      default;
};

VertexSignature signature(const Digraph& g, const std::vector<int>& values,
                          Vertex v) {
  VertexSignature sig;
  sig.value = values[static_cast<std::size_t>(v)];
  sig.indegree = g.indegree(v);
  sig.outdegree = g.outdegree(v);
  std::map<EdgeColor, int> loops;
  for (EdgeId id : g.out_edges(v)) {
    const Edge& e = g.edge(id);
    if (e.target == v) ++loops[e.color];
  }
  sig.loop_colors.assign(loops.begin(), loops.end());
  return sig;
}

struct Matcher {
  const Digraph& a;
  const Digraph& b;
  const EdgeProfile profile_a;
  const EdgeProfile profile_b;
  std::vector<VertexSignature> sig_a;
  std::vector<VertexSignature> sig_b;
  std::vector<Vertex> mapping;      // a -> b, -1 unassigned
  std::vector<bool> used;           // b-side

  // Checks all edges between `v` and previously assigned vertices.
  [[nodiscard]] bool consistent(Vertex v) const {
    for (Vertex u = 0; u < a.vertex_count(); ++u) {
      const Vertex image_u = mapping[static_cast<std::size_t>(u)];
      if (image_u == -1) continue;
      for (const auto& [src, tgt] :
           {std::pair{v, u}, std::pair{u, v}}) {
        const Vertex img_src = mapping[static_cast<std::size_t>(src)];
        const Vertex img_tgt = mapping[static_cast<std::size_t>(tgt)];
        // Compare multiplicities per color.
        std::map<EdgeColor, int> in_a, in_b;
        for (EdgeId id : a.out_edges(src)) {
          const Edge& e = a.edge(id);
          if (e.target == tgt) ++in_a[e.color];
        }
        for (EdgeId id : b.out_edges(img_src)) {
          const Edge& e = b.edge(id);
          if (e.target == img_tgt) ++in_b[e.color];
        }
        if (in_a != in_b) return false;
      }
    }
    return true;
  }

  bool search(Vertex v) {
    if (v == a.vertex_count()) return true;
    for (Vertex w = 0; w < b.vertex_count(); ++w) {
      if (used[static_cast<std::size_t>(w)]) continue;
      if (!(sig_a[static_cast<std::size_t>(v)] ==
            sig_b[static_cast<std::size_t>(w)])) {
        continue;
      }
      mapping[static_cast<std::size_t>(v)] = w;
      used[static_cast<std::size_t>(w)] = true;
      if (consistent(v) && search(v + 1)) return true;
      mapping[static_cast<std::size_t>(v)] = -1;
      used[static_cast<std::size_t>(w)] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<Vertex>> find_isomorphism(
    const Digraph& a, const std::vector<int>& values_a, const Digraph& b,
    const std::vector<int>& values_b) {
  if (values_a.size() != static_cast<std::size_t>(a.vertex_count()) ||
      values_b.size() != static_cast<std::size_t>(b.vertex_count())) {
    throw std::invalid_argument("find_isomorphism: valuation size mismatch");
  }
  if (a.vertex_count() != b.vertex_count() ||
      a.edge_count() != b.edge_count()) {
    return std::nullopt;
  }
  Matcher matcher{a,
                  b,
                  edge_profile(a),
                  edge_profile(b),
                  {},
                  {},
                  std::vector<Vertex>(static_cast<std::size_t>(a.vertex_count()), -1),
                  std::vector<bool>(static_cast<std::size_t>(b.vertex_count()), false)};
  // Quick reject: the sorted signature multisets must agree.
  for (Vertex v = 0; v < a.vertex_count(); ++v) {
    matcher.sig_a.push_back(signature(a, values_a, v));
    matcher.sig_b.push_back(signature(b, values_b, v));
  }
  if (!matcher.search(0)) return std::nullopt;
  return matcher.mapping;
}

bool are_isomorphic(const Digraph& a, const Digraph& b) {
  std::vector<int> va(static_cast<std::size_t>(a.vertex_count()), 0);
  std::vector<int> vb(static_cast<std::size_t>(b.vertex_count()), 0);
  return find_isomorphism(a, va, b, vb).has_value();
}

}  // namespace anonet
