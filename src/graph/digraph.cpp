#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace anonet {

Digraph::Digraph(Vertex vertex_count) : vertex_count_(vertex_count) {
  if (vertex_count < 0) throw std::invalid_argument("Digraph: negative size");
}

EdgeId Digraph::add_edge(Vertex source, Vertex target, EdgeColor color) {
  if (source < 0 || source >= vertex_count_ || target < 0 ||
      target >= vertex_count_) {
    throw std::out_of_range("Digraph::add_edge: vertex out of range");
  }
  edges_.push_back(Edge{source, target, color});
  invalidate_caches();
  return static_cast<EdgeId>(edges_.size() - 1);
}

void Digraph::invalidate_caches() {
  adjacency_valid_ = false;
  self_loops_cache_.reset();
  symmetric_cache_.reset();
  output_ports_cache_.reset();
}

void Digraph::build_adjacency() const {
  const auto n = static_cast<std::size_t>(vertex_count_);
  in_start_.assign(n + 1, 0);
  out_start_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++in_start_[static_cast<std::size_t>(e.target) + 1];
    ++out_start_[static_cast<std::size_t>(e.source) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    in_start_[v + 1] += in_start_[v];
    out_start_[v + 1] += out_start_[v];
  }
  in_list_.assign(edges_.size(), 0);
  out_list_.assign(edges_.size(), 0);
  std::vector<std::int32_t> in_fill(in_start_.begin(), in_start_.end() - 1);
  std::vector<std::int32_t> out_fill(out_start_.begin(), out_start_.end() - 1);
  for (EdgeId id = 0; id < edge_count(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    in_list_[static_cast<std::size_t>(
        in_fill[static_cast<std::size_t>(e.target)]++)] = id;
    out_list_[static_cast<std::size_t>(
        out_fill[static_cast<std::size_t>(e.source)]++)] = id;
  }
  adjacency_valid_ = true;
}

std::span<const EdgeId> Digraph::in_edges(Vertex v) const {
  if (!adjacency_valid_) build_adjacency();
  auto begin = static_cast<std::size_t>(in_start_[static_cast<std::size_t>(v)]);
  auto end =
      static_cast<std::size_t>(in_start_[static_cast<std::size_t>(v) + 1]);
  return {in_list_.data() + begin, end - begin};
}

std::span<const EdgeId> Digraph::out_edges(Vertex v) const {
  if (!adjacency_valid_) build_adjacency();
  auto begin =
      static_cast<std::size_t>(out_start_[static_cast<std::size_t>(v)]);
  auto end =
      static_cast<std::size_t>(out_start_[static_cast<std::size_t>(v) + 1]);
  return {out_list_.data() + begin, end - begin};
}

int Digraph::indegree(Vertex v) const {
  return static_cast<int>(in_edges(v).size());
}

int Digraph::outdegree(Vertex v) const {
  return static_cast<int>(out_edges(v).size());
}

bool Digraph::has_edge(Vertex source, Vertex target) const {
  for (EdgeId id : out_edges(source)) {
    if (edge(id).target == target) return true;
  }
  return false;
}

int Digraph::edge_multiplicity(Vertex source, Vertex target) const {
  int count = 0;
  for (EdgeId id : out_edges(source)) {
    if (edge(id).target == target) ++count;
  }
  return count;
}

bool Digraph::has_all_self_loops() const {
  if (self_loops_cache_.get() < 0) {
    bool verdict = true;
    for (Vertex v = 0; v < vertex_count_; ++v) {
      if (!has_edge(v, v)) {
        verdict = false;
        break;
      }
    }
    self_loops_cache_.set(verdict);
  }
  return self_loops_cache_.get() != 0;
}

int Digraph::ensure_self_loops() {
  int added = 0;
  for (Vertex v = 0; v < vertex_count_; ++v) {
    if (!has_edge(v, v)) {
      add_edge(v, v);
      ++added;
    }
  }
  return added;
}

bool Digraph::is_symmetric() const {
  if (symmetric_cache_.get() < 0) {
    bool verdict = true;
    for (Vertex v = 0; v < vertex_count_ && verdict; ++v) {
      for (EdgeId id : out_edges(v)) {
        const Edge& e = edge(id);
        if (edge_multiplicity(e.source, e.target) !=
            edge_multiplicity(e.target, e.source)) {
          verdict = false;
          break;
        }
      }
    }
    symmetric_cache_.set(verdict);
  }
  return symmetric_cache_.get() != 0;
}

bool Digraph::has_valid_output_ports() const {
  if (output_ports_cache_.get() < 0) {
    bool verdict = true;
    // One scratch bitmap shared by all vertices (epoch-marked so it is never
    // cleared): out-edges of v must carry each port 1..outdegree(v) exactly
    // once. O(E) total, no sorting.
    int max_outdegree = 0;
    for (Vertex v = 0; v < vertex_count_; ++v) {
      max_outdegree = std::max(max_outdegree, outdegree(v));
    }
    std::vector<std::int32_t> seen_epoch(
        static_cast<std::size_t>(max_outdegree) + 1, -1);
    for (Vertex v = 0; v < vertex_count_ && verdict; ++v) {
      const auto out = out_edges(v);
      const int d = static_cast<int>(out.size());
      for (EdgeId id : out) {
        const int port = static_cast<int>(edge(id).color);
        if (port < 1 || port > d ||
            seen_epoch[static_cast<std::size_t>(port)] == v) {
          verdict = false;
          break;
        }
        seen_epoch[static_cast<std::size_t>(port)] = v;
      }
    }
    output_ports_cache_.set(verdict);
  }
  return output_ports_cache_.get() != 0;
}

Digraph Digraph::reversed() const {
  Digraph result(vertex_count_);
  for (const Edge& e : edges_) result.add_edge(e.target, e.source, e.color);
  return result;
}

void Digraph::assign_output_ports() {
  std::vector<EdgeColor> next_port(static_cast<std::size_t>(vertex_count_), 1);
  for (Edge& e : edges_) {
    e.color = next_port[static_cast<std::size_t>(e.source)]++;
  }
  invalidate_caches();
}

Digraph graph_product(const Digraph& g1, const Digraph& g2) {
  if (g1.vertex_count() != g2.vertex_count()) {
    throw std::invalid_argument("graph_product: vertex count mismatch");
  }
  const Vertex n = g1.vertex_count();
  Digraph result(n);
  std::vector<bool> reached(static_cast<std::size_t>(n));
  for (Vertex i = 0; i < n; ++i) {
    std::fill(reached.begin(), reached.end(), false);
    for (EdgeId e1 : g1.out_edges(i)) {
      Vertex k = g1.edge(e1).target;
      for (EdgeId e2 : g2.out_edges(k)) {
        reached[static_cast<std::size_t>(g2.edge(e2).target)] = true;
      }
    }
    for (Vertex j = 0; j < n; ++j) {
      if (reached[static_cast<std::size_t>(j)]) result.add_edge(i, j);
    }
  }
  return result;
}

bool is_complete_with_self_loops(const Digraph& g) {
  const Vertex n = g.vertex_count();
  for (Vertex i = 0; i < n; ++i) {
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (EdgeId id : g.out_edges(i)) {
      seen[static_cast<std::size_t>(g.edge(id).target)] = true;
    }
    for (Vertex j = 0; j < n; ++j) {
      if (!seen[static_cast<std::size_t>(j)]) return false;
    }
  }
  return true;
}

}  // namespace anonet
