#pragma once

// Isomorphism of small valued, colored multigraphs.
//
// Minimum bases are only canonical up to isomorphism (Section 3.2), so tests
// and the distributed algorithm's acceptance check compare candidate bases
// with this backtracking matcher. Intended for the small graphs that bases
// are (tens of vertices), not for general graphs.

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace anonet {

// Vertex values are opaque integer labels (callers intern their input
// alphabet Ω). An isomorphism must preserve values, edge colors, and edge
// multiplicities. Returns the vertex mapping a -> b, or nullopt.
[[nodiscard]] std::optional<std::vector<Vertex>> find_isomorphism(
    const Digraph& a, const std::vector<int>& values_a, const Digraph& b,
    const std::vector<int>& values_b);

// Convenience: unvalued comparison (all vertices share one label).
[[nodiscard]] bool are_isomorphic(const Digraph& a, const Digraph& b);

}  // namespace anonet
