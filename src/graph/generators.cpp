#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/analysis.hpp"

namespace anonet {

namespace {

void require_positive(Vertex n, const char* who) {
  if (n <= 0) throw std::invalid_argument(std::string(who) + ": need n > 0");
}

}  // namespace

Digraph directed_ring(Vertex n) {
  require_positive(n, "directed_ring");
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) {
    g.add_edge(v, v);
    if (n > 1) g.add_edge(v, (v + 1) % n);
  }
  return g;
}

Digraph bidirectional_ring(Vertex n) {
  require_positive(n, "bidirectional_ring");
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, v);
  if (n == 2) {
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    return g;
  }
  for (Vertex v = 0; n > 1 && v < n; ++v) {
    g.add_edge(v, (v + 1) % n);
    g.add_edge((v + 1) % n, v);
  }
  return g;
}

Digraph complete_graph(Vertex n) {
  require_positive(n, "complete_graph");
  Digraph g(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Digraph torus(Vertex rows, Vertex cols) {
  require_positive(rows, "torus");
  require_positive(cols, "torus");
  Digraph g(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, c));
      if (rows > 1) {
        g.add_edge(id(r, c), id((r + 1) % rows, c));
        g.add_edge(id((r + 1) % rows, c), id(r, c));
      }
      if (cols > 1) {
        g.add_edge(id(r, c), id(r, (c + 1) % cols));
        g.add_edge(id(r, (c + 1) % cols), id(r, c));
      }
    }
  }
  return g;
}

Digraph hypercube(int dimension) {
  if (dimension < 0 || dimension > 20) {
    throw std::invalid_argument("hypercube: dimension out of range");
  }
  const Vertex n = Vertex{1} << dimension;
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) {
    g.add_edge(v, v);
    for (int bit = 0; bit < dimension; ++bit) {
      Vertex u = v ^ (Vertex{1} << bit);
      if (v < u) {
        g.add_edge(v, u);
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

Digraph de_bruijn(int symbols, int word_length) {
  if (symbols < 2 || word_length < 1) {
    throw std::invalid_argument("de_bruijn: need symbols >= 2, length >= 1");
  }
  Vertex n = 1;
  for (int i = 0; i < word_length; ++i) n *= symbols;
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (int s = 0; s < symbols; ++s) {
      Vertex u = (v * symbols + s) % n;
      if (u != v) g.add_edge(v, u);
    }
  }
  g.ensure_self_loops();
  return g;
}

Digraph random_strongly_connected(Vertex n, int extra_edges,
                                  std::uint64_t seed) {
  require_positive(n, "random_strongly_connected");
  std::mt19937_64 rng(seed);
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, v);
  if (n > 1) {
    for (Vertex i = 0; i < n; ++i) {
      g.add_edge(order[static_cast<std::size_t>(i)],
                 order[static_cast<std::size_t>((i + 1) % n)]);
    }
  }
  std::uniform_int_distribution<Vertex> pick(0, n - 1);
  for (int i = 0; i < extra_edges; ++i) {
    Vertex a = pick(rng);
    Vertex b = pick(rng);
    if (a != b) g.add_edge(a, b);
  }
  return g;
}

Digraph random_symmetric_connected(Vertex n, int extra_pairs,
                                   std::uint64_t seed) {
  require_positive(n, "random_symmetric_connected");
  std::mt19937_64 rng(seed);
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, v);
  // Random attachment tree: vertex v links to a uniform earlier vertex.
  for (Vertex v = 1; v < n; ++v) {
    std::uniform_int_distribution<Vertex> pick(0, v - 1);
    Vertex u = pick(rng);
    g.add_edge(u, v);
    g.add_edge(v, u);
  }
  std::uniform_int_distribution<Vertex> pick(0, n - 1);
  for (int i = 0; i < extra_pairs; ++i) {
    Vertex a = pick(rng);
    Vertex b = pick(rng);
    if (a != b && !g.has_edge(a, b)) {
      g.add_edge(a, b);
      g.add_edge(b, a);
    }
  }
  return g;
}

namespace {

// One sampling attempt for random_lift (see header).
LiftedGraph random_lift_once(const Digraph& base,
                             const std::vector<int>& fibre_sizes,
                             std::mt19937_64& rng) {
  // Lay fibres out contiguously.
  std::vector<Vertex> fibre_start(fibre_sizes.size() + 1, 0);
  for (std::size_t i = 0; i < fibre_sizes.size(); ++i) {
    if (fibre_sizes[i] <= 0) {
      throw std::invalid_argument("random_lift: fibre sizes must be positive");
    }
    fibre_start[i + 1] = fibre_start[i] + fibre_sizes[i];
  }
  const Vertex total = fibre_start.back();
  Digraph lift(total);
  std::vector<Vertex> projection(static_cast<std::size_t>(total));
  for (std::size_t i = 0; i < fibre_sizes.size(); ++i) {
    for (Vertex v = fibre_start[i]; v < fibre_start[i + 1]; ++v) {
      projection[static_cast<std::size_t>(v)] = static_cast<Vertex>(i);
    }
  }
  // Self-loop base edges lift to genuine self-loops (see header); for the
  // rest, distribute sources round-robin over a shuffled fibre so out-edges
  // spread as evenly as possible — a uniform i.i.d. choice would leave some
  // fibre vertices without any out-edge almost surely, making a strongly
  // connected sample unreachable.
  std::vector<std::vector<std::pair<Vertex, EdgeColor>>> slots(
      fibre_sizes.size());  // per base vertex: (lift target, color) list
  for (const Edge& e : base.edges()) {
    auto tgt = static_cast<std::size_t>(e.target);
    for (Vertex v = fibre_start[tgt]; v < fibre_start[tgt + 1]; ++v) {
      if (e.source == e.target) {
        lift.add_edge(v, v, e.color);
      } else {
        slots[static_cast<std::size_t>(e.source)].emplace_back(v, e.color);
      }
    }
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    auto& targets = slots[i];
    std::shuffle(targets.begin(), targets.end(), rng);
    std::vector<Vertex> sources;
    for (Vertex u = fibre_start[i]; u < fibre_start[i + 1]; ++u) {
      sources.push_back(u);
    }
    std::shuffle(sources.begin(), sources.end(), rng);
    for (std::size_t k = 0; k < targets.size(); ++k) {
      lift.add_edge(sources[k % sources.size()], targets[k].first,
                    targets[k].second);
    }
  }
  return {std::move(lift), std::move(projection)};
}

// One sampling attempt for random_covering_lift (see header).
LiftedGraph random_covering_lift_once(const Digraph& base, int fibre_size,
                                      std::mt19937_64& rng) {
  const Vertex m = base.vertex_count();
  const Vertex total = m * fibre_size;
  Digraph lift(total);
  std::vector<Vertex> projection(static_cast<std::size_t>(total));
  auto member = [fibre_size](Vertex base_vertex, int index) {
    return base_vertex * fibre_size + index;
  };
  for (Vertex b = 0; b < m; ++b) {
    for (int k = 0; k < fibre_size; ++k) {
      projection[static_cast<std::size_t>(member(b, k))] = b;
    }
  }
  std::vector<int> bijection(static_cast<std::size_t>(fibre_size));
  for (const Edge& e : base.edges()) {
    if (e.source == e.target) {
      for (int k = 0; k < fibre_size; ++k) {
        lift.add_edge(member(e.source, k), member(e.source, k), e.color);
      }
      continue;
    }
    std::iota(bijection.begin(), bijection.end(), 0);
    std::shuffle(bijection.begin(), bijection.end(), rng);
    for (int k = 0; k < fibre_size; ++k) {
      lift.add_edge(member(e.source, bijection[static_cast<std::size_t>(k)]),
                    member(e.target, k), e.color);
    }
  }
  return {std::move(lift), std::move(projection)};
}

// Resamples until the lift is strongly connected (see header).
template <typename Sampler>
LiftedGraph sample_connected_lift(Sampler sample, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  LiftedGraph lift;
  for (int attempt = 0; attempt < 500; ++attempt) {
    lift = sample(rng);
    if (is_strongly_connected(lift.graph)) return lift;
  }
  return lift;
}

}  // namespace

LiftedGraph random_lift(const Digraph& base,
                        const std::vector<int>& fibre_sizes,
                        std::uint64_t seed) {
  if (static_cast<Vertex>(fibre_sizes.size()) != base.vertex_count()) {
    throw std::invalid_argument("random_lift: fibre_sizes size mismatch");
  }
  return sample_connected_lift(
      [&](std::mt19937_64& rng) {
        return random_lift_once(base, fibre_sizes, rng);
      },
      seed);
}

LiftedGraph random_covering_lift(const Digraph& base, int fibre_size,
                                 std::uint64_t seed) {
  if (fibre_size <= 0) {
    throw std::invalid_argument(
        "random_covering_lift: fibre_size must be > 0");
  }
  return sample_connected_lift(
      [&](std::mt19937_64& rng) {
        return random_covering_lift_once(base, fibre_size, rng);
      },
      seed);
}

LiftedGraph ring_fibration(Vertex n, Vertex p) {
  if (p <= 0 || n <= 0 || n % p != 0) {
    throw std::invalid_argument("ring_fibration: p must divide n");
  }
  LiftedGraph result;
  result.graph = bidirectional_ring(n);
  result.projection.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    result.projection[static_cast<std::size_t>(v)] = v % p;
  }
  return result;
}

}  // namespace anonet
