#pragma once

// Graph serialization: Graphviz DOT export for inspection/papers, and a
// plain edge-list text format for loading experiment topologies.
//
// Edge-list format (line-oriented, '#' comments):
//     n <vertex_count>
//     e <source> <target> [color]
// Vertices are 0-based; color defaults to kNoColor.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/digraph.hpp"

namespace anonet {

// DOT digraph; vertex labels show `values` when provided (one per vertex),
// edge labels show non-zero colors (output ports). Self-loops included.
[[nodiscard]] std::string to_dot(const Digraph& g,
                                 const std::vector<std::int64_t>* values =
                                     nullptr,
                                 std::string_view name = "anonet");

[[nodiscard]] std::string to_edge_list(const Digraph& g);

// Parses the edge-list format; throws std::invalid_argument on malformed
// input (unknown directive, out-of-range vertex, missing header).
[[nodiscard]] Digraph parse_edge_list(std::string_view text);

}  // namespace anonet
