#include "views/view_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace anonet {

ViewId ViewRegistry::intern(Node node) {
  auto key = std::tuple{node.label, node.depth, node.children};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  const auto id = static_cast<ViewId>(nodes_.size());
  nodes_.push_back(std::move(node));
  interned_.emplace(std::move(key), id);
  return id;
}

ViewId ViewRegistry::leaf(int label) { return intern({label, 0, {}}); }

ViewId ViewRegistry::node(int label, ChildList children) {
  if (children.empty()) {
    throw std::invalid_argument(
        "ViewRegistry::node: views have at least the self-loop child");
  }
  std::sort(children.begin(), children.end());
  const int child_depth = depth(children.front().first);
  for (const auto& [child, color] : children) {
    if (depth(child) != child_depth) {
      throw std::invalid_argument("ViewRegistry::node: mixed child depths");
    }
  }
  return intern({label, child_depth + 1, std::move(children)});
}

int ViewRegistry::label(ViewId id) const {
  return nodes_[static_cast<std::size_t>(id)].label;
}

int ViewRegistry::depth(ViewId id) const {
  return nodes_[static_cast<std::size_t>(id)].depth;
}

const ViewRegistry::ChildList& ViewRegistry::children(ViewId id) const {
  return nodes_[static_cast<std::size_t>(id)].children;
}

ViewId ViewRegistry::truncate(ViewId id, int h) {
  if (h < 0) throw std::invalid_argument("ViewRegistry::truncate: h < 0");
  if (depth(id) <= h) return id;
  auto cache_key = std::pair{id, h};
  auto it = truncate_cache_.find(cache_key);
  if (it != truncate_cache_.end()) return it->second;
  ViewId result;
  if (h == 0) {
    result = leaf(label(id));
  } else {
    ChildList truncated;
    truncated.reserve(children(id).size());
    // Copy: recursive truncate calls may reallocate nodes_.
    const ChildList kids = children(id);
    const int own_label = label(id);
    for (const auto& [child, color] : kids) {
      truncated.emplace_back(truncate(child, h - 1), color);
    }
    result = node(own_label, std::move(truncated));
  }
  truncate_cache_.emplace(cache_key, result);
  return result;
}

double ViewRegistry::tree_size(ViewId id) const {
  auto it = tree_size_cache_.find(id);
  if (it != tree_size_cache_.end()) return it->second;
  double size = 1.0;
  for (const auto& [child, color] : children(id)) {
    size += tree_size(child);
  }
  tree_size_cache_.emplace(id, size);
  return size;
}

std::vector<ViewId> ViewRegistry::subviews(ViewId id) const {
  std::vector<ViewId> result;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<ViewId> stack{id};
  while (!stack.empty()) {
    const ViewId current = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(current)]) continue;
    seen[static_cast<std::size_t>(current)] = true;
    result.push_back(current);
    for (const auto& [child, color] : children(current)) {
      stack.push_back(child);
    }
  }
  return result;
}

}  // namespace anonet
