#pragma once

// Extraction of a minimum-base candidate from a single agent's view.
//
// This is the B(T_t^i) operation of Section 3.2: from its depth-t view an
// agent can enumerate the depth-h views of every agent within distance
// t - h (as embedded sub-trees), watch the count of distinct views as h
// grows, and read the base off the first depth where the count stalls. Only
// *recent* sub-views participate (see truncation_set in the .cpp), which
// makes the extraction self-stabilizing — corrupted layers sink below the
// window — at the cost of guaranteeing correctness from round n + 2D rather
// than the paper's n + D (their finite-state extraction is sharper). Before
// that round the candidate may be wrong, which is why the distributed
// algorithm is only *eventually* correct.

#include <vector>

#include "graph/digraph.hpp"
#include "views/view_registry.hpp"

namespace anonet {

struct ExtractedBase {
  Digraph base;             // colored multigraph candidate
  std::vector<int> values;  // vertex labels of the candidate
  int stable_depth = -1;    // h where distinct-view counts first stalled
  // The candidate passed the agent-local sanity checks (the truncation map
  // is a bijection, the candidate is strongly connected and fibration
  // prime). Guaranteed true — and correct — from round n + D.
  bool plausible = false;
};

// `own_view` must live in `registry` (non-const: truncation memoizes).
[[nodiscard]] ExtractedBase extract_base(ViewRegistry& registry,
                                         ViewId own_view);

}  // namespace anonet
