#pragma once

// Shared interning of vertex labels for view-based algorithms.
//
// View labels are small ints. An execution needs a *consistent* mapping from
// input values ω ∈ Ω (and, in the outdegree-aware model, from pairs
// (ω, outdegree)) to label ids across all agents. Deterministic agents in the
// paper achieve this trivially because labels *are* the mathematical values;
// the simulator instead interns them in one shared codec per execution —
// another bandwidth-only artifact (ids carry exactly the information the
// values would).

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

namespace anonet {

class LabelCodec {
 public:
  // Label for a bare input value.
  int value_label(std::int64_t value) {
    return intern(Key{value, -1});
  }

  // Label for an input value tagged with an outdegree (the G_od valuation).
  int valued_degree_label(std::int64_t value, int outdegree) {
    if (outdegree < 0) {
      throw std::invalid_argument("LabelCodec: negative outdegree");
    }
    return intern(Key{value, outdegree});
  }

  // Inverse mappings; throw std::out_of_range on unknown labels.
  [[nodiscard]] std::int64_t value_of(int label) const {
    return keys_.at(static_cast<std::size_t>(label)).value;
  }
  [[nodiscard]] int outdegree_of(int label) const {
    const int d = keys_.at(static_cast<std::size_t>(label)).outdegree;
    if (d < 0) throw std::out_of_range("LabelCodec: label has no outdegree");
    return d;
  }
  [[nodiscard]] bool has_outdegree(int label) const {
    return keys_.at(static_cast<std::size_t>(label)).outdegree >= 0;
  }

 private:
  struct Key {
    std::int64_t value;
    int outdegree;  // -1 when the label is a bare value
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  int intern(Key key) {
    auto [it, inserted] = ids_.emplace(key, static_cast<int>(keys_.size()));
    if (inserted) keys_.push_back(key);
    return it->second;
  }

  std::map<Key, int> ids_;
  std::vector<Key> keys_;
};

}  // namespace anonet
