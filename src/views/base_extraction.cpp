#include "views/base_extraction.hpp"

#include <map>
#include <set>

#include "fibration/minimum_base.hpp"
#include "graph/analysis.hpp"

namespace anonet {

namespace {

// Distinct depth-h truncations of the *recent* sub-views: those of depth at
// least midway between h and the full view depth. Why not all sub-views?
// Self-stabilization. After a state corruption, garbage trees stay embedded
// forever in the bottom layers of the growing view; a sub-view of depth d
// has garbage within its top h layers only while d <= h + (corruption
// depth), so thresholding d at h + (max_depth - h)/2 excludes garbage once
// max_depth outgrows twice the corruption depth, while still including every
// agent's current depth-h view once max_depth >= h + 2D (an agent's view
// from k <= D rounds ago sits at depth max_depth - k). The price is a
// stabilization bound of n + 2D rounds instead of the paper's n + D — see
// DESIGN.md.
std::set<ViewId> truncation_set(ViewRegistry& registry,
                                const std::vector<ViewId>& subviews, int h,
                                int max_depth) {
  const int threshold = h + (max_depth - h) / 2;
  std::set<ViewId> result;
  for (ViewId s : subviews) {
    if (registry.depth(s) >= threshold && registry.depth(s) >= h) {
      result.insert(registry.truncate(s, h));
    }
  }
  return result;
}

// Attempts to build the quotient graph out of the h -> h+1 refinement.
// Returns false when the truncation map U_{h+1} -> U_h is not a bijection
// (a symptom of incomplete view sets in early rounds).
bool build_candidate(ViewRegistry& registry, const std::set<ViewId>& level_h,
                     const std::set<ViewId>& level_h1, ExtractedBase& out) {
  std::map<ViewId, Vertex> class_of;
  for (ViewId u : level_h) {
    class_of.emplace(u, static_cast<Vertex>(class_of.size()));
  }
  const auto m = static_cast<Vertex>(class_of.size());
  out.base = Digraph(m);
  out.values.assign(static_cast<std::size_t>(m), 0);
  std::vector<bool> defined(static_cast<std::size_t>(m), false);
  for (ViewId w : level_h1) {
    const auto root_it =
        class_of.find(registry.truncate(w, registry.depth(w) - 1));
    if (root_it == class_of.end()) return false;  // incomplete window
    const Vertex c = root_it->second;
    if (defined[static_cast<std::size_t>(c)]) return false;  // not injective
    defined[static_cast<std::size_t>(c)] = true;
    out.values[static_cast<std::size_t>(c)] = registry.label(w);
    for (const auto& [child, color] : registry.children(w)) {
      const auto child_it = class_of.find(child);
      if (child_it == class_of.end()) return false;  // incomplete window
      out.base.add_edge(child_it->second, c, static_cast<EdgeColor>(color));
    }
  }
  for (bool d : defined) {
    if (!d) return false;  // not surjective
  }
  return true;
}

}  // namespace

ExtractedBase extract_base(ViewRegistry& registry, ViewId own_view) {
  ExtractedBase result;
  const std::vector<ViewId> subviews = registry.subviews(own_view);
  const int max_depth = registry.depth(own_view);

  std::set<ViewId> level = truncation_set(registry, subviews, 0, max_depth);
  for (int h = 0; h < max_depth; ++h) {
    std::set<ViewId> next =
        truncation_set(registry, subviews, h + 1, max_depth);
    if (level.size() == next.size()) {
      ExtractedBase candidate;
      candidate.stable_depth = h;
      if (build_candidate(registry, level, next, candidate) &&
          is_strongly_connected(candidate.base) &&
          is_fibration_prime(candidate.base, candidate.values)) {
        candidate.plausible = true;
        return candidate;
      }
      // Keep the best implausible candidate for diagnostics, but keep
      // scanning deeper: completeness may only hold at larger h.
      if (result.stable_depth == -1) result = std::move(candidate);
    }
    level = std::move(next);
  }
  return result;
}

}  // namespace anonet
