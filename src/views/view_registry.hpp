#pragma once

// Hash-consed Boldi–Vigna view trees (Section 3.2).
//
// The depth-t view of an agent is a tree: the root carries the agent's label,
// and its children are the depth-(t-1) views of its in-neighbors, each child
// edge carrying the color (output port) of the connecting edge when the
// model provides one. Views grow exponentially as explicit trees, so the
// simulator interns them: structurally equal views share one id, making
// equality O(1) and messages constant-size. Interning is a *bandwidth*
// optimization only — agents can compute nothing from an id beyond what the
// tree itself conveys, so computability results are unaffected (see
// DESIGN.md, substitution table).

#include <cstdint>
#include <map>
#include <vector>

namespace anonet {

using ViewId = std::int32_t;
inline constexpr ViewId kInvalidView = -1;

class ViewRegistry {
 public:
  // A child is a sub-view plus the color of the edge it was received on.
  using ChildList = std::vector<std::pair<ViewId, std::int32_t>>;

  // Depth-0 view: a bare vertex label.
  ViewId leaf(int label);

  // View with children of uniform depth d; the result has depth d + 1.
  // Children are sorted internally (a view's children form a multiset).
  // Throws std::invalid_argument on mixed child depths.
  ViewId node(int label, ChildList children);

  [[nodiscard]] int label(ViewId id) const;
  [[nodiscard]] int depth(ViewId id) const;
  [[nodiscard]] const ChildList& children(ViewId id) const;

  // The view truncated to depth `h` (identity when depth(id) <= h).
  // Memoized; truncation commutes with the view construction, i.e.
  // truncate(V_t(v), h) == V_h(v).
  ViewId truncate(ViewId id, int h);

  // All distinct sub-views of `id`, including `id` itself.
  [[nodiscard]] std::vector<ViewId> subviews(ViewId id) const;

  // Number of nodes of the *unfolded* tree (children counted with
  // multiplicity) — the size a non-interned message would have. Grows
  // exponentially with depth, which is exactly why the simulator interns
  // and why the paper cares about finite-state variants; returned as a
  // double since it overflows integers fast. Memoized.
  [[nodiscard]] double tree_size(ViewId id) const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    int label = 0;
    int depth = 0;
    ChildList children;
  };

  ViewId intern(Node node);

  std::vector<Node> nodes_;
  std::map<std::tuple<int, int, ChildList>, ViewId> interned_;
  std::map<std::pair<ViewId, int>, ViewId> truncate_cache_;
  mutable std::map<ViewId, double> tree_size_cache_;
};

}  // namespace anonet
