#pragma once

// Exact kernel computation for the fibre-equation systems of Section 4.2.
//
// The paper's agents solve M z = 0 where M is built from the minimum base
// (off-diagonal entries d_{i,j}, diagonal d_{i,i} - b_i) and proves ker M has
// dimension one with a positive generator — the fibre cardinalities up to a
// common factor. We compute the kernel by fraction-free-ish Gaussian
// elimination over Q and normalize the generator to the unique coprime
// positive integer vector (the paper's "Gaussian elimination over the
// Euclidean ring Z" step).

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/bigint.hpp"

namespace anonet {

// Basis of ker(M) (column vectors), possibly empty when M is injective.
[[nodiscard]] std::vector<std::vector<Rational>> kernel_basis(
    const RationalMatrix& m);

[[nodiscard]] std::size_t rank(const RationalMatrix& m);

// When ker(M) is one-dimensional and admits a strictly positive generator,
// returns the unique such generator with coprime integer entries; otherwise
// nullopt. This is exactly what Theorem 4.1's positive proof needs.
[[nodiscard]] std::optional<std::vector<BigInt>> positive_coprime_kernel_vector(
    const RationalMatrix& m);

// Clears denominators and divides by the gcd: the coprime integer vector
// proportional to `v`. Throws std::invalid_argument on the zero vector.
[[nodiscard]] std::vector<BigInt> coprime_integer_vector(
    const std::vector<Rational>& v);

}  // namespace anonet
