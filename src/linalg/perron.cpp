#include "linalg/perron.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/analysis.hpp"

namespace anonet {

DoubleMatrix to_double_matrix(const RationalMatrix& m) {
  DoubleMatrix result(m.rows(), std::vector<double>(m.cols(), 0.0));
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      result[i][j] = m.at(i, j).to_double();
    }
  }
  return result;
}

DoubleMatrix perron_shift(const RationalMatrix& m, double* alpha_out) {
  if (m.rows() != m.cols()) {
    throw std::invalid_argument("perron_shift: square matrix required");
  }
  DoubleMatrix result = to_double_matrix(m);
  double min_diag = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    min_diag = std::min(min_diag, result[i][i]);
  }
  const double alpha = 1.0 - min_diag;
  for (std::size_t i = 0; i < m.rows(); ++i) result[i][i] += alpha;
  if (alpha_out != nullptr) *alpha_out = alpha;
  return result;
}

bool is_irreducible_nonnegative(const DoubleMatrix& m) {
  const auto n = static_cast<Vertex>(m.size());
  Digraph g(n);
  for (Vertex i = 0; i < n; ++i) {
    if (static_cast<Vertex>(m[static_cast<std::size_t>(i)].size()) != n) {
      throw std::invalid_argument("is_irreducible_nonnegative: not square");
    }
    for (Vertex j = 0; j < n; ++j) {
      const double entry = m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (entry < 0.0) return false;
      if (entry > 0.0) g.add_edge(j, i);  // paper's G_A convention
    }
  }
  return is_strongly_connected(g);
}

double spectral_radius(const DoubleMatrix& m, int iterations) {
  const std::size_t n = m.size();
  if (n == 0) throw std::invalid_argument("spectral_radius: empty matrix");
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  double radius = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) next[i] += m[i][j] * v[j];
    }
    double norm = 0.0;
    for (double x : next) norm += std::abs(x);
    if (norm == 0.0) return 0.0;
    for (double& x : next) x /= norm;
    radius = norm;
    // Early exit once the iterate stops moving.
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::abs(next[i] - v[i]);
    v = std::move(next);
    if (delta < 1e-15) break;
  }
  return radius;
}

}  // namespace anonet
