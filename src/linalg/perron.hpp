#pragma once

// Perron–Frobenius utilities for the Section 4.2 spectral argument.
//
// The proof shifts the fibre matrix M by αI with α > -min_i M_{i,i} so that
// P = M + αI is non-negative and irreducible, then concludes via
// Perron–Frobenius that ker M is one-dimensional. These helpers make that
// argument executable: tests verify that the spectral radius of P is exactly
// α on real fibre matrices (i.e. the Perron eigenvalue of M is 0).

#include <vector>

#include "linalg/matrix.hpp"

namespace anonet {

using DoubleMatrix = std::vector<std::vector<double>>;

[[nodiscard]] DoubleMatrix to_double_matrix(const RationalMatrix& m);

// The shift P = M + alpha*I of Section 4.2, with
// alpha = 1 - min_i M_{i,i} (any value > -min M_{i,i} works).
[[nodiscard]] DoubleMatrix perron_shift(const RationalMatrix& m,
                                        double* alpha_out = nullptr);

// True when the matrix is non-negative and its associated graph (edge j->i
// when M_{i,j} > 0) is strongly connected.
[[nodiscard]] bool is_irreducible_nonnegative(const DoubleMatrix& m);

// Spectral radius by power iteration. Requires a non-negative irreducible
// matrix with positive diagonal (primitivity), which perron_shift guarantees
// for fibre matrices; `iterations` defaults comfortably past convergence for
// the sizes involved.
[[nodiscard]] double spectral_radius(const DoubleMatrix& m,
                                     int iterations = 10000);

}  // namespace anonet
