#pragma once

// Dense matrices over exact rationals.
//
// Sized for the fibre-equation systems of Section 4.2: a minimum base has at
// most n vertices, and in practice far fewer, so O(m^3) exact elimination is
// the right tool — correctness over asymptotics.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace anonet {

class RationalMatrix {
 public:
  RationalMatrix() = default;
  RationalMatrix(std::size_t rows, std::size_t cols);
  RationalMatrix(std::initializer_list<std::initializer_list<Rational>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] Rational& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Rational& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  static RationalMatrix identity(std::size_t n);

  friend RationalMatrix operator*(const RationalMatrix& a,
                                  const RationalMatrix& b);
  friend RationalMatrix operator+(const RationalMatrix& a,
                                  const RationalMatrix& b);
  friend RationalMatrix operator-(const RationalMatrix& a,
                                  const RationalMatrix& b);
  friend bool operator==(const RationalMatrix& a,
                         const RationalMatrix& b) = default;

  [[nodiscard]] std::vector<Rational> apply(
      const std::vector<Rational>& v) const;

  [[nodiscard]] std::string to_string() const;  // debugging aid

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rational> data_;
};

}  // namespace anonet
