#include "linalg/kernel.hpp"

#include <algorithm>
#include <stdexcept>

namespace anonet {

namespace {

// Reduced row echelon form in place; returns pivot column per pivot row.
std::vector<std::size_t> reduce(RationalMatrix& m) {
  std::vector<std::size_t> pivot_cols;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Partial pivoting is unnecessary over exact rationals; any non-zero
    // entry works.
    std::size_t chosen = pivot_row;
    while (chosen < m.rows() && m.at(chosen, col).is_zero()) ++chosen;
    if (chosen == m.rows()) continue;
    if (chosen != pivot_row) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        std::swap(m.at(chosen, j), m.at(pivot_row, j));
      }
    }
    const Rational inv = m.at(pivot_row, col).reciprocal();
    for (std::size_t j = col; j < m.cols(); ++j) m.at(pivot_row, j) *= inv;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r == pivot_row || m.at(r, col).is_zero()) continue;
      const Rational factor = m.at(r, col);
      for (std::size_t j = col; j < m.cols(); ++j) {
        m.at(r, j) -= factor * m.at(pivot_row, j);
      }
    }
    pivot_cols.push_back(col);
    ++pivot_row;
  }
  return pivot_cols;
}

}  // namespace

std::size_t rank(const RationalMatrix& m) {
  RationalMatrix work = m;
  return reduce(work).size();
}

std::vector<std::vector<Rational>> kernel_basis(const RationalMatrix& m) {
  RationalMatrix work = m;
  const std::vector<std::size_t> pivot_cols = reduce(work);
  std::vector<bool> is_pivot(m.cols(), false);
  for (std::size_t col : pivot_cols) is_pivot[col] = true;

  std::vector<std::vector<Rational>> basis;
  for (std::size_t free_col = 0; free_col < m.cols(); ++free_col) {
    if (is_pivot[free_col]) continue;
    std::vector<Rational> vec(m.cols());
    vec[free_col] = Rational(1);
    for (std::size_t p = 0; p < pivot_cols.size(); ++p) {
      vec[pivot_cols[p]] = -work.at(p, free_col);
    }
    basis.push_back(std::move(vec));
  }
  return basis;
}

std::vector<BigInt> coprime_integer_vector(const std::vector<Rational>& v) {
  BigInt denominator_lcm(1);
  bool all_zero = true;
  for (const Rational& x : v) {
    if (!x.is_zero()) {
      all_zero = false;
      denominator_lcm = lcm(denominator_lcm, x.denominator());
    }
  }
  if (all_zero) {
    throw std::invalid_argument("coprime_integer_vector: zero vector");
  }
  std::vector<BigInt> scaled;
  scaled.reserve(v.size());
  BigInt common;
  for (const Rational& x : v) {
    BigInt entry = x.numerator() * (denominator_lcm / x.denominator());
    common = gcd(common, entry);
    scaled.push_back(std::move(entry));
  }
  for (BigInt& entry : scaled) entry = entry / common;
  return scaled;
}

std::optional<std::vector<BigInt>> positive_coprime_kernel_vector(
    const RationalMatrix& m) {
  std::vector<std::vector<Rational>> basis = kernel_basis(m);
  if (basis.size() != 1) return std::nullopt;
  std::vector<BigInt> candidate = coprime_integer_vector(basis.front());
  // Flip sign so the vector is positive if possible.
  int sign = 0;
  for (const BigInt& entry : candidate) {
    if (entry.is_zero()) return std::nullopt;  // not strictly positive
    const int s = entry.signum();
    if (sign == 0) sign = s;
    if (s != sign) return std::nullopt;  // mixed signs: no positive generator
  }
  if (sign < 0) {
    for (BigInt& entry : candidate) entry = entry.negate();
  }
  return candidate;
}

}  // namespace anonet
