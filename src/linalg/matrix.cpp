#include "linalg/matrix.hpp"

#include <sstream>
#include <stdexcept>

namespace anonet {

RationalMatrix::RationalMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

RationalMatrix::RationalMatrix(
    std::initializer_list<std::initializer_list<Rational>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("RationalMatrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

RationalMatrix RationalMatrix::identity(std::size_t n) {
  RationalMatrix result(n, n);
  for (std::size_t i = 0; i < n; ++i) result.at(i, i) = Rational(1);
  return result;
}

RationalMatrix operator*(const RationalMatrix& a, const RationalMatrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("RationalMatrix: dimension mismatch in *");
  }
  RationalMatrix result(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      if (a.at(i, k).is_zero()) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        result.at(i, j) += a.at(i, k) * b.at(k, j);
      }
    }
  }
  return result;
}

RationalMatrix operator+(const RationalMatrix& a, const RationalMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("RationalMatrix: dimension mismatch in +");
  }
  RationalMatrix result(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      result.at(i, j) = a.at(i, j) + b.at(i, j);
    }
  }
  return result;
}

RationalMatrix operator-(const RationalMatrix& a, const RationalMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("RationalMatrix: dimension mismatch in -");
  }
  RationalMatrix result(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      result.at(i, j) = a.at(i, j) - b.at(i, j);
    }
  }
  return result;
}

std::vector<Rational> RationalMatrix::apply(
    const std::vector<Rational>& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("RationalMatrix::apply: dimension mismatch");
  }
  std::vector<Rational> result(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (!at(i, j).is_zero()) result[i] += at(i, j) * v[j];
    }
  }
  return result;
}

std::string RationalMatrix::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << at(i, j).to_string() << (j + 1 < cols_ ? " " : "");
    }
    os << (i + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

}  // namespace anonet
