#include "campaign/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <unordered_set>

#include "support/jsonl.hpp"

namespace anonet::campaign {

MetricsSink::MetricsSink(std::string path, bool include_timings, bool append)
    : path_(std::move(path)), include_timings_(include_timings) {
  out_.open(path_, append ? std::ios::app : std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("MetricsSink: cannot open '" + path_ +
                             "' for writing");
  }
}

MetricsSink::~MetricsSink() { close(); }

void MetricsSink::append(const CellRecord& record) {
  const std::string line = to_json(record, include_timings_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    throw std::runtime_error("MetricsSink: append after close");
  }
  out_ << line << '\n';
  // Durability contract: an appended record is an *acknowledged* cell —
  // remote coordinators treat its append as the moment the cell is done, so
  // it must reach the file before append returns or a crash right after the
  // acknowledgement silently loses the cell.
  out_.flush();
  if (!out_) {
    throw std::runtime_error("MetricsSink: write to '" + path_ + "' failed");
  }
}

void MetricsSink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

std::string MetricsSink::to_json(const CellRecord& record,
                                 bool include_timings) {
  JsonObject o;
  o.field("cell", record.cell)
      .field("key", record.key)
      .field("suite", record.suite)
      .field("agent", record.agent)
      .field("model", record.model)
      .field("knowledge", record.knowledge)
      .field("function", record.function)
      .field("schedule", record.schedule)
      .field("variant", record.variant)
      .field("n", record.n)
      .field("seed", static_cast<std::int64_t>(record.seed));
  // Perturbation coordinates only appear off their defaults, keeping
  // unperturbed records byte-identical to the pre-perturbation format.
  if (!record.starts.empty() && record.starts != "sync") {
    o.field("starts", record.starts);
  }
  if (!record.faults.empty() && record.faults != "none") {
    o.field("faults", record.faults);
  }
  o.field("verdict", record.verdict)
      .field("reason", record.reason);
  if (record.deadline_ms > 0.0) {
    o.field("deadline_ms", record.deadline_ms);
  }
  if (record.predicted) {
    o.field("predicted", record.predicted);
  }
  o.field("success", record.success)
      .field("exact", record.exact)
      .field("stabilization_round", record.stabilization_round)
      .field("error", record.error)
      .field("rounds", record.rounds)
      .field("messages", record.messages)
      .field("payload", record.payload);
  // Channel-off records omit the bandwidth fields entirely, keeping their
  // bytes identical to the pre-bandwidth format.
  if (record.bandwidth_bits != 0) {
    o.field("bandwidth_bits", record.bandwidth_bits).field("bits", record.bits);
  }
  o.field("mechanism", record.mechanism);
  if (include_timings && record.wall_ms >= 0.0) {
    o.field("wall_ms", record.wall_ms);
  }
  return o.str();
}

namespace {

// Minimal parser for the flat one-line objects to_json produces: string
// values are unescaped, everything else is kept as a raw token. Returns
// false on any malformation (including truncation mid-line).
class FlatLineParser {
 public:
  explicit FlatLineParser(const std::string& line) : s_(line) {}

  bool parse(std::vector<std::pair<std::string, std::string>>& strings,
             std::vector<std::pair<std::string, std::string>>& tokens) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return finished();
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (peek() == '"') {
        std::string value;
        if (!parse_string(value)) return false;
        strings.emplace_back(std::move(key), std::move(value));
      } else {
        std::string value;
        while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}') {
          value += s_[i_++];
        }
        if (value.empty()) return false;
        tokens.emplace_back(std::move(key), std::move(value));
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return finished();
      return false;
    }
  }

 private:
  [[nodiscard]] char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool finished() {
    skip_ws();
    return i_ == s_.size();
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) return false;
      const char esc = s_[i_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) return false;
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writer only \u-escapes control bytes; anything wider is
          // foreign input we reject rather than mis-decode.
          if (value > 0xff) return false;
          out += static_cast<char>(value);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated string (truncated line)
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

const std::string* find(
    const std::vector<std::pair<std::string, std::string>>& fields,
    const char* key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool to_int64(const std::string& token, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') return false;
  out = value;
  return true;
}

bool to_double(const std::string& token, double& out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') return false;
  out = value;
  return true;
}

}  // namespace

std::optional<CellRecord> MetricsSink::parse_line(const std::string& line) {
  std::vector<std::pair<std::string, std::string>> strings;
  std::vector<std::pair<std::string, std::string>> tokens;
  FlatLineParser parser(line);
  if (!parser.parse(strings, tokens)) return std::nullopt;

  CellRecord record;
  const auto str = [&strings](const char* key, std::string& out) {
    const std::string* v = find(strings, key);
    if (v == nullptr) return false;
    out = *v;
    return true;
  };
  if (!str("key", record.key) || !str("verdict", record.verdict)) {
    return std::nullopt;
  }
  str("suite", record.suite);
  str("agent", record.agent);
  str("model", record.model);
  str("knowledge", record.knowledge);
  str("function", record.function);
  str("schedule", record.schedule);
  str("starts", record.starts);
  str("faults", record.faults);
  str("reason", record.reason);
  str("mechanism", record.mechanism);

  std::int64_t value = 0;
  const std::string* token = find(tokens, "cell");
  if (token == nullptr || !to_int64(*token, value)) return std::nullopt;
  record.cell = static_cast<int>(value);
  const auto integer = [&tokens](const char* key, auto& out) {
    const std::string* t = find(tokens, key);
    std::int64_t v = 0;
    if (t != nullptr && to_int64(*t, v)) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(v);
    }
  };
  integer("variant", record.variant);
  integer("n", record.n);
  integer("seed", record.seed);
  integer("stabilization_round", record.stabilization_round);
  integer("rounds", record.rounds);
  integer("messages", record.messages);
  integer("payload", record.payload);
  integer("bandwidth_bits", record.bandwidth_bits);
  integer("bits", record.bits);
  const auto boolean = [&tokens](const char* key, bool& out) {
    const std::string* t = find(tokens, key);
    if (t != nullptr) out = (*t == "true");
  };
  boolean("success", record.success);
  boolean("exact", record.exact);
  boolean("predicted", record.predicted);
  if (const std::string* t = find(tokens, "deadline_ms")) {
    double d = 0.0;
    if (to_double(*t, d)) record.deadline_ms = d;
  }

  // error is numeric, or the string spelling of a non-finite value.
  if (const std::string* t = find(tokens, "error")) {
    double e = 0.0;
    if (to_double(*t, e)) record.error = e;
  } else if (const std::string* s = find(strings, "error")) {
    if (*s == "inf") {
      record.error = std::numeric_limits<double>::infinity();
    } else if (*s == "-inf") {
      record.error = -std::numeric_limits<double>::infinity();
    }
    // "nan" keeps the default quiet_NaN.
  }
  if (const std::string* t = find(tokens, "wall_ms")) {
    double w = 0.0;
    if (to_double(*t, w)) record.wall_ms = w;
  }
  return record;
}

std::vector<CellRecord> MetricsSink::read_file(const std::string& path) {
  std::vector<CellRecord> records;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto record = parse_line(line)) records.push_back(std::move(*record));
  }
  return records;
}

void MetricsSink::write_canonical(const std::string& path,
                                  std::vector<CellRecord> records,
                                  bool include_timings) {
  std::stable_sort(records.begin(), records.end(),
                   [](const CellRecord& a, const CellRecord& b) {
                     if (a.cell != b.cell) return a.cell < b.cell;
                     return a.key < b.key;
                   });
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("MetricsSink: cannot rewrite '" + path + "'");
  }
  std::unordered_set<std::string> written;
  for (const CellRecord& record : records) {
    if (!written.insert(record.key).second) continue;  // dup: keep the first
    out << to_json(record, include_timings) << '\n';
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("MetricsSink: rewrite of '" + path + "' failed");
  }
}

namespace {

// Per-(knowledge, model, function) fold over variants, mirroring the
// all-panels quantifier of the bench probes.
struct FunctionFold {
  int runs = 0;
  int skipped = 0;
  bool all_exact = true;
  bool all_approx = true;

  void add(const CellRecord& record) {
    if (record.verdict == "skipped") {
      ++skipped;
      return;
    }
    ++runs;
    const bool ok = record.verdict == "ok";
    all_exact = all_exact && ok && record.exact;
    all_approx = all_approx && ok && record.success;
  }

  [[nodiscard]] bool exact() const { return runs > 0 && all_exact; }
  [[nodiscard]] bool approx() const { return runs > 0 && all_approx; }
  [[nodiscard]] bool all_skipped() const { return runs == 0 && skipped > 0; }
};

struct PaperGrid {
  std::vector<CommModel> cols;
  std::vector<std::vector<std::string>> labels;
  std::vector<std::vector<bool>> open;
};

PaperGrid paper_grid(const std::string& suite) {
  PaperGrid grid;
  if (suite == "table1") {
    grid.cols = {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
                 CommModel::kSymmetricBroadcast, CommModel::kOutputPortAware};
    grid.labels = {
        {"set-based", "frequency-based", "frequency-based", "frequency-based"},
        {"set-based", "frequency-based", "frequency-based", "frequency-based"},
        {"set-based", "multiset-based", "multiset-based", "multiset-based"},
        {"set-based", "multiset-based", "multiset-based", "multiset-based"},
    };
    grid.open.assign(4, std::vector<bool>(4, false));
  } else if (suite == "table2") {
    grid.cols = {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
                 CommModel::kSymmetricBroadcast};
    // The symmetric no-help and leader cells are the paper's [26]/[25]
    // citations (exact computation); the outdegree no-help and leader cells
    // are its two open "?" entries.
    grid.labels = {
        {"set-based", "?", "frequency-based"},
        {"set-based", "frequency-based", "frequency-based"},
        {"set-based", "multiset-based", "multiset-based"},
        {"set-based", "?", "multiset-based"},
    };
    grid.open = {
        {false, true, false},
        {false, false, false},
        {false, false, false},
        {false, true, false},
    };
  } else {
    throw std::invalid_argument("compare_table: unknown suite '" + suite +
                                "' (expected table1 or table2)");
  }
  return grid;
}

}  // namespace

TableComparison compare_table(const std::vector<CellRecord>& records,
                              const std::string& suite) {
  const PaperGrid grid = paper_grid(suite);
  const bool table1 = suite == "table1";

  TableComparison out;
  out.suite = suite;
  out.rows = {Knowledge::kNone, Knowledge::kUpperBound, Knowledge::kExactSize,
              Knowledge::kLeaders};
  out.cols = grid.cols;
  out.paper = grid.labels;
  out.open = grid.open;
  out.measured.assign(out.rows.size(),
                      std::vector<std::string>(out.cols.size(), "(no data)"));
  out.all_match = true;

  for (std::size_t r = 0; r < out.rows.size(); ++r) {
    for (std::size_t c = 0; c < out.cols.size(); ++c) {
      const std::string knowledge{slug(out.rows[r])};
      const std::string model{slug(out.cols[c])};
      FunctionFold set_fold;
      FunctionFold freq_fold;
      FunctionFold multi_fold;
      for (const CellRecord& record : records) {
        if (record.suite != suite || record.knowledge != knowledge ||
            record.model != model) {
          continue;
        }
        if (record.function == "max") {
          set_fold.add(record);
        } else if (record.function == "average") {
          freq_fold.add(record);
        } else if (record.function == "sum") {
          multi_fold.add(record);
        }
      }

      std::string label;
      if (set_fold.all_skipped() && freq_fold.all_skipped() &&
          multi_fold.all_skipped()) {
        label = "skipped";
      } else if (set_fold.runs == 0 && freq_fold.runs == 0 &&
                 multi_fold.runs == 0) {
        label = "(no data)";
      } else if (table1) {
        if (multi_fold.exact() && freq_fold.exact() && set_fold.exact()) {
          label = "multiset-based";
        } else if (freq_fold.exact() && set_fold.exact()) {
          label = "frequency-based";
        } else if (set_fold.exact()) {
          label = "set-based";
        } else {
          label = "(nothing)";
        }
      } else {
        if (multi_fold.exact()) {
          label = "multiset-based";
        } else if (freq_fold.exact()) {
          label = "frequency-based";
        } else if (freq_fold.approx()) {
          label = "frequency-based*";
        } else if (set_fold.exact()) {
          label = "set-based";
        } else {
          label = "(nothing)";
        }
      }
      out.measured[r][c] = label;

      const bool cell_ok = out.open[r][c] ? label == "skipped"
                                          : label == out.paper[r][c];
      out.all_match = out.all_match && cell_ok;
    }
  }
  return out;
}

std::string render_table(const TableComparison& table) {
  constexpr int kNameWidth = 26;
  constexpr int kCellWidth = 22;
  const auto pad = [](std::string text, int width) {
    if (static_cast<int>(text.size()) < width) {
      text.append(static_cast<std::size_t>(width) - text.size(), ' ');
    }
    return text;
  };

  std::string out = table.suite == "table1"
                        ? "Table 1 (static, strongly connected) — measured "
                          "from campaign records\n"
                        : "Table 2 (dynamic, finite dynamic diameter) — "
                          "measured from campaign records\n";
  out += pad("", kNameWidth);
  for (CommModel model : table.cols) {
    out += "| " + pad(std::string(to_string(model)), kCellWidth);
  }
  out += '\n';
  out.append(static_cast<std::size_t>(
                 kNameWidth + static_cast<int>(table.cols.size()) *
                                  (kCellWidth + 2)),
             '-');
  out += '\n';
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    out += pad(std::string(to_string(table.rows[r])), kNameWidth);
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
      const std::string& measured = table.measured[r][c];
      const bool match = table.open[r][c] ? measured == "skipped"
                                          : measured == table.paper[r][c];
      std::string cell = measured;
      cell += table.open[r][c] ? (match ? " (open)" : " (!open)")
                               : (match ? " (=paper)" : " (DIFFERS)");
      out += "| " + pad(std::move(cell), kCellWidth);
    }
    out += '\n';
  }
  return out;
}

}  // namespace anonet::campaign
