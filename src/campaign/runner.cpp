#include "campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/census.hpp"
#include "core/gossip.hpp"
#include "core/metropolis.hpp"
#include "core/pushsum.hpp"
#include "dynamics/adversarial.hpp"
#include "dynamics/perturbation.hpp"
#include "dynamics/schedules.hpp"
#include "runtime/executor.hpp"
#include "support/thread_pool.hpp"
#include "wire/codecs.hpp"
#include "wire/meter.hpp"

namespace anonet::campaign {

namespace {

// Fixed adversary parameters: the spooner releases its bridge every 5th
// round (dynamic diameter ~ period + 2), the union ring splits the ring
// over 3 phases (no round connected, union over any 3 rounds is the ring).
constexpr int kSpoonerPeriod = 5;
constexpr int kUnionRingParts = 3;

DynamicGraphPtr make_cell_schedule(const Cell& cell) {
  const auto n = static_cast<Vertex>(cell.n());
  switch (cell.schedule) {
    case ScheduleKind::kStaticPanel:
      return std::make_shared<StaticSchedule>(
          make_static_panel(cell.model, cell.variant).graph);
    case ScheduleKind::kRandomStronglyConnected:
      return std::make_shared<RandomStronglyConnectedSchedule>(n, 3,
                                                               cell.seed);
    case ScheduleKind::kRandomSymmetric:
      return std::make_shared<RandomSymmetricSchedule>(n, 3, cell.seed);
    case ScheduleKind::kRandomMatching:
      return std::make_shared<RandomMatchingSchedule>(n, cell.seed);
    case ScheduleKind::kTokenRing:
      return std::make_shared<TokenRingSchedule>(n);
    case ScheduleKind::kSpooner:
      return std::make_shared<SpoonerSchedule>(n, kSpoonerPeriod);
    case ScheduleKind::kUnionRing:
      return std::make_shared<UnionRingSchedule>(n, kUnionRingParts);
    case ScheduleKind::kGrowingGap:
      return std::make_shared<GrowingGapRingSchedule>(n);
    case ScheduleKind::kPreferentialChurn:
      return preferential_churn_schedule(n, cell.seed);
    case ScheduleKind::kGeometricChurn:
      return geometric_churn_schedule(n, cell.seed);
  }
  throw std::invalid_argument("make_cell_schedule: unknown schedule kind");
}

// Perturbation coordinates -> executor configuration. The parameters are
// fixed per kind (stride-2 staggering, a round-25 straggler, an immediate
// crash of agent 0, 30% drops) so a cell's key fully determines its run.
constexpr int kStaggerStride = 2;
constexpr int kStragglerWake = 25;
constexpr int kCrashRound = 1;
constexpr double kDropRate = 0.30;

template <typename Agent>
void configure_perturbations(Executor<Agent>& executor, const Cell& cell) {
  const auto n = static_cast<Vertex>(cell.n());
  switch (cell.starts) {
    case StartsKind::kSynchronous:
      break;
    case StartsKind::kStaggered:
      executor.set_start_schedule(StartSchedule::staggered(n, kStaggerStride));
      break;
    case StartsKind::kStraggler:
      executor.set_start_schedule(StartSchedule::straggler(n, kStragglerWake));
      break;
  }
  if (cell.faults == FaultsKind::kNone) return;
  FaultPlan plan;
  if (cell.faults == FaultsKind::kCrash ||
      cell.faults == FaultsKind::kCrashDrop) {
    plan = FaultPlan::crash_first_agent(n, kCrashRound);
  }
  if (cell.faults == FaultsKind::kDrop ||
      cell.faults == FaultsKind::kCrashDrop) {
    // The drop lottery gets its own stream, decorrelated from the graph and
    // shuffle streams that also key off cell.seed.
    plan.drop_rate = kDropRate;
    plan.drop_seed = cell.seed ^ 0x9e3779b97f4a7c15ull;
  }
  executor.set_fault_plan(std::move(plan));
}

// The computability-harness path (AgentKind::kAuto): the harness picks the
// paper's algorithm for the (model, knowledge, function) cell, exactly as
// the bench table probes do.
void run_auto(const Cell& cell, CellRecord& record) {
  Attempt attempt;
  attempt.model = cell.model;
  attempt.knowledge = cell.knowledge;
  attempt.rounds = cell.rounds;
  attempt.tolerance = cell.tolerance;
  attempt.seed = cell.seed;
  attempt.deadline_ms = cell.timeout_ms;
  attempt.bandwidth_bits = cell.bandwidth_bits;
  std::vector<std::int64_t> inputs = cell.inputs;
  const int n = cell.n();
  switch (cell.knowledge) {
    case Knowledge::kNone:
      break;
    case Knowledge::kUpperBound:
      attempt.parameter = 2 * n;
      break;
    case Knowledge::kExactSize:
      attempt.parameter = n;
      break;
    case Knowledge::kLeaders:
      attempt.parameter = 1;
      inputs.clear();
      for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
        inputs.push_back(encode_leader_input(cell.inputs[i], i == 0));
      }
      break;
  }
  const SymmetricFunction f = make_function(cell.function);
  const AttemptResult result =
      cell.schedule == ScheduleKind::kStaticPanel
          ? attempt_static(make_static_panel(cell.model, cell.variant).graph,
                           inputs, f, attempt)
          : attempt_dynamic(make_cell_schedule(cell), inputs, f, attempt);
  record.success = result.success;
  record.exact = result.success && result.stabilization_round >= 0;
  record.stabilization_round = result.stabilization_round;
  record.error = result.final_error;
  record.rounds = result.rounds_run;
  record.messages = result.messages_delivered;
  record.payload = result.payload_units;
  record.bits = result.bits_total;
  record.mechanism = result.mechanism;
}

void finish_from_stats(const ExecutorStats& stats, CellRecord& record) {
  record.rounds = stats.rounds;
  record.messages = stats.messages_delivered;
  record.payload = stats.payload_units;
}

// Flooding on the pinned schedule: exact (δ0) verdict. Known sets only
// grow, so the first all-agents-exact round is permanent and we can stop.
void run_gossip(const Cell& cell, CellRecord& record) {
  std::vector<SetGossipAgent> agents;
  agents.reserve(cell.inputs.size());
  for (std::int64_t input : cell.inputs) agents.emplace_back(input);
  Executor<SetGossipAgent> executor(make_cell_schedule(cell),
                                    std::move(agents), cell.model, cell.seed);
  executor.set_deadline(cell.timeout_ms);
  executor.set_channel_policy(
      wire::channel_policy_from_bits(cell.bandwidth_bits));
  configure_perturbations(executor, cell);
  const SymmetricFunction f = make_function(cell.function);
  const Rational truth = ground_truth(cell.inputs, f, Knowledge::kNone);
  int stabilized = -1;
  for (int t = 1; t <= cell.rounds; ++t) {
    executor.step();
    bool all_exact = true;
    for (const SetGossipAgent& agent : executor.agents()) {
      if (agent.output(f) != truth) {
        all_exact = false;
        break;
      }
    }
    if (all_exact) {
      stabilized = t;
      break;
    }
  }
  double error = 0.0;
  for (const SetGossipAgent& agent : executor.agents()) {
    error = std::max(error, std::abs(agent.output(f).to_double() -
                                     truth.to_double()));
  }
  record.exact = stabilized >= 0;
  record.success = record.exact;
  record.stabilization_round = stabilized;
  record.error = error;
  record.mechanism = "set gossip (flooding)";
  finish_from_stats(executor.stats(), record);
  if (cell.bandwidth_bits != 0) {
    record.bits = executor.bandwidth_meter().total_bits_sent();
  }
}

// Shared δ2 loop for the frequency estimators: step until the sup-error of
// the estimated function value drops within tolerance or the round budget
// (the cell's timeout) is exhausted.
template <typename Agent, typename EstimateFn>
void run_frequency_estimator(const Cell& cell, CellRecord& record,
                             const char* mechanism, EstimateFn&& estimate) {
  std::vector<Agent> agents;
  agents.reserve(cell.inputs.size());
  for (std::int64_t input : cell.inputs) agents.emplace_back(input);
  Executor<Agent> executor(make_cell_schedule(cell), std::move(agents),
                           cell.model, cell.seed);
  executor.set_deadline(cell.timeout_ms);
  executor.set_channel_policy(
      wire::channel_policy_from_bits(cell.bandwidth_bits));
  configure_perturbations(executor, cell);
  const SymmetricFunction f = make_function(cell.function);
  const double truth = ground_truth(cell.inputs, f, Knowledge::kNone)
                           .to_double();
  double error = std::numeric_limits<double>::infinity();
  for (int t = 1; t <= cell.rounds; ++t) {
    executor.step();
    error = 0.0;
    for (const Agent& agent : executor.agents()) {
      const double value = f.eval_approximate(estimate(agent));
      error = std::max(error, std::abs(value - truth));
    }
    if (error <= cell.tolerance) break;
  }
  record.success = error <= cell.tolerance;
  record.exact = false;
  record.stabilization_round = -1;
  record.error = error;
  record.mechanism = mechanism;
  finish_from_stats(executor.stats(), record);
  if (cell.bandwidth_bits != 0) {
    record.bits = executor.bandwidth_meter().total_bits_sent();
  }
}

}  // namespace

void apply_cell_overrides(std::vector<Cell>& cells, double cell_timeout_ms,
                          std::int64_t bandwidth_bits) {
  if (cell_timeout_ms > 0.0) {
    for (Cell& cell : cells) {
      if (cell.timeout_ms <= 0.0) cell.timeout_ms = cell_timeout_ms;
    }
  }
  if (bandwidth_bits != 0) {
    for (Cell& cell : cells) {
      if (cell.bandwidth_bits == 0) cell.bandwidth_bits = bandwidth_bits;
    }
  }
}

bool reusable_on_resume(const CellRecord& record, const Cell& cell) {
  if (record.verdict != "timeout") return true;
  // A timeout is only conclusive for budgets no larger than the one that
  // produced it. Records predating the deadline_ms field (<= 0) carry no
  // budget to compare against, so they are re-attempted too — the cheap
  // direction of the ambiguity.
  return record.deadline_ms > 0.0 && cell.timeout_ms > 0.0 &&
         cell.timeout_ms <= record.deadline_ms;
}

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  if (options_.shards < 1) {
    throw std::invalid_argument("Runner: shards must be >= 1");
  }
  if (options_.shard_index < 0 || options_.shard_index >= options_.shards) {
    throw std::invalid_argument("Runner: shard index out of [0, shards)");
  }
  if (options_.threads < 1) options_.threads = 1;
}

CellRecord Runner::run_cell(const Cell& cell, bool record_wall_time) {
  CellRecord record;
  record.cell = cell.index;
  record.key = cell.key();
  record.suite = cell.suite;
  record.agent = slug(cell.agent);
  record.model = slug(cell.model);
  record.knowledge = slug(cell.knowledge);
  record.function = slug(cell.function);
  record.schedule = slug(cell.schedule);
  record.variant = cell.variant;
  record.n = cell.n();
  record.seed = cell.seed;
  record.bandwidth_bits = cell.bandwidth_bits;
  record.starts = std::string(slug(cell.starts));
  record.faults = std::string(slug(cell.faults));

  if (!cell.admissible) {
    record.verdict = "skipped";
    record.reason = cell.skip_reason;
    record.mechanism = "(not run)";
    return record;
  }

  // Prediction gate: a perturbed cell whose perturbations exceed the agent's
  // FaultTolerance claim is *expected* to break. Its non-success verdicts
  // are downgraded to "expected_failure" below; an unexpected success keeps
  // verdict "ok" with predicted=true so the CLI can flag the mismatch.
  const std::string predicted = predict_failure(cell);
  record.predicted = !predicted.empty();

  const auto started = std::chrono::steady_clock::now();
  try {
    switch (cell.agent) {
      case AgentKind::kAuto:
        run_auto(cell, record);
        break;
      case AgentKind::kSetGossip:
        run_gossip(cell, record);
        break;
      case AgentKind::kFrequencyPushSum:
        run_frequency_estimator<FrequencyPushSumAgent>(
            cell, record, "per-value Push-Sum (Algorithm 1)",
            [](const FrequencyPushSumAgent& agent) {
              return agent.normalized_estimates();
            });
        break;
      case AgentKind::kMetropolis:
        run_frequency_estimator<FrequencyMetropolisAgent>(
            cell, record, "Metropolis indicator averaging",
            [](const FrequencyMetropolisAgent& agent) {
              return agent.estimates();
            });
        break;
    }
    record.verdict = "ok";
    if (record.predicted && !record.success) {
      // The breakdown the FaultTolerance table predicted: not a bug, the
      // measured confirmation of an out-of-claim perturbation.
      record.verdict = "expected_failure";
      record.reason = predicted;
    }
  } catch (const DeadlineExceeded& e) {
    record.verdict = "timeout";
    record.reason = e.what();
    record.success = false;
    record.exact = false;
    record.rounds = e.rounds_run();
    record.deadline_ms = cell.timeout_ms;
    if (record.predicted) {
      // A crash/drop-stalled cell can burn its whole deadline instead of
      // finishing unsuccessfully; that is still the predicted breakdown.
      record.verdict = "expected_failure";
      record.reason = predicted + "; " + e.what();
    }
  } catch (const wire::BandwidthExceeded& e) {
    // A model verdict, not a crash: the algorithm's messages do not fit
    // the declared channel. Distinct from "failed" so aggregations can
    // separate "impossible at this bandwidth" from "broken".
    record.verdict = "bandwidth_exceeded";
    record.reason = e.what();
    record.success = false;
    record.exact = false;
    record.rounds = e.rounds_run();
  } catch (const std::exception& e) {
    record.verdict = "failed";
    record.reason = e.what();
    record.success = false;
    record.exact = false;
  }
  if (record_wall_time) {
    record.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
  }
  return record;
}

std::vector<CellRecord> Runner::run(const Grid& grid) const {
  std::vector<Cell> cells = grid.expand();
  apply_cell_overrides(cells, options_.cell_timeout_ms,
                       options_.bandwidth_bits);

  // Cost model: measured wall times when a timings file is given, static
  // estimates otherwise. Both sharding (under kCost) and the in-process
  // work order below consult it.
  CostModel costs;
  if (!options_.cost_path.empty()) {
    costs = CostModel::from_timings_file(options_.cost_path);
  }

  std::vector<Cell> mine;
  if (options_.shard_by == ShardBy::kCost) {
    const std::vector<int> assignment =
        assign_shards_by_cost(cells, costs, options_.shards);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (assignment[i] == options_.shard_index) {
        mine.push_back(cells[i]);
      }
    }
  } else {
    for (const Cell& cell : cells) {
      if (cell.index % options_.shards == options_.shard_index) {
        mine.push_back(cell);
      }
    }
  }

  // Resume: reuse any complete record whose key matches one of this shard's
  // cells (keys are pure coordinates, so a changed grid simply misses).
  // Records belonging to *other* shards are preserved verbatim, which lets
  // several shards target the same output file in turn — after the last
  // shard the file equals a single-shard run byte for byte.
  std::vector<CellRecord> kept;
  std::vector<CellRecord> foreign;
  std::unordered_set<std::string> finished;
  bool had_output = false;
  if (!options_.out_path.empty() && options_.resume) {
    std::unordered_map<std::string, const Cell*> wanted;
    for (const Cell& cell : mine) wanted.emplace(cell.key(), &cell);
    std::unordered_set<std::string> seen;
    for (CellRecord& record : MetricsSink::read_file(options_.out_path)) {
      had_output = true;
      if (!seen.insert(record.key).second) continue;
      const auto it = wanted.find(record.key);
      if (it == wanted.end()) {
        foreign.push_back(std::move(record));
        continue;
      }
      // Dropping (not keeping) a non-reusable record re-queues the cell;
      // the stale line is then superseded by the canonical rewrite.
      if (!reusable_on_resume(record, *it->second)) continue;
      record.cell = it->second->index;  // re-anchor to current expansion order
      finished.insert(record.key);
      kept.push_back(std::move(record));
    }
  }

  std::vector<Cell> pending;
  for (Cell& cell : mine) {
    if (finished.count(cell.key()) == 0) pending.push_back(std::move(cell));
  }

  std::unique_ptr<MetricsSink> sink;
  if (!options_.out_path.empty()) {
    sink = std::make_unique<MetricsSink>(
        options_.out_path, options_.include_timings,
        /*append=*/options_.resume && had_output);
  }

  // Work-stealing order: workers claim cells one block at a time from a
  // cost-descending permutation, so the most expensive cell starts first
  // and a slow cell pins at most the worker that claimed it.
  const std::vector<std::size_t> order = cost_descending_order(pending, costs);
  std::vector<CellRecord> fresh(pending.size());
  const bool timings = options_.include_timings;
  ThreadPool pool(options_.threads);
  pool.parallel_blocks(
      static_cast<std::int64_t>(order.size()), 1,
      [&](std::int64_t begin, std::int64_t end, std::int64_t /*block*/) {
        for (std::int64_t i = begin; i < end; ++i) {
          const std::size_t slot = order[static_cast<std::size_t>(i)];
          fresh[slot] = run_cell(pending[slot], timings);
          if (sink != nullptr) {
            sink->append(fresh[slot]);
          }
        }
      });

  // Canonical order: cell index first, key as tie-break. Foreign records
  // preserved across a grid reshape keep their *stale* indices, which can
  // collide with current ones — without the key tie-break (and a stable
  // sort) the merged file's order would depend on resume history.
  const auto canonical_less = [](const CellRecord& a, const CellRecord& b) {
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.key < b.key;
  };
  std::vector<CellRecord> all = std::move(kept);
  all.insert(all.end(), std::make_move_iterator(fresh.begin()),
             std::make_move_iterator(fresh.end()));
  std::stable_sort(all.begin(), all.end(), canonical_less);
  if (sink != nullptr) {
    sink->close();
    std::vector<CellRecord> file_records = all;
    file_records.insert(file_records.end(),
                        std::make_move_iterator(foreign.begin()),
                        std::make_move_iterator(foreign.end()));
    std::stable_sort(file_records.begin(), file_records.end(), canonical_less);
    MetricsSink::write_canonical(options_.out_path, std::move(file_records),
                                 options_.include_timings);
  }
  return all;
}

}  // namespace anonet::campaign
