#pragma once

// Campaign metrics: one JSONL record per cell, plus the aggregator that
// folds records back into Table-1/Table-2-shaped verdict grids.
//
// The record format is append-friendly (one self-contained line per cell,
// flushed as each cell completes) so a killed campaign leaves a readable
// prefix, and resume can trust every complete line. Records are rendered
// through support/jsonl.hpp with a fixed field order, making a record's
// bytes a pure function of its field values — the basis of the
// shard-invariance guarantee (--shards 1 and --shards 4 produce identical
// files once canonically ordered). Wall time is a measurement, not
// semantics: it is only emitted when timings are explicitly enabled, and
// the default records stay byte-identical across runs and machines.

#include <cstdint>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "core/computability.hpp"
#include "runtime/comm_model.hpp"

namespace anonet::campaign {

// Everything recorded about one cell. String axes hold the slug() spellings
// so records round-trip through JSONL without enum knowledge.
struct CellRecord {
  int cell = -1;      // Cell::index in expansion order
  std::string key;    // Cell::key(): the resume identity
  std::string suite;
  std::string agent;
  std::string model;
  std::string knowledge;
  std::string function;
  std::string schedule;
  int variant = 0;
  int n = 0;
  std::uint64_t seed = 0;
  // Channel policy coordinate (0 = off; -1 = metered; B > 0 = bounded).
  // Only emitted (with `bits`) when non-zero, so channel-off records stay
  // byte-identical to the pre-bandwidth format.
  std::int64_t bandwidth_bits = 0;
  // Perturbation coordinates (slug spellings). Only emitted when off their
  // defaults ("sync" / "none"), so unperturbed records keep their bytes.
  std::string starts;
  std::string faults;

  // "ok": the simulation ran to a verdict (success or not).
  // "failed": an exception escaped the cell (reason = what()).
  // "timeout": the cell's wall-clock deadline tripped (reason = budget and
  //            rounds reached) — a resource verdict, distinct from "failed".
  // "bandwidth_exceeded": a bounded channel rejected a message over budget
  //            (reason = message vs budget bits) — a model verdict: the
  //            algorithm does not fit the channel, nothing crashed.
  // "expected_failure": a perturbed cell broke (unsuccessfully converged or
  //            timed out) exactly as its agent's FaultTolerance claim
  //            predicts (reason = which perturbations exceed the claim).
  // "skipped": inadmissible or open cell (reason = diagnosis).
  std::string verdict = "ok";
  std::string reason;
  // The wall-clock budget (ms) behind a "timeout" verdict; resume re-attempts
  // the cell when the current budget exceeds it. 0 = no deadline recorded.
  double deadline_ms = 0.0;
  // The FaultTolerance table predicted this cell to break. True on every
  // "expected_failure", and on the rare "ok" that contradicts the table
  // (the CLI treats that mismatch as a campaign failure).
  bool predicted = false;

  bool success = false;  // δ2: final error within the cell's tolerance
  bool exact = false;    // δ0: outputs stabilized exactly on f(v)
  int stabilization_round = -1;
  // Sup-distance of the final outputs from the ground truth f(v).
  double error = std::numeric_limits<double>::quiet_NaN();
  std::int64_t rounds = 0;    // rounds actually run (<= the cell's budget)
  std::int64_t messages = 0;  // arena deliveries, self-loops included
  std::int64_t payload = 0;   // bandwidth proxy (message weight units)
  std::int64_t bits = -1;     // measured bits sent (metered cells; else -1)
  std::string mechanism;      // algorithm the cell ran (or skip reason class)
  double wall_ms = -1.0;      // < 0 = not recorded
};

// Thread-safe JSONL writer. append() serializes under a mutex, so concurrent
// shard workers interleave whole lines only. The flush policy is single:
// every record is flushed before append() returns. Once append() returns,
// the cell is durably acknowledged, and a crash (or a killed worker process
// in a distributed run, src/net/) can never lose a cell the coordinator
// already counted. There is deliberately no batching interval — every
// record carries a verdict, and a second, weaker policy for a hypothetical
// verdict-less path would only invite the two to drift apart.
class MetricsSink {
 public:
  // Opens `path` for append (resume keeps finished cells) or truncation.
  // Throws std::runtime_error when the file cannot be opened.
  MetricsSink(std::string path, bool include_timings, bool append);
  ~MetricsSink();

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  void append(const CellRecord& record);
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

  // One record rendered to a single JSON line (no trailing newline), fields
  // in the fixed order the parser and the docs describe.
  [[nodiscard]] static std::string to_json(const CellRecord& record,
                                           bool include_timings);

  // Parses a line this writer produced. Returns nullopt for malformed or
  // truncated lines (resume then recomputes those cells).
  [[nodiscard]] static std::optional<CellRecord> parse_line(
      const std::string& line);

  // All parseable records of a JSONL file; missing file = empty. Malformed
  // lines (e.g. a truncated tail after a crash) are silently dropped.
  [[nodiscard]] static std::vector<CellRecord> read_file(
      const std::string& path);

  // Rewrites `path` with the records sorted by (cell index, key) — the
  // canonical form compared across shard counts and sharding policies.
  // Duplicate keys keep the first occurrence. Throws std::runtime_error on
  // I/O failure.
  static void write_canonical(const std::string& path,
                              std::vector<CellRecord> records,
                              bool include_timings);

 private:
  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
  bool include_timings_;
};

// A measured verdict grid with the paper's grid beside it. Rows are
// knowledge levels, columns communication models (Table 1: four columns,
// Table 2: three).
struct TableComparison {
  std::string suite;
  std::vector<Knowledge> rows;
  std::vector<CommModel> cols;
  std::vector<std::vector<std::string>> measured;  // label per (row, col)
  std::vector<std::vector<std::string>> paper;     // expected label
  std::vector<std::vector<bool>> open;  // paper leaves the cell open ("?")
  // Every non-open cell measured == paper, and every open cell skipped.
  bool all_match = false;
};

// Folds "table1"/"table2" records into the strongest-computable-class label
// per (knowledge, model) — the same probe logic as bench/table1_static and
// bench/table2_dynamic: exact stabilization of max (set-based), average
// (frequency-based) and sum (multiset-based) over every panel/input set,
// with "frequency-based*" for asymptotic-only average under Table 2 rules.
// Cells whose records are all skipped get the label "skipped".
[[nodiscard]] TableComparison compare_table(
    const std::vector<CellRecord>& records, const std::string& suite);

// Printable side-by-side rendering for CLI and bench output.
[[nodiscard]] std::string render_table(const TableComparison& table);

}  // namespace anonet::campaign
