#pragma once

// Sharded campaign execution (docs/campaign.md).
//
// The runner turns an expanded grid into JSONL records. Parallelism is
// *between* cells only: the worker pool shards cells one per block, and
// every cell constructs its Executor with threads = 1, so agents that do
// not declare kParallelSafe stay legal and each cell's round sequence is
// bit-identical to a standalone serial run. A cell is a closed failure
// domain — an exception inside it (executor validation, numeric trouble,
// bad schedule) becomes a verdict "failed" record with the exception text,
// and the campaign keeps going.
//
// Sharding and resume compose through the cell index and key: a cell runs
// in the shard the sharding policy assigns it (`index % shards` by default,
// or the CostModel's LPT assignment under ShardBy::kCost), and a cell whose
// key already appears in the output file is reused, not recomputed — except
// a "timeout" record facing a larger budget, which is re-attempted (see
// reusable_on_resume). After
// a run the output file is rewritten in canonical (cell-index) order, so
// the concatenation of all shards' files — or the same campaign resumed
// any number of times — is byte-identical to a single-shard run, whichever
// sharding policy produced it.
//
// Inside one process, pending cells are consumed work-stealing style: the
// worker pool claims cells one at a time from a cost-descending order, so
// the most expensive cell starts first and a slow cell can pin at most the
// one worker that claimed it. With a per-cell wall-clock deadline
// (`cell_timeout_ms`), even a hung cell ends as a "timeout" record instead
// of blocking the campaign.

#include <string>
#include <vector>

#include "campaign/cost_model.hpp"
#include "campaign/metrics.hpp"
#include "campaign/spec.hpp"

namespace anonet::campaign {

struct RunnerOptions {
  int shards = 1;       // total shard count (>= 1)
  int shard_index = 0;  // this process's shard in [0, shards)
  int threads = 1;      // worker threads; cells stay serial internally
  bool include_timings = false;  // emit wall_ms (breaks byte-reproducibility)
  bool resume = true;   // reuse finished cells found in out_path
  std::string out_path; // JSONL output; empty = return records only

  // Sharding policy. kCost balances shards by estimated cell cost (LPT over
  // the CostModel); the default stays index % shards for compatibility.
  ShardBy shard_by = ShardBy::kIndex;
  // Timings JSONL from a previous `include_timings` run, feeding measured
  // wall_ms into the CostModel. Empty = static estimates only.
  std::string cost_path;
  // Wall-clock deadline applied to every cell that does not carry its own
  // Cell::timeout_ms (<= 0: none). A tripped deadline becomes a "timeout"
  // record, a failure class distinct from "failed".
  double cell_timeout_ms = 0.0;
  // Channel policy applied to every cell that does not carry its own
  // Cell::bandwidth_bits (0 = channel off, -1 = metered, B > 0 = bounded).
  // Unlike cell_timeout_ms this is a *coordinate* override: it changes the
  // affected cells' keys (and so their resume identity), because a bounded
  // run answers a different question than an unbounded one. A message over
  // a bounded budget becomes a "bandwidth_exceeded" record, distinct from
  // both "failed" and "timeout".
  std::int64_t bandwidth_bits = 0;
};

// Applies campaign-level overrides to an expanded cell list: cells without
// their own deadline get `cell_timeout_ms`, cells without their own channel
// policy get `bandwidth_bits` (the latter changes the affected cells' keys —
// see RunnerOptions::bandwidth_bits). Shared by the in-process Runner and
// the socket transport (net::Coordinator / net::WorkerNode), so both ends
// of the wire derive identical keys from identical options.
void apply_cell_overrides(std::vector<Cell>& cells, double cell_timeout_ms,
                          std::int64_t bandwidth_bits);

// Resume reuse policy. Most verdicts are pure functions of the cell's
// coordinates, so a matching key is enough to reuse the record. "timeout" is
// not: it only says the cell exceeded the *recorded* budget, so a resumed
// run with a larger (or unlimited) budget must re-attempt the cell instead
// of pinning the old verdict forever. Shared by the in-process Runner and
// the socket coordinator so both transports resume identically.
[[nodiscard]] bool reusable_on_resume(const CellRecord& record,
                                      const Cell& cell);

class Runner {
 public:
  // Throws std::invalid_argument on an inconsistent shard spec.
  explicit Runner(RunnerOptions options);

  // Expands, shards, resumes, runs, and canonicalizes. Returns this shard's
  // records (reused and fresh) sorted by cell index.
  std::vector<CellRecord> run(const Grid& grid) const;

  // Runs one cell synchronously. Never throws: inadmissible cells return
  // "skipped" records, exceptions "failed" ones. `record_wall_time` fills
  // wall_ms (a measurement — off for byte-reproducible campaigns).
  [[nodiscard]] static CellRecord run_cell(const Cell& cell,
                                           bool record_wall_time = false);

 private:
  RunnerOptions options_;
};

}  // namespace anonet::campaign
