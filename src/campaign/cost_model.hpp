#pragma once

// Cost-aware campaign scheduling (docs/campaign.md).
//
// Cell wall costs in a heterogeneous grid vary by orders of magnitude — a
// large-n Push-Sum cell near Theorem 5.2's O(n^{2D}·D·log 1/ε) worst case,
// or a history-tree cell with its per-round exact solve, dwarfs a skipped
// row or a small gossip cell. `index % shards` sharding is oblivious to
// this, so one shard can end up with most of the expensive cells. The
// CostModel estimates per-cell wall cost — preferring *measured* wall_ms
// from a previous run's timings JSONL, falling back to a deterministic
// static estimate from the cell's coordinates — and drives:
//   1. a longest-processing-time (LPT) assignment of cells to shards
//      (`--shard-by=cost`), and
//   2. the cost-descending in-process work order the runner's worker pool
//      steals cells from, so the longest cell starts first and cannot
//      serialize a worker's tail.
// Both are pure functions of the cost model, so every shard process of a
// campaign computes the same assignment from the same inputs, and the
// canonical (cell-index-sorted) output file stays byte-identical across
// shard counts and policies.

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "campaign/spec.hpp"

namespace anonet::campaign {

// How cells are assigned to shards: the compatible default pins cell index
// mod shard count; kCost runs the LPT assignment below.
enum class ShardBy { kIndex, kCost };

[[nodiscard]] std::string_view slug(ShardBy mode);
// Inverse of slug(); throws std::invalid_argument on unknown names.
[[nodiscard]] ShardBy parse_shard_by(std::string_view text);

class CostModel {
 public:
  // An empty model: every cell costs its static estimate.
  CostModel() = default;

  // Loads per-cell wall_ms measurements from a timings JSONL written by a
  // previous `--timings` run. Records without wall_ms are ignored; a
  // missing or empty file yields an empty model (static estimates only),
  // so cold-starting a campaign needs no special casing.
  [[nodiscard]] static CostModel from_timings_file(const std::string& path);

  void set_measured(const std::string& key, double wall_ms);
  [[nodiscard]] std::size_t measured_count() const {
    return measured_.size();
  }

  // Estimated wall cost for a cell, on the wall_ms scale: the measured
  // value when the cell's key is known, else static_estimate(). Only the
  // *relative* magnitudes matter for scheduling.
  [[nodiscard]] double cost(const Cell& cell) const;

  // Deterministic fallback estimate from the cell's coordinates: round
  // budget x per-round edge volume for the schedule family x a mechanism
  // multiplier (history-tree and minimum-base cells pay a superlinear
  // per-round solve). Inadmissible cells are recorded without running and
  // cost (almost) nothing.
  [[nodiscard]] static double static_estimate(const Cell& cell);

 private:
  std::unordered_map<std::string, double> measured_;
};

// Positions into `cells` sorted by descending cost (ties broken by
// ascending cell index): the order LPT consumes and the runner's worker
// pool steals from.
[[nodiscard]] std::vector<std::size_t> cost_descending_order(
    const std::vector<Cell>& cells, const CostModel& model);

// Longest-processing-time shard assignment: walk cells in cost-descending
// order, placing each on the currently lightest shard (lowest index on
// ties). Returns the shard of each cell, parallel to `cells`. Deterministic
// given the model, so independent shard processes agree on the partition.
// Throws std::invalid_argument for shards < 1.
[[nodiscard]] std::vector<int> assign_shards_by_cost(
    const std::vector<Cell>& cells, const CostModel& model, int shards);

}  // namespace anonet::campaign
