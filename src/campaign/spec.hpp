#pragma once

// Declarative simulation campaigns (docs/campaign.md).
//
// A campaign is a list of Spec blocks, each a cross-product of agent kind x
// communication model x centralized help x target function x schedule family
// x network size x seed. Grid::expand() flattens the blocks into a single
// deterministic cell list: the same grid always yields the same cells in the
// same order with the same indices, which is what makes sharding (cell index
// mod shard count) and resume (skip keys already present in the output file)
// coherent across processes and machines.
//
// Expansion is total: pairings forbidden by Table 1 — an outdegree-consuming
// agent under simple broadcast, a kSymmetricOnly agent on an asymmetric
// schedule, output-port awareness on a dynamic network — are not errors but
// *rows*. They come back as inadmissible cells carrying the same diagnosis
// string the Executor would throw (runtime/capabilities.hpp), and the runner
// records them as verdict "skipped" so a campaign's output enumerates the
// whole grid, including the cells the paper rules out. Cells the paper
// leaves open (the two "?" entries of Table 2) are likewise skipped, by
// Spec::open_cells.

#include <cstdint>
#include <string>
#include <vector>

#include "core/computability.hpp"
#include "graph/digraph.hpp"
#include "runtime/comm_model.hpp"

namespace anonet::campaign {

// Which algorithm runs in a cell. kAuto delegates to the computability
// harness (core/computability.hpp), which picks the paper's algorithm for
// the (model, knowledge, function) cell — this is what the tables presets
// use. The explicit kinds pin one algorithm so adversarial campaigns can
// stress it outside its comfort zone.
enum class AgentKind {
  kAuto,
  kSetGossip,        // flooding; set-based functions, any model
  kFrequencyPushSum, // Algorithm 1; needs outdegree awareness
  kMetropolis,       // indicator averaging; needs degrees + symmetric rounds
};

enum class ScheduleKind {
  kStaticPanel,             // Table 1 panel graph (static network)
  kRandomStronglyConnected, // fresh random strongly connected graph per round
  kRandomSymmetric,         // fresh random symmetric connected graph per round
  kRandomMatching,          // random partial matching (population-protocol)
  kTokenRing,               // one ring edge per round
  kSpooner,                 // bounded-D information-delay adversary
  kUnionRing,               // ring split into phases; no round is connected
  kGrowingGap,              // ring on power-of-two rounds only; unbounded D
  kPreferentialChurn,       // preferential-attachment overlay + epoch churn
  kGeometricChurn,          // random-geometric overlay + epoch churn
};

// Asynchronous-start axis: which executor StartSchedule the cell installs
// (dynamics/perturbation.hpp). Concrete wake rounds are derived from n in
// the runner; the kind is the grid coordinate.
enum class StartsKind {
  kSynchronous, // everyone awake from round 1 (the default; out of the key)
  kStaggered,   // agent v wakes at round 1 + 2v
  kStraggler,   // all awake at 1 except the last agent (late by ~25 rounds)
};

// Fault-injection axis: which executor FaultPlan the cell installs.
enum class FaultsKind {
  kNone,      // clean run (the default; out of the key)
  kCrash,     // agent 0 crash-stops at round 1
  kDrop,      // 30% iid per-(round, edge) message loss
  kCrashDrop, // both
};

// One representative function per class of Section 2.3, mirroring the
// strongest-class probes of bench/table1_static and bench/table2_dynamic.
enum class FunctionKind {
  kMax,     // set-based
  kAverage, // frequency-based
  kSum,     // multiset-based
};

[[nodiscard]] std::string_view slug(AgentKind kind);
[[nodiscard]] std::string_view slug(ScheduleKind kind);
[[nodiscard]] std::string_view slug(FunctionKind kind);
[[nodiscard]] std::string_view slug(CommModel model);
[[nodiscard]] std::string_view slug(Knowledge knowledge);
[[nodiscard]] std::string_view slug(StartsKind kind);
[[nodiscard]] std::string_view slug(FaultsKind kind);

// Inverse of slug(); throws std::invalid_argument on unknown names.
[[nodiscard]] AgentKind parse_agent(std::string_view text);
[[nodiscard]] ScheduleKind parse_schedule(std::string_view text);
[[nodiscard]] FunctionKind parse_function(std::string_view text);
[[nodiscard]] CommModel parse_model(std::string_view text);
[[nodiscard]] Knowledge parse_knowledge(std::string_view text);
[[nodiscard]] StartsKind parse_starts(std::string_view text);
[[nodiscard]] FaultsKind parse_faults(std::string_view text);

// The SymmetricFunction behind a FunctionKind (functions/functions.hpp).
[[nodiscard]] SymmetricFunction make_function(FunctionKind kind);

// True when every round graph of the schedule family is bidirectional —
// the admissibility requirement of kSymmetricBroadcast and kSymmetricOnly.
// kStaticPanel is symmetric exactly when the panel is the symmetric one,
// so it is handled separately (see Cell::admissible computation).
[[nodiscard]] bool schedule_symmetric(ScheduleKind kind);

// True for schedule families that materialize a changing graph (everything
// but kStaticPanel). kOutputPortAware cells on these are inadmissible: a
// port labelling is only meaningful for a static network.
[[nodiscard]] bool schedule_dynamic(ScheduleKind kind);

// True for the churn families (membership join/leave): a perturbation in
// its own right, entering the failure-prediction table as FaultTolerance::
// kChurn even though it rides on the schedule axis.
[[nodiscard]] bool schedule_churn(ScheduleKind kind);

// One fully-specified simulation: everything the runner needs to rebuild
// the network, construct the agents, and judge the outcome.
struct Cell {
  int index = -1;           // position in Grid::expand() order (stable ID)
  std::string suite;        // Spec block name ("table1", "adversarial", ...)
  AgentKind agent = AgentKind::kAuto;
  CommModel model = CommModel::kSimpleBroadcast;
  Knowledge knowledge = Knowledge::kNone;
  FunctionKind function = FunctionKind::kMax;
  ScheduleKind schedule = ScheduleKind::kRandomStronglyConnected;
  int variant = 0;          // panel / input-set index within the suite
  std::vector<std::int64_t> inputs;  // raw inputs (leader coding applied later)
  int rounds = 400;         // round budget
  double tolerance = 1e-3;  // asymptotic (δ2) acceptance threshold
  std::uint64_t seed = 1;   // schedule + executor shuffle seed
  // Wall-clock deadline for the cell (<= 0: none). Execution policy, not a
  // coordinate: it is excluded from key(), so resuming with a different
  // deadline still reuses finished records. When the deadline trips, the
  // runner records verdict "timeout" instead of pinning a worker.
  double timeout_ms = 0.0;
  // Channel policy coordinate (wire/meter.hpp): 0 = unbounded (default,
  // the channel off), -1 = metered (bits accounted, nothing enforced),
  // B > 0 = bounded to B bits per message. Unlike timeout_ms this IS a
  // coordinate — a bounded cell answers a different question than an
  // unbounded one — so non-zero values join key(); the default stays out
  // of the key, keeping pre-bandwidth campaign outputs resumable.
  std::int64_t bandwidth_bits = 0;
  // Perturbation coordinates (dynamics/perturbation.hpp): which start
  // schedule and fault plan the runner installs. Both are coordinates — a
  // faulted cell answers a different question — and both defaults stay out
  // of key(), keeping pre-perturbation campaign outputs resumable.
  StartsKind starts = StartsKind::kSynchronous;
  FaultsKind faults = FaultsKind::kNone;

  bool admissible = true;   // false => the runner records "skipped"
  std::string skip_reason;  // diagnosis for inadmissible cells

  [[nodiscard]] int n() const { return static_cast<int>(inputs.size()); }

  // Stable identity used for resume:
  //   suite/agent/model/knowledge/function/schedule/n6/v0/s17
  // with "/b<bits>" appended only when bandwidth_bits != 0, "/w<starts>"
  // only when starts != kSynchronous, and "/f<faults>" only when
  // faults != kNone.
  // A cell's key is a pure function of its coordinates (never of results),
  // so a half-written campaign can be matched against a re-expansion.
  [[nodiscard]] std::string key() const;
};

// The robustness prediction table (runtime/capabilities.hpp): the reasons
// theory predicts this cell to fail — perturbations the cell applies
// (starts axis, faults axis, churn schedule) that its agent's declared
// FaultTolerance does not claim to survive. Empty = predicted to succeed.
// The runner rewrites a predicted cell's negative verdict to
// "expected_failure"; a predicted cell that *succeeds* is a prediction
// mismatch the campaign CLI fails on.
[[nodiscard]] std::string predict_failure(const Cell& cell);

// Where a Spec block's input vectors come from.
enum class InputSource {
  kPanel,     // Table 1 static panels: inputs + graph from (model, variant)
  kFixedSets, // Table 2's three fixed input multisets, variant selects one
  kDerived,   // pseudo-random values derived from (n, seed), variant unused
};

// A (model, knowledge) pairing the paper leaves open; expansion marks every
// matching cell of the block as skipped instead of measuring it.
struct OpenCell {
  CommModel model;
  Knowledge knowledge;
};

// One cross-product block. Empty axis vectors are invalid (expand throws):
// a block states every axis explicitly.
struct Spec {
  std::string suite;
  std::vector<AgentKind> agents;
  std::vector<CommModel> models;
  std::vector<Knowledge> knowledges;
  std::vector<FunctionKind> functions;
  std::vector<ScheduleKind> schedules;
  InputSource input_source = InputSource::kDerived;
  std::vector<int> sizes;             // n axis (kDerived only; else ignored)
  std::vector<std::uint64_t> seeds;   // seed axis (kPanel/kFixedSets: offset)
  int variants = 1;                   // panel / input-set count
  int rounds = 400;
  double tolerance = 1e-3;
  double timeout_ms = 0.0;  // per-cell wall deadline (<= 0: none)
  // Bandwidth axis (Cell::bandwidth_bits semantics). The {0} default keeps
  // the channel off and — because the bandwidth loop is innermost — leaves
  // the cell list of every pre-bandwidth grid unchanged, index for index.
  std::vector<std::int64_t> bandwidths = {0};
  // Perturbation axes (Cell::starts / Cell::faults semantics). Like the
  // bandwidth axis, the defaults degenerate their (innermost) loops so
  // pre-perturbation grids keep their cell order and indices.
  std::vector<StartsKind> starts = {StartsKind::kSynchronous};
  std::vector<FaultsKind> faults = {FaultsKind::kNone};
  std::vector<OpenCell> open_cells;
};

// The Table 1 panel for (model, variant): the same three graphs + input
// vectors bench/table1_static measures (symmetric models get symmetric
// graphs). variant in [0, 3).
struct StaticPanel {
  Digraph graph;
  std::vector<std::int64_t> values;
};
[[nodiscard]] StaticPanel make_static_panel(CommModel model, int variant);
inline constexpr int kStaticPanelCount = 3;

// Table 2's three fixed input multisets. variant in [0, 3).
[[nodiscard]] std::vector<std::int64_t> table2_inputs(int variant);
inline constexpr int kTable2InputSets = 3;

// Deterministic pseudo-random inputs for kDerived blocks: n values in
// [0, 10) mixed from (n, seed, index).
[[nodiscard]] std::vector<std::int64_t> derived_inputs(int n,
                                                       std::uint64_t seed);

class Grid {
 public:
  Grid() = default;

  void add(Spec spec) { specs_.push_back(std::move(spec)); }
  [[nodiscard]] const std::vector<Spec>& specs() const { return specs_; }

  // Deterministic flattening: blocks in insertion order; within a block the
  // loop nest is knowledge (outer) > model > function > schedule > size >
  // variant > seed > bandwidth > starts > faults (inner). Fills index,
  // inputs, admissibility.
  [[nodiscard]] std::vector<Cell> expand() const;

  // Named grids: "table1", "table2", "tables" (both), "adversarial"
  // (explicit agents on the worst-case schedules), "bandwidth" (explicit
  // estimators under metered and bounded channels), "faults" (the scenario
  // zoo: async starts x churn overlays x crash/drop, with theory-predicted
  // breakdowns), "smoke" (a fast sub-minute subset). Throws
  // std::invalid_argument on unknown names.
  [[nodiscard]] static Grid preset(const std::string& name);
  [[nodiscard]] static std::vector<std::string> preset_names();

 private:
  std::vector<Spec> specs_;
};

}  // namespace anonet::campaign
