#include "campaign/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "campaign/metrics.hpp"

namespace anonet::campaign {

std::string_view slug(ShardBy mode) {
  switch (mode) {
    case ShardBy::kIndex: return "index";
    case ShardBy::kCost: return "cost";
  }
  return "?";
}

ShardBy parse_shard_by(std::string_view text) {
  if (text == "index") return ShardBy::kIndex;
  if (text == "cost") return ShardBy::kCost;
  throw std::invalid_argument("parse_shard_by: unknown mode '" +
                              std::string(text) +
                              "' (expected index or cost)");
}

CostModel CostModel::from_timings_file(const std::string& path) {
  CostModel model;
  if (path.empty()) return model;
  for (const CellRecord& record : MetricsSink::read_file(path)) {
    if (record.wall_ms >= 0.0) model.set_measured(record.key, record.wall_ms);
  }
  return model;
}

void CostModel::set_measured(const std::string& key, double wall_ms) {
  if (wall_ms < 0.0) return;
  measured_[key] = wall_ms;
}

double CostModel::cost(const Cell& cell) const {
  if (!measured_.empty()) {
    const auto it = measured_.find(cell.key());
    if (it != measured_.end()) return it->second;
  }
  return static_estimate(cell);
}

double CostModel::static_estimate(const Cell& cell) {
  // Skipped rows are rendered, not simulated: negligible but nonzero so
  // LPT still spreads long runs of them across shards.
  if (!cell.admissible) return 1e-3;

  const auto n = static_cast<double>(std::max(cell.n(), 1));

  // Per-round delivered-edge volume by schedule family (self-loops plus the
  // family's characteristic edge count; constants mirror the generators).
  double edges = n;
  switch (cell.schedule) {
    case ScheduleKind::kStaticPanel:
    case ScheduleKind::kRandomStronglyConnected:
      edges = 4.0 * n;  // out-degree-3 random graphs + self-loops
      break;
    case ScheduleKind::kRandomSymmetric:
      edges = 7.0 * n;  // both directions of ~3n edges + self-loops
      break;
    case ScheduleKind::kSpooner:
      edges = 3.0 * n;  // symmetric star bowl + self-loops
      break;
    case ScheduleKind::kUnionRing:
    case ScheduleKind::kRandomMatching:
      edges = 2.0 * n;  // sparse partial matchings + self-loops
      break;
    case ScheduleKind::kTokenRing:
      edges = n + 1.0;  // one ring edge per round
      break;
    case ScheduleKind::kGrowingGap:
      // Ring on the rare connected rounds, self-loops otherwise; the mean
      // delivered volume is dominated by the idle rounds.
      edges = 2.0 * n;
      break;
    case ScheduleKind::kPreferentialChurn:
    case ScheduleKind::kGeometricChurn:
      // Sparse symmetric backbones (~2 undirected edges per vertex) thinned
      // by ~25% churn per epoch, plus self-loops.
      edges = 3.0 * n;
      break;
  }

  // Mechanism multiplier: what one round *does* with a delivery. The auto
  // agent's symmetric no-help/leader cells run the history-tree exact solve
  // (superquadratic per round); its other non-set cells run minimum-base or
  // Q_N-rounding machinery (superlinear); explicit estimators and gossip
  // are linear in deliveries.
  double multiplier = 1.0;
  if (cell.agent == AgentKind::kAuto && cell.function != FunctionKind::kMax) {
    const bool history_tree =
        cell.model == CommModel::kSymmetricBroadcast &&
        (cell.knowledge == Knowledge::kNone ||
         cell.knowledge == Knowledge::kLeaders);
    multiplier = history_tree ? n * n : n;
  }

  // Metering encodes (or at least sizes) every message once per out-edge —
  // a constant-factor tax on the delivery volume, not a new asymptotic term.
  const double channel = cell.bandwidth_bits != 0 ? 1.5 : 1.0;

  return static_cast<double>(std::max(cell.rounds, 1)) * edges * multiplier *
         channel * 1e-4;
}

std::vector<std::size_t> cost_descending_order(const std::vector<Cell>& cells,
                                               const CostModel& model) {
  std::vector<double> costs;
  costs.reserve(cells.size());
  for (const Cell& cell : cells) costs.push_back(model.cost(cell));
  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // stable_sort on strictly-greater cost keeps equal-cost cells in index
  // order — the tie-break that makes the schedule reproducible.
  std::stable_sort(order.begin(), order.end(),
                   [&costs](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });
  return order;
}

std::vector<int> assign_shards_by_cost(const std::vector<Cell>& cells,
                                       const CostModel& model, int shards) {
  if (shards < 1) {
    throw std::invalid_argument("assign_shards_by_cost: shards must be >= 1");
  }
  std::vector<int> assignment(cells.size(), 0);
  if (shards == 1 || cells.empty()) return assignment;
  std::vector<double> load(static_cast<std::size_t>(shards), 0.0);
  for (std::size_t pos : cost_descending_order(cells, model)) {
    int lightest = 0;
    for (int s = 1; s < shards; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(lightest)]) {
        lightest = s;
      }
    }
    assignment[pos] = lightest;
    load[static_cast<std::size_t>(lightest)] += model.cost(cells[pos]);
  }
  return assignment;
}

}  // namespace anonet::campaign
