#include "campaign/spec.hpp"

#include <stdexcept>

#include "core/gossip.hpp"
#include "core/metropolis.hpp"
#include "core/pushsum.hpp"
#include "graph/generators.hpp"
#include "runtime/capabilities.hpp"

namespace anonet::campaign {

namespace {

// Splitmix-style mixing, matching the convention of dynamics/schedules.cpp.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// The capability set the cell's algorithm declares. kAuto delegates to the
// computability harness, which dispatches a legal algorithm per cell, so it
// behaves as model-polymorphic here.
ModelCapabilities kind_capabilities(AgentKind kind) {
  switch (kind) {
    case AgentKind::kAuto:
      return ModelCapabilities::kModelPolymorphic;
    case AgentKind::kSetGossip:
      return agent_capabilities<SetGossipAgent>();
    case AgentKind::kFrequencyPushSum:
      return agent_capabilities<FrequencyPushSumAgent>();
    case AgentKind::kMetropolis:
      return agent_capabilities<FrequencyMetropolisAgent>();
  }
  throw std::invalid_argument("kind_capabilities: unknown agent kind");
}

// Whether every round graph the cell will see is bidirectional. The static
// panels are symmetric exactly for the symmetric-broadcast model (the other
// panels include genuinely directed graphs).
bool cell_symmetric(ScheduleKind schedule, CommModel model) {
  if (schedule == ScheduleKind::kStaticPanel) {
    return model == CommModel::kSymmetricBroadcast;
  }
  return schedule_symmetric(schedule);
}

// First-failure admissibility diagnosis; empty string = admissible.
std::string diagnose(const Spec& spec, const Cell& cell) {
  for (const OpenCell& open : spec.open_cells) {
    if (open.model == cell.model && open.knowledge == cell.knowledge) {
      return "open in the paper (Table 2 '?' cell): not measured";
    }
  }
  const ModelCapabilities caps = kind_capabilities(cell.agent);
  if (!model_provides(cell.model, caps)) {
    return describe_model_mismatch(cell.model, caps);
  }
  const bool symmetric = cell_symmetric(cell.schedule, cell.model);
  if (has_capability(caps, ModelCapabilities::kSymmetricOnly) && !symmetric) {
    return std::string("agent declares kSymmetricOnly, but schedule '") +
           std::string(slug(cell.schedule)) +
           "' produces asymmetric round graphs";
  }
  if (cell.model == CommModel::kSymmetricBroadcast && !symmetric) {
    return std::string(
               "kSymmetricBroadcast requires bidirectional round graphs; "
               "schedule '") +
           std::string(slug(cell.schedule)) + "' is not symmetric";
  }
  if (cell.model == CommModel::kOutputPortAware &&
      schedule_dynamic(cell.schedule)) {
    return std::string(
               "output-port awareness requires a static output-port "
               "labelling; schedule '") +
           std::string(slug(cell.schedule)) + "' is dynamic";
  }
  if (cell.agent == AgentKind::kSetGossip &&
      cell.function != FunctionKind::kMax) {
    return std::string("SetGossipAgent computes set-based functions only; '") +
           std::string(slug(cell.function)) + "' is outside its class";
  }
  if ((cell.agent == AgentKind::kFrequencyPushSum ||
       cell.agent == AgentKind::kMetropolis) &&
      cell.function != FunctionKind::kAverage) {
    return std::string("frequency estimators compute functions continuous "
                       "in frequency; campaign pins them to 'average', not '") +
           std::string(slug(cell.function)) + "'";
  }
  if (cell.agent == AgentKind::kAuto &&
      (cell.starts != StartsKind::kSynchronous ||
       cell.faults != FaultsKind::kNone || schedule_churn(cell.schedule))) {
    return "the computability harness dispatches algorithms proved for the "
           "clean synchronous model; perturbed cells must pin an explicit "
           "agent whose FaultTolerance claim the prediction table can gate";
  }
  return {};
}

// The declared robustness claim behind an AgentKind (the FaultTolerance
// analogue of kind_capabilities). kAuto claims nothing — but perturbed
// kAuto cells are inadmissible anyway (see diagnose).
FaultTolerance kind_fault_tolerance(AgentKind kind) {
  switch (kind) {
    case AgentKind::kAuto:
      return FaultTolerance::kNone;
    case AgentKind::kSetGossip:
      return agent_fault_tolerance<SetGossipAgent>();
    case AgentKind::kFrequencyPushSum:
      return agent_fault_tolerance<FrequencyPushSumAgent>();
    case AgentKind::kMetropolis:
      return agent_fault_tolerance<FrequencyMetropolisAgent>();
  }
  throw std::invalid_argument("kind_fault_tolerance: unknown agent kind");
}

}  // namespace

std::string_view slug(AgentKind kind) {
  switch (kind) {
    case AgentKind::kAuto: return "auto";
    case AgentKind::kSetGossip: return "set-gossip";
    case AgentKind::kFrequencyPushSum: return "freq-pushsum";
    case AgentKind::kMetropolis: return "metropolis";
  }
  return "?";
}

std::string_view slug(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kStaticPanel: return "static-panel";
    case ScheduleKind::kRandomStronglyConnected: return "random-strong";
    case ScheduleKind::kRandomSymmetric: return "random-symmetric";
    case ScheduleKind::kRandomMatching: return "random-matching";
    case ScheduleKind::kTokenRing: return "token-ring";
    case ScheduleKind::kSpooner: return "spooner";
    case ScheduleKind::kUnionRing: return "union-ring";
    case ScheduleKind::kGrowingGap: return "growing-gap";
    case ScheduleKind::kPreferentialChurn: return "pref-churn";
    case ScheduleKind::kGeometricChurn: return "geo-churn";
  }
  return "?";
}

std::string_view slug(StartsKind kind) {
  switch (kind) {
    case StartsKind::kSynchronous: return "sync";
    case StartsKind::kStaggered: return "staggered";
    case StartsKind::kStraggler: return "straggler";
  }
  return "?";
}

std::string_view slug(FaultsKind kind) {
  switch (kind) {
    case FaultsKind::kNone: return "none";
    case FaultsKind::kCrash: return "crash";
    case FaultsKind::kDrop: return "drop";
    case FaultsKind::kCrashDrop: return "crash-drop";
  }
  return "?";
}

std::string_view slug(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kMax: return "max";
    case FunctionKind::kAverage: return "average";
    case FunctionKind::kSum: return "sum";
  }
  return "?";
}

std::string_view slug(CommModel model) {
  switch (model) {
    case CommModel::kSimpleBroadcast: return "simple-broadcast";
    case CommModel::kOutdegreeAware: return "outdegree-aware";
    case CommModel::kSymmetricBroadcast: return "symmetric-broadcast";
    case CommModel::kOutputPortAware: return "output-port-aware";
  }
  return "?";
}

std::string_view slug(Knowledge knowledge) {
  switch (knowledge) {
    case Knowledge::kNone: return "none";
    case Knowledge::kUpperBound: return "upper-bound";
    case Knowledge::kExactSize: return "exact-size";
    case Knowledge::kLeaders: return "leaders";
  }
  return "?";
}

namespace {

template <typename E>
E parse_enum(std::string_view text, std::initializer_list<E> values,
             const char* what) {
  for (E value : values) {
    if (slug(value) == text) return value;
  }
  throw std::invalid_argument(std::string(what) + ": unknown name '" +
                              std::string(text) + "'");
}

}  // namespace

AgentKind parse_agent(std::string_view text) {
  return parse_enum(text,
                    {AgentKind::kAuto, AgentKind::kSetGossip,
                     AgentKind::kFrequencyPushSum, AgentKind::kMetropolis},
                    "parse_agent");
}

ScheduleKind parse_schedule(std::string_view text) {
  return parse_enum(
      text,
      {ScheduleKind::kStaticPanel, ScheduleKind::kRandomStronglyConnected,
       ScheduleKind::kRandomSymmetric, ScheduleKind::kRandomMatching,
       ScheduleKind::kTokenRing, ScheduleKind::kSpooner,
       ScheduleKind::kUnionRing, ScheduleKind::kGrowingGap,
       ScheduleKind::kPreferentialChurn, ScheduleKind::kGeometricChurn},
      "parse_schedule");
}

StartsKind parse_starts(std::string_view text) {
  return parse_enum(text,
                    {StartsKind::kSynchronous, StartsKind::kStaggered,
                     StartsKind::kStraggler},
                    "parse_starts");
}

FaultsKind parse_faults(std::string_view text) {
  return parse_enum(text,
                    {FaultsKind::kNone, FaultsKind::kCrash, FaultsKind::kDrop,
                     FaultsKind::kCrashDrop},
                    "parse_faults");
}

FunctionKind parse_function(std::string_view text) {
  return parse_enum(
      text, {FunctionKind::kMax, FunctionKind::kAverage, FunctionKind::kSum},
      "parse_function");
}

CommModel parse_model(std::string_view text) {
  return parse_enum(text,
                    {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
                     CommModel::kSymmetricBroadcast,
                     CommModel::kOutputPortAware},
                    "parse_model");
}

Knowledge parse_knowledge(std::string_view text) {
  return parse_enum(text,
                    {Knowledge::kNone, Knowledge::kUpperBound,
                     Knowledge::kExactSize, Knowledge::kLeaders},
                    "parse_knowledge");
}

SymmetricFunction make_function(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kMax: return max_function();
    case FunctionKind::kAverage: return average_function();
    case FunctionKind::kSum: return sum_function();
  }
  throw std::invalid_argument("make_function: unknown function kind");
}

bool schedule_symmetric(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kRandomSymmetric:
    case ScheduleKind::kRandomMatching:
    case ScheduleKind::kSpooner:
    case ScheduleKind::kUnionRing:
    case ScheduleKind::kGrowingGap:
    // The churn overlays filter a symmetric base graph by membership, which
    // removes both orientations of a pair together: still symmetric.
    case ScheduleKind::kPreferentialChurn:
    case ScheduleKind::kGeometricChurn:
      return true;
    case ScheduleKind::kStaticPanel:
    case ScheduleKind::kRandomStronglyConnected:
    case ScheduleKind::kTokenRing:
      return false;
  }
  return false;
}

bool schedule_dynamic(ScheduleKind kind) {
  return kind != ScheduleKind::kStaticPanel;
}

bool schedule_churn(ScheduleKind kind) {
  return kind == ScheduleKind::kPreferentialChurn ||
         kind == ScheduleKind::kGeometricChurn;
}

std::string predict_failure(const Cell& cell) {
  const FaultTolerance claimed = kind_fault_tolerance(cell.agent);
  std::string reasons;
  const auto unclaimed = [&](FaultTolerance bit, const char* what) {
    if (tolerates(claimed, bit)) return;
    if (!reasons.empty()) reasons += "; ";
    reasons += what;
  };
  if (cell.starts != StartsKind::kSynchronous) {
    unclaimed(FaultTolerance::kAsyncStart,
              "asynchronous starts outside the agent's tolerance claim");
  }
  if (cell.faults == FaultsKind::kCrash || cell.faults == FaultsKind::kCrashDrop) {
    unclaimed(FaultTolerance::kCrashStop,
              "crash-stop outside the agent's tolerance claim");
  }
  if (cell.faults == FaultsKind::kDrop || cell.faults == FaultsKind::kCrashDrop) {
    unclaimed(FaultTolerance::kMessageDrop,
              "message drops outside the agent's tolerance claim");
  }
  if (schedule_churn(cell.schedule)) {
    unclaimed(FaultTolerance::kChurn,
              "membership churn outside the agent's tolerance claim");
  }
  return reasons;
}

std::string Cell::key() const {
  std::string out = suite;
  out += '/';
  out += slug(agent);
  out += '/';
  out += slug(model);
  out += '/';
  out += slug(knowledge);
  out += '/';
  out += slug(function);
  out += '/';
  out += slug(schedule);
  out += "/n" + std::to_string(n());
  out += "/v" + std::to_string(variant);
  out += "/s" + std::to_string(seed);
  // The defaults (channel off, synchronous starts, no faults) stay out of
  // the key so pre-perturbation campaign outputs resume cleanly against
  // re-expanded grids.
  if (bandwidth_bits != 0) out += "/b" + std::to_string(bandwidth_bits);
  if (starts != StartsKind::kSynchronous) {
    out += "/w" + std::string(slug(starts));
  }
  if (faults != FaultsKind::kNone) out += "/f" + std::string(slug(faults));
  return out;
}

StaticPanel make_static_panel(CommModel model, int variant) {
  if (variant < 0 || variant >= kStaticPanelCount) {
    throw std::invalid_argument("make_static_panel: variant out of range");
  }
  // Mirrors bench/table1_static: graphs with genuinely collapsible symmetry
  // (lifts) plus irregular graphs, symmetric where the model demands it.
  if (model == CommModel::kSymmetricBroadcast) {
    switch (variant) {
      case 0: return {bidirectional_ring(6), {1, 2, 1, 2, 1, 2}};
      case 1:
        return {random_symmetric_connected(8, 4, 11),
                {4, 4, 4, 9, 9, 9, 4, 9}};
      default: return {torus(2, 4), {0, 1, 0, 1, 0, 1, 0, 1}};
    }
  }
  switch (variant) {
    case 0: return {bidirectional_ring(6), {1, 2, 1, 2, 1, 2}};
    case 1:
      return {random_strongly_connected(7, 6, 3), {5, 5, 5, 2, 2, 2, 5}};
    default: {
      const LiftedGraph lift =
          random_lift(random_strongly_connected(3, 3, 8), {3, 3, 3}, 2);
      std::vector<std::int64_t> values;
      values.reserve(lift.projection.size());
      for (Vertex v : lift.projection) values.push_back(v == 0 ? 7 : 3);
      return {lift.graph, std::move(values)};
    }
  }
}

std::vector<std::int64_t> table2_inputs(int variant) {
  switch (variant) {
    case 0: return {1, 2, 1, 2, 1, 2};
    case 1: return {4, 4, 9, 9, 9, 4};
    case 2: return {0, 0, 0, 0, 5, 5};
    default:
      throw std::invalid_argument("table2_inputs: variant out of range");
  }
}

std::vector<std::int64_t> derived_inputs(int n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("derived_inputs: n > 0");
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t z =
        seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1) +
        0x2545f4914f6cdd1dull * static_cast<std::uint64_t>(n);
    out.push_back(static_cast<std::int64_t>(mix(z) % 10));
  }
  return out;
}

std::vector<Cell> Grid::expand() const {
  std::vector<Cell> cells;
  int index = 0;
  for (const Spec& spec : specs_) {
    if (spec.suite.empty() || spec.agents.empty() || spec.models.empty() ||
        spec.knowledges.empty() || spec.functions.empty() ||
        spec.schedules.empty() || spec.seeds.empty() ||
        spec.bandwidths.empty() || spec.starts.empty() ||
        spec.faults.empty() || spec.variants < 1) {
      throw std::invalid_argument("Grid::expand: spec block '" + spec.suite +
                                  "' has an empty axis");
    }
    for (const std::int64_t bandwidth : spec.bandwidths) {
      if (bandwidth < -1) {
        throw std::invalid_argument(
            "Grid::expand: spec block '" + spec.suite +
            "' has bandwidth " + std::to_string(bandwidth) +
            " (expected 0 = unbounded, -1 = metered, or a positive "
            "per-message bit budget)");
      }
    }
    if (spec.input_source == InputSource::kDerived && spec.sizes.empty()) {
      throw std::invalid_argument("Grid::expand: derived-input block '" +
                                  spec.suite + "' needs a sizes axis");
    }
    // kPanel/kFixedSets carry their own sizes; loop a placeholder.
    const std::vector<int> sizes =
        spec.input_source == InputSource::kDerived ? spec.sizes
                                                   : std::vector<int>{0};
    for (AgentKind agent : spec.agents) {
      for (Knowledge knowledge : spec.knowledges) {
        for (CommModel model : spec.models) {
          for (FunctionKind function : spec.functions) {
            for (ScheduleKind schedule : spec.schedules) {
              for (int size : sizes) {
                for (int variant = 0; variant < spec.variants; ++variant) {
                  for (std::uint64_t seed : spec.seeds) {
                    // Innermost by design: with the {0} / {kSynchronous} /
                    // {kNone} defaults these loops degenerate and the cell
                    // order (hence every index) matches pre-bandwidth and
                    // pre-perturbation expansions exactly.
                    for (std::int64_t bandwidth : spec.bandwidths) {
                      for (StartsKind starts : spec.starts) {
                        for (FaultsKind faults : spec.faults) {
                          Cell cell;
                          cell.index = index++;
                          cell.suite = spec.suite;
                          cell.agent = agent;
                          cell.model = model;
                          cell.knowledge = knowledge;
                          cell.function = function;
                          cell.schedule = schedule;
                          cell.variant = variant;
                          cell.tolerance = spec.tolerance;
                          cell.timeout_ms = spec.timeout_ms;
                          cell.bandwidth_bits = bandwidth;
                          cell.starts = starts;
                          cell.faults = faults;
                          switch (spec.input_source) {
                            case InputSource::kPanel:
                              cell.inputs =
                                  make_static_panel(model, variant).values;
                              cell.seed = seed;
                              break;
                            case InputSource::kFixedSets:
                              cell.inputs = table2_inputs(variant);
                              // bench/table2_dynamic seeds the three input
                              // sets consecutively from the base seed.
                              cell.seed =
                                  seed + static_cast<std::uint64_t>(variant);
                              break;
                            case InputSource::kDerived:
                              cell.inputs = derived_inputs(size, seed);
                              cell.seed = seed;
                              break;
                          }
                          // rounds == 0 requests the Table 1 horizon 3n + 10.
                          cell.rounds = spec.rounds > 0 ? spec.rounds
                                                        : 3 * cell.n() + 10;
                          cell.skip_reason = diagnose(spec, cell);
                          cell.admissible = cell.skip_reason.empty();
                          cells.push_back(std::move(cell));
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

Grid Grid::preset(const std::string& name) {
  Grid grid;
  const auto add_table1 = [&grid] {
    Spec spec;
    spec.suite = "table1";
    spec.agents = {AgentKind::kAuto};
    spec.models = {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
                   CommModel::kSymmetricBroadcast,
                   CommModel::kOutputPortAware};
    spec.knowledges = {Knowledge::kNone, Knowledge::kUpperBound,
                       Knowledge::kExactSize, Knowledge::kLeaders};
    spec.functions = {FunctionKind::kMax, FunctionKind::kAverage,
                      FunctionKind::kSum};
    spec.schedules = {ScheduleKind::kStaticPanel};
    spec.input_source = InputSource::kPanel;
    spec.variants = kStaticPanelCount;
    spec.seeds = {1};
    spec.rounds = 0;  // 3n + 10 per panel, as bench/table1_static
    spec.tolerance = 1e-4;
    grid.add(std::move(spec));
  };
  const auto add_table2 = [&grid] {
    Spec base;
    base.suite = "table2";
    base.agents = {AgentKind::kAuto};
    base.knowledges = {Knowledge::kNone, Knowledge::kUpperBound,
                       Knowledge::kExactSize, Knowledge::kLeaders};
    base.functions = {FunctionKind::kMax, FunctionKind::kAverage,
                      FunctionKind::kSum};
    base.input_source = InputSource::kFixedSets;
    base.variants = kTable2InputSets;
    base.seeds = {17};  // bench/table2_dynamic's base seed
    base.rounds = 400;
    base.tolerance = 1e-3;

    Spec directed = base;
    directed.models = {CommModel::kSimpleBroadcast,
                       CommModel::kOutdegreeAware};
    directed.schedules = {ScheduleKind::kRandomStronglyConnected};
    directed.open_cells = {
        {CommModel::kOutdegreeAware, Knowledge::kNone},
        {CommModel::kOutdegreeAware, Knowledge::kLeaders},
    };
    grid.add(std::move(directed));

    Spec symmetric = base;
    symmetric.models = {CommModel::kSymmetricBroadcast};
    symmetric.schedules = {ScheduleKind::kRandomSymmetric};
    grid.add(std::move(symmetric));
  };
  const auto add_adversarial = [&grid] {
    Spec base;
    base.suite = "adversarial";
    base.knowledges = {Knowledge::kNone};
    base.input_source = InputSource::kDerived;
    base.sizes = {6, 9};
    base.seeds = {1, 2};
    base.rounds = 800;
    base.tolerance = 1e-3;

    // Gossip everywhere the models allow — token ring under the symmetric
    // model lands as a recorded skip, not a throw.
    Spec gossip = base;
    gossip.agents = {AgentKind::kSetGossip};
    gossip.models = {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware,
                     CommModel::kSymmetricBroadcast};
    gossip.functions = {FunctionKind::kMax};
    gossip.schedules = {ScheduleKind::kSpooner, ScheduleKind::kUnionRing,
                        ScheduleKind::kTokenRing,
                        ScheduleKind::kRandomMatching,
                        ScheduleKind::kGrowingGap};
    grid.add(std::move(gossip));

    // Push-Sum under simple broadcast is the canonical forbidden pairing:
    // those cells come back skipped with the Table 1 diagnosis.
    Spec pushsum = base;
    pushsum.agents = {AgentKind::kFrequencyPushSum};
    pushsum.models = {CommModel::kSimpleBroadcast,
                      CommModel::kOutdegreeAware};
    pushsum.functions = {FunctionKind::kAverage};
    pushsum.schedules = {ScheduleKind::kSpooner, ScheduleKind::kUnionRing,
                         ScheduleKind::kRandomMatching,
                         ScheduleKind::kGrowingGap};
    grid.add(std::move(pushsum));

    Spec metropolis = base;
    metropolis.agents = {AgentKind::kMetropolis};
    metropolis.models = {CommModel::kOutdegreeAware,
                         CommModel::kSymmetricBroadcast};
    metropolis.functions = {FunctionKind::kAverage};
    metropolis.schedules = {ScheduleKind::kSpooner, ScheduleKind::kUnionRing,
                            ScheduleKind::kRandomMatching,
                            ScheduleKind::kTokenRing,
                            ScheduleKind::kGrowingGap};
    grid.add(std::move(metropolis));
  };
  // Bandwidth regimes of the explicit estimators: every cell runs three
  // times — metered (bits observed, nothing enforced), under a tight
  // 128-bit channel (frequency Push-Sum's first map entry alone exceeds
  // it, so those cells surface as bandwidth_exceeded), and under a loose
  // 8192-bit channel that nothing here reaches.
  const auto add_bandwidth = [&grid] {
    Spec base;
    base.suite = "bandwidth";
    base.knowledges = {Knowledge::kNone};
    base.input_source = InputSource::kDerived;
    base.sizes = {6, 9};
    base.seeds = {1};
    base.rounds = 150;
    base.tolerance = 1e-3;
    base.bandwidths = {-1, 128, 8192};

    Spec gossip = base;
    gossip.agents = {AgentKind::kSetGossip};
    gossip.models = {CommModel::kSimpleBroadcast};
    gossip.functions = {FunctionKind::kMax};
    gossip.schedules = {ScheduleKind::kRandomStronglyConnected};
    grid.add(std::move(gossip));

    Spec pushsum = base;
    pushsum.agents = {AgentKind::kFrequencyPushSum};
    pushsum.models = {CommModel::kOutdegreeAware};
    pushsum.functions = {FunctionKind::kAverage};
    pushsum.schedules = {ScheduleKind::kRandomStronglyConnected};
    grid.add(std::move(pushsum));
  };

  // The scenario zoo: every explicit agent crossed with asynchronous
  // starts, churn overlays, and crash/drop fault plans, restricted per
  // agent to the perturbations worth asking about. Cells whose
  // perturbation set exceeds the agent's FaultTolerance claim are
  // *predicted* to fail and must — the campaign CLI treats a successful
  // predicted cell as a prediction mismatch. No timeouts here: verdicts
  // must be a pure function of the grid for byte-identical output.
  const auto add_faults = [&grid] {
    Spec base;
    base.suite = "faults";
    base.knowledges = {Knowledge::kNone};
    base.input_source = InputSource::kDerived;
    base.sizes = {8};
    base.seeds = {1, 2};
    base.rounds = 800;
    base.tolerance = 1e-3;

    // Gossip survives everything but crash-stop: the crash cells are the
    // predicted failures (a crashed agent's known-set freezes).
    Spec gossip = base;
    gossip.agents = {AgentKind::kSetGossip};
    gossip.models = {CommModel::kSimpleBroadcast};
    gossip.functions = {FunctionKind::kMax};
    gossip.schedules = {ScheduleKind::kRandomSymmetric,
                        ScheduleKind::kPreferentialChurn,
                        ScheduleKind::kGeometricChurn};
    gossip.starts = {StartsKind::kSynchronous, StartsKind::kStaggered,
                     StartsKind::kStraggler};
    gossip.faults = {FaultsKind::kNone, FaultsKind::kCrash, FaultsKind::kDrop};
    grid.add(std::move(gossip));

    // Push-Sum claims churn only: the staggered and drop cells leak or
    // destroy mass and are predicted to fail.
    Spec pushsum = base;
    pushsum.agents = {AgentKind::kFrequencyPushSum};
    pushsum.models = {CommModel::kOutdegreeAware};
    pushsum.functions = {FunctionKind::kAverage};
    pushsum.schedules = {ScheduleKind::kRandomStronglyConnected,
                         ScheduleKind::kPreferentialChurn,
                         ScheduleKind::kGeometricChurn};
    pushsum.starts = {StartsKind::kSynchronous, StartsKind::kStaggered};
    pushsum.faults = {FaultsKind::kNone, FaultsKind::kDrop};
    grid.add(std::move(pushsum));

    // Metropolis claims async starts and churn (symmetric omission), not
    // drops or crashes (one-sided loss breaks pairwise cancellation).
    Spec metropolis = base;
    metropolis.agents = {AgentKind::kMetropolis};
    metropolis.models = {CommModel::kOutdegreeAware};
    metropolis.functions = {FunctionKind::kAverage};
    metropolis.schedules = {ScheduleKind::kRandomSymmetric,
                            ScheduleKind::kPreferentialChurn,
                            ScheduleKind::kGeometricChurn};
    metropolis.starts = {StartsKind::kSynchronous, StartsKind::kStraggler};
    metropolis.faults = {FaultsKind::kNone, FaultsKind::kDrop,
                         FaultsKind::kCrash};
    grid.add(std::move(metropolis));
  };

  if (name == "table1") {
    add_table1();
  } else if (name == "table2") {
    add_table2();
  } else if (name == "tables") {
    add_table1();
    add_table2();
  } else if (name == "adversarial") {
    add_adversarial();
  } else if (name == "bandwidth") {
    add_bandwidth();
  } else if (name == "faults") {
    add_faults();
  } else if (name == "smoke") {
    Spec spec;
    spec.suite = "smoke";
    spec.agents = {AgentKind::kAuto};
    spec.models = {CommModel::kSimpleBroadcast, CommModel::kOutdegreeAware};
    spec.knowledges = {Knowledge::kNone, Knowledge::kExactSize};
    spec.functions = {FunctionKind::kMax, FunctionKind::kAverage};
    spec.schedules = {ScheduleKind::kRandomStronglyConnected};
    spec.input_source = InputSource::kDerived;
    spec.sizes = {5};
    spec.seeds = {3};
    spec.rounds = 150;
    spec.tolerance = 1e-3;
    grid.add(std::move(spec));
  } else {
    throw std::invalid_argument("Grid::preset: unknown grid '" + name +
                                "' (expected one of: table1, table2, tables, "
                                "adversarial, bandwidth, faults, smoke)");
  }
  return grid;
}

std::vector<std::string> Grid::preset_names() {
  return {"table1", "table2", "tables",
          "adversarial", "bandwidth", "faults", "smoke"};
}

}  // namespace anonet::campaign
