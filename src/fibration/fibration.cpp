#include "fibration/fibration.hpp"

#include <algorithm>
#include <stdexcept>

namespace anonet {

namespace {

// Sorted multiset of (class-of-source, color) over the in-edges of v, where
// `resolve` maps a G vertex to its comparison key.
template <typename Resolve>
std::vector<std::pair<Vertex, EdgeColor>> in_signature(const Digraph& g,
                                                       Vertex v,
                                                       Resolve resolve) {
  std::vector<std::pair<Vertex, EdgeColor>> sig;
  for (EdgeId id : g.in_edges(v)) {
    const Edge& e = g.edge(id);
    sig.emplace_back(resolve(e.source), e.color);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

bool is_fibration(const Digraph& g, const std::vector<int>& g_values,
                  const Digraph& base, const std::vector<int>& base_values,
                  const std::vector<Vertex>& projection) {
  if (projection.size() != static_cast<std::size_t>(g.vertex_count())) {
    throw std::invalid_argument("is_fibration: projection size mismatch");
  }
  if (g_values.size() != static_cast<std::size_t>(g.vertex_count()) ||
      base_values.size() != static_cast<std::size_t>(base.vertex_count())) {
    throw std::invalid_argument("is_fibration: valuation size mismatch");
  }
  std::vector<bool> hit(static_cast<std::size_t>(base.vertex_count()), false);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const Vertex b = projection[static_cast<std::size_t>(v)];
    if (b < 0 || b >= base.vertex_count()) return false;
    hit[static_cast<std::size_t>(b)] = true;
    if (g_values[static_cast<std::size_t>(v)] !=
        base_values[static_cast<std::size_t>(b)]) {
      return false;
    }
    auto g_sig = in_signature(g, v, [&](Vertex u) {
      return projection[static_cast<std::size_t>(u)];
    });
    auto b_sig = in_signature(base, b, [](Vertex u) { return u; });
    if (g_sig != b_sig) return false;
  }
  // Vertex surjectivity; edge surjectivity follows since every base vertex
  // has a fibre vertex whose in-edges biject with its own.
  return std::all_of(hit.begin(), hit.end(), [](bool h) { return h; });
}

bool is_fibration(const Digraph& g, const Digraph& base,
                  const std::vector<Vertex>& projection) {
  std::vector<int> gv(static_cast<std::size_t>(g.vertex_count()), 0);
  std::vector<int> bv(static_cast<std::size_t>(base.vertex_count()), 0);
  return is_fibration(g, gv, base, bv, projection);
}

std::vector<int> fibre_sizes(const std::vector<Vertex>& projection,
                             Vertex base_count) {
  std::vector<int> sizes(static_cast<std::size_t>(base_count), 0);
  for (Vertex b : projection) ++sizes[static_cast<std::size_t>(b)];
  return sizes;
}

}  // namespace anonet
