#pragma once

// Centralized minimum-base computation (Section 3.2).
//
// Every graph has, up to isomorphism, a unique fibration-prime base — the
// smallest graph it fibres onto. We compute it as the quotient of the
// coarsest in-stable partition: base vertices are classes, and the in-edges
// of a class are read off any representative (stability makes the choice
// irrelevant). Used as ground truth for the distributed algorithm, and by
// agents to validate extracted candidates.

#include <vector>

#include "fibration/partition.hpp"
#include "graph/digraph.hpp"

namespace anonet {

struct MinimumBase {
  Digraph base;                    // multigraph; edge colors preserved
  std::vector<int> values;         // valuation of base vertices
  std::vector<Vertex> projection;  // G vertex -> base vertex (the fibration)

  [[nodiscard]] std::vector<int> fibre_sizes() const;
};

// `values` is the vertex valuation of g (input values, already interned to
// ints). Edge colors always participate: pass an uncolored graph for the
// broadcast/outdegree models and a port-colored graph for output port
// awareness. For the outdegree-aware model, seed with
// combine_labels(values, outdegree_labels(g)).
[[nodiscard]] MinimumBase minimum_base(const Digraph& g,
                                       const std::vector<int>& values);

// Vertex labels equal to outdegrees (self-loops included), the valuation
// G_od of Section 3.
[[nodiscard]] std::vector<int> outdegree_labels(const Digraph& g);

// A graph is fibration prime iff its coarsest in-stable partition is
// discrete (every fibration from it is an isomorphism).
[[nodiscard]] bool is_fibration_prime(const Digraph& g,
                                      const std::vector<int>& values);

}  // namespace anonet
