#include "fibration/minimum_base.hpp"

#include <stdexcept>

namespace anonet {

std::vector<int> MinimumBase::fibre_sizes() const {
  std::vector<int> sizes(static_cast<std::size_t>(base.vertex_count()), 0);
  for (Vertex b : projection) ++sizes[static_cast<std::size_t>(b)];
  return sizes;
}

MinimumBase minimum_base(const Digraph& g, const std::vector<int>& values) {
  const Partition partition =
      coarsest_in_stable_partition(g, values).partition;
  const int m = partition.class_count;

  MinimumBase result;
  result.base = Digraph(m);
  result.values.assign(static_cast<std::size_t>(m), 0);
  result.projection = std::vector<Vertex>(partition.class_of.begin(),
                                          partition.class_of.end());

  // One representative per class; by in-stability any choice yields the same
  // base up to identity (classes are named by the partition).
  std::vector<Vertex> representative(static_cast<std::size_t>(m), -1);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const int c = partition.class_of[static_cast<std::size_t>(v)];
    if (representative[static_cast<std::size_t>(c)] == -1) {
      representative[static_cast<std::size_t>(c)] = v;
      result.values[static_cast<std::size_t>(c)] =
          values[static_cast<std::size_t>(v)];
    }
  }
  for (int c = 0; c < m; ++c) {
    const Vertex r = representative[static_cast<std::size_t>(c)];
    for (EdgeId id : g.in_edges(r)) {
      const Edge& e = g.edge(id);
      result.base.add_edge(
          partition.class_of[static_cast<std::size_t>(e.source)],
          static_cast<Vertex>(c), e.color);
    }
  }
  return result;
}

std::vector<int> outdegree_labels(const Digraph& g) {
  std::vector<int> labels(static_cast<std::size_t>(g.vertex_count()));
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    labels[static_cast<std::size_t>(v)] = g.outdegree(v);
  }
  return labels;
}

bool is_fibration_prime(const Digraph& g, const std::vector<int>& values) {
  return coarsest_in_stable_partition(g, values).partition.class_count ==
         g.vertex_count();
}

}  // namespace anonet
