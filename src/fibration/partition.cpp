#include "fibration/partition.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace anonet {

std::vector<int> Partition::class_sizes() const {
  std::vector<int> sizes(static_cast<std::size_t>(class_count), 0);
  for (int c : class_of) ++sizes[static_cast<std::size_t>(c)];
  return sizes;
}

std::vector<int> dense_labels(const std::vector<int>& labels,
                              int* class_count) {
  std::map<int, int> ids;
  std::vector<int> result;
  result.reserve(labels.size());
  for (int label : labels) {
    auto [it, inserted] = ids.emplace(label, static_cast<int>(ids.size()));
    result.push_back(it->second);
  }
  if (class_count != nullptr) *class_count = static_cast<int>(ids.size());
  return result;
}

std::vector<int> combine_labels(const std::vector<int>& a,
                                const std::vector<int>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("combine_labels: size mismatch");
  }
  std::map<std::pair<int, int>, int> ids;
  std::vector<int> result;
  result.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [it, inserted] =
        ids.emplace(std::pair{a[i], b[i]}, static_cast<int>(ids.size()));
    result.push_back(it->second);
  }
  return result;
}

RefinementResult coarsest_in_stable_partition(
    const Digraph& g, const std::vector<int>& initial_labels) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  if (initial_labels.size() != n) {
    throw std::invalid_argument(
        "coarsest_in_stable_partition: label size mismatch");
  }
  RefinementResult result;
  int class_count = 0;
  std::vector<int> classes = dense_labels(initial_labels, &class_count);

  // Signature of a vertex under the current classes: its own class plus the
  // sorted multiset of (source class, edge color) over in-edges.
  using Signature = std::pair<int, std::vector<std::pair<int, EdgeColor>>>;
  while (true) {
    std::map<Signature, int> signature_ids;
    std::vector<int> next(n);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      Signature sig;
      sig.first = classes[static_cast<std::size_t>(v)];
      for (EdgeId id : g.in_edges(v)) {
        const Edge& e = g.edge(id);
        sig.second.emplace_back(classes[static_cast<std::size_t>(e.source)],
                                e.color);
      }
      std::sort(sig.second.begin(), sig.second.end());
      auto [it, inserted] = signature_ids.emplace(
          std::move(sig), static_cast<int>(signature_ids.size()));
      next[static_cast<std::size_t>(v)] = it->second;
    }
    const int next_count = static_cast<int>(signature_ids.size());
    if (next_count == class_count) break;  // refinement is monotone
    classes = std::move(next);
    class_count = next_count;
    ++result.rounds;
  }
  result.partition.class_count = class_count;
  result.partition.class_of = std::move(classes);
  return result;
}

}  // namespace anonet
