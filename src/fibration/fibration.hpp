#pragma once

// Fibration verification and lifting (Section 3 and Lemma 3.1).
//
// A vertex map φ : V_G -> V_B underlies a fibration iff, for every vertex v
// of G, the multiset of (φ(source), color) over v's in-edges equals the
// multiset of (source, color) over the in-edges of φ(v) in B — then an edge
// map with the unique-lift property can always be chosen. This count
// criterion is what we verify.

#include <vector>

#include "graph/digraph.hpp"

namespace anonet {

// True when `projection` is (the vertex part of) a fibration G -> B that is
// surjective on vertices and preserves the given valuations.
[[nodiscard]] bool is_fibration(const Digraph& g,
                                const std::vector<int>& g_values,
                                const Digraph& base,
                                const std::vector<int>& base_values,
                                const std::vector<Vertex>& projection);

// Topology-only variant (all values equal).
[[nodiscard]] bool is_fibration(const Digraph& g, const Digraph& base,
                                const std::vector<Vertex>& projection);

// Lifts a per-base-vertex assignment fibrewise: result[v] = base_values[φ(v)].
// This is the C^φ / v^φ operation of Lemma 3.1, usable for states, inputs, or
// any per-vertex data.
template <typename T>
[[nodiscard]] std::vector<T> lift_along(const std::vector<Vertex>& projection,
                                        const std::vector<T>& base_values) {
  std::vector<T> result;
  result.reserve(projection.size());
  for (Vertex b : projection) {
    result.push_back(base_values[static_cast<std::size_t>(b)]);
  }
  return result;
}

// Fibre cardinalities |φ^{-1}(i)| for i in [0, base_count).
[[nodiscard]] std::vector<int> fibre_sizes(
    const std::vector<Vertex>& projection, Vertex base_count);

}  // namespace anonet
