#pragma once

// Partition refinement on in-neighborhoods.
//
// The minimum base of a graph (Section 3.2) is its quotient by the *coarsest
// in-stable partition*: the coarsest equivalence refining the vertex
// valuation such that any two equivalent vertices have, for every (class,
// edge color) pair, the same number of incoming edges from that class with
// that color. Iterated signature refinement reaches the fixpoint in at most
// n rounds.

#include <vector>

#include "graph/digraph.hpp"

namespace anonet {

struct Partition {
  int class_count = 0;
  std::vector<int> class_of;  // vertex -> class id in [0, class_count)

  [[nodiscard]] std::vector<int> class_sizes() const;
};

// `initial_labels` seeds the partition (input values, or value+outdegree
// pairs for the outdegree-aware model); edge colors always participate in
// the refinement signatures (uncolored graphs just use kNoColor everywhere).
// Returns the refinement fixpoint, together with the number of refinement
// rounds it took (exposed because the distributed algorithm's stabilization
// time is stated in terms of it).
struct RefinementResult {
  Partition partition;
  int rounds = 0;
};

[[nodiscard]] RefinementResult coarsest_in_stable_partition(
    const Digraph& g, const std::vector<int>& initial_labels);

// Relabels arbitrary integer labels to dense ids 0..k-1 preserving equality.
[[nodiscard]] std::vector<int> dense_labels(const std::vector<int>& labels,
                                            int* class_count = nullptr);

// Combines two label vectors into one whose equality is pairwise equality.
[[nodiscard]] std::vector<int> combine_labels(const std::vector<int>& a,
                                              const std::vector<int>& b);

}  // namespace anonet
