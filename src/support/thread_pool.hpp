#pragma once

// A small persistent worker pool for the round engine.
//
// The executor's send and receive phases are embarrassingly parallel over
// vertices, but rounds are short (microseconds at small n), so spawning
// threads per phase would dominate. The pool keeps its workers parked on a
// condition variable between jobs; a job is a half-open index range that
// workers consume in fixed-size blocks through an atomic cursor. Block
// boundaries are deterministic (only the block->worker assignment varies),
// so callers can accumulate per-block partial results and reduce them in
// block order for bit-reproducible statistics.
//
// The calling thread participates as a worker, so `ThreadPool(1)` spawns no
// threads at all and parallel_blocks degenerates to a plain loop.

#include <concepts>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace anonet {

// Non-owning reference to a block callable (function_ref style).
// parallel_blocks is fully synchronous — every block completes before it
// returns — so borrowing the caller's callable is safe, and unlike
// std::function no allocation happens however large the capture set is.
class BlockFn {
 public:
  BlockFn() = default;

  template <typename F>
    requires std::invocable<F&, std::int64_t, std::int64_t, std::int64_t> &&
             (!std::same_as<std::remove_cvref_t<F>, BlockFn>)
  BlockFn(F&& f)  // NOLINT(google-explicit-constructor): by-design adaptor
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, std::int64_t begin, std::int64_t end,
                 std::int64_t block) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(begin, end, block);
        }) {}

  void operator()(std::int64_t begin, std::int64_t end,
                  std::int64_t block) const {
    call_(obj_, begin, end, block);
  }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, std::int64_t, std::int64_t, std::int64_t) = nullptr;
};

class ThreadPool {
 public:
  // Total workers including the calling thread; spawns `threads - 1`.
  // threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const { return threads_; }

  // Hardware concurrency with a sane floor of 1.
  [[nodiscard]] static int hardware_threads();

  // Invokes fn(begin, end, block_index) for consecutive blocks of size
  // `block_size` covering [0, count). Blocks run concurrently on the pool
  // (caller included); the call returns after every started block completed.
  // Exceptions fail fast on both paths: the serial path stops at the first
  // throwing block, and the pooled path cancels all not-yet-claimed blocks
  // of the job (blocks already in flight on other workers still finish).
  // The first exception thrown by fn is captured and rethrown here. Not
  // reentrant: fn must not call parallel_blocks on the same pool. The job
  // may span at most 2^32 - 1 blocks (the block half of the tagged cursor).
  void parallel_blocks(std::int64_t count, std::int64_t block_size,
                       BlockFn fn);

  // Number of blocks parallel_blocks will use for the given job; callers
  // size per-block accumulator arrays with this.
  [[nodiscard]] static std::int64_t block_count(std::int64_t count,
                                                std::int64_t block_size);

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <thread>/<mutex> out of the public header
  int threads_;
};

}  // namespace anonet
