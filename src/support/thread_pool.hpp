#pragma once

// A small persistent worker pool for the round engine.
//
// The executor's send and receive phases are embarrassingly parallel over
// vertices, but rounds are short (microseconds at small n), so spawning
// threads per phase would dominate. Workers are spawned once, in the
// constructor, and parked between jobs: first a bounded spin (a back-to-back
// phase release costs no syscall), then a futex wait via C++20
// std::atomic::wait. A job release is a single epoch-counter publish — no
// mutex or condition variable is taken anywhere on the submit/complete path —
// and workers consume the job's half-open index range in fixed-size blocks
// through a generation-tagged atomic cursor. Block boundaries are
// deterministic (only the block->worker assignment varies), so callers can
// accumulate per-block partial results and reduce them in block order for
// bit-reproducible statistics.
//
// The calling thread participates as a worker, so `ThreadPool(1)` spawns no
// threads at all and parallel_blocks degenerates to a plain loop.

#include <concepts>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace anonet {

// Non-owning reference to a block callable (function_ref style).
// parallel_blocks is fully synchronous — every block completes before it
// returns — so borrowing the caller's callable is safe, and unlike
// std::function no allocation happens however large the capture set is.
class BlockFn {
 public:
  BlockFn() = default;

  template <typename F>
    requires std::invocable<F&, std::int64_t, std::int64_t, std::int64_t> &&
             (!std::same_as<std::remove_cvref_t<F>, BlockFn>)
  BlockFn(F&& f)  // NOLINT(google-explicit-constructor): by-design adaptor
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, std::int64_t begin, std::int64_t end,
                 std::int64_t block) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(begin, end, block);
        }) {}

  void operator()(std::int64_t begin, std::int64_t end,
                  std::int64_t block) const {
    call_(obj_, begin, end, block);
  }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, std::int64_t, std::int64_t, std::int64_t) = nullptr;
};

class ThreadPool {
 public:
  // Total workers including the calling thread; spawns `threads - 1`
  // persistent workers that park until destruction. threads < 1 is clamped
  // to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker count for a job: the calling thread plus thread_count() - 1
  // parked workers all claim blocks concurrently.
  [[nodiscard]] int thread_count() const { return threads_; }

  // Hardware concurrency with a sane floor of 1.
  [[nodiscard]] static int hardware_threads();

  // Invokes fn(begin, end, block_index) for consecutive blocks of size
  // `block_size` covering [0, count), on up to thread_count() workers
  // (caller included); the call returns after every started block completed.
  //
  // `block_size` is the work grain: every claim of the job's cursor hands a
  // worker one block of that many indices (the last block may be short).
  // Larger grains amortize claim traffic, smaller grains balance load; the
  // boundaries are a pure function of (count, block_size), never of the
  // worker count, which is what keeps block-order reductions deterministic.
  // The executor chooses the grain adaptively (see runtime/executor.hpp).
  //
  // Exceptions fail fast on both paths: the serial path stops at the first
  // throwing block, and the pooled path cancels all not-yet-claimed blocks
  // of the job (blocks already in flight on other workers still finish).
  // The first exception thrown by fn is captured and rethrown here.
  //
  // Not reentrant: fn must not call parallel_blocks on the same pool, from
  // any thread (asserted in debug builds). The job may span at most
  // 2^32 - 2 blocks (the block half of the tagged cursor, minus the idle
  // sentinel).
  void parallel_blocks(std::int64_t count, std::int64_t block_size,
                       BlockFn fn);

  // Number of blocks parallel_blocks will use for the given job; callers
  // size per-block accumulator arrays with this.
  [[nodiscard]] static std::int64_t block_count(std::int64_t count,
                                                std::int64_t block_size);

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <atomic>/<thread> out of the public header
  int threads_;
};

}  // namespace anonet
