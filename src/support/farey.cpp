#include "support/farey.hpp"

#include <cmath>
#include <stdexcept>

namespace anonet {

namespace {

// Exact conversion: every finite double is mantissa * 2^exponent.
Rational rational_from_double(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("nearest_rational: non-finite value");
  }
  if (value == 0.0) return Rational(0);
  int exponent = 0;
  double mantissa = std::frexp(value, &exponent);  // |mantissa| in [0.5, 1)
  // 53 doublings make the mantissa integral.
  auto scaled = static_cast<std::int64_t>(std::ldexp(mantissa, 53));
  exponent -= 53;
  BigInt numerator(scaled);
  if (exponent >= 0) {
    return Rational(numerator.shifted_left(static_cast<std::size_t>(exponent)));
  }
  return Rational(numerator,
                  BigInt(1).shifted_left(static_cast<std::size_t>(-exponent)));
}

BigInt floor_of(const Rational& value) {
  BigInt quotient, remainder;
  BigInt::div_mod(value.numerator(), value.denominator(), quotient, remainder);
  if (remainder.is_negative()) quotient -= BigInt(1);
  return quotient;
}

}  // namespace

Rational nearest_rational(const Rational& value,
                          std::uint32_t max_denominator) {
  if (max_denominator == 0) {
    throw std::invalid_argument("nearest_rational: zero denominator bound");
  }
  const BigInt bound(static_cast<std::int64_t>(max_denominator));
  if (value.denominator() <= bound) return value;  // already in Q_N

  // Continued-fraction expansion of `value`, tracking convergents
  // p_k/q_k until the denominator would exceed the bound, then the best
  // semiconvergent reachable within the bound.
  BigInt p_prev(1), q_prev(0);  // p_{-1}/q_{-1}
  BigInt p_curr, q_curr(1);     // p_0 = floor(value)
  Rational remainder = value;
  BigInt a0 = floor_of(remainder);
  p_curr = a0;
  remainder -= Rational(a0);

  while (!remainder.is_zero()) {
    remainder = remainder.reciprocal();
    BigInt a = floor_of(remainder);
    remainder -= Rational(a);
    BigInt p_next = a * p_curr + p_prev;
    BigInt q_next = a * q_curr + q_prev;
    if (q_next > bound) {
      // Best semiconvergent: largest t with q_prev + t*q_curr <= bound.
      BigInt t = (bound - q_prev) / q_curr;
      Rational semiconvergent(p_prev + t * p_curr, q_prev + t * q_curr);
      Rational convergent(p_curr, q_curr);
      Rational err_semi = (value - semiconvergent).abs();
      Rational err_conv = (value - convergent).abs();
      // Tie toward the smaller denominator, i.e. the convergent wins ties
      // unless the semiconvergent's denominator is smaller (cannot happen
      // since q_prev + t*q_curr >= q_curr when t >= 1; for t == 0 the
      // semiconvergent *is* the previous convergent).
      return err_semi < err_conv ? semiconvergent : convergent;
    }
    p_prev = std::move(p_curr);
    q_prev = std::move(q_curr);
    p_curr = std::move(p_next);
    q_curr = std::move(q_next);
  }
  return Rational(p_curr, q_curr);
}

Rational nearest_rational(double value, std::uint32_t max_denominator) {
  return nearest_rational(rational_from_double(value), max_denominator);
}

}  // namespace anonet
