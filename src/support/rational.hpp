#pragma once

// Exact rational numbers over BigInt.
//
// Invariants: the denominator is always positive (maintained eagerly — it is
// a cheap sign flip), so sign queries never need the gcd; gcd reduction is
// *lazy*. Arithmetic results carry a small `pending_` counter of deferred
// reductions and are brought to lowest terms only when an observer needs the
// canonical form (numerator(), denominator(), is_integer(), to_string(),
// to_double(), hash()) or when the deferral bound kMaxPending is hit, which
// keeps deferred operands from ballooning. Equality and ordering are exact
// without normalizing: both compare by cross-multiplication when either side
// is unreduced. Before the gcd, arithmetic takes an overflow-checked
// int64×int64 fast lane — exact push-sum shares stay within int64 for tens of
// rounds, and the fast lane reduces with a 64-bit Euclid instead of BigInt
// division.
//
// Thread-safety: lazy reduction mutates `mutable` members under const, so a
// Rational shared across threads needs external synchronization even for
// concurrent reads. The round engine satisfies this by construction: each
// agent observes only its own state and its own arena copies of messages,
// and every phase gives a vertex block to exactly one worker.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "support/bigint.hpp"

namespace anonet {

class Rational {
 public:
  Rational() : numerator_(0), denominator_(1) {}
  Rational(std::int64_t value) : numerator_(value), denominator_(1) {}  // NOLINT
  Rational(BigInt value) : numerator_(std::move(value)), denominator_(1) {}  // NOLINT
  // Throws std::domain_error if denominator is zero. Reduces eagerly, so a
  // freshly constructed value is in lowest terms.
  Rational(BigInt numerator, BigInt denominator);

  // Observers of the canonical (lowest-terms) form; both normalize first.
  [[nodiscard]] const BigInt& numerator() const {
    normalize();
    return numerator_;
  }
  [[nodiscard]] const BigInt& denominator() const {
    normalize();
    return denominator_;
  }

  // Exact without normalizing: the positive-denominator invariant makes the
  // numerator carry the sign, reduced or not.
  [[nodiscard]] bool is_zero() const { return numerator_.is_zero(); }
  [[nodiscard]] int signum() const { return numerator_.signum(); }

  [[nodiscard]] bool is_integer() const {
    normalize();
    return denominator_ == BigInt(1);
  }

  [[nodiscard]] Rational abs() const;
  // Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Rational reciprocal() const;

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;  // "p/q" or "p" when integral
  // Hash of the canonical form: equal values hash equal regardless of how
  // they were produced (normalizes first).
  [[nodiscard]] std::size_t hash() const;

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  Rational operator-() const;

  // Value equality: structural when both sides are already reduced,
  // cross-multiplication (no mutation) otherwise.
  friend bool operator==(const Rational& a, const Rational& b);
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  friend std::ostream& operator<<(std::ostream& os, const Rational& value);

 private:
  struct Unreduced {};  // tag: trusted internal construction, defers the gcd
  Rational(Unreduced, BigInt numerator, BigInt denominator,
           std::uint8_t pending);

  void normalize() const;    // no-op when pending_ == 0
  void reduce_now() const;   // unconditional gcd reduction
  // Reduced rational from an int64 fraction (den != 0); sign via magnitudes,
  // so INT64_MIN in either slot is fine.
  [[nodiscard]] static Rational from_int64_fraction(std::int64_t num,
                                                    std::int64_t den);
  [[nodiscard]] static bool int64_parts(const Rational& r, std::int64_t& num,
                                        std::int64_t& den);
  [[nodiscard]] static std::uint8_t next_pending(const Rational& a,
                                                 const Rational& b);

  static constexpr std::uint8_t kMaxPending = 8;

  mutable BigInt numerator_;
  mutable BigInt denominator_;
  // Deferred-reduction depth: 0 means lowest terms. See header comment.
  mutable std::uint8_t pending_ = 0;
};

}  // namespace anonet

template <>
struct std::hash<anonet::Rational> {
  std::size_t operator()(const anonet::Rational& value) const {
    return value.hash();
  }
};
