#pragma once

// Exact rational numbers over BigInt.
//
// Invariant: denominator > 0 and gcd(|numerator|, denominator) == 1; zero is
// represented as 0/1. All arithmetic preserves the invariant, so equality is
// structural.

#include <compare>
#include <iosfwd>
#include <string>

#include "support/bigint.hpp"

namespace anonet {

class Rational {
 public:
  Rational() : numerator_(0), denominator_(1) {}
  Rational(std::int64_t value) : numerator_(value), denominator_(1) {}  // NOLINT
  Rational(BigInt value) : numerator_(std::move(value)), denominator_(1) {}  // NOLINT
  // Throws std::domain_error if denominator is zero.
  Rational(BigInt numerator, BigInt denominator);

  [[nodiscard]] const BigInt& numerator() const { return numerator_; }
  [[nodiscard]] const BigInt& denominator() const { return denominator_; }

  [[nodiscard]] bool is_zero() const { return numerator_.is_zero(); }
  [[nodiscard]] bool is_integer() const { return denominator_ == BigInt(1); }
  [[nodiscard]] int signum() const { return numerator_.signum(); }

  [[nodiscard]] Rational abs() const;
  // Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Rational reciprocal() const;

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;  // "p/q" or "p" when integral

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  Rational operator-() const;

  friend bool operator==(const Rational& a, const Rational& b) = default;
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  friend std::ostream& operator<<(std::ostream& os, const Rational& value);

 private:
  void reduce();

  BigInt numerator_;
  BigInt denominator_;
};

}  // namespace anonet
