#include "support/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace anonet {

namespace {

constexpr std::uint64_t kLimbBase = std::uint64_t{1} << 32;
constexpr std::uint64_t kInt64MinMagnitude = std::uint64_t{1} << 63;

using Limbs = std::vector<std::uint32_t>;

// Magnitude comparison ignoring sign: -1, 0, +1.
int compare_magnitude(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Limbs add_magnitude(const Limbs& a, const Limbs& b) {
  Limbs result;
  result.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    result.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<std::uint32_t>(carry));
  return result;
}

// Requires |a| >= |b|.
Limbs sub_magnitude(const Limbs& a, const Limbs& b) {
  Limbs result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

Limbs mul_magnitude(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t current = result[i + j] +
                              std::uint64_t{a[i]} * std::uint64_t{b[j]} + carry;
      result[i + j] = static_cast<std::uint32_t>(current & 0xffffffffu);
      carry = current >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t current = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(current & 0xffffffffu);
      carry = current >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

// Magnitude of a value whose bit length is at most 64, either representation.
std::uint64_t magnitude_as_u64(const Limbs& limbs) {
  std::uint64_t magnitude = 0;
  if (!limbs.empty()) magnitude = limbs[0];
  if (limbs.size() >= 2) magnitude |= std::uint64_t{limbs[1]} << 32;
  return magnitude;
}

}  // namespace

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt: no digits");
  BigInt result;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt: bad digit");
    result = result * BigInt(10) + BigInt(c - '0');
  }
  if (negative) result = result.negate();
  return result;
}

BigInt BigInt::from_sign_magnitude(bool negative, std::uint64_t magnitude) {
  if (magnitude <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
    const auto value = static_cast<std::int64_t>(magnitude);
    return BigInt(negative ? -value : value);
  }
  if (negative && magnitude == kInt64MinMagnitude) {
    return BigInt(std::numeric_limits<std::int64_t>::min());
  }
  BigInt result;
  result.small_ = false;
  result.negative_ = negative;
  result.limbs_ = {static_cast<std::uint32_t>(magnitude & 0xffffffffu),
                   static_cast<std::uint32_t>(magnitude >> 32)};
  return result;
}

BigInt BigInt::from_limbs(bool negative, std::vector<std::uint32_t> limbs) {
  BigInt result;
  result.small_ = false;
  result.negative_ = negative;
  result.limbs_ = std::move(limbs);
  result.canonicalize();
  return result;
}

void BigInt::canonicalize() {
  if (small_) return;
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.size() > 2) return;
  const std::uint64_t magnitude = magnitude_as_u64(limbs_);
  if (magnitude <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
    const auto value = static_cast<std::int64_t>(magnitude);
    value_ = negative_ ? -value : value;
  } else if (negative_ && magnitude == kInt64MinMagnitude) {
    value_ = std::numeric_limits<std::int64_t>::min();
  } else {
    return;  // genuinely wider than int64: stays spilled
  }
  small_ = true;
  negative_ = false;
  limbs_.clear();
  limbs_.shrink_to_fit();
}

std::vector<std::uint32_t> BigInt::magnitude_limbs() const {
  if (!small_) return limbs_;
  Limbs limbs;
  std::uint64_t magnitude = small_magnitude();
  while (magnitude != 0) {
    limbs.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  return limbs;
}

std::size_t BigInt::bit_length() const {
  if (small_) return static_cast<std::size_t>(std::bit_width(small_magnitude()));
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  return bits + static_cast<std::size_t>(std::bit_width(top));
}

bool BigInt::bit(std::size_t index) const {
  if (small_) {
    if (index >= 64) return false;
    return (small_magnitude() >> index) & 1u;
  }
  std::size_t limb = index / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 32)) & 1u;
}

BigInt BigInt::abs() const {
  if (small_) {
    if (value_ == std::numeric_limits<std::int64_t>::min()) {
      return from_sign_magnitude(false, kInt64MinMagnitude);
    }
    return BigInt(value_ < 0 ? -value_ : value_);
  }
  BigInt result = *this;
  result.negative_ = false;
  result.canonicalize();
  return result;
}

BigInt BigInt::negate() const {
  if (small_) {
    if (value_ == std::numeric_limits<std::int64_t>::min()) {
      return from_sign_magnitude(false, kInt64MinMagnitude);
    }
    return BigInt(-value_);
  }
  BigInt result = *this;
  result.negative_ = !result.negative_;
  result.canonicalize();  // +2^63 negated collapses to inline INT64_MIN
  return result;
}

std::int64_t BigInt::to_int64() const {
  // Canonical representation: every value that fits int64 is stored inline.
  if (!small_) throw std::overflow_error("BigInt::to_int64");
  return value_;
}

double BigInt::to_double() const {
  if (small_) return static_cast<double>(value_);
  double result = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    result = result * static_cast<double>(kLimbBase) + static_cast<double>(*it);
  }
  return negative_ ? -result : result;
}

std::string BigInt::to_string() const {
  if (small_) return std::to_string(value_);
  // Repeated division of the magnitude by 10^9, collecting digit blocks.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  constexpr std::uint32_t kChunk = 1000000000u;
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t current = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(current / kChunk);
      remainder = current % kChunk;
    }
    while (!magnitude.empty() && magnitude.back() == 0) magnitude.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::size_t BigInt::hash() const {
  if (small_) return std::hash<std::int64_t>{}(value_);
  // FNV-1a over the limbs; spilled values never collide with inline ones on
  // representation because canonicality keeps the two domains disjoint.
  std::uint64_t h = negative_ ? 0xcbf29ce484222325ull : 0x84222325cbf29ce4ull;
  for (const std::uint32_t limb : limbs_) {
    h = (h ^ limb) * 0x100000001b3ull;
  }
  return static_cast<std::size_t>(h);
}

int BigInt::compare_abs(const BigInt& a, const BigInt& b) {
  const std::size_t a_bits = a.bit_length();
  const std::size_t b_bits = b.bit_length();
  if (a_bits != b_bits) return a_bits < b_bits ? -1 : 1;
  if (a_bits <= 64) {
    const std::uint64_t am =
        a.small_ ? a.small_magnitude() : magnitude_as_u64(a.limbs_);
    const std::uint64_t bm =
        b.small_ ? b.small_magnitude() : magnitude_as_u64(b.limbs_);
    if (am != bm) return am < bm ? -1 : 1;
    return 0;
  }
  return compare_magnitude(a.limbs_, b.limbs_);
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.small_ && b.small_) {
    std::int64_t sum = 0;
    if (!__builtin_add_overflow(a.value_, b.value_, &sum)) return BigInt(sum);
    // int64 overflow means the signs agree; the 65-bit magnitude sum needs at
    // most one extra limb pair.
    const unsigned __int128 magnitude =
        static_cast<unsigned __int128>(a.small_magnitude()) +
        b.small_magnitude();
    const auto low = static_cast<std::uint64_t>(magnitude);
    const auto high = static_cast<std::uint64_t>(magnitude >> 64);
    BigInt result = BigInt::from_sign_magnitude(false, low);
    if (high != 0) {
      result = result + BigInt::from_sign_magnitude(false, high).shifted_left(64);
    }
    return a.value_ < 0 ? result.negate() : result;
  }
  const bool a_neg = a.is_negative();
  const bool b_neg = b.is_negative();
  const Limbs a_mag = a.magnitude_limbs();
  const Limbs b_mag = b.magnitude_limbs();
  if (a_neg == b_neg) {
    return BigInt::from_limbs(a_neg, add_magnitude(a_mag, b_mag));
  }
  const int cmp = compare_magnitude(a_mag, b_mag);
  if (cmp == 0) return BigInt{};
  if (cmp > 0) return BigInt::from_limbs(a_neg, sub_magnitude(a_mag, b_mag));
  return BigInt::from_limbs(b_neg, sub_magnitude(b_mag, a_mag));
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (a.small_ && b.small_) {
    std::int64_t diff = 0;
    if (!__builtin_sub_overflow(a.value_, b.value_, &diff)) return BigInt(diff);
    // int64 overflow means the signs differ: |a - b| = |a| + |b| with a's sign.
    const unsigned __int128 magnitude =
        static_cast<unsigned __int128>(a.small_magnitude()) +
        b.small_magnitude();
    const auto low = static_cast<std::uint64_t>(magnitude);
    const auto high = static_cast<std::uint64_t>(magnitude >> 64);
    BigInt result = BigInt::from_sign_magnitude(false, low);
    if (high != 0) {
      result = result + BigInt::from_sign_magnitude(false, high).shifted_left(64);
    }
    return a.value_ < 0 ? result.negate() : result;
  }
  return a + b.negate();
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.small_ && b.small_) {
    std::int64_t product = 0;
    if (!__builtin_mul_overflow(a.value_, b.value_, &product)) {
      return BigInt(product);
    }
    const bool negative = (a.value_ < 0) != (b.value_ < 0);
    const unsigned __int128 magnitude =
        static_cast<unsigned __int128>(a.small_magnitude()) *
        b.small_magnitude();
    const auto low = static_cast<std::uint64_t>(magnitude);
    const auto high = static_cast<std::uint64_t>(magnitude >> 64);
    BigInt result = BigInt::from_sign_magnitude(false, low);
    if (high != 0) {
      result = result + BigInt::from_sign_magnitude(false, high).shifted_left(64);
    }
    return negative ? result.negate() : result;
  }
  if (a.is_zero() || b.is_zero()) return BigInt{};
  return BigInt::from_limbs(a.is_negative() != b.is_negative(),
                            mul_magnitude(a.magnitude_limbs(),
                                          b.magnitude_limbs()));
}

void BigInt::div_mod(const BigInt& dividend, const BigInt& divisor,
                     BigInt& quotient, BigInt& remainder) {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (dividend.small_ && divisor.small_) {
    // Unsigned magnitudes sidestep the INT64_MIN / -1 overflow case.
    const std::uint64_t d_mag = dividend.small_magnitude();
    const std::uint64_t v_mag = divisor.small_magnitude();
    const bool q_neg = (dividend.value_ < 0) != (divisor.value_ < 0);
    quotient = from_sign_magnitude(q_neg, d_mag / v_mag);
    remainder = from_sign_magnitude(dividend.value_ < 0, d_mag % v_mag);
    return;
  }
  if (divisor.small_ || divisor.limbs_.size() <= 2) {
    // Schoolbook division of the limb string by a 64-bit magnitude: O(limbs)
    // instead of the O(bits^2) binary loop. This is the lane the gcd chain
    // drops into as soon as one operand shrinks below 64 bits.
    const std::uint64_t d = divisor.small_ ? divisor.small_magnitude()
                                           : magnitude_as_u64(divisor.limbs_);
    const Limbs dividend_mag = dividend.magnitude_limbs();
    Limbs q(dividend_mag.size(), 0);
    std::uint64_t small_rem = 0;
    if (d <= 0xffffffffu) {
      for (std::size_t i = dividend_mag.size(); i-- > 0;) {
        const std::uint64_t current = (small_rem << 32) | dividend_mag[i];
        q[i] = static_cast<std::uint32_t>(current / d);
        small_rem = current % d;
      }
    } else {
      unsigned __int128 rem = 0;
      for (std::size_t i = dividend_mag.size(); i-- > 0;) {
        const unsigned __int128 current = (rem << 32) | dividend_mag[i];
        q[i] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(current / d));
        rem = current % d;
      }
      small_rem = static_cast<std::uint64_t>(rem);
    }
    const bool q_neg = dividend.is_negative() != divisor.is_negative();
    quotient = from_limbs(q_neg, std::move(q));
    remainder = from_sign_magnitude(dividend.is_negative(), small_rem);
    return;
  }
  // Binary long division on magnitudes; O(bits^2 / 32) limb work, reached
  // only when the divisor itself is wider than 64 bits.
  const BigInt abs_dividend = dividend.abs();
  const BigInt abs_divisor = divisor.abs();
  if (compare_abs(abs_dividend, abs_divisor) < 0) {
    quotient = BigInt{};
    remainder = dividend;
    return;
  }
  const std::size_t shift =
      abs_dividend.bit_length() - abs_divisor.bit_length();
  BigInt shifted = abs_divisor.shifted_left(shift);
  BigInt q;
  BigInt r = abs_dividend;
  for (std::size_t step = 0; step <= shift; ++step) {
    q = q.shifted_left(1);
    if (compare_abs(r, shifted) >= 0) {
      r = r - shifted;
      q = q + BigInt(1);
    }
    shifted = shifted.shifted_right(1);
  }
  if (dividend.is_negative() != divisor.is_negative()) q = q.negate();
  if (dividend.is_negative()) r = r.negate();
  quotient = std::move(q);
  remainder = std::move(r);
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return r;
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  if (small_) {
    const std::uint64_t magnitude = small_magnitude();
    const auto width = static_cast<std::size_t>(std::bit_width(magnitude));
    if (width + bits <= 64) {
      return from_sign_magnitude(value_ < 0, magnitude << bits);
    }
  }
  const Limbs source = magnitude_limbs();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  Limbs shifted(source.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < source.size(); ++i) {
    const std::uint64_t value = std::uint64_t{source[i]} << bit_shift;
    shifted[i + limb_shift] |= static_cast<std::uint32_t>(value & 0xffffffffu);
    shifted[i + limb_shift + 1] |= static_cast<std::uint32_t>(value >> 32);
  }
  return from_limbs(is_negative(), std::move(shifted));
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  if (small_) {
    if (bits >= 64) return BigInt{};
    return from_sign_magnitude(value_ < 0, small_magnitude() >> bits);
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt{};
  Limbs shifted(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    std::uint64_t value = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      value |= std::uint64_t{limbs_[i + limb_shift + 1]} << (32 - bit_shift);
    }
    shifted[i] = static_cast<std::uint32_t>(value & 0xffffffffu);
  }
  return from_limbs(negative_, std::move(shifted));
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.small_ && b.small_) return a.value_ <=> b.value_;
  const bool a_neg = a.is_negative();
  const bool b_neg = b.is_negative();
  if (a_neg != b_neg) {
    return a_neg ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  int cmp = BigInt::compare_abs(a, b);
  if (a_neg) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

BigInt gcd(BigInt a, BigInt b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    if (a.small_ && b.small_) {
      std::uint64_t x = a.small_magnitude();
      std::uint64_t y = b.small_magnitude();
      while (y != 0) {
        const std::uint64_t t = x % y;
        x = y;
        y = t;
      }
      return BigInt::from_sign_magnitude(false, x);
    }
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  return (a.abs() / gcd(a, b)) * b.abs();
}

}  // namespace anonet
