#include "support/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace anonet {

namespace {
constexpr std::uint64_t kLimbBase = std::uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Avoid UB on INT64_MIN: negate in the unsigned domain.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  normalize();
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt: no digits");
  BigInt result;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt: bad digit");
    result = result * BigInt(10) + BigInt(c - '0');
  }
  if (negative) result = result.negate();
  return result;
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t index) const {
  std::size_t limb = index / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 32)) & 1u;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt BigInt::negate() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

std::int64_t BigInt::to_int64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigInt::to_int64");
  std::uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= std::uint64_t{limbs_[1]} << 32;
  if (negative_) {
    if (magnitude > std::uint64_t{1} << 63) {
      throw std::overflow_error("BigInt::to_int64");
    }
    return static_cast<std::int64_t>(~magnitude + 1);
  }
  if (magnitude > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
    throw std::overflow_error("BigInt::to_int64");
  }
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const {
  double result = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    result = result * static_cast<double>(kLimbBase) + static_cast<double>(*it);
  }
  return negative_ ? -result : result;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division of the magnitude by 10^9, collecting digit blocks.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  constexpr std::uint32_t kChunk = 1000000000u;
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t current = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(current / kChunk);
      remainder = current % kChunk;
    }
    while (!magnitude.empty() && magnitude.back() == 0) magnitude.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int BigInt::compare_magnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    result.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<std::uint32_t>(carry));
  return result;
}

std::vector<std::uint32_t> BigInt::sub_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

std::vector<std::uint32_t> BigInt::mul_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t current = result[i + j] +
                              std::uint64_t{a[i]} * std::uint64_t{b[j]} + carry;
      result[i + j] = static_cast<std::uint32_t>(current & 0xffffffffu);
      carry = current >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t current = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(current & 0xffffffffu);
      carry = current >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt result;
  if (a.negative_ == b.negative_) {
    result.limbs_ = BigInt::add_magnitude(a.limbs_, b.limbs_);
    result.negative_ = a.negative_;
  } else {
    int cmp = BigInt::compare_magnitude(a.limbs_, b.limbs_);
    if (cmp == 0) return BigInt{};
    if (cmp > 0) {
      result.limbs_ = BigInt::sub_magnitude(a.limbs_, b.limbs_);
      result.negative_ = a.negative_;
    } else {
      result.limbs_ = BigInt::sub_magnitude(b.limbs_, a.limbs_);
      result.negative_ = b.negative_;
    }
  }
  result.normalize();
  return result;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + b.negate(); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt result;
  result.limbs_ = BigInt::mul_magnitude(a.limbs_, b.limbs_);
  result.negative_ = !result.limbs_.empty() && (a.negative_ != b.negative_);
  result.normalize();
  return result;
}

void BigInt::div_mod(const BigInt& dividend, const BigInt& divisor,
                     BigInt& quotient, BigInt& remainder) {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");
  // Binary long division on magnitudes; O(bits^2 / 32) limb work, plenty for
  // the matrix sizes this library solves.
  BigInt abs_dividend = dividend.abs();
  BigInt abs_divisor = divisor.abs();
  if (compare_magnitude(abs_dividend.limbs_, abs_divisor.limbs_) < 0) {
    quotient = BigInt{};
    remainder = dividend;
    return;
  }
  std::size_t shift = abs_dividend.bit_length() - abs_divisor.bit_length();
  BigInt shifted = abs_divisor.shifted_left(shift);
  BigInt q;
  BigInt r = abs_dividend;
  for (std::size_t step = 0; step <= shift; ++step) {
    q = q.shifted_left(1);
    if (compare_magnitude(r.limbs_, shifted.limbs_) >= 0) {
      r = r - shifted;
      q = q + BigInt(1);
    }
    shifted = shifted.shifted_right(1);
  }
  q.negative_ = !q.is_zero() && (dividend.negative_ != divisor.negative_);
  r.negative_ = !r.is_zero() && dividend.negative_;
  q.normalize();
  r.normalize();
  quotient = std::move(q);
  remainder = std::move(r);
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return r;
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t value = std::uint64_t{limbs_[i]} << bit_shift;
    result.limbs_[i + limb_shift] |=
        static_cast<std::uint32_t>(value & 0xffffffffu);
    result.limbs_[i + limb_shift + 1] |=
        static_cast<std::uint32_t>(value >> 32);
  }
  result.normalize();
  return result;
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  if (is_zero()) return *this;
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt{};
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < result.limbs_.size(); ++i) {
    std::uint64_t value = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      value |= std::uint64_t{limbs_[i + limb_shift + 1]} << (32 - bit_shift);
    }
    result.limbs_[i] = static_cast<std::uint32_t>(value & 0xffffffffu);
  }
  result.normalize();
  return result;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
  int cmp = BigInt::compare_magnitude(a.limbs_, b.limbs_);
  if (a.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

BigInt gcd(BigInt a, BigInt b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  return (a.abs() / gcd(a, b)) * b.abs();
}

}  // namespace anonet
