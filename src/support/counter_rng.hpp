#pragma once

// Counter-based random bit generator for reproducible parallel execution.
//
// The executor shuffles each agent's inbox so algorithms cannot extract
// information from arrival order. A shared sequential generator (the seed
// implementation's mt19937_64) makes the shuffle depend on the order in
// which inboxes are processed — which is exactly what a thread-parallel
// receive phase does not preserve. CounterRng instead derives an
// independent stream from a (seed, round, vertex) key, so vertex v's
// shuffle in round t is a pure function of the key no matter which worker
// performs it, and serial and parallel runs deliver bitwise-identical
// message orders.
//
// The construction is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): the key
// is mixed into an initial state and each draw advances the state by the
// golden-ratio increment and applies the finalizer. It passes BigCrush as a
// stream generator and is vastly cheaper to key than a Mersenne twister.

#include <cstdint>
#include <limits>

namespace anonet {

class CounterRng {
 public:
  using result_type = std::uint64_t;

  CounterRng(std::uint64_t seed, std::uint64_t round, std::uint64_t vertex) {
    // Decorrelate the three key components before summing them into the
    // stream origin; plain addition would alias (seed, round+1, vertex) with
    // (seed, round, vertex+1).
    state_ = mix(seed ^ 0x9e3779b97f4a7c15ull) +
             mix(round ^ 0xbf58476d1ce4e5b9ull) +
             mix(vertex ^ 0x94d049bb133111ebull);
  }

  result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ull;
    return mix(state_);
  }

  // Uniform draw in [0, bound) via Lemire's multiply-shift reduction
  // (Lemire, TOMACS'19). The executor's Fisher–Yates shuffle uses this
  // instead of std::uniform_int_distribution: no division, no rejection
  // loop, and still a pure function of the (seed, round, vertex) key. The
  // O(bound / 2^64) bias is immaterial for inbox degrees.
  std::uint64_t bounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_ = 0;
};

}  // namespace anonet
