#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace anonet {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Spin budgets before falling back to a futex wait. Workers spin a little
// longer than the caller: the gap between a round's send and deliver phases
// is sub-millisecond, and catching the next release in the spin window saves
// two syscalls per worker per phase.
constexpr int kWorkerSpins = 4096;
constexpr int kCallerSpins = 1024;

}  // namespace

struct ThreadPool::Impl {
  // ---- job description --------------------------------------------------
  // Plain fields written by the submitting thread while the cursor shows the
  // idle sentinel (so no worker can be claiming), published by the release
  // store of the tagged cursor, and read by workers only after an acquire
  // CAS claim succeeds. `fn` is non-owning; the caller's callable outlives
  // the job because parallel_blocks cannot return before every claimed block
  // ran. total_blocks is additionally read *before* a claim (the exhaustion
  // check), so it is atomic: a stale worker may read a neighbouring job's
  // value, but its subsequent generation-checked CAS then fails, so the read
  // never turns into a claim.
  std::int64_t count = 0;
  std::int64_t block_size = 1;
  BlockFn fn;
  std::atomic<std::int64_t> total_blocks{0};

  // ---- release / claim / completion protocol ----------------------------
  // epoch: bumped (release) once per job; workers park on it with
  // spin-then-std::atomic::wait. The bump itself carries no job data — the
  // cursor store below does — it only wakes parked workers.
  alignas(64) std::atomic<std::uint64_t> epoch{0};
  // cursor: low 32 bits next unclaimed block, high 32 bits the generation
  // (mod 2^32; equals the epoch). Claiming is an acquire CAS that only
  // succeeds while the claimant's generation is still current, so a worker
  // preempted between waking for job G and claiming its first block can
  // neither steal a block from job G+1 (silently skipping that block) nor
  // invoke a stale or cleared `fn`. Aliasing would need the worker to sleep
  // across exactly 2^32 submissions — not a practical concern. Between jobs
  // the block half holds the kIdle sentinel, which exceeds every legal
  // total_blocks: claims are impossible while the submitter rewrites the
  // job fields above.
  alignas(64) std::atomic<std::uint64_t> cursor{kIdle};
  // done_blocks: each claimant adds the blocks it completed (release) after
  // its drain; the caller acquire-waits for the job total. Exactly-once
  // accounting (abandoned blocks are credited by the cancelling worker)
  // makes the sum reach the total exactly when all work landed.
  alignas(64) std::atomic<std::int64_t> done_blocks{0};

  std::atomic<bool> shutdown{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;  // written under error_mutex, first wins

  std::vector<std::thread> workers;
#ifndef NDEBUG
  std::atomic<bool> active{false};
#endif

  static constexpr std::uint64_t kGenShift = 32;
  static constexpr std::uint64_t kBlockMask = (1ull << kGenShift) - 1;
  static constexpr std::uint64_t kIdle = kBlockMask;  // no job in flight

  static std::uint64_t tag(std::uint64_t generation) {
    return generation << kGenShift;
  }

  void add_done(std::int64_t blocks) {
    const std::int64_t now =
        done_blocks.fetch_add(blocks, std::memory_order_release) + blocks;
    if (now == total_blocks.load(std::memory_order_relaxed)) {
      done_blocks.notify_all();
    }
  }

  // Runs blocks of the generation `gen_tag` until its cursor is exhausted or
  // superseded; returns the number of blocks this thread completed. Job
  // fields are read only after a successful claim (see the field comments).
  std::int64_t drain(std::uint64_t gen_tag) {
    std::int64_t ran = 0;
    std::uint64_t cur = cursor.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur & ~kBlockMask) != gen_tag) return ran;  // job superseded
      const auto b = static_cast<std::int64_t>(cur & kBlockMask);
      if (b >= total_blocks.load(std::memory_order_relaxed)) {
        return ran;  // job exhausted (or idle sentinel)
      }
      if (!cursor.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        continue;  // cur was reloaded by the failed CAS
      }
      const std::int64_t begin = b * block_size;
      const std::int64_t end = std::min(begin + block_size, count);
      try {
        fn(begin, end, b);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Fail fast: abandon the job's unclaimed blocks by exhausting the
        // cursor, so the pooled path stops as early as the serial one.
        // Blocks already claimed by other workers are in flight and will be
        // counted by their claimants; the abandoned ones are credited here
        // so the caller's completion wait still terminates.
        const std::int64_t total =
            total_blocks.load(std::memory_order_relaxed);
        std::uint64_t cur2 = cursor.load(std::memory_order_relaxed);
        while ((cur2 & ~kBlockMask) == gen_tag &&
               static_cast<std::int64_t>(cur2 & kBlockMask) < total) {
          const std::uint64_t exhausted =
              gen_tag | static_cast<std::uint64_t>(total);
          if (cursor.compare_exchange_weak(cur2, exhausted,
                                           std::memory_order_relaxed)) {
            add_done(total - static_cast<std::int64_t>(cur2 & kBlockMask));
            break;
          }
        }
      }
      ++ran;
      cur = cursor.load(std::memory_order_relaxed);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t e = epoch.load(std::memory_order_acquire);
      int spins = 0;
      while (e == seen) {
        if (++spins >= kWorkerSpins) {
          epoch.wait(seen, std::memory_order_acquire);
          spins = 0;
        } else {
          cpu_relax();
        }
        e = epoch.load(std::memory_order_acquire);
      }
      // The acquire load that observed the bump also makes the shutdown
      // store (sequenced before the bump) visible.
      if (shutdown.load(std::memory_order_relaxed)) return;
      seen = e;
      const std::int64_t ran = drain(tag(e));
      if (ran > 0) add_done(ran);
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(threads < 1 ? 1 : threads) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  impl_->shutdown.store(true, std::memory_order_relaxed);
  impl_->epoch.fetch_add(1, std::memory_order_release);
  impl_->epoch.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::int64_t ThreadPool::block_count(std::int64_t count,
                                     std::int64_t block_size) {
  if (count <= 0) return 0;
  if (block_size < 1) block_size = 1;
  return (count + block_size - 1) / block_size;
}

void ThreadPool::parallel_blocks(std::int64_t count, std::int64_t block_size,
                                 BlockFn fn) {
  if (count <= 0) return;
  if (block_size < 1) block_size = 1;
  const std::int64_t blocks = block_count(count, block_size);
  if (blocks >= static_cast<std::int64_t>(Impl::kIdle)) {
    throw std::invalid_argument(
        "ThreadPool::parallel_blocks: job exceeds 2^32 - 2 blocks");
  }

#ifndef NDEBUG
  const bool was_active = impl_->active.exchange(true);
  assert(!was_active && "ThreadPool::parallel_blocks is not reentrant");
  struct ActiveGuard {
    std::atomic<bool>& flag;
    ~ActiveGuard() { flag.store(false); }
  } active_guard{impl_->active};
#endif

  if (threads_ == 1 || blocks == 1) {
    // Serial fast path: no atomics, exceptions propagate directly.
    for (std::int64_t b = 0; b < blocks; ++b) {
      const std::int64_t begin = b * block_size;
      fn(begin, std::min(begin + block_size, count), b);
    }
    return;
  }

  // The cursor shows the idle sentinel here (set below before the previous
  // return), so no worker can claim while the fields are rewritten.
  impl_->count = count;
  impl_->block_size = block_size;
  impl_->fn = fn;
  impl_->total_blocks.store(blocks, std::memory_order_relaxed);
  impl_->done_blocks.store(0, std::memory_order_relaxed);
  impl_->first_error = nullptr;

  // Release the job: the cursor store publishes the fields to claimants, the
  // epoch bump wakes parked workers.
  const std::uint64_t gen = impl_->epoch.load(std::memory_order_relaxed) + 1;
  impl_->cursor.store(Impl::tag(gen), std::memory_order_release);
  impl_->epoch.store(gen, std::memory_order_release);
  impl_->epoch.notify_all();

  const std::int64_t ran = impl_->drain(Impl::tag(gen));  // caller joins in
  if (ran > 0) impl_->add_done(ran);

  // Every claimed block is eventually both run and counted by its claimant,
  // so this wait cannot be satisfied before all of the job's work landed —
  // which also keeps the borrowed `fn` alive for every executing block.
  int spins = 0;
  for (;;) {
    const std::int64_t done =
        impl_->done_blocks.load(std::memory_order_acquire);
    if (done == blocks) break;
    if (++spins >= kCallerSpins) {
      impl_->done_blocks.wait(done, std::memory_order_acquire);
      spins = 0;
    } else {
      cpu_relax();
    }
  }

  // Park the generation behind the idle sentinel before anything else: a
  // stale worker that still holds this generation tag then fails the
  // exhaustion check no matter what a later submission writes to the job
  // fields, closing the window in which it could pair the old generation
  // with the next job's total_blocks.
  impl_->cursor.store(Impl::tag(gen) | Impl::kIdle, std::memory_order_relaxed);
  impl_->fn = BlockFn();  // drop the borrowed callable

  // The acquire wait above happens-after every worker's release add, which
  // happens-after its error-slot write: reading without the mutex is safe.
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace anonet
