#include "support/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace anonet {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;    // workers wait for a job (or shutdown)
  std::condition_variable done;    // caller waits for job completion
  std::vector<std::thread> workers;

  // Current job, guarded by `mutex` for the non-atomic fields. A job is
  // identified by its generation so a worker never re-runs a finished one.
  std::uint64_t generation = 0;
  bool shutdown = false;
  std::int64_t count = 0;
  std::int64_t block_size = 1;
  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>* fn =
      nullptr;
  std::atomic<std::int64_t> next_block{0};
  std::int64_t total_blocks = 0;
  std::int64_t finished_blocks = 0;  // guarded by mutex
  std::exception_ptr first_error;    // guarded by mutex

  // Runs blocks of the current job until the cursor is exhausted; returns
  // the number of blocks this thread completed.
  std::int64_t drain() {
    std::int64_t ran = 0;
    for (;;) {
      const std::int64_t b = next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= total_blocks) return ran;
      const std::int64_t begin = b * block_size;
      const std::int64_t end = std::min(begin + block_size, count);
      try {
        (*fn)(begin, end, b);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      ++ran;
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      wake.wait(lock, [&] { return shutdown || generation != seen; });
      if (shutdown) return;
      seen = generation;
      lock.unlock();
      const std::int64_t ran = drain();
      lock.lock();
      finished_blocks += ran;
      if (finished_blocks == total_blocks) done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(threads < 1 ? 1 : threads) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::int64_t ThreadPool::block_count(std::int64_t count,
                                     std::int64_t block_size) {
  if (count <= 0) return 0;
  if (block_size < 1) block_size = 1;
  return (count + block_size - 1) / block_size;
}

void ThreadPool::parallel_blocks(
    std::int64_t count, std::int64_t block_size,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  if (count <= 0) return;
  if (block_size < 1) block_size = 1;
  const std::int64_t blocks = block_count(count, block_size);

  if (threads_ == 1 || blocks == 1) {
    // Serial fast path: no locking, exceptions propagate directly.
    for (std::int64_t b = 0; b < blocks; ++b) {
      const std::int64_t begin = b * block_size;
      fn(begin, std::min(begin + block_size, count), b);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->count = count;
    impl_->block_size = block_size;
    impl_->fn = &fn;
    impl_->total_blocks = blocks;
    impl_->finished_blocks = 0;
    impl_->first_error = nullptr;
    impl_->next_block.store(0, std::memory_order_relaxed);
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  const std::int64_t ran = impl_->drain();  // caller participates

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->finished_blocks += ran;
  impl_->done.wait(lock,
                   [&] { return impl_->finished_blocks == impl_->total_blocks; });
  impl_->fn = nullptr;
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace anonet
