#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace anonet {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;    // workers wait for a job (or shutdown)
  std::condition_variable done;    // caller waits for job completion

  // Everything a worker needs to run blocks, snapshotted under `mutex` when
  // the worker wakes so it never reads fields mid-overwrite by a later
  // submission. `fn` is non-owning; the caller's callable outlives the job
  // because parallel_blocks cannot return before every claimed block ran.
  struct Job {
    std::uint64_t generation = 0;
    std::int64_t count = 0;
    std::int64_t block_size = 1;
    std::int64_t total_blocks = 0;
    BlockFn fn;
  };
  Job job;                           // current job, guarded by mutex
  bool shutdown = false;             // guarded by mutex
  std::int64_t finished_blocks = 0;  // guarded by mutex
  std::exception_ptr first_error;    // guarded by mutex

  std::vector<std::thread> workers;

  // Block cursor tagged with the job generation: low 32 bits are the next
  // unclaimed block, high 32 bits the generation (mod 2^32). Claiming is a
  // CAS that only succeeds while the claimant's snapshotted generation is
  // still current, so a worker that was preempted between waking for job G
  // and claiming its first block can neither steal a block from job G+1
  // (which would silently skip that block's work) nor invoke a stale or
  // cleared `fn`. Aliasing would need the worker to sleep across exactly
  // 2^32 submissions — not a practical concern.
  std::atomic<std::uint64_t> cursor{0};

  static constexpr std::uint64_t kGenShift = 32;
  static constexpr std::uint64_t kBlockMask = (1ull << kGenShift) - 1;

  static std::uint64_t tag(std::uint64_t generation) {
    return generation << kGenShift;
  }

  // Runs blocks of `j` until its cursor is exhausted or superseded; returns
  // the number of blocks this thread completed. Operates purely on the
  // snapshot — the only shared state touched is the tagged cursor (and the
  // error slot under the mutex).
  std::int64_t drain(const Job& j) {
    const std::uint64_t gen_tag = tag(j.generation);
    std::int64_t ran = 0;
    std::uint64_t cur = cursor.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur & ~kBlockMask) != gen_tag) return ran;  // job superseded
      const auto b = static_cast<std::int64_t>(cur & kBlockMask);
      if (b >= j.total_blocks) return ran;  // job exhausted
      if (!cursor.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
        continue;  // cur was reloaded by the failed CAS
      }
      const std::int64_t begin = b * j.block_size;
      const std::int64_t end = std::min(begin + j.block_size, j.count);
      try {
        j.fn(begin, end, b);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
        // Fail fast: abandon the job's unclaimed blocks by exhausting the
        // cursor, so the pooled path stops as early as the serial one.
        // Blocks already claimed by other workers are in flight and will be
        // counted by their claimants; the abandoned ones are counted here as
        // finished so the caller's completion wait still terminates.
        std::uint64_t cur2 = cursor.load(std::memory_order_relaxed);
        while ((cur2 & ~kBlockMask) == gen_tag &&
               static_cast<std::int64_t>(cur2 & kBlockMask) < j.total_blocks) {
          const std::uint64_t exhausted =
              gen_tag | static_cast<std::uint64_t>(j.total_blocks);
          if (cursor.compare_exchange_weak(cur2, exhausted,
                                           std::memory_order_relaxed)) {
            finished_blocks +=
                j.total_blocks - static_cast<std::int64_t>(cur2 & kBlockMask);
            break;
          }
        }
      }
      ++ran;
      cur = cursor.load(std::memory_order_relaxed);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Job snapshot;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return shutdown || job.generation != seen; });
        if (shutdown) return;
        seen = job.generation;
        snapshot = job;
      }
      const std::int64_t ran = drain(snapshot);
      std::lock_guard<std::mutex> lock(mutex);
      finished_blocks += ran;
      if (finished_blocks == job.total_blocks) done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(threads < 1 ? 1 : threads) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::int64_t ThreadPool::block_count(std::int64_t count,
                                     std::int64_t block_size) {
  if (count <= 0) return 0;
  if (block_size < 1) block_size = 1;
  return (count + block_size - 1) / block_size;
}

void ThreadPool::parallel_blocks(std::int64_t count, std::int64_t block_size,
                                 BlockFn fn) {
  if (count <= 0) return;
  if (block_size < 1) block_size = 1;
  const std::int64_t blocks = block_count(count, block_size);
  if (blocks > static_cast<std::int64_t>(Impl::kBlockMask)) {
    throw std::invalid_argument(
        "ThreadPool::parallel_blocks: job exceeds 2^32 - 1 blocks");
  }

  if (threads_ == 1 || blocks == 1) {
    // Serial fast path: no locking, exceptions propagate directly.
    for (std::int64_t b = 0; b < blocks; ++b) {
      const std::int64_t begin = b * block_size;
      fn(begin, std::min(begin + block_size, count), b);
    }
    return;
  }

  Impl::Job submitted;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    submitted.generation = impl_->job.generation + 1;
    submitted.count = count;
    submitted.block_size = block_size;
    submitted.total_blocks = blocks;
    submitted.fn = fn;
    impl_->job = submitted;
    impl_->finished_blocks = 0;
    impl_->first_error = nullptr;
    // Publishing the tagged cursor opens the new generation for claiming;
    // any block claims still in flight belong to older generations and are
    // rejected by drain()'s CAS.
    impl_->cursor.store(Impl::tag(submitted.generation),
                        std::memory_order_relaxed);
  }
  impl_->wake.notify_all();

  const std::int64_t ran = impl_->drain(submitted);  // caller participates

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->finished_blocks += ran;
  // Every claimed block is eventually both run and counted by its claimant,
  // so this wait cannot be satisfied before all of the job's work landed —
  // which also keeps the borrowed `fn` alive for every executing block.
  impl_->done.wait(
      lock, [&] { return impl_->finished_blocks == impl_->job.total_blocks; });
  impl_->job.fn = BlockFn();  // drop the borrowed callable
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace anonet
