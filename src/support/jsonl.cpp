#include "support/jsonl.hpp"

#include <cmath>
#include <cstdio>

namespace anonet {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

JsonObject& JsonObject::begin_field(const std::string& key) {
  if (!first_) body_ += ",";
  first_ = false;
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
  return *this;
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::string& value) {
  begin_field(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonObject& JsonObject::field(const std::string& key, std::int64_t value) {
  begin_field(key).body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  begin_field(key).body_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  begin_field(key).body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw_field(const std::string& key,
                                  const std::string& json) {
  begin_field(key).body_ += json;
  return *this;
}

}  // namespace anonet
