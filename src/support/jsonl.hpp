#pragma once

// Minimal JSON/JSONL formatting shared by every structured-metrics sink
// (campaign::MetricsSink, TraceRecorder::to_jsonl). One escaping and number
// formatting path keeps the emitted records byte-identical across producers,
// which the campaign subsystem relies on for its shard-invariance guarantee:
// a record's bytes must be a pure function of its field values.
//
// Scope is deliberately tiny — flat objects of string/int/double/bool
// fields, one object per line — because that is all the repo emits. Parsing
// (campaign resume) lives in campaign/metrics.cpp and only needs to recover
// string and integer fields from lines this writer produced.

#include <cstdint>
#include <string>

namespace anonet {

// Escapes `text` for inclusion in a JSON string literal (quotes, backslash,
// control characters; everything else passes through byte-for-byte).
[[nodiscard]] std::string json_escape(const std::string& text);

// Shortest-round-trip formatting for doubles (printf %.17g trimmed), with
// non-finite values mapped to JSON-legal strings: "inf", "-inf", "nan".
// JSON has no literal for them and the repo's consumers (python, jq) accept
// the string spelling unambiguously.
[[nodiscard]] std::string json_number(double value);

// Incremental builder for one flat JSON object rendered on a single line:
//   JsonObject o; o.field("a", 1).field("b", "x"); o.str() == R"({"a":1,"b":"x"})"
// Field order is insertion order — callers emit fields in a fixed order so
// identical records render to identical bytes.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value);
  JsonObject& field(const std::string& key, const char* value);
  JsonObject& field(const std::string& key, std::int64_t value);
  JsonObject& field(const std::string& key, int value);
  JsonObject& field(const std::string& key, double value);
  JsonObject& field(const std::string& key, bool value);
  // Pre-rendered JSON (nested object/array) spliced in verbatim.
  JsonObject& raw_field(const std::string& key, const std::string& json);

  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  JsonObject& begin_field(const std::string& key);
  std::string body_ = "{";
  bool first_ = true;
};

}  // namespace anonet
