#pragma once

// Best rational approximation with a bounded denominator.
//
// Corollary 5.3 of the paper turns the *asymptotic* Push-Sum estimate of a
// frequency into an *exact* finite-time result: when agents know a bound N on
// the network size, every true frequency lies in
//     Q_N = { p/q : 0 <= p <= q <= N },
// whose distinct elements are at least 1/N^2 apart, so rounding the running
// estimate to the nearest element of Q_N eventually locks onto the exact
// frequency. This module implements that rounding via a Stern-Brocot descent
// (the classic bounded-denominator best-approximation algorithm).

#include <cstdint>

#include "support/rational.hpp"

namespace anonet {

// The fraction p/q with 1 <= q <= max_denominator minimizing |value - p/q|.
// Ties are broken toward the smaller denominator (then the smaller fraction),
// which is irrelevant for the paper's use (the true value is unique once the
// estimate is within 1/(2 N^2)). `value` may be any finite real; p may be
// negative. Throws std::invalid_argument if max_denominator == 0 or `value`
// is not finite.
[[nodiscard]] Rational nearest_rational(double value,
                                        std::uint32_t max_denominator);

// Exact-input variant used by tests to cross-check the double path.
[[nodiscard]] Rational nearest_rational(const Rational& value,
                                        std::uint32_t max_denominator);

}  // namespace anonet
