#pragma once

// Arbitrary-precision signed integers.
//
// The positive results of the paper (Section 4.2) require *exact* linear
// algebra over the rationals: each agent solves the homogeneous fibre-equation
// system M z = 0 and scales the solution to a coprime positive integer vector.
// Intermediate values in Gaussian elimination can exceed 64 bits even for
// modest bases, so the library carries its own small bignum rather than
// silently overflowing.
//
// Representation: a value that fits std::int64_t is stored inline (no heap
// allocation); anything wider spills to sign + little-endian magnitude in
// 32-bit limbs, normalized so the most significant limb is non-zero. The
// representation is canonical — a value is stored inline exactly when it fits
// int64 — so structural (defaulted) equality remains value equality. Exact
// push-sum shares start as small integers and only grow past 64 bits after
// tens of rounds, so the inline path is the hot path; arithmetic takes
// overflow-checked int64 fast lanes and falls back to limb routines on spill.
// All operations are value-semantic and exact.

#include <bit>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace anonet {

class BigInt {
 public:
  BigInt() = default;
  constexpr BigInt(std::int64_t value) : value_(value) {}  // NOLINT(google-explicit-constructor): numeric literal convenience

  // Parses an optional leading '-' followed by decimal digits.
  // Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  // Builds a value from an explicit sign and 64-bit magnitude; the result is
  // inline when it fits int64 (including INT64_MIN) and spills otherwise.
  // Used by the wire decoder's short-magnitude fast path.
  [[nodiscard]] static BigInt from_sign_magnitude(bool negative,
                                                  std::uint64_t magnitude);

  [[nodiscard]] bool is_zero() const { return small_ && value_ == 0; }
  [[nodiscard]] bool is_negative() const {
    return small_ ? value_ < 0 : negative_;
  }
  [[nodiscard]] int signum() const {
    if (small_) return value_ == 0 ? 0 : (value_ < 0 ? -1 : 1);
    return negative_ ? -1 : 1;
  }
  // True when the value is held in the inline int64 slot; by canonicality
  // this is exactly "fits std::int64_t", so to_int64() cannot throw.
  [[nodiscard]] bool fits_int64() const { return small_; }

  // Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t index) const;

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negate() const;

  // Checked narrowing; throws std::overflow_error when out of range.
  [[nodiscard]] std::int64_t to_int64() const;
  // Lossy conversion for metrics/output; exact when the value fits a double.
  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t hash() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  // Truncated division (C++ semantics: quotient rounds toward zero,
  // remainder has the dividend's sign). Throws std::domain_error on /0.
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  BigInt operator-() const { return negate(); }

  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  // Canonical representation makes structural equality value equality.
  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

  // Computes quotient and remainder in one pass (truncated semantics).
  static void div_mod(const BigInt& dividend, const BigInt& divisor,
                      BigInt& quotient, BigInt& remainder);

  friend BigInt gcd(BigInt a, BigInt b);

 private:
  // Magnitude of an inline value as a uint64 (valid only when small_).
  [[nodiscard]] std::uint64_t small_magnitude() const {
    // Negate in the unsigned domain to avoid UB on INT64_MIN.
    return value_ < 0 ? ~static_cast<std::uint64_t>(value_) + 1
                      : static_cast<std::uint64_t>(value_);
  }
  // Adopts a limb magnitude + sign, then canonicalizes (drops leading zero
  // limbs, collapses to the inline slot when the value fits int64).
  [[nodiscard]] static BigInt from_limbs(bool negative,
                                         std::vector<std::uint32_t> limbs);
  [[nodiscard]] std::vector<std::uint32_t> magnitude_limbs() const;
  static int compare_abs(const BigInt& a, const BigInt& b);
  void canonicalize();

  std::vector<std::uint32_t> limbs_;  // spilled: little-endian magnitude
  std::int64_t value_ = 0;            // inline: the value (small_ only)
  bool small_ = true;
  bool negative_ = false;             // spilled: sign (small_ keeps it false)
};

// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
[[nodiscard]] BigInt gcd(BigInt a, BigInt b);
// Least common multiple of |a| and |b|; lcm(x, 0) == 0.
[[nodiscard]] BigInt lcm(const BigInt& a, const BigInt& b);

}  // namespace anonet

template <>
struct std::hash<anonet::BigInt> {
  std::size_t operator()(const anonet::BigInt& value) const noexcept {
    return value.hash();
  }
};
