#pragma once

// Arbitrary-precision signed integers.
//
// The positive results of the paper (Section 4.2) require *exact* linear
// algebra over the rationals: each agent solves the homogeneous fibre-equation
// system M z = 0 and scales the solution to a coprime positive integer vector.
// Intermediate values in Gaussian elimination can exceed 64 bits even for
// modest bases, so the library carries its own small bignum rather than
// silently overflowing.
//
// Representation: sign + little-endian magnitude in 32-bit limbs, normalized
// so the most significant limb is non-zero and zero has an empty magnitude
// and positive sign. All operations are value-semantic and exact.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace anonet {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): numeric literal convenience

  // Parses an optional leading '-' followed by decimal digits.
  // Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] int signum() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  // Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t index) const;

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negate() const;

  // Checked narrowing; throws std::overflow_error when out of range.
  [[nodiscard]] std::int64_t to_int64() const;
  // Lossy conversion for metrics/output; exact when the value fits a double.
  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  // Truncated division (C++ semantics: quotient rounds toward zero,
  // remainder has the dividend's sign). Throws std::domain_error on /0.
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  BigInt operator-() const { return negate(); }

  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

  // Computes quotient and remainder in one pass (truncated semantics).
  static void div_mod(const BigInt& dividend, const BigInt& divisor,
                      BigInt& quotient, BigInt& remainder);

 private:
  // Magnitude comparison ignoring sign: -1, 0, +1.
  static int compare_magnitude(const std::vector<std::uint32_t>& a,
                               const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);

  void normalize();

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // little-endian, no leading zero limb
};

// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
[[nodiscard]] BigInt gcd(BigInt a, BigInt b);
// Least common multiple of |a| and |b|; lcm(x, 0) == 0.
[[nodiscard]] BigInt lcm(const BigInt& a, const BigInt& b);

}  // namespace anonet
