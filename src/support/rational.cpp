#include "support/rational.hpp"

#include <numeric>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace anonet {

namespace {

// |value| in the unsigned domain; safe for INT64_MIN.
std::uint64_t magnitude_u64(std::int64_t value) {
  return value < 0 ? ~static_cast<std::uint64_t>(value) + 1
                   : static_cast<std::uint64_t>(value);
}

}  // namespace

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.is_zero()) {
    throw std::domain_error("Rational: zero denominator");
  }
  reduce_now();
}

Rational::Rational(Unreduced, BigInt numerator, BigInt denominator,
                   std::uint8_t pending)
    : numerator_(std::move(numerator)),
      denominator_(std::move(denominator)),
      pending_(pending) {
  if (denominator_.is_negative()) {
    numerator_ = numerator_.negate();
    denominator_ = denominator_.negate();
  }
  if (pending_ >= kMaxPending) reduce_now();
}

void Rational::normalize() const {
  if (pending_ == 0) return;
  reduce_now();
}

void Rational::reduce_now() const {
  pending_ = 0;
  if (denominator_.is_negative()) {
    numerator_ = numerator_.negate();
    denominator_ = denominator_.negate();
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  if (numerator_.fits_int64() && denominator_.fits_int64()) {
    const std::int64_t num = numerator_.to_int64();
    const std::uint64_t num_mag = magnitude_u64(num);
    const auto den_mag = static_cast<std::uint64_t>(denominator_.to_int64());
    const std::uint64_t divisor = std::gcd(num_mag, den_mag);
    if (divisor > 1) {
      numerator_ = BigInt::from_sign_magnitude(num < 0, num_mag / divisor);
      denominator_ = BigInt::from_sign_magnitude(false, den_mag / divisor);
    }
    return;
  }
  BigInt divisor = gcd(numerator_, denominator_);
  if (divisor != BigInt(1)) {
    numerator_ = numerator_ / divisor;
    denominator_ = denominator_ / divisor;
  }
}

Rational Rational::from_int64_fraction(std::int64_t num, std::int64_t den) {
  Rational result;
  if (num == 0) return result;  // 0/1
  const bool negative = (num < 0) != (den < 0);
  const std::uint64_t num_mag = magnitude_u64(num);
  const std::uint64_t den_mag = magnitude_u64(den);
  const std::uint64_t divisor = std::gcd(num_mag, den_mag);
  result.numerator_ = BigInt::from_sign_magnitude(negative, num_mag / divisor);
  result.denominator_ = BigInt::from_sign_magnitude(false, den_mag / divisor);
  return result;
}

bool Rational::int64_parts(const Rational& r, std::int64_t& num,
                           std::int64_t& den) {
  if (!r.numerator_.fits_int64() || !r.denominator_.fits_int64()) return false;
  num = r.numerator_.to_int64();
  den = r.denominator_.to_int64();
  return true;
}

std::uint8_t Rational::next_pending(const Rational& a, const Rational& b) {
  const int depth = std::max(a.pending_, b.pending_) + 1;
  return static_cast<std::uint8_t>(
      depth > kMaxPending ? kMaxPending : depth);
}

Rational Rational::abs() const {
  Rational result = *this;
  if (result.numerator_.is_negative()) {
    result.numerator_ = result.numerator_.negate();
  }
  return result;
}

Rational Rational::reciprocal() const {
  if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
  Rational result;
  result.numerator_ = denominator_;
  result.denominator_ = numerator_;
  result.pending_ = pending_;  // swapping preserves the gcd
  if (result.denominator_.is_negative()) {
    result.numerator_ = result.numerator_.negate();
    result.denominator_ = result.denominator_.negate();
  }
  return result;
}

double Rational::to_double() const {
  normalize();
  // Scale down both parts together to stay inside double range for big values.
  return numerator_.to_double() / denominator_.to_double();
}

std::string Rational::to_string() const {
  if (is_integer()) return numerator_.to_string();
  return numerator_.to_string() + "/" + denominator_.to_string();
}

std::size_t Rational::hash() const {
  normalize();
  const std::size_t h1 = numerator_.hash();
  const std::size_t h2 = denominator_.hash();
  return h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
}

Rational operator+(const Rational& a, const Rational& b) {
  std::int64_t an = 0, ad = 0, bn = 0, bd = 0;
  if (Rational::int64_parts(a, an, ad) && Rational::int64_parts(b, bn, bd)) {
    std::int64_t t1 = 0, t2 = 0, num = 0, den = 0;
    if (!__builtin_mul_overflow(an, bd, &t1) &&
        !__builtin_mul_overflow(bn, ad, &t2) &&
        !__builtin_add_overflow(t1, t2, &num) &&
        !__builtin_mul_overflow(ad, bd, &den)) {
      return Rational::from_int64_fraction(num, den);
    }
  }
  return Rational(
      Rational::Unreduced{},
      a.numerator_ * b.denominator_ + b.numerator_ * a.denominator_,
      a.denominator_ * b.denominator_, Rational::next_pending(a, b));
}

Rational operator-(const Rational& a, const Rational& b) {
  std::int64_t an = 0, ad = 0, bn = 0, bd = 0;
  if (Rational::int64_parts(a, an, ad) && Rational::int64_parts(b, bn, bd)) {
    std::int64_t t1 = 0, t2 = 0, num = 0, den = 0;
    if (!__builtin_mul_overflow(an, bd, &t1) &&
        !__builtin_mul_overflow(bn, ad, &t2) &&
        !__builtin_sub_overflow(t1, t2, &num) &&
        !__builtin_mul_overflow(ad, bd, &den)) {
      return Rational::from_int64_fraction(num, den);
    }
  }
  return Rational(
      Rational::Unreduced{},
      a.numerator_ * b.denominator_ - b.numerator_ * a.denominator_,
      a.denominator_ * b.denominator_, Rational::next_pending(a, b));
}

Rational operator*(const Rational& a, const Rational& b) {
  std::int64_t an = 0, ad = 0, bn = 0, bd = 0;
  if (Rational::int64_parts(a, an, ad) && Rational::int64_parts(b, bn, bd)) {
    std::int64_t num = 0, den = 0;
    if (!__builtin_mul_overflow(an, bn, &num) &&
        !__builtin_mul_overflow(ad, bd, &den)) {
      return Rational::from_int64_fraction(num, den);
    }
  }
  return Rational(Rational::Unreduced{}, a.numerator_ * b.numerator_,
                  a.denominator_ * b.denominator_,
                  Rational::next_pending(a, b));
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.is_zero()) throw std::domain_error("Rational: division by zero");
  std::int64_t an = 0, ad = 0, bn = 0, bd = 0;
  if (Rational::int64_parts(a, an, ad) && Rational::int64_parts(b, bn, bd)) {
    std::int64_t num = 0, den = 0;
    if (!__builtin_mul_overflow(an, bd, &num) &&
        !__builtin_mul_overflow(ad, bn, &den)) {
      return Rational::from_int64_fraction(num, den);
    }
  }
  return Rational(Rational::Unreduced{}, a.numerator_ * b.denominator_,
                  a.denominator_ * b.numerator_,
                  Rational::next_pending(a, b));
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.negate();
  return result;
}

bool operator==(const Rational& a, const Rational& b) {
  if (a.pending_ == 0 && b.pending_ == 0) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  return a.numerator_ * b.denominator_ == b.numerator_ * a.denominator_;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  return a.numerator_ * b.denominator_ <=> b.numerator_ * a.denominator_;
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace anonet
