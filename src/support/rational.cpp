#include "support/rational.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace anonet {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.is_zero()) {
    throw std::domain_error("Rational: zero denominator");
  }
  reduce();
}

void Rational::reduce() {
  if (denominator_.is_negative()) {
    numerator_ = numerator_.negate();
    denominator_ = denominator_.negate();
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt divisor = gcd(numerator_, denominator_);
  if (divisor != BigInt(1)) {
    numerator_ = numerator_ / divisor;
    denominator_ = denominator_ / divisor;
  }
}

Rational Rational::abs() const {
  Rational result = *this;
  if (result.numerator_.is_negative()) {
    result.numerator_ = result.numerator_.negate();
  }
  return result;
}

Rational Rational::reciprocal() const {
  if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
  return Rational(denominator_, numerator_);
}

double Rational::to_double() const {
  // Scale down both parts together to stay inside double range for big values.
  return numerator_.to_double() / denominator_.to_double();
}

std::string Rational::to_string() const {
  if (is_integer()) return numerator_.to_string();
  return numerator_.to_string() + "/" + denominator_.to_string();
}

Rational operator+(const Rational& a, const Rational& b) {
  return Rational(a.numerator_ * b.denominator_ + b.numerator_ * a.denominator_,
                  a.denominator_ * b.denominator_);
}

Rational operator-(const Rational& a, const Rational& b) {
  return Rational(a.numerator_ * b.denominator_ - b.numerator_ * a.denominator_,
                  a.denominator_ * b.denominator_);
}

Rational operator*(const Rational& a, const Rational& b) {
  return Rational(a.numerator_ * b.numerator_, a.denominator_ * b.denominator_);
}

Rational operator/(const Rational& a, const Rational& b) {
  if (b.is_zero()) throw std::domain_error("Rational: division by zero");
  return Rational(a.numerator_ * b.denominator_, a.denominator_ * b.numerator_);
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.negate();
  return result;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  return a.numerator_ * b.denominator_ <=> b.numerator_ * a.denominator_;
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace anonet
