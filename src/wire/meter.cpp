#include "wire/meter.hpp"

#include "support/jsonl.hpp"

namespace anonet::wire {

std::string BandwidthMeter::to_jsonl() const {
  std::string out;
  std::int64_t round = 0;
  for (const RoundBandwidth& r : rounds_) {
    ++round;
    JsonObject o;
    o.field("round", round)
        .field("bits_sent", r.bits_sent)
        .field("bits_received", r.bits_received)
        .field("max_message_bits", r.max_message_bits);
    out += o.str();
    out += '\n';
  }
  return out;
}

}  // namespace anonet::wire
