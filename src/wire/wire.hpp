#pragma once

// Wire formats: a canonical bit-level encoding for every agent Message.
//
// The paper's separations are statements about what a message is allowed to
// *carry*, and its quantitative contrast — the finite-state bounded-bandwidth
// minimum-base variant of §4.2 against Di Luna & Viglietta's exact algorithm
// with "an infinite number of states and an infinite bandwidth" — is a claim
// about message *size*. This layer makes that size measurable instead of
// hand-estimated: a `MessageTraits<M>` specialization (wire/codecs.hpp) gives
// a message type a canonical encoding with three obligations,
//
//     static std::int64_t encoded_bits(const M& m);   // size without buffering
//     static void encode(const M& m, BitWriter& sink);
//     static M decode(BitReader& src);
//
// where `encoded_bits(m)` must equal the bits `encode` appends (tested per
// type in tests/wire_test.cpp) and `decode(encode(m)) == m`. The executor's
// BandwidthMeter (wire/meter.hpp) accounts rounds in these units, and a
// bounded ChannelPolicy enforces a per-message bit budget against them.
//
// Encodings are bit-granular (a budget of B bits must be meaningful for
// small B — Blanc, Di Luna & Viglietta's one-bit model is the extreme) and
// deterministic: the same message always renders to the same bits, which is
// what makes metered campaigns byte-reproducible across shard counts.

#include <bit>
#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/bigint.hpp"
#include "support/rational.hpp"

namespace anonet::wire {

// Decode-side failure: truncated, corrupt, or otherwise malformed input.
// Every BitReader/codec decode path throws this (and only this) for bad
// *data*, so a socket or file feeding untrusted bytes into a decoder can
// catch one type and treat the stream as poisoned; std::invalid_argument
// stays reserved for caller bugs (e.g. a bit count outside [0, 64]).
// Derives from std::out_of_range to keep the historical truncation
// contract ("reading past the end throws std::out_of_range") intact.
class DecodeError : public std::out_of_range {
 public:
  explicit DecodeError(const std::string& what) : std::out_of_range(what) {}
};

// Append-only bit sink. Bits are packed LSB-first into bytes; bit_size() is
// the exact number of bits written (not rounded up to a byte).
class BitWriter {
 public:
  // Appends the low `count` bits of `value`, least significant first.
  void write_bits(std::uint64_t value, int count) {
    if (count < 0 || count > 64) {
      throw std::invalid_argument("BitWriter: count must be in [0, 64]");
    }
    for (int i = 0; i < count; ++i) {
      const std::size_t byte = static_cast<std::size_t>(bits_ >> 3);
      if (byte == bytes_.size()) bytes_.push_back(0);
      if ((value >> i) & 1u) {
        bytes_[byte] |= static_cast<std::uint8_t>(1u << (bits_ & 7));
      }
      ++bits_;
    }
  }

  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  // LEB128: 7 value bits per group, continuation bit ahead of each group.
  void write_uvarint(std::uint64_t value) {
    do {
      const std::uint64_t group = value & 0x7fu;
      value >>= 7;
      write_bits(group | (value != 0 ? 0x80u : 0u), 8);
    } while (value != 0);
  }

  // Zigzag-mapped signed varint (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
  void write_svarint(std::int64_t value) {
    write_uvarint((static_cast<std::uint64_t>(value) << 1) ^
                  static_cast<std::uint64_t>(value >> 63));
  }

  // The 64 bits of the IEEE-754 representation: exact, NaN-preserving.
  void write_double(double value) {
    write_bits(std::bit_cast<std::uint64_t>(value), 64);
  }

  // Sign bit, uvarint bit length, then the magnitude bits LSB-first. Zero
  // encodes as sign 0 + length 0.
  void write_bigint(const BigInt& value);

  // Numerator then denominator (always positive, reduced by invariant).
  void write_rational(const Rational& value) {
    write_bigint(value.numerator());
    write_bigint(value.denominator());
  }

  [[nodiscard]] std::int64_t bit_size() const { return bits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::int64_t bits_ = 0;
};

// Sequential reader over a BitWriter's output. Reading past the recorded
// bit count throws DecodeError ("truncated"), never fabricates bits. Every
// read is bounds-checked against bit_count_, so a reader over corrupt or
// adversarial bytes fails with an exception, never undefined behavior.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::int64_t bit_count)
      : data_(data), bit_count_(bit_count) {}
  explicit BitReader(const BitWriter& writer)
      : BitReader(writer.bytes().data(), writer.bit_size()) {}

  [[nodiscard]] std::uint64_t read_bits(int count) {
    if (count < 0 || count > 64) {
      throw std::invalid_argument("BitReader: count must be in [0, 64]");
    }
    if (cursor_ + count > bit_count_) {
      throw DecodeError("BitReader: truncated input");
    }
    std::uint64_t value = 0;
    for (int i = 0; i < count; ++i) {
      const std::size_t byte = static_cast<std::size_t>(cursor_ >> 3);
      if ((data_[byte] >> (cursor_ & 7)) & 1u) value |= 1ull << i;
      ++cursor_;
    }
    return value;
  }

  [[nodiscard]] bool read_bit() { return read_bits(1) != 0; }

  [[nodiscard]] std::uint64_t read_uvarint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      const std::uint64_t group = read_bits(8);
      if (shift >= 64 || (shift == 63 && (group & 0x7fu) > 1)) {
        throw DecodeError("BitReader: uvarint overflows 64 bits");
      }
      value |= (group & 0x7fu) << shift;
      if ((group & 0x80u) == 0) return value;
      shift += 7;
    }
  }

  [[nodiscard]] std::int64_t read_svarint() {
    const std::uint64_t z = read_uvarint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  // Count prefix of a container, sanity-clamped against the bits that are
  // actually left: each element needs at least `min_bits_per_entry`, so a
  // corrupt count fails fast as a DecodeError instead of driving a
  // multi-gigabyte reserve() before the first element read trips.
  [[nodiscard]] std::uint64_t read_count(std::int64_t min_bits_per_entry) {
    const std::uint64_t count = read_uvarint();
    if (min_bits_per_entry > 0 &&
        count > static_cast<std::uint64_t>(remaining()) /
                    static_cast<std::uint64_t>(min_bits_per_entry)) {
      throw DecodeError("BitReader: count prefix exceeds remaining input");
    }
    return count;
  }

  [[nodiscard]] double read_double() {
    return std::bit_cast<double>(read_bits(64));
  }

  [[nodiscard]] BigInt read_bigint();

  [[nodiscard]] Rational read_rational() {
    BigInt numerator = read_bigint();
    BigInt denominator = read_bigint();
    // The encoder only emits positive denominators (Rational invariant); a
    // zero or negative one is corrupt input, not a std::domain_error-grade
    // caller bug.
    if (denominator.is_zero() || denominator.is_negative()) {
      throw DecodeError("BitReader: rational with non-positive denominator");
    }
    return Rational(std::move(numerator), std::move(denominator));
  }

  [[nodiscard]] std::int64_t cursor() const { return cursor_; }
  [[nodiscard]] std::int64_t remaining() const { return bit_count_ - cursor_; }

 private:
  const std::uint8_t* data_;
  std::int64_t bit_count_;
  std::int64_t cursor_ = 0;
};

// Exact bit costs of the primitives above, so encoded_bits implementations
// can size a message without rendering it.
[[nodiscard]] constexpr std::int64_t uvarint_bits(std::uint64_t value) {
  std::int64_t groups = 1;
  while (value >>= 7) ++groups;
  return 8 * groups;
}

[[nodiscard]] constexpr std::int64_t svarint_bits(std::int64_t value) {
  return uvarint_bits((static_cast<std::uint64_t>(value) << 1) ^
                      static_cast<std::uint64_t>(value >> 63));
}

inline constexpr std::int64_t kDoubleBits = 64;

[[nodiscard]] std::int64_t bigint_bits(const BigInt& value);

[[nodiscard]] inline std::int64_t rational_bits(const Rational& value) {
  return bigint_bits(value.numerator()) + bigint_bits(value.denominator());
}

// The customization point. Specializations live in wire/codecs.hpp, one per
// core agent Message; the primary template is deliberately undefined so a
// missing codec is a compile-time hole, not a silent unit weight.
template <typename M>
struct MessageTraits;

// A message type with a complete, well-formed codec.
template <typename M>
concept WireEncodable = requires(const M& m, BitWriter& w, BitReader& r) {
  { MessageTraits<M>::encoded_bits(m) } -> std::convertible_to<std::int64_t>;
  { MessageTraits<M>::encode(m, w) };
  { MessageTraits<M>::decode(r) } -> std::same_as<M>;
};

// Free-function spellings of the three obligations.
template <WireEncodable M>
[[nodiscard]] std::int64_t encoded_bits(const M& m) {
  return MessageTraits<M>::encoded_bits(m);
}

template <WireEncodable M>
void encode(const M& m, BitWriter& sink) {
  MessageTraits<M>::encode(m, sink);
}

template <WireEncodable M>
[[nodiscard]] M decode(BitReader& src) {
  return MessageTraits<M>::decode(src);
}

}  // namespace anonet::wire
