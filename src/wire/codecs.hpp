#pragma once

// MessageTraits specializations: the canonical wire format of every core
// agent Message. Including this header is what makes a translation unit
// "wire-aware" — the executor itself never includes it (channel policies
// install a measuring function pointer at set_channel_policy time, so the
// executor template stays codec-agnostic; see runtime/executor.hpp).
//
// Conventions:
//   - Scalars: doubles are their 64 IEEE-754 bits (exact, NaN-preserving);
//     small ints are zigzag svarints; counts are uvarints.
//   - Sorted std::int64_t key sequences (SetGossip values, frequency-map
//     keys) are delta-encoded: first key svarint, then uvarint gaps >= 1.
//     The containers guarantee strictly-increasing order, so gaps of zero
//     are a decode error, not a representable message.
//   - Exact Push-Sum rationals ride the BigInt codec of wire/wire.cpp:
//     numerator and denominator as sign + length + magnitude, so the
//     measured growth of exact shares is the paper's "infinite bandwidth"
//     made visible round by round.
//   - ViewIds are interned references, not serialized subtrees: a view
//     label travels as one svarint naming its registry slot, the same
//     compression views/label_codec.hpp applies inside the registry. That
//     is precisely the minimum-base trick of §4.2 — exchange O(log V)-bit
//     names for views both sides can reconstruct — and why MinBase messages
//     stay small while exact Push-Sum messages grow without bound.

#include <cstdint>
#include <stdexcept>

#include "core/exact_pushsum.hpp"
#include "core/gossip.hpp"
#include "core/history_tree.hpp"
#include "core/metropolis.hpp"
#include "core/minbase_agent.hpp"
#include "core/pushsum.hpp"
#include "core/uniform_consensus.hpp"
#include "wire/wire.hpp"

namespace anonet::wire {

namespace detail {

// Delta codec for one key of a strictly-increasing std::int64_t sequence.
inline void write_key(BitWriter& sink, std::int64_t key, bool first,
                      std::int64_t prev) {
  if (first) {
    sink.write_svarint(key);
  } else {
    sink.write_uvarint(static_cast<std::uint64_t>(key - prev));
  }
}

[[nodiscard]] inline std::int64_t key_bits(std::int64_t key, bool first,
                                           std::int64_t prev) {
  return first ? svarint_bits(key)
               : uvarint_bits(static_cast<std::uint64_t>(key - prev));
}

[[nodiscard]] inline std::int64_t read_key(BitReader& src, bool first,
                                           std::int64_t prev) {
  if (first) return src.read_svarint();
  const std::uint64_t delta = src.read_uvarint();
  if (delta == 0) {
    throw DecodeError("wire: keys must be strictly increasing");
  }
  return prev + static_cast<std::int64_t>(delta);
}

}  // namespace detail

// Known-set snapshot: count + delta-encoded sorted values.
template <>
struct MessageTraits<SetGossipAgent::Message> {
  using M = SetGossipAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    std::int64_t bits = uvarint_bits(m.values.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const std::int64_t v : m.values) {
      bits += detail::key_bits(v, first, prev);
      prev = v;
      first = false;
    }
    return bits;
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_uvarint(m.values.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const std::int64_t v : m.values) {
      detail::write_key(sink, v, first, prev);
      prev = v;
      first = false;
    }
  }

  static M decode(BitReader& src) {
    // Every value costs at least one 8-bit varint group; the clamped count
    // read makes a corrupt count a DecodeError, not a giant reserve().
    const std::uint64_t count = src.read_count(8);
    M m;
    m.values.reserve(count);
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      prev = detail::read_key(src, i == 0, prev);
      m.values.push_back(prev);
    }
    return m;
  }
};

// Push-Sum share pair: two exact doubles.
template <>
struct MessageTraits<PushSumAgent::Message> {
  using M = PushSumAgent::Message;

  static std::int64_t encoded_bits(const M&) { return 2 * kDoubleBits; }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_double(m.y_share);
    sink.write_double(m.z_share);
  }

  static M decode(BitReader& src) {
    M m;
    m.y_share = src.read_double();
    m.z_share = src.read_double();
    return m;
  }
};

// Frequency Push-Sum: count + (delta key, y, z) per entry + outdegree.
template <>
struct MessageTraits<FrequencyPushSumAgent::Message> {
  using M = FrequencyPushSumAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    std::int64_t bits = uvarint_bits(m.keys.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const std::int64_t value : m.keys) {
      bits += detail::key_bits(value, first, prev) + 2 * kDoubleBits;
      prev = value;
      first = false;
    }
    return bits + svarint_bits(m.outdegree);
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_uvarint(m.keys.size());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < m.keys.size(); ++i) {
      detail::write_key(sink, m.keys[i], i == 0, prev);
      sink.write_double(m.ys[i]);
      sink.write_double(m.zs[i]);
      prev = m.keys[i];
    }
    sink.write_svarint(m.outdegree);
  }

  static M decode(BitReader& src) {
    const std::uint64_t count = src.read_count(8 + 2 * kDoubleBits);
    M m;
    m.keys.reserve(count);
    m.ys.reserve(count);
    m.zs.reserve(count);
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      prev = detail::read_key(src, i == 0, prev);
      m.keys.push_back(prev);
      m.ys.push_back(src.read_double());
      m.zs.push_back(src.read_double());
    }
    m.outdegree = static_cast<int>(src.read_svarint());
    return m;
  }
};

// Exact Push-Sum: two arbitrary-precision rationals. The only unbounded
// per-entry payload in the suite — its measured growth is the point.
template <>
struct MessageTraits<ExactPushSumAgent::Message> {
  using M = ExactPushSumAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    return rational_bits(m.y_share) + rational_bits(m.z_share);
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_rational(m.y_share);
    sink.write_rational(m.z_share);
  }

  static M decode(BitReader& src) {
    M m;
    m.y_share = src.read_rational();
    m.z_share = src.read_rational();
    return m;
  }
};

// Metropolis value + announced round degree.
template <>
struct MessageTraits<MetropolisAgent::Message> {
  using M = MetropolisAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    return kDoubleBits + svarint_bits(m.degree);
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_double(m.x);
    sink.write_svarint(m.degree);
  }

  static M decode(BitReader& src) {
    M m;
    m.x = src.read_double();
    m.degree = static_cast<int>(src.read_svarint());
    return m;
  }
};

// Frequency Metropolis: count + (delta key, x) per entry + degree.
template <>
struct MessageTraits<FrequencyMetropolisAgent::Message> {
  using M = FrequencyMetropolisAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    std::int64_t bits = uvarint_bits(m.keys.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const std::int64_t value : m.keys) {
      bits += detail::key_bits(value, first, prev) + kDoubleBits;
      prev = value;
      first = false;
    }
    return bits + svarint_bits(m.degree);
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_uvarint(m.keys.size());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < m.keys.size(); ++i) {
      detail::write_key(sink, m.keys[i], i == 0, prev);
      sink.write_double(m.xs[i]);
      prev = m.keys[i];
    }
    sink.write_svarint(m.degree);
  }

  static M decode(BitReader& src) {
    const std::uint64_t count = src.read_count(8 + kDoubleBits);
    M m;
    m.keys.reserve(count);
    m.xs.reserve(count);
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      prev = detail::read_key(src, i == 0, prev);
      m.keys.push_back(prev);
      m.xs.push_back(src.read_double());
    }
    m.degree = static_cast<int>(src.read_svarint());
    return m;
  }
};

// Uniform-weight consensus: one exact double.
template <>
struct MessageTraits<UniformWeightAgent::Message> {
  using M = UniformWeightAgent::Message;

  static std::int64_t encoded_bits(const M&) { return kDoubleBits; }

  static void encode(const M& m, BitWriter& sink) { sink.write_double(m.x); }

  static M decode(BitReader& src) {
    M m;
    m.x = src.read_double();
    return m;
  }
};

// Frequency uniform consensus: count + (delta key, x) per entry.
template <>
struct MessageTraits<FrequencyUniformAgent::Message> {
  using M = FrequencyUniformAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    std::int64_t bits = uvarint_bits(m.x.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const auto& [value, x] : m.x) {
      bits += detail::key_bits(value, first, prev) + kDoubleBits;
      prev = value;
      first = false;
    }
    return bits;
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_uvarint(m.x.size());
    std::int64_t prev = 0;
    bool first = true;
    for (const auto& [value, x] : m.x) {
      detail::write_key(sink, value, first, prev);
      sink.write_double(x);
      prev = value;
      first = false;
    }
  }

  static M decode(BitReader& src) {
    const std::uint64_t count = src.read_count(8 + kDoubleBits);
    M m;
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      prev = detail::read_key(src, i == 0, prev);
      m.x.emplace(prev, src.read_double());
    }
    return m;
  }
};

// History-tree view announcement: one interned view reference (see the
// header comment — kInvalidView = -1 zigzags to a single 8-bit group).
template <>
struct MessageTraits<HistoryFrequencyAgent::Message> {
  using M = HistoryFrequencyAgent::Message;

  static std::int64_t encoded_bits(const M& m) { return svarint_bits(m.view); }

  static void encode(const M& m, BitWriter& sink) { sink.write_svarint(m.view); }

  static M decode(BitReader& src) {
    M m;
    m.view = static_cast<ViewId>(src.read_svarint());
    return m;
  }
};

// Minimum-base view reference + output port.
template <>
struct MessageTraits<MinBaseAgent::Message> {
  using M = MinBaseAgent::Message;

  static std::int64_t encoded_bits(const M& m) {
    return svarint_bits(m.view) + svarint_bits(m.port);
  }

  static void encode(const M& m, BitWriter& sink) {
    sink.write_svarint(m.view);
    sink.write_svarint(m.port);
  }

  static M decode(BitReader& src) {
    M m;
    m.view = static_cast<ViewId>(src.read_svarint());
    m.port = static_cast<int>(src.read_svarint());
    return m;
  }
};

}  // namespace anonet::wire
