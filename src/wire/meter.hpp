#pragma once

// Bandwidth metering and channel policies for the executor.
//
// A ChannelPolicy tells the executor what to do with the canonical message
// sizes of wire/codecs.hpp:
//   - kUnbounded: nothing — the meter is off and the send/deliver path pays
//     zero accounting cost (the pre-wire behavior, byte-for-byte);
//   - kMetered: account every round's sent/received bits and the largest
//     single message into a BandwidthMeter, changing no semantics;
//   - kBounded: additionally enforce a per-message budget of B bits. The
//     check runs between the send phase and delivery — the model's messages
//     are generated, measured against the channel, and only then travel —
//     so an overflowing round throws BandwidthExceeded *before* any agent
//     transitions: states and the round counter reflect exactly the rounds
//     that completed.
//
// Bit totals are sums (and one max) of per-message integers, reduced from
// per-block partials in block order exactly like the executor's other
// statistics, so metered campaigns are bitwise-identical across thread
// counts and shard counts.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace anonet::wire {

enum class ChannelMode : std::uint8_t {
  kUnbounded,  // no accounting (default)
  kMetered,    // account bits, enforce nothing
  kBounded,    // account bits, enforce budget_bits per message
};

struct ChannelPolicy {
  ChannelMode mode = ChannelMode::kUnbounded;
  std::int64_t budget_bits = 0;  // per single message; kBounded only

  [[nodiscard]] static constexpr ChannelPolicy unbounded() { return {}; }
  [[nodiscard]] static constexpr ChannelPolicy metered() {
    return {ChannelMode::kMetered, 0};
  }
  [[nodiscard]] static constexpr ChannelPolicy bounded(std::int64_t bits) {
    return {ChannelMode::kBounded, bits};
  }
};

// The campaign's integer spelling of a policy (Cell::bandwidth_bits and the
// --bandwidth-bits CLI axis): 0 = unbounded, -1 = metered, B > 0 = bounded
// to B bits per message. Throws std::invalid_argument on other negatives.
[[nodiscard]] inline ChannelPolicy channel_policy_from_bits(
    std::int64_t bits) {
  if (bits == 0) return ChannelPolicy::unbounded();
  if (bits == -1) return ChannelPolicy::metered();
  if (bits < 0) {
    throw std::invalid_argument(
        "channel_policy_from_bits: expected 0 (unbounded), -1 (metered), or "
        "a positive per-message budget, got " +
        std::to_string(bits));
  }
  return ChannelPolicy::bounded(bits);
}

// Thrown by Executor::step() under a bounded channel when some round-t
// message exceeds the budget. Raised between the send phase and delivery,
// so no round-t message is delivered and no agent transitions: like
// DeadlineExceeded, the executor is left consistent after exactly
// rounds_run() completed rounds. Campaign runners catch this type to record
// a "bandwidth_exceeded" verdict distinct from "failed" and "timeout".
class BandwidthExceeded : public std::runtime_error {
 public:
  BandwidthExceeded(std::int64_t rounds_run, std::int64_t message_bits,
                    std::int64_t budget_bits)
      : std::runtime_error("channel budget of " + std::to_string(budget_bits) +
                           " bits/message exceeded by a " +
                           std::to_string(message_bits) +
                           "-bit message in round " +
                           std::to_string(rounds_run + 1)),
        rounds_run_(rounds_run),
        message_bits_(message_bits),
        budget_bits_(budget_bits) {}

  [[nodiscard]] std::int64_t rounds_run() const { return rounds_run_; }
  [[nodiscard]] std::int64_t message_bits() const { return message_bits_; }
  [[nodiscard]] std::int64_t budget_bits() const { return budget_bits_; }

 private:
  std::int64_t rounds_run_;
  std::int64_t message_bits_;
  std::int64_t budget_bits_;
};

// One round's bit accounting. bits_sent counts each message once per
// out-edge it travels (a broadcast message over d edges costs d * bits, the
// self-loop included, mirroring messages_delivered); bits_received counts
// the same edges from the receiver side, so the two totals agree per round.
struct RoundBandwidth {
  std::int64_t bits_sent = 0;
  std::int64_t bits_received = 0;
  std::int64_t max_message_bits = 0;  // largest single message this round
};

// Per-round bandwidth series plus running totals. The executor records one
// entry per completed round; all fields are integer sums/maxima, so the
// series is a pure function of the execution (thread-count-invariant).
class BandwidthMeter {
 public:
  void record_round(const RoundBandwidth& round) {
    rounds_.push_back(round);
    total_sent_ += round.bits_sent;
    total_received_ += round.bits_received;
    if (round.max_message_bits > max_message_bits_) {
      max_message_bits_ = round.max_message_bits;
    }
  }

  [[nodiscard]] std::int64_t rounds() const {
    return static_cast<std::int64_t>(rounds_.size());
  }
  // Round t in [1, rounds()], matching the executor's round numbering.
  [[nodiscard]] const RoundBandwidth& round(std::int64_t t) const {
    if (t < 1 || t > rounds()) {
      throw std::out_of_range("BandwidthMeter: round out of range");
    }
    return rounds_[static_cast<std::size_t>(t - 1)];
  }
  [[nodiscard]] const std::vector<RoundBandwidth>& per_round() const {
    return rounds_;
  }
  [[nodiscard]] std::int64_t total_bits_sent() const { return total_sent_; }
  [[nodiscard]] std::int64_t total_bits_received() const {
    return total_received_;
  }
  [[nodiscard]] std::int64_t max_message_bits() const {
    return max_message_bits_;
  }

  // One JSON object per round — {"round":t,"bits_sent":...} — through
  // support/jsonl.hpp, the same formatting path as campaign metrics and
  // traces.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  std::vector<RoundBandwidth> rounds_;
  std::int64_t total_sent_ = 0;
  std::int64_t total_received_ = 0;
  std::int64_t max_message_bits_ = 0;
};

}  // namespace anonet::wire
