#include "wire/wire.hpp"

#include <algorithm>

namespace anonet::wire {

void BitWriter::write_bigint(const BigInt& value) {
  write_bit(value.is_negative());
  const std::size_t length = value.bit_length();
  write_uvarint(length);
  // Magnitude LSB-first, packed in 32-bit chunks to amortize the per-bit
  // loop of write_bits.
  for (std::size_t base = 0; base < length; base += 32) {
    std::uint64_t chunk = 0;
    const int count =
        static_cast<int>(std::min<std::size_t>(32, length - base));
    for (int i = 0; i < count; ++i) {
      if (value.bit(base + static_cast<std::size_t>(i))) chunk |= 1ull << i;
    }
    write_bits(chunk, count);
  }
}

BigInt BitReader::read_bigint() {
  const bool negative = read_bit();
  const std::uint64_t length = read_uvarint();
  if (length > static_cast<std::uint64_t>(remaining())) {
    throw DecodeError("BitReader: truncated bigint");
  }
  if (length <= 64) {
    // Small-magnitude fast lane: one or two chunk reads land directly in
    // BigInt's inline representation, no shifted-left/add chain.
    std::uint64_t magnitude_bits = 0;
    for (std::uint64_t base = 0; base < length; base += 32) {
      const int count =
          static_cast<int>(std::min<std::uint64_t>(32, length - base));
      magnitude_bits |= read_bits(count) << base;
    }
    return BigInt::from_sign_magnitude(negative && magnitude_bits != 0,
                                       magnitude_bits);
  }
  BigInt magnitude;
  for (std::uint64_t base = 0; base < length; base += 32) {
    const int count = static_cast<int>(std::min<std::uint64_t>(32, length - base));
    const std::uint64_t chunk = read_bits(count);
    if (chunk != 0) {
      magnitude += BigInt(static_cast<std::int64_t>(chunk))
                       .shifted_left(static_cast<std::size_t>(base));
    }
  }
  if (magnitude.is_zero()) return magnitude;  // the sign bit of zero is 0
  return negative ? magnitude.negate() : magnitude;
}

std::int64_t bigint_bits(const BigInt& value) {
  const auto length = static_cast<std::int64_t>(value.bit_length());
  return 1 + uvarint_bits(static_cast<std::uint64_t>(length)) + length;
}

}  // namespace anonet::wire
