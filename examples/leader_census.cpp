// Leader-powered census: a base station in an anonymous swarm.
//
// An anonymous swarm cannot count itself (the lifting obstruction kills
// `count` and `sum`), but one distinguished agent changes everything
// (Corollary 4.4 / Section 5.5). Here a single base station among otherwise
// identical drones lets every drone recover the exact multiset of payload
// values — static case via minimum base + eq. (5), dynamic case via the
// leader variant of Push-Sum.
//
// Build & run:  ./examples/leader_census

#include <cstdio>
#include <random>

#include "core/census.hpp"
#include "core/computability.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"

using namespace anonet;

int main() {
  constexpr Vertex kDrones = 10;
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::int64_t> payload(1, 4);

  std::vector<std::int64_t> payloads;
  std::int64_t total = 0;
  for (Vertex v = 0; v < kDrones; ++v) {
    payloads.push_back(payload(rng));
    total += payloads.back();
  }
  std::printf("swarm of %d drones; payloads sum to %lld\n\n", kDrones,
              static_cast<long long>(total));

  // Drone 0 is the base station; all inputs are leader-coded.
  std::vector<std::int64_t> inputs;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    inputs.push_back(encode_leader_input(payloads[i], i == 0));
  }

  Attempt attempt;
  attempt.knowledge = Knowledge::kLeaders;
  attempt.parameter = 1;
  attempt.rounds = 60;

  // Without the leader: provably impossible.
  Attempt no_help = attempt;
  no_help.knowledge = Knowledge::kNone;
  no_help.model = CommModel::kSymmetricBroadcast;
  const Digraph mesh = random_symmetric_connected(kDrones, 6, 77);
  const auto blocked =
      attempt_static(mesh, payloads, sum_function(), no_help);
  std::printf("static mesh, no leader:  %s\n", blocked.mechanism.c_str());

  // Static mesh with the base station.
  attempt.model = CommModel::kSymmetricBroadcast;
  const auto static_result =
      attempt_static(mesh, inputs, sum_function(), attempt);
  std::printf("static mesh, leader:     sum exact from round %d  [%s]\n",
              static_result.stabilization_round,
              static_result.mechanism.c_str());

  // Dynamic directed network with the base station: leader Push-Sum.
  attempt.model = CommModel::kOutdegreeAware;
  attempt.rounds = 600;
  auto schedule =
      std::make_shared<RandomStronglyConnectedSchedule>(kDrones, 5, 31);
  const auto dynamic_result =
      attempt_dynamic(schedule, inputs, sum_function(), attempt);
  std::printf("dynamic network, leader: sum exact from round %d  [%s]\n",
              dynamic_result.stabilization_round,
              dynamic_result.mechanism.c_str());

  std::printf(
      "\nOne leader turns frequency knowledge into the full multiset:\n"
      "the leader's fibre has cardinality 1, which pins the common factor\n"
      "in eq. (2) — that is all the symmetry breaking the swarm needs.\n");
  return 0;
}
