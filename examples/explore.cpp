// anonet explorer — run any (network, inputs, model, knowledge, function)
// computability experiment from the command line.
//
// Usage:
//   explore [--graph SPEC] [--dynamic SPEC] [--inputs SPEC] [--model M]
//           [--function F] [--knowledge K] [--rounds R] [--dot]
//
//   --graph     ring:N | dring:N | complete:N | torus:R:C | hypercube:K |
//               sc:N:EXTRA:SEED | sym:N:EXTRA:SEED | file:PATH     (static)
//   --dynamic   sc:N:EXTRA:SEED | sym:N:EXTRA:SEED | token:N |
//               matching:N:SEED                                   (dynamic)
//   --inputs    comma list (1,2,1,2) | random:N:LO:HI:SEED | alt:N:A:B
//   --model     broadcast | outdegree | symmetric | ports
//   --function  min | max | range | support | average | median | variance |
//               modefreq | sum | sumsq | count
//   --knowledge none | bound:N | size | leaders:L   (leaders flag the first
//               L agents; inputs are auto-coded)
//   --rounds    simulation horizon (default 60 static / 400 dynamic)
//   --dot       also print the static graph in Graphviz DOT
//
// Examples:
//   explore --graph ring:6 --inputs 1,5,1,5,1,5 --model outdegree
//           --function average
//   explore --dynamic sc:8:3:7 --inputs random:8:0:3:1 --model outdegree
//           --function sum --knowledge leaders:1

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "core/computability.hpp"
#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

using namespace anonet;

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "explore: %s (run with no args for usage)\n",
               message.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(part);
  return parts;
}

long as_long(const std::string& text) {
  try {
    return std::stol(text);
  } catch (...) {
    die("expected a number, got '" + text + "'");
  }
}

Digraph parse_graph(const std::string& spec) {
  const auto p = split(spec, ':');
  if (p[0] == "ring") return bidirectional_ring(as_long(p.at(1)));
  if (p[0] == "dring") return directed_ring(as_long(p.at(1)));
  if (p[0] == "complete") return complete_graph(as_long(p.at(1)));
  if (p[0] == "torus") return torus(as_long(p.at(1)), as_long(p.at(2)));
  if (p[0] == "hypercube") return hypercube(as_long(p.at(1)));
  if (p[0] == "sc") {
    return random_strongly_connected(as_long(p.at(1)), as_long(p.at(2)),
                                     static_cast<std::uint64_t>(as_long(p.at(3))));
  }
  if (p[0] == "sym") {
    return random_symmetric_connected(as_long(p.at(1)), as_long(p.at(2)),
                                      static_cast<std::uint64_t>(as_long(p.at(3))));
  }
  if (p[0] == "file") {
    std::ifstream in(p.at(1));
    if (!in) die("cannot open " + p.at(1));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_edge_list(buffer.str());
  }
  die("unknown graph spec '" + spec + "'");
}

DynamicGraphPtr parse_dynamic(const std::string& spec) {
  const auto p = split(spec, ':');
  if (p[0] == "sc") {
    return std::make_shared<RandomStronglyConnectedSchedule>(
        as_long(p.at(1)), as_long(p.at(2)),
        static_cast<std::uint64_t>(as_long(p.at(3))));
  }
  if (p[0] == "sym") {
    return std::make_shared<RandomSymmetricSchedule>(
        as_long(p.at(1)), as_long(p.at(2)),
        static_cast<std::uint64_t>(as_long(p.at(3))));
  }
  if (p[0] == "token") {
    return std::make_shared<TokenRingSchedule>(as_long(p.at(1)));
  }
  if (p[0] == "matching") {
    return std::make_shared<RandomMatchingSchedule>(
        as_long(p.at(1)), static_cast<std::uint64_t>(as_long(p.at(2))));
  }
  die("unknown dynamic spec '" + spec + "'");
}

std::vector<std::int64_t> parse_inputs(const std::string& spec, Vertex n) {
  const auto p = split(spec, ':');
  std::vector<std::int64_t> inputs;
  if (p[0] == "random") {
    const long count = as_long(p.at(1));
    std::mt19937_64 rng(static_cast<std::uint64_t>(as_long(p.at(4))));
    std::uniform_int_distribution<std::int64_t> dist(as_long(p.at(2)),
                                                     as_long(p.at(3)));
    for (long i = 0; i < count; ++i) inputs.push_back(dist(rng));
  } else if (p[0] == "alt") {
    const long count = as_long(p.at(1));
    for (long i = 0; i < count; ++i) {
      inputs.push_back(i % 2 == 0 ? as_long(p.at(2)) : as_long(p.at(3)));
    }
  } else {
    for (const std::string& field : split(spec, ',')) {
      inputs.push_back(as_long(field));
    }
  }
  if (n > 0 && inputs.size() != static_cast<std::size_t>(n)) {
    die("need exactly " + std::to_string(n) + " inputs, got " +
        std::to_string(inputs.size()));
  }
  return inputs;
}

CommModel parse_model(const std::string& name) {
  if (name == "broadcast") return CommModel::kSimpleBroadcast;
  if (name == "outdegree") return CommModel::kOutdegreeAware;
  if (name == "symmetric") return CommModel::kSymmetricBroadcast;
  if (name == "ports") return CommModel::kOutputPortAware;
  die("unknown model '" + name + "'");
}

SymmetricFunction parse_function(const std::string& name) {
  if (name == "min") return min_function();
  if (name == "max") return max_function();
  if (name == "range") return range_function();
  if (name == "support") return support_size();
  if (name == "average") return average_function();
  if (name == "median") return median_function();
  if (name == "variance") return variance_function();
  if (name == "modefreq") return mode_frequency();
  if (name == "sum") return sum_function();
  if (name == "sumsq") return sum_of_squares();
  if (name == "count") return count_function();
  die("unknown function '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf(
        "anonet explorer — see the usage block at the top of "
        "examples/explore.cpp\n"
        "running the default demo: --graph ring:6 --inputs alt:6:1:5 "
        "--model outdegree --function average\n\n");
  }
  std::string graph_spec = "ring:6";
  std::string dynamic_spec;
  std::string input_spec = "alt:6:1:5";
  std::string model_name = "outdegree";
  std::string function_name = "average";
  std::string knowledge_spec = "none";
  int rounds = 0;
  bool want_dot = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--graph") graph_spec = next();
    else if (arg == "--dynamic") dynamic_spec = next();
    else if (arg == "--inputs") input_spec = next();
    else if (arg == "--model") model_name = next();
    else if (arg == "--function") function_name = next();
    else if (arg == "--knowledge") knowledge_spec = next();
    else if (arg == "--rounds") rounds = static_cast<int>(as_long(next()));
    else if (arg == "--dot") want_dot = true;
    else die("unknown flag '" + arg + "'");
  }

  const bool dynamic = !dynamic_spec.empty();
  Attempt attempt;
  attempt.model = parse_model(model_name);
  attempt.rounds = rounds > 0 ? rounds : (dynamic ? 400 : 60);

  const auto knowledge_parts = split(knowledge_spec, ':');
  if (knowledge_parts[0] == "none") {
    attempt.knowledge = Knowledge::kNone;
  } else if (knowledge_parts[0] == "bound") {
    attempt.knowledge = Knowledge::kUpperBound;
    attempt.parameter = as_long(knowledge_parts.at(1));
  } else if (knowledge_parts[0] == "size") {
    attempt.knowledge = Knowledge::kExactSize;
  } else if (knowledge_parts[0] == "leaders") {
    attempt.knowledge = Knowledge::kLeaders;
    attempt.parameter = as_long(knowledge_parts.at(1));
  } else {
    die("unknown knowledge '" + knowledge_spec + "'");
  }

  const SymmetricFunction f = parse_function(function_name);
  AttemptResult result;
  Rational truth;
  if (dynamic) {
    DynamicGraphPtr schedule = parse_dynamic(dynamic_spec);
    std::vector<std::int64_t> inputs =
        parse_inputs(input_spec, schedule->vertex_count());
    if (attempt.knowledge == Knowledge::kExactSize) {
      attempt.parameter = schedule->vertex_count();
    }
    if (attempt.knowledge == Knowledge::kLeaders) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = encode_leader_input(
            inputs[i], static_cast<std::int64_t>(i) < attempt.parameter);
      }
    }
    const int d = dynamic_diameter(*schedule, 10,
                                   4 * schedule->vertex_count() *
                                       schedule->vertex_count());
    std::printf("dynamic network: n = %d, measured dynamic diameter = %d\n",
                schedule->vertex_count(), d);
    truth = ground_truth(inputs, f, attempt.knowledge);
    result = attempt_dynamic(schedule, inputs, f, attempt);
  } else {
    const Digraph g = parse_graph(graph_spec);
    std::vector<std::int64_t> inputs = parse_inputs(input_spec, g.vertex_count());
    if (attempt.knowledge == Knowledge::kExactSize) {
      attempt.parameter = g.vertex_count();
    }
    if (attempt.knowledge == Knowledge::kLeaders) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = encode_leader_input(
            inputs[i], static_cast<std::int64_t>(i) < attempt.parameter);
      }
    }
    std::printf("static network: n = %d, %d edges\n", g.vertex_count(),
                g.edge_count());
    if (want_dot) std::printf("%s", to_dot(g, nullptr, "explored").c_str());
    truth = ground_truth(inputs, f, attempt.knowledge);
    result = attempt_static(g, inputs, f, attempt);
  }

  std::printf("function %s, truth f(v) = %s\n", f.name().c_str(),
              truth.to_string().c_str());
  std::printf("model: %s, knowledge: %s, rounds: %d\n",
              std::string(to_string(attempt.model)).c_str(),
              std::string(to_string(attempt.knowledge)).c_str(),
              attempt.rounds);
  if (result.success && result.stabilization_round > 0) {
    std::printf("RESULT: exact from round %d  [%s]\n",
                result.stabilization_round, result.mechanism.c_str());
  } else if (result.success) {
    std::printf("RESULT: asymptotic, final sup-error %.3g  [%s]\n",
                result.final_error, result.mechanism.c_str());
  } else {
    std::printf("RESULT: not computed — %s\n", result.mechanism.c_str());
  }
  return result.success ? 0 : 1;
}
