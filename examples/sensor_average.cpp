// Sensor-network averaging over an unreliable wireless mesh.
//
// The motivating scenario of the paper's introduction: identical, anonymous
// temperature sensors whose radio links come and go (a dynamic symmetric
// network), which must all converge to the fleet-average temperature. Runs
// Metropolis averaging (Section 5), shows asymptotic convergence, then uses
// a deployment-time bound N on the fleet size to lock the exact average in
// finite time via Q_N rounding (Corollary 5.3's trick).
//
// Build & run:  ./examples/sensor_average

#include <cstdio>
#include <random>

#include "core/metropolis.hpp"
#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"
#include "runtime/convergence.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

int main() {
  constexpr Vertex kSensors = 12;
  constexpr std::uint32_t kFleetBound = 16;  // deployment-time upper bound

  // Integer temperature readings in tenths of a degree.
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::int64_t> reading(180, 260);
  std::vector<std::int64_t> readings;
  double truth = 0.0;
  for (Vertex v = 0; v < kSensors; ++v) {
    readings.push_back(reading(rng));
    truth += static_cast<double>(readings.back());
  }
  truth /= kSensors;
  std::printf("fleet of %d anonymous sensors, true average %.3f (x0.1 C)\n",
              kSensors, truth);

  // Every round an independent random connected symmetric mesh — links flap
  // but the dynamic diameter stays finite (certified below).
  auto mesh = std::make_shared<RandomSymmetricSchedule>(kSensors, 6, 99);
  std::printf("mesh dynamic diameter over first 20 rounds: %d\n\n",
              dynamic_diameter(*mesh, 20, kSensors));

  std::vector<MetropolisAgent> scalar_agents;
  for (std::int64_t r : readings) {
    scalar_agents.emplace_back(static_cast<double>(r));
  }
  // `under<...>` fixes the model at compile time: a capability the agent
  // declares but the model hides would fail the build, not the run.
  Executor<MetropolisAgent> exec(mesh, std::move(scalar_agents),
                                 under<CommModel::kOutdegreeAware>);

  std::printf("%8s  %14s\n", "round", "max |x - avg|");
  for (int checkpoint = 0; checkpoint <= 5; ++checkpoint) {
    std::vector<double> outputs;
    for (Vertex v = 0; v < kSensors; ++v) {
      outputs.push_back(exec.agent(v).output());
    }
    std::printf("%8d  %14.6g\n", exec.round(), max_abs_error(outputs, truth));
    exec.run(40);
  }

  // Exact finite-time variant: per-value indicator averaging + rounding.
  std::vector<FrequencyMetropolisAgent> freq_agents;
  for (std::int64_t r : readings) freq_agents.emplace_back(r);
  Executor<FrequencyMetropolisAgent> exact_exec(
      mesh, std::move(freq_agents), under<CommModel::kOutdegreeAware>);
  int locked_round = -1;
  const Frequency truth_freq = Frequency::of(readings);
  for (int round = 1; round <= 2000 && locked_round == -1; ++round) {
    exact_exec.step();
    bool all_locked = true;
    for (Vertex v = 0; v < kSensors; ++v) {
      const auto rounded = exact_exec.agent(v).rounded_frequency(kFleetBound);
      if (!rounded.has_value() || !(*rounded == truth_freq)) {
        all_locked = false;
        break;
      }
    }
    if (all_locked) locked_round = round;
  }
  std::printf(
      "\nwith the fleet bound N = %u, every sensor's Q_N-rounded frequency\n"
      "vector locked onto the exact distribution at round %d — from there\n"
      "the exact average %s is computed in finite time.\n",
      kFleetBound, locked_round,
      average_function().eval_frequency(truth_freq).to_string().c_str());
  return 0;
}
