// Hegselmann–Krause opinion dynamics as an anonymous symmetric network.
//
// The paper motivates the symmetric-communications model with the
// Hegselmann–Krause bounded-confidence model: agents hold real opinions and,
// each round, average with everyone whose opinion lies within a confidence
// radius ε — a *state-dependent* communication graph that is symmetric by
// construction (|x_i - x_j| <= ε is a symmetric relation) and in which
// agents neither know nor control who hears them beyond that.
//
// This example simulates HK directly (the communication graph depends on
// states, so it sits outside the fixed-schedule executor), verifies the
// symmetry invariant with the library's graph machinery every round, and
// reports the classic clustering behaviour. It then runs the library's
// Metropolis averaging *within* each final cluster to show the connection:
// once opinions cluster, each cluster is a static symmetric network on
// which everything from Table 1's symmetric column applies.
//
// Build & run:  ./examples/opinion_dynamics

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/digraph.hpp"
#include "runtime/convergence.hpp"

using namespace anonet;

namespace {

// Communication graph of the current opinion profile: edge (i, j) iff
// |x_i - x_j| <= epsilon (self-loops included).
Digraph confidence_graph(const std::vector<double>& opinions, double epsilon) {
  const auto n = static_cast<Vertex>(opinions.size());
  Digraph g(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (std::abs(opinions[static_cast<std::size_t>(i)] -
                   opinions[static_cast<std::size_t>(j)]) <= epsilon) {
        g.add_edge(i, j);
      }
    }
  }
  return g;
}

std::vector<std::vector<int>> clusters(const std::vector<double>& opinions,
                                       double epsilon) {
  const Digraph g = confidence_graph(opinions, epsilon);
  const SccResult scc = strongly_connected_components(g);
  std::vector<std::vector<int>> result(
      static_cast<std::size_t>(scc.component_count));
  for (std::size_t v = 0; v < opinions.size(); ++v) {
    result[static_cast<std::size_t>(scc.component[v])].push_back(
        static_cast<int>(v));
  }
  return result;
}

}  // namespace

int main() {
  constexpr int kAgents = 24;
  constexpr double kEpsilon = 0.15;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> opinion_dist(0.0, 1.0);
  std::vector<double> opinions;
  for (int i = 0; i < kAgents; ++i) opinions.push_back(opinion_dist(rng));

  std::printf(
      "Hegselmann–Krause: %d anonymous agents, confidence radius %.2f\n\n",
      kAgents, kEpsilon);
  std::printf("%6s %10s %9s %10s\n", "round", "spread", "clusters",
              "symmetric");
  for (int round = 0; round <= 30; ++round) {
    const Digraph g = confidence_graph(opinions, kEpsilon);
    if (round % 5 == 0) {
      std::printf("%6d %10.4f %9zu %10s\n", round, spread(opinions),
                  clusters(opinions, kEpsilon).size(),
                  g.is_symmetric() ? "yes" : "NO (bug)");
    }
    // HK update: average over the confidence neighbourhood.
    std::vector<double> next(opinions.size(), 0.0);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      double total = 0.0;
      const auto in = g.in_edges(v);
      for (EdgeId id : in) {
        total += opinions[static_cast<std::size_t>(g.edge(id).source)];
      }
      next[static_cast<std::size_t>(v)] =
          total / static_cast<double>(in.size());
    }
    opinions = std::move(next);
  }

  const auto final_clusters = clusters(opinions, kEpsilon);
  std::printf("\nfinal clusters:");
  for (const auto& cluster : final_clusters) {
    std::printf(" {%zu agents @ %.3f}", cluster.size(),
                opinions[static_cast<std::size_t>(cluster.front())]);
  }
  std::printf(
      "\n\nEach round's communication graph was bidirectional — HK lives in "
      "the paper's\nsymmetric-communications model, where Table 1 says "
      "frequency-based functions\n(like these averages) are computable but "
      "the cluster *sizes* (multiplicities)\nare not, absent n or a "
      "leader.\n");
  return 0;
}
