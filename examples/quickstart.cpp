// Quickstart: what can six anonymous agents on a ring compute?
//
// Walks the central contrast of the paper on one concrete network:
//   - with simple broadcast, the agents can agree on max(v) but provably
//     not on the average;
//   - give them outdegree awareness and the average becomes computable,
//     exactly and in linear time;
//   - tell them n (or give them a leader) and even the sum falls.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/census.hpp"
#include "core/computability.hpp"
#include "graph/generators.hpp"

using namespace anonet;

namespace {

void report(const char* label, const AttemptResult& result) {
  if (result.success && result.stabilization_round > 0) {
    std::printf("  %-34s OK    exact from round %d  [%s]\n", label,
                result.stabilization_round, result.mechanism.c_str());
  } else if (result.success) {
    std::printf("  %-34s OK    asymptotic, final error %.2g  [%s]\n", label,
                result.final_error, result.mechanism.c_str());
  } else {
    std::printf("  %-34s FAIL  %s\n", label, result.mechanism.c_str());
  }
}

}  // namespace

int main() {
  // Six anonymous agents on a bidirectional ring, inputs 1,5,1,5,1,5.
  const Digraph ring = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 5, 1, 5, 1, 5};
  std::printf("network: bidirectional ring, n = 6, inputs {1,5,1,5,1,5}\n");
  std::printf("truth:   max = 5, average = 3, sum = 18\n\n");

  Attempt attempt;
  attempt.rounds = 30;

  std::printf("simple broadcast:\n");
  attempt.model = CommModel::kSimpleBroadcast;
  report("max (set-based)",
         attempt_static(ring, inputs, max_function(), attempt));
  report("average (frequency-based)",
         attempt_static(ring, inputs, average_function(), attempt));

  std::printf("\noutdegree awareness:\n");
  attempt.model = CommModel::kOutdegreeAware;
  report("average (frequency-based)",
         attempt_static(ring, inputs, average_function(), attempt));
  report("sum (multiset-based)",
         attempt_static(ring, inputs, sum_function(), attempt));

  std::printf("\noutdegree awareness + n known:\n");
  attempt.knowledge = Knowledge::kExactSize;
  attempt.parameter = 6;
  report("sum (multiset-based)",
         attempt_static(ring, inputs, sum_function(), attempt));

  std::printf("\noutdegree awareness + one leader:\n");
  attempt.knowledge = Knowledge::kLeaders;
  attempt.parameter = 1;
  std::vector<std::int64_t> with_leader;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    with_leader.push_back(encode_leader_input(inputs[i], i == 0));
  }
  report("sum (multiset-based)",
         attempt_static(ring, with_leader, sum_function(), attempt));

  std::printf(
      "\nThat is Table 1 of the paper, compressed to one ring: knowing your\n"
      "audience (outdegree awareness) buys frequencies; knowing n or having\n"
      "a leader buys the whole multiset.\n");
  return 0;
}
