// Anonymous referendum on a directed dynamic network.
//
// Agents hold votes (0 = no, 1 = yes) and must decide whether the yes-share
// clears a supermajority threshold — a frequency threshold predicate Φ_r^1
// (Section 5.4). Communication is directed and changes every round (e.g.
// asymmetric radio ranges); agents know only their outdegree at send time
// and some join the protocol late (asynchronous starts). Runs Algorithm 1
// (frequency Push-Sum) and evaluates the predicate on the running estimates.
//
// Build & run:  ./examples/vote_threshold

#include <cstdio>
#include <random>

#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "runtime/executor.hpp"

using namespace anonet;

int main() {
  constexpr Vertex kVoters = 15;
  constexpr double kThreshold = 2.0 / 3.0;

  std::mt19937_64 rng(7);
  std::bernoulli_distribution yes_vote(0.75);
  std::vector<std::int64_t> votes;
  int yes_count = 0;
  for (Vertex v = 0; v < kVoters; ++v) {
    votes.push_back(yes_vote(rng) ? 1 : 0);
    yes_count += static_cast<int>(votes.back());
  }
  const double yes_share = static_cast<double>(yes_count) / kVoters;
  std::printf("%d anonymous voters, %d yes (share %.3f), threshold %.3f\n\n",
              kVoters, yes_count, yes_share, kThreshold);

  // Directed dynamic communication, with a third of the voters joining late.
  auto inner =
      std::make_shared<RandomStronglyConnectedSchedule>(kVoters, 6, 4242);
  std::vector<int> starts(kVoters, 1);
  for (Vertex v = 0; v < kVoters; v += 3) starts[static_cast<std::size_t>(v)] = 10;
  auto schedule = std::make_shared<AsyncStartSchedule>(inner, starts);

  std::vector<FrequencyPushSumAgent> agents;
  for (std::int64_t v : votes) agents.emplace_back(v);
  // Compile-time model pairing: Push-Sum declares kNeedsOutdegree, and
  // `under<...>` static_asserts the model actually provides it.
  Executor<FrequencyPushSumAgent> exec(schedule, std::move(agents),
                                       under<CommModel::kOutdegreeAware>);

  std::printf("%8s  %18s  %10s\n", "round", "yes-share range", "verdicts");
  for (int checkpoint = 0; checkpoint <= 6; ++checkpoint) {
    double low = 1.0, high = 0.0;
    int pass_votes = 0;
    for (Vertex v = 0; v < kVoters; ++v) {
      const auto estimates = exec.agent(v).normalized_estimates();
      const auto it = estimates.find(1);
      const double share = it == estimates.end() ? 0.0 : it->second;
      low = std::min(low, share);
      high = std::max(high, share);
      if (share >= kThreshold) ++pass_votes;
    }
    std::printf("%8d  [%6.4f, %6.4f]  %d/%d say PASS\n", exec.round(), low,
                high, pass_votes, kVoters);
    exec.run(30);
  }

  std::printf(
      "\nAll verdicts agree and match the truth (%s). With an irrational\n"
      "threshold this works for any input; with a rational threshold it\n"
      "works whenever the true share is not exactly at the threshold —\n"
      "that is the continuity-in-frequency boundary of Corollary 5.5.\n",
      yes_share >= kThreshold ? "PASS" : "REJECT");
  return 0;
}
