#!/usr/bin/env bash
# Loopback parity proof for the socket transport (docs/transport.md):
#
#   1. run the smoke grid in-process (anonet_campaign) as the reference,
#   2. run it distributed at 1, 2, and 4 worker processes,
#   3. run it distributed with one worker killed after its first cell,
#
# and require every distributed output to be byte-identical to the
# reference. Usage: scripts/net_loopback_smoke.sh [BUILD_DIR] (default:
# build). Exits non-zero on the first mismatch or tool failure.
set -euo pipefail

BUILD_DIR="${1:-build}"
CAMPAIGN="$BUILD_DIR/tools/anonet_campaign"
NODE="$BUILD_DIR/tools/anonet_node"
GRID=smoke

for tool in "$CAMPAIGN" "$NODE"; do
  if [[ ! -x "$tool" ]]; then
    echo "net_loopback_smoke: missing $tool (build first)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/anonet_net.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

echo "== reference: in-process run of grid '$GRID'"
"$CAMPAIGN" --grid "$GRID" --out "$WORK/ref.jsonl" --quiet >/dev/null

# run_distributed OUT NWORKERS [abandon_flags...]: coordinator + workers on
# an ephemeral loopback port; extra flags go to the *first* worker.
run_distributed() {
  local out="$1" workers="$2"
  shift 2
  local port_file="$out.port"
  rm -f "$port_file"
  "$NODE" --listen 127.0.0.1:0 --port-file "$port_file" \
          --workers "$workers" --grid "$GRID" --out "$out" >/dev/null &
  local coord_pid=$!
  # The coordinator writes the port file only after the listener is bound.
  for _ in $(seq 1 200); do
    [[ -s "$port_file" ]] && break
    sleep 0.05
  done
  [[ -s "$port_file" ]] || { echo "coordinator never bound" >&2; exit 1; }
  local port
  port="$(cat "$port_file")"
  local worker_pids=()
  for ((w = 0; w < workers; ++w)); do
    if [[ $w -eq 0 && $# -gt 0 ]]; then
      "$NODE" --connect "127.0.0.1:$port" "$@" >/dev/null &
    else
      "$NODE" --connect "127.0.0.1:$port" >/dev/null &
    fi
    worker_pids+=($!)
  done
  wait "$coord_pid"
  # Workers exit 0 both on clean shutdown and deliberate abandonment.
  wait "${worker_pids[@]}"
}

for n in 1 2 4; do
  echo "== distributed: $n worker process(es)"
  run_distributed "$WORK/net$n.jsonl" "$n"
  cmp "$WORK/ref.jsonl" "$WORK/net$n.jsonl" || {
    echo "net_loopback_smoke: $n-worker output differs from reference" >&2
    exit 1
  }
done

echo "== distributed: 2 workers, one killed after its first cell"
run_distributed "$WORK/kill.jsonl" 2 --abandon-after 1
cmp "$WORK/ref.jsonl" "$WORK/kill.jsonl" || {
  echo "net_loopback_smoke: worker-kill output differs from reference" >&2
  exit 1
}

echo "net_loopback_smoke: all distributed outputs byte-identical to the"
echo "in-process reference (1, 2, 4 workers; 2 workers with one killed)"
