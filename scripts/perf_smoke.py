#!/usr/bin/env python3
"""CI perf smoke gate over BENCH_executor.json.

Fails (exit 1) when the pooled round engine at n = 10^4 is slower than the
serial engine by more than the tolerance — i.e. the persistent-worker pool
must never cost throughput on a multi-core host. Intended to run against a
freshly generated BENCH_executor.json (scripts/bench.sh), not the committed
snapshot, so the gate measures the checkout under test.

Skips (exit 0) when the host reports a single hardware thread: with no
parallelism available the pooled path degenerates to the serial one plus
pool bookkeeping, and a throughput comparison measures the host, not the
code.

Usage: scripts/perf_smoke.py [path/to/BENCH_executor.json]
"""

import json
import sys

TOLERANCE = 0.10  # pooled may trail serial by at most 10%
N_GATE = 10000


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_executor.json"
    with open(path, encoding="utf-8") as fh:
        bench = json.load(fh)

    hardware_threads = bench.get("hardware_threads", 1)
    if hardware_threads <= 1:
        print(
            f"perf_smoke: host has {hardware_threads} hardware thread(s); "
            "pooled-vs-serial comparison is meaningless here — skipping"
        )
        return 0

    serial = [
        row
        for row in bench["results"]
        if row["engine"] == "serial" and row["n"] == N_GATE
    ]
    pooled = [
        row
        for row in bench["results"]
        if row["engine"] == "pooled"
        and row["n"] == N_GATE
        and row.get("grain", 0) == 0
        and row["threads"] <= hardware_threads
    ]
    if not serial or not pooled:
        print(
            f"perf_smoke: no serial/pooled rows at n={N_GATE} in {path}; "
            "regenerate with scripts/bench.sh"
        )
        return 1

    serial_rps = max(row["rounds_per_sec"] for row in serial)
    best = max(pooled, key=lambda row: row["rounds_per_sec"])
    floor = serial_rps * (1.0 - TOLERANCE)

    print(
        f"perf_smoke: n={N_GATE} serial {serial_rps:.0f} rounds/s, best "
        f"pooled {best['rounds_per_sec']:.0f} rounds/s at "
        f"{best['threads']} threads (floor {floor:.0f})"
    )
    if best["rounds_per_sec"] < floor:
        print(
            "perf_smoke: FAIL — pooled engine regressed below "
            f"{(1.0 - TOLERANCE):.0%} of serial throughput"
        )
        return 1
    print("perf_smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
