#!/usr/bin/env bash
# The full verification gate: everything a change must survive before it
# lands. Runs, in order:
#
#   1. warnings-as-errors build + full test suite   (build-check/)
#   2. ASan + UBSan build + full test suite         (build-asan/)
#   3. TSan build + concurrency/determinism tests   (build-tsan/)
#   4. clang-tidy over src/ (skipped if not installed — the .clang-tidy
#      config is committed either way)
#   5. anonet_lint over src/ + examples/, ratcheted against the checked-in
#      baseline (also wired into CTest as lint.src_clean; running it here
#      too keeps the gate self-contained)
#
# Exits nonzero on the first failing stage. Usage:
#
#   scripts/check.sh            # everything
#   scripts/check.sh plain asan # just those stages (plain|asan|tsan|tidy|lint)
#   scripts/check.sh lint --update-baseline  # accept current lint findings
#   scripts/check.sh lint --no-baseline      # absolute run: fail on ANY finding
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"

# Split stage names from --flags (flags only affect the lint stage).
stages=()
lint_update_baseline=0
lint_no_baseline=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) lint_update_baseline=1 ;;
    --no-baseline)     lint_no_baseline=1 ;;
    --*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) stages+=("$arg") ;;
  esac
done
if [ ${#stages[@]} -eq 0 ]; then
  stages=(plain asan tsan tidy lint)
fi

want() {
  local s
  for s in "${stages[@]}"; do [ "$s" = "$1" ] && return 0; done
  return 1
}

banner() { printf '\n==== %s ====\n' "$1"; }

# TSan scope: the thread-parallel round engine and everything its
# bitwise-determinism contract rests on.
tsan_filter='^(Executor|ExecutorDeterminism|ThreadPool|CounterRng|Capabilities|Convergence)\.|Parallel|Determin'

if want plain; then
  banner "plain build (-Werror) + full test suite"
  cmake -B "$repo_root/build-check" -S "$repo_root" -DANONET_WERROR=ON
  cmake --build "$repo_root/build-check" -j"$jobs"
  ctest --test-dir "$repo_root/build-check" --output-on-failure -j"$jobs"
fi

if want asan; then
  banner "AddressSanitizer + UBSan build + full test suite"
  cmake -B "$repo_root/build-asan" -S "$repo_root" \
        -DANONET_SANITIZE=address -DANONET_WERROR=ON
  cmake --build "$repo_root/build-asan" -j"$jobs"
  ctest --test-dir "$repo_root/build-asan" --output-on-failure -j"$jobs"
fi

if want tsan; then
  banner "ThreadSanitizer build + concurrency/determinism tests"
  cmake -B "$repo_root/build-tsan" -S "$repo_root" \
        -DANONET_SANITIZE=thread -DANONET_WERROR=ON
  cmake --build "$repo_root/build-tsan" -j"$jobs"
  ctest --test-dir "$repo_root/build-tsan" --output-on-failure -j"$jobs" \
        -R "$tsan_filter"
fi

if want tidy; then
  banner "clang-tidy (src/)"
  if ! command -v clang-tidy >/dev/null 2>&1 && command -v apt-get >/dev/null 2>&1; then
    # Best effort on hosts without the binary; CI installs it explicitly.
    maybe_sudo=""
    command -v sudo >/dev/null 2>&1 && maybe_sudo="sudo"
    $maybe_sudo apt-get install -y --no-install-recommends clang-tidy \
      >/dev/null 2>&1 || true
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    compile_db="$repo_root/build-check"
    if [ ! -f "$compile_db/compile_commands.json" ]; then
      cmake -B "$compile_db" -S "$repo_root" -DANONET_WERROR=ON
    fi
    find "$repo_root/src" -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "$compile_db" --warnings-as-errors='*'
  else
    echo "clang-tidy not installed; skipping (config committed in .clang-tidy)"
  fi
fi

if want lint; then
  banner "anonet_lint (src/ + examples/)"
  compile_db="$repo_root/build-check/compile_commands.json"
  lint_args=("$repo_root/src" "$repo_root/examples")
  if [ -f "$compile_db" ]; then
    lint_args=(--compile-commands "$compile_db" "${lint_args[@]}")
  fi
  # Ratchet against the checked-in baseline (same contract as CI and
  # lint.src_clean): only NEW findings fail. --no-baseline drops the
  # subtraction; --update-baseline accepts the current finding set
  # (justifications preserved, new entries marked UNJUSTIFIED for editing).
  if [ "$lint_no_baseline" -eq 0 ]; then
    lint_args=(--baseline "$repo_root/tools/anonet_lint/baseline.json"
               "${lint_args[@]}")
    if [ "$lint_update_baseline" -eq 1 ]; then
      lint_args=(--update-baseline "${lint_args[@]}")
    fi
  fi
  python3 "$repo_root/tools/anonet_lint/anonet_lint.py" "${lint_args[@]}"
fi

banner "all requested stages passed"
