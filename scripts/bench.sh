#!/usr/bin/env bash
# Builds the Release tree and regenerates BENCH_executor.json and
# BENCH_bandwidth.json (repo root).
#
# Usage: scripts/bench.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target executor_scaling bandwidth_ablation \
  -j"$(nproc)"

cd "$repo_root"
"$build_dir/bench/executor_scaling"
echo "BENCH_executor.json written to $repo_root"
"$build_dir/bench/bandwidth_ablation"
echo "BENCH_bandwidth.json written to $repo_root"
