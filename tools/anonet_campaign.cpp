// anonet_campaign — sharded campaign driver (docs/campaign.md).
//
//   anonet_campaign --grid tables --out out.jsonl
//   anonet_campaign --grid tables --shards 4 --shard-index 2 --out s2.jsonl
//
// Expands a named grid, runs this process's shard, and appends one JSONL
// record per cell to --out (resuming past completed cells on rerun). For
// the table suites it then folds the records into the Table 1 / Table 2
// verdict grids and compares them against the paper: the exit status is 0
// iff every non-open cell matches and every open cell was skipped. Other
// grids exit 0 when no cell has verdict "failed".
//
// Records are byte-reproducible by default (no wall-clock fields), so the
// canonical output of N shards concatenated equals the 1-shard output.
// --timings opts into wall_ms per cell and gives up that guarantee.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/metrics.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --grid NAME [options]\n"
      "\n"
      "options:\n"
      "  --grid NAME         grid preset: table1, table2, tables,\n"
      "                      adversarial, bandwidth, faults, smoke\n"
      "                      (required)\n"
      "  --out PATH          JSONL output file (resumable; omit to only\n"
      "                      print the aggregate)\n"
      "  --shards N          total shard count (default 1)\n"
      "  --shard-index I     this process's shard in [0, N) (default 0)\n"
      "  --shard-by POLICY   index (default: cell index mod N) or cost\n"
      "                      (balance shards by estimated cell cost; the\n"
      "                      merged canonical output is identical either\n"
      "                      way)\n"
      "  --cost-file PATH    timings JSONL from a previous --timings run;\n"
      "                      measured wall_ms overrides the static cost\n"
      "                      estimates\n"
      "  --cell-timeout-ms M wall-clock deadline per cell; a tripped\n"
      "                      deadline records verdict \"timeout\" instead\n"
      "                      of hanging the shard (default: none)\n"
      "  --bandwidth-bits B  channel policy for cells that do not set their\n"
      "                      own: -1 meters wire bits, B > 0 bounds every\n"
      "                      message to B bits (an over-budget message\n"
      "                      records verdict \"bandwidth_exceeded\"). This\n"
      "                      changes the affected cells' keys, so metered\n"
      "                      and unmetered runs resume separately\n"
      "                      (default: 0, channel off)\n"
      "  --threads T         worker threads for this shard (default 1;\n"
      "                      cells always run serially inside)\n"
      "  --timings           record wall_ms per cell (breaks byte-for-byte\n"
      "                      reproducibility across runs)\n"
      "  --fresh             ignore an existing --out file instead of\n"
      "                      resuming from it\n"
      "  --quiet             suppress the per-suite aggregate tables\n",
      argv0);
}

bool parse_int(const char* text, int& out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<int>(value);
  return true;
}

bool parse_int64(const char* text, std::int64_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::int64_t>(value);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anonet::campaign;

  std::string grid_name;
  RunnerOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "anonet_campaign: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grid") {
      grid_name = value();
    } else if (arg == "--out") {
      options.out_path = value();
    } else if (arg == "--shards") {
      if (!parse_int(value(), options.shards)) {
        std::fprintf(stderr, "anonet_campaign: bad --shards value\n");
        return 2;
      }
    } else if (arg == "--shard-index") {
      if (!parse_int(value(), options.shard_index)) {
        std::fprintf(stderr, "anonet_campaign: bad --shard-index value\n");
        return 2;
      }
    } else if (arg == "--shard-by") {
      try {
        options.shard_by = parse_shard_by(value());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "anonet_campaign: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--cost-file") {
      options.cost_path = value();
    } else if (arg == "--cell-timeout-ms") {
      if (!parse_double(value(), options.cell_timeout_ms)) {
        std::fprintf(stderr, "anonet_campaign: bad --cell-timeout-ms value\n");
        return 2;
      }
    } else if (arg == "--bandwidth-bits") {
      if (!parse_int64(value(), options.bandwidth_bits)) {
        std::fprintf(stderr, "anonet_campaign: bad --bandwidth-bits value\n");
        return 2;
      }
    } else if (arg == "--threads") {
      if (!parse_int(value(), options.threads)) {
        std::fprintf(stderr, "anonet_campaign: bad --threads value\n");
        return 2;
      }
    } else if (arg == "--timings") {
      options.include_timings = true;
    } else if (arg == "--fresh") {
      options.resume = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "anonet_campaign: unknown option '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (grid_name.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const Grid grid = Grid::preset(grid_name);
    const Runner runner(options);
    const std::vector<CellRecord> records = runner.run(grid);

    int failed = 0;
    int skipped = 0;
    int timeouts = 0;
    int over_budget = 0;
    int expected_failures = 0;
    int prediction_mismatches = 0;
    std::vector<std::string> suites;
    for (const CellRecord& record : records) {
      if (record.verdict == "failed") ++failed;
      if (record.verdict == "skipped") ++skipped;
      if (record.verdict == "timeout") ++timeouts;
      if (record.verdict == "bandwidth_exceeded") ++over_budget;
      if (record.verdict == "expected_failure") ++expected_failures;
      // The FaultTolerance table said this cell must break, but it
      // succeeded: either the claim is too conservative or the
      // perturbation is not biting — both are campaign failures.
      if (record.predicted && record.verdict == "ok" && record.success) {
        ++prediction_mismatches;
        std::fprintf(stderr,
                     "anonet_campaign: predicted breakdown succeeded: %s\n",
                     record.key.c_str());
      }
      bool seen = false;
      for (const std::string& suite : suites) seen = seen || suite == record.suite;
      if (!seen) suites.push_back(record.suite);
    }
    std::printf("campaign '%s': shard %d/%d ran %zu cells (%d skipped, %d "
                "failed, %d timed out, %d over bandwidth, %d expected "
                "failures)\n",
                grid_name.c_str(), options.shard_index, options.shards,
                records.size(), skipped, failed, timeouts, over_budget,
                expected_failures);
    if (!options.out_path.empty()) {
      std::printf("records: %s\n", options.out_path.c_str());
    }

    // Aggregate any table suite present; the comparison is only meaningful
    // on a complete (single-shard or merged) record set, so partial shards
    // report but do not gate.
    bool tables_ok = true;
    bool aggregated = false;
    for (const std::string& suite : suites) {
      if (suite != "table1" && suite != "table2") continue;
      const TableComparison table = compare_table(records, suite);
      if (!quiet) std::printf("\n%s", render_table(table).c_str());
      if (options.shards == 1) {
        aggregated = true;
        tables_ok = tables_ok && table.all_match;
      }
    }
    if (aggregated) {
      std::printf("\n%s\n", tables_ok
                                ? "All non-open cells match the paper; open "
                                  "'?' cells recorded as skipped."
                                : "MISMATCH against the paper's tables — see "
                                  "above.");
      return tables_ok && failed == 0 && prediction_mismatches == 0 ? 0 : 1;
    }
    return failed == 0 && prediction_mismatches == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "anonet_campaign: %s\n", e.what());
    return 2;
  }
}
