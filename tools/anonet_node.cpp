// anonet_node — distributed campaign node (docs/transport.md).
//
// One binary, two roles:
//
//   # coordinator: listen, wait for 2 workers, run the smoke grid
//   anonet_node --listen 127.0.0.1:0 --port-file port.txt \
//               --workers 2 --grid smoke --out out.jsonl
//
//   # worker: connect and serve cells until SHUTDOWN
//   anonet_node --connect 127.0.0.1:$(cat port.txt)
//
// The coordinator expands the grid, resumes from --out, and feeds cells to
// workers demand-driven in cost-descending (LPT) order; workers re-expand
// the same grid locally and run each assigned cell through the same
// campaign::Runner::run_cell the in-process runner uses. The canonical
// output file is byte-identical to `anonet_campaign --grid NAME --out ...`
// whatever the worker count, and a worker lost mid-campaign only costs its
// in-flight cells a reassignment.
//
// --port-file writes the bound port (resolving --listen HOST:0) after the
// listener is up, so scripts can start workers without racing the bind.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/coordinator.hpp"
#include "net/worker.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --listen HOST:PORT --grid NAME [options]   (coordinator)\n"
      "       %s --connect HOST:PORT [options]              (worker)\n"
      "\n"
      "coordinator options:\n"
      "  --listen HOST:PORT  bind address; port 0 picks an ephemeral port\n"
      "  --grid NAME         grid preset to run (see anonet_campaign)\n"
      "  --workers N         wait for N workers before assigning (default 1)\n"
      "  --out PATH          JSONL output file (resumable)\n"
      "  --port-file PATH    write the bound port here once listening\n"
      "  --cost-file PATH    timings JSONL feeding the LPT cost model\n"
      "  --cell-timeout-ms M per-cell wall deadline (shipped to workers)\n"
      "  --bandwidth-bits B  channel policy override (shipped to workers)\n"
      "  --timings           record wall_ms (breaks byte-reproducibility)\n"
      "  --fresh             ignore an existing --out file\n"
      "\n"
      "worker options:\n"
      "  --connect HOST:PORT coordinator address\n"
      "  --threads T         cells run concurrently (default 1)\n"
      "  --connect-timeout-ms M  retry budget for the initial connect\n"
      "                      (default 10000)\n"
      "  --abandon-after K   fault injection: complete K cells, then drop\n"
      "                      the connection on the next assignment\n",
      argv0, argv0);
}

bool parse_int(const char* text, int& out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<int>(value);
  return true;
}

bool parse_int64(const char* text, std::int64_t& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::int64_t>(value);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  out = value;
  return true;
}

// "HOST:PORT" -> (host, port); the last ':' splits, so a bare ":0" keeps
// the default host.
bool parse_endpoint(const std::string& text, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  if (colon > 0) host = text.substr(0, colon);
  int value = 0;
  if (!parse_int(text.c_str() + colon + 1, value)) return false;
  if (value < 0 || value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anonet::net;

  CoordinatorOptions coordinator_options;
  WorkerOptions worker_options;
  bool listen_mode = false;
  bool connect_mode = false;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "anonet_node: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen_mode = true;
      if (!parse_endpoint(value(), coordinator_options.host,
                          coordinator_options.port)) {
        std::fprintf(stderr, "anonet_node: bad --listen endpoint\n");
        return 2;
      }
    } else if (arg == "--connect") {
      connect_mode = true;
      if (!parse_endpoint(value(), worker_options.host,
                          worker_options.port)) {
        std::fprintf(stderr, "anonet_node: bad --connect endpoint\n");
        return 2;
      }
    } else if (arg == "--grid") {
      coordinator_options.grid = value();
    } else if (arg == "--workers") {
      if (!parse_int(value(), coordinator_options.workers)) {
        std::fprintf(stderr, "anonet_node: bad --workers value\n");
        return 2;
      }
    } else if (arg == "--out") {
      coordinator_options.out_path = value();
    } else if (arg == "--port-file") {
      port_file = value();
    } else if (arg == "--cost-file") {
      coordinator_options.cost_path = value();
    } else if (arg == "--cell-timeout-ms") {
      if (!parse_double(value(), coordinator_options.cell_timeout_ms)) {
        std::fprintf(stderr, "anonet_node: bad --cell-timeout-ms value\n");
        return 2;
      }
    } else if (arg == "--bandwidth-bits") {
      if (!parse_int64(value(), coordinator_options.bandwidth_bits)) {
        std::fprintf(stderr, "anonet_node: bad --bandwidth-bits value\n");
        return 2;
      }
    } else if (arg == "--timings") {
      coordinator_options.include_timings = true;
    } else if (arg == "--fresh") {
      coordinator_options.resume = false;
    } else if (arg == "--threads") {
      if (!parse_int(value(), worker_options.threads)) {
        std::fprintf(stderr, "anonet_node: bad --threads value\n");
        return 2;
      }
    } else if (arg == "--connect-timeout-ms") {
      if (!parse_double(value(), worker_options.connect_timeout_ms)) {
        std::fprintf(stderr, "anonet_node: bad --connect-timeout-ms value\n");
        return 2;
      }
    } else if (arg == "--abandon-after") {
      if (!parse_int(value(), worker_options.abandon_after)) {
        std::fprintf(stderr, "anonet_node: bad --abandon-after value\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "anonet_node: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (listen_mode == connect_mode) {
    std::fprintf(stderr,
                 "anonet_node: exactly one of --listen / --connect\n");
    usage(argv[0]);
    return 2;
  }

  try {
    if (listen_mode) {
      Coordinator coordinator(coordinator_options);
      const std::uint16_t port = coordinator.listen();
      std::printf("anonet_node: listening on %s:%u for %d worker(s)\n",
                  coordinator_options.host.c_str(), port,
                  coordinator_options.workers);
      std::fflush(stdout);
      if (!port_file.empty()) {
        std::FILE* out = std::fopen(port_file.c_str(), "w");
        if (out == nullptr) {
          std::fprintf(stderr, "anonet_node: cannot write %s\n",
                       port_file.c_str());
          return 2;
        }
        std::fprintf(out, "%u\n", port);
        std::fclose(out);
      }
      const auto records = coordinator.run();
      const CoordinatorStats& stats = coordinator.stats();
      int failed = 0;
      for (const auto& record : records) {
        if (record.verdict == "failed") ++failed;
      }
      std::printf(
          "campaign '%s': %zu cells over %d worker(s) (%lld assigned, "
          "%lld reassigned after %d loss(es), epoch %u, %d failed)\n",
          coordinator_options.grid.c_str(), records.size(),
          stats.workers_joined,
          static_cast<long long>(stats.cells_assigned),
          static_cast<long long>(stats.cells_reassigned), stats.workers_lost,
          stats.epochs, failed);
      if (!coordinator_options.out_path.empty()) {
        std::printf("records: %s\n", coordinator_options.out_path.c_str());
      }
      return failed == 0 ? 0 : 1;
    }
    WorkerNode worker(worker_options);
    const bool clean = worker.run();
    const WorkerStats& stats = worker.stats();
    std::printf("worker: ran %lld cell(s), epoch %u, %s\n",
                static_cast<long long>(stats.cells_run), stats.epoch,
                clean ? "clean shutdown" : "abandoned (fault injection)");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "anonet_node: %s\n", e.what());
    return 2;
  }
}
