#!/usr/bin/env python3
"""Self-tests for anonet_lint v2 (run by CTest as lint.selftest).

Four layers:

  - Golden fixtures: every fixture under ../fixtures has a golden findings
    JSON under golden/; the analyzer's machine-readable output must match
    byte-for-byte semantics (path, line, rule, message, fingerprint). A
    rule change that moves or reworded a finding shows up as a readable
    JSON diff. Regenerate deliberately with:
        python3 run_tests.py --regen
  - Call-graph units: receiver-type resolution, forwarding whitelists and
    the audience-taint fixpoint exercised on small in-memory sources
    (ProgramIndex.add_source — no files involved).
  - Depth-bound semantics: `--max-hops 1` approximates the v1 single-hop
    analysis; the transitive-leak fixtures must be invisible at depth 1
    and flagged at the default depth. This pins the PR's headline claim.
  - Baseline/ratchet: fingerprint stability under line drift, the
    new/suppressed/stale partition, justification preservation on update,
    and a CLI-level ratchet round trip through a scratch tree.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
TOOL = os.path.dirname(HERE)
sys.path.insert(0, TOOL)

import baselines                                    # noqa: E402
from anonet_lint import build_engine                # noqa: E402
from callgraph import CallGraph                     # noqa: E402
from frontend import ProgramIndex                   # noqa: E402
from rules import Finding, RuleEngine               # noqa: E402

FIXTURES = os.path.join(TOOL, "fixtures")
GOLDEN = os.path.join(HERE, "golden")
REPO = os.path.dirname(os.path.dirname(TOOL))
CLI = os.path.join(TOOL, "anonet_lint.py")

# fixture file -> rule it must fire (None: must be completely clean)
FIXTURE_RULES = {
    "d1_unordered_iteration.cpp": "D1",
    "d1_alias_iteration.cpp": "D1",
    "d1_random_device.cpp": "D1",
    "a1_vertex_index.cpp": "A1",
    "a1_transitive_vertex.cpp": "A1",
    "p1_static_state.cpp": "P1",
    "m1_undeclared_outdegree.cpp": "M1",
    "m1_missing_port_capability.cpp": "M1",
    "m1_helper_outdegree.cpp": "M1",
    "m1_transitive_leak.cpp": "M1",
    "m1_forwarding_ok.cpp": None,
    "w1_missing_traits.cpp": "W1",
    "w1_partial_traits.cpp": "W1",
    "w1_raw_payload_frame.cpp": "W1",
    "c1_shared_accumulator.cpp": "C1",
    "f1_float_accumulation.cpp": "F1",
    "s1_stateful_schedule.cpp": "S1",
}


def analyze(path_or_paths, max_hops=8):
    paths = ([path_or_paths] if isinstance(path_or_paths, str)
             else list(path_or_paths))
    engine, _files, _unbuilt = build_engine(paths, max_hops=max_hops)
    return engine.findings


def analyze_source(named_sources, max_hops=8):
    """Run the engine over in-memory (path, text) pairs."""
    index = ProgramIndex()
    for path, text in named_sources:
        index.add_source(path, text)
    index.build()
    engine = RuleEngine(index, max_hops=max_hops)
    engine.run()
    return index, engine.findings


class GoldenFixtureTests(unittest.TestCase):
    maxDiff = None

    def test_fixture_inventory_matches(self):
        on_disk = sorted(f for f in os.listdir(FIXTURES)
                         if f.endswith(".cpp"))
        self.assertEqual(on_disk, sorted(FIXTURE_RULES),
                         "fixture added or removed without updating "
                         "FIXTURE_RULES (and its golden)")


def _add_golden_case(fixture, rule):
    def test(self):
        findings = analyze(os.path.join(FIXTURES, fixture))
        got = baselines.findings_json(findings, root=REPO)
        if rule is None:
            self.assertEqual(got, [], f"{fixture} must be finding-free")
            return
        self.assertTrue(any(f["rule"] == rule for f in got),
                        f"{fixture} did not fire {rule}")
        golden_path = os.path.join(GOLDEN, fixture.replace(".cpp", ".json"))
        with open(golden_path, encoding="utf-8") as fh:
            want = json.load(fh)
        self.assertEqual(got, want)
    test.__name__ = f"test_golden_{fixture.replace('.cpp', '')}"
    setattr(GoldenFixtureTests, test.__name__, test)


for _fixture, _rule in sorted(FIXTURE_RULES.items()):
    _add_golden_case(_fixture, _rule)


class CallGraphTests(unittest.TestCase):
    def test_receiver_type_resolved_through_member_decl(self):
        index, _ = analyze_source([("t.cpp", """
            struct Inner { int poke(int x) { return x; } };
            class Outer {
             public:
              int go() { return inner_.poke(1); }
             private:
              Inner inner_;
            };
        """)])
        graph = CallGraph(index)
        fn = index.classes["Outer"].methods["go"][0]
        calls = [c for c in graph.calls_of(fn) if c.callee == "poke"]
        self.assertEqual(len(calls), 1)
        cls, candidates = graph.resolve(fn, calls[0])
        self.assertEqual(cls, "Inner")
        self.assertEqual([f.qualname for f in candidates], ["Inner::poke"])

    def test_pure_forward_into_declaring_class_is_whitelisted(self):
        index, findings = analyze_source([("t.cpp", """
            class SinkAgent {
             public:
              struct Message { int v; };
              static constexpr bool kParallelSafe = true;
              static constexpr int kModelCapabilities = kNeedsOutdegree;
              Message send(int outdegree, int port) {
                return Message{outdegree};
              }
             private:
              static constexpr int kNeedsOutdegree = 1;
            };
            class ShimAgent {
             public:
              using Message = SinkAgent::Message;
              static constexpr bool kParallelSafe = true;
              Message send(int outdegree, int port) {
                return sink_.send(outdegree, port);
              }
             private:
              SinkAgent sink_;
            };
        """)])
        self.assertEqual([f for f in findings if f.rule == "M1"], [])

    def test_consuming_use_behind_helper_is_flagged(self):
        _, findings = analyze_source([("t.cpp", """
            inline int halve(int n) { return n / 2; }
            class LeakAgent {
             public:
              struct Message { int v; };
              static constexpr bool kParallelSafe = true;
              Message send(int outdegree, int port) {
                return Message{halve(outdegree)};
              }
            };
        """)])
        m1 = [f for f in findings if f.rule == "M1"]
        self.assertEqual(len(m1), 1)
        self.assertIn("LeakAgent", m1[0].message)

    def test_audience_taint_fixpoint_crosses_two_helpers(self):
        index, _ = analyze_source([("t.cpp", """
            struct G { int out_degree(int v) const { return v; } };
            inline int a(const G& g, int v) { return g.out_degree(v); }
            inline int b(const G& g, int v) { return a(g, v); }
        """)])
        graph = CallGraph(index)
        tainted = graph.audience_tainted_functions(max_hops=8)
        self.assertIn("a", tainted)
        self.assertIn("b", tainted)
        self.assertEqual(tainted["a"][0] + 1, tainted["b"][0])


class DepthBoundTests(unittest.TestCase):
    """`--max-hops 1` must behave like the v1 single-hop analysis."""

    def test_m1_transitive_leak_invisible_at_depth_one(self):
        path = os.path.join(FIXTURES, "m1_transitive_leak.cpp")
        self.assertEqual(analyze(path, max_hops=1), [],
                         "the v1-equivalent depth must NOT see the 2-hop "
                         "side-door leak")
        deep = analyze(path)
        self.assertTrue(any(f.rule == "M1" and (f.hops or 0) >= 2
                            for f in deep),
                        "default depth must flag the leak at >= 2 hops")

    def test_a1_transitive_vertex_invisible_at_depth_one(self):
        path = os.path.join(FIXTURES, "a1_transitive_vertex.cpp")
        self.assertEqual([f for f in analyze(path, max_hops=1)
                          if f.rule == "A1"], [])
        self.assertTrue(any(f.rule == "A1" for f in analyze(path)))


class BaselineTests(unittest.TestCase):
    def test_fingerprints_survive_line_drift(self):
        with open(os.path.join(FIXTURES, "d1_alias_iteration.cpp"),
                  encoding="utf-8") as fh:
            raw = fh.read()
        path = os.path.join(REPO, "scratch.cpp")  # virtual; never written
        _, original = analyze_source([(path, raw)])
        _, shifted = analyze_source([(path, "// pad\n// pad\n\n" + raw)])
        fp = lambda fs: [f["fingerprint"] for f in
                         baselines.findings_json(fs, root=REPO)]
        self.assertNotEqual([f.line for f in original],
                            [f.line for f in shifted])
        self.assertEqual(fp(original), fp(shifted))

    def test_apply_baseline_partitions(self):
        old = Finding("x.cpp", 3, "D1", "old message", None)
        kept = Finding("x.cpp", 9, "C1", "kept message", None)
        fresh = Finding("y.cpp", 2, "M1", "fresh message", None)
        with tempfile.TemporaryDirectory() as tmp:
            bl_path = os.path.join(tmp, "baseline.json")
            baselines.update_baseline(bl_path, [old, kept], root=tmp)
            baseline = baselines.load_baseline(bl_path)
            new, suppressed, stale = baselines.apply_baseline(
                [kept, fresh], baseline, root=tmp)
        self.assertEqual([f.message for f, _fp in new], ["fresh message"])
        self.assertEqual([f.message for f, _fp in suppressed],
                         ["kept message"])
        self.assertEqual(len(stale), 1)
        self.assertEqual(stale[0]["message"], "old message")

    def test_update_preserves_justifications(self):
        finding = Finding("x.cpp", 3, "C1", "a message", None)
        with tempfile.TemporaryDirectory() as tmp:
            bl_path = os.path.join(tmp, "baseline.json")
            baselines.update_baseline(bl_path, [finding], root=tmp)
            with open(bl_path, encoding="utf-8") as fh:
                data = json.load(fh)
            data["findings"][0]["justification"] = "because reasons"
            with open(bl_path, "w", encoding="utf-8") as fh:
                json.dump(data, fh)
            baselines.update_baseline(bl_path, [finding], root=tmp)
            with open(bl_path, encoding="utf-8") as fh:
                after = json.load(fh)
        self.assertEqual(after["findings"][0]["justification"],
                         "because reasons")

    def test_repo_baseline_has_no_unjustified_entries(self):
        bl_path = os.path.join(TOOL, "baseline.json")
        baseline = baselines.load_baseline(bl_path)  # {fingerprint: entry}
        for fingerprint, entry in baseline.items():
            self.assertFalse(
                entry["justification"].startswith("UNJUSTIFIED"),
                f"{fingerprint} committed without a justification")


class RatchetCliTests(unittest.TestCase):
    """End-to-end: the checked-in CLI ratchets a scratch tree."""

    VIOLATION = (
        "#include <unordered_map>\n"
        "class ScratchAgent {\n"
        " public:\n"
        "  struct Message { int v; };\n"
        "  static constexpr bool kParallelSafe = true;\n"
        "  Message send(int, int) const {\n"
        "    int sum = 0;\n"
        "    for (const auto& kv : table_) sum += kv.second;\n"
        "    return Message{sum};\n"
        "  }\n"
        " private:\n"
        "  std::unordered_map<int, int> table_;\n"
        "};\n")

    def run_cli(self, *argv):
        return subprocess.run([sys.executable, CLI, *argv],
                              capture_output=True, text=True, check=False)

    def test_new_finding_fails_then_baselines_then_ratchets(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "scratch.cpp")
            with open(src, "w", encoding="utf-8") as fh:
                fh.write(self.VIOLATION)
            bl = os.path.join(tmp, "baseline.json")
            # 1. No baseline: the D1 finding fails the run.
            self.assertEqual(self.run_cli(src).returncode, 1)
            # 2. Accept it into a baseline; the run goes clean.
            self.assertEqual(
                self.run_cli(src, "--baseline", bl,
                             "--update-baseline").returncode, 0)
            self.assertEqual(
                self.run_cli(src, "--baseline", bl).returncode, 0)
            # 3. Inject a SECOND violation: the ratchet must fail on the
            #    new finding while still suppressing the baselined one.
            with open(src, "a", encoding="utf-8") as fh:
                fh.write("\ninline int bad_clock() { return clock(); }\n")
            run = self.run_cli(src, "--baseline", bl)
            self.assertEqual(run.returncode, 1)
            self.assertIn("NEW finding", run.stdout + run.stderr)
            self.assertIn("clock()", run.stdout + run.stderr)


class RawPayloadEscapeTests(unittest.TestCase):
    """W1 raw-payload escape: agent messages must not cross byte boundaries
    via memcpy/reinterpret_cast/bit_cast; codec-routed statements and
    non-agent control frames are exempt."""

    AGENT = """
        namespace wire { template <typename M> struct MessageTraits; }
        class PayloadAgent {
         public:
          struct Message { long v; };
          static constexpr bool kParallelSafe = true;
          Message send(int outdegree, int port) { return Message{1}; }
        };
        namespace wire {
        template <> struct MessageTraits<PayloadAgent::Message> {
          static long encoded_bits(const PayloadAgent::Message&) { return 64; }
          static void encode(const PayloadAgent::Message&, int&) {}
          static PayloadAgent::Message decode(int&) { return {}; }
        };
        }
    """

    def _raw_payload_findings(self, extra):
        _, findings = analyze_source([("t.cpp", self.AGENT + extra)])
        return [f for f in findings
                if f.rule == "W1" and "raw byte" in f.message]

    def test_memcpy_of_agent_message_is_flagged(self):
        findings = self._raw_payload_findings("""
            void pack(const PayloadAgent::Message& m, unsigned char* out) {
              memcpy(out, &m, sizeof(PayloadAgent::Message));
            }
        """)
        self.assertEqual(len(findings), 1)

    def test_control_frame_memcpy_is_exempt(self):
        findings = self._raw_payload_findings("""
            struct HelloFrame { unsigned magic; };
            void pack(const HelloFrame& hello, unsigned char* out) {
              memcpy(out, &hello, sizeof(HelloFrame));
            }
        """)
        self.assertEqual(findings, [])

    def test_codec_routed_statement_is_exempt(self):
        # A memcpy whose own statement routes through the codec (here:
        # sizing the copy from encoded_bits) is the sanctioned staging
        # pattern, not an escape.
        findings = self._raw_payload_findings("""
            void pack(const PayloadAgent::Message& m, unsigned char* out,
                      const unsigned char* staged) {
              memcpy(out, staged,
                     wire::MessageTraits<PayloadAgent::Message>
                         ::encoded_bits(m) / 8);
            }
            PayloadAgent::Message unpack(int& src) {
              return wire::decode<PayloadAgent::Message>(src);
            }
        """)
        self.assertEqual(findings, [])

    def test_reinterpret_cast_of_agent_message_is_flagged(self):
        # Decode-side escape: conjuring a Message out of raw socket bytes.
        findings = self._raw_payload_findings("""
            const PayloadAgent::Message* view(const unsigned char* bytes) {
              return reinterpret_cast<const PayloadAgent::Message*>(bytes);
            }
        """)
        self.assertEqual(len(findings), 1)


def regen():
    os.makedirs(GOLDEN, exist_ok=True)
    for fixture, rule in sorted(FIXTURE_RULES.items()):
        if rule is None:
            continue
        findings = analyze(os.path.join(FIXTURES, fixture))
        golden_path = os.path.join(GOLDEN, fixture.replace(".cpp", ".json"))
        with open(golden_path, "w", encoding="utf-8") as fh:
            json.dump(baselines.findings_json(findings, root=REPO), fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.relpath(golden_path, REPO)}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regen()
        sys.exit(0)
    unittest.main(verbosity=2)
