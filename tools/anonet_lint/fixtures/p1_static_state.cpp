// Negative fixture — anonet_lint MUST flag this file under rule P1.
//
// The agent declares kParallelSafe — inviting the executor to run its round
// hooks from several workers — while mutating function-local static state
// and a non-constant static data member, and holding a shared_ptr to a
// registry that every sibling touches. This is the exact bug class the
// PR 1 review fixed by hand in the thread pool; P1 makes it a lint finding
// instead of a TSan session.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace anonet_fixtures {

struct SharedTally {
  std::int64_t total = 0;
};

class RacyCounterAgent {
 public:
  struct Message {
    std::int64_t value = 0;
  };

  // The lie under test: parallel-safe declaration over shared state.
  static constexpr bool kParallelSafe = true;

  // P1: non-constant static data member — one counter shared by all agents.
  static std::int64_t rounds_observed;

  explicit RacyCounterAgent(std::shared_ptr<SharedTally> tally)
      : tally_(std::move(tally)) {}

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    static std::int64_t sends = 0;  // P1: static local in a round hook
    ++sends;
    return Message{sends};
  }

  void receive(std::span<const Message> messages) {
    ++rounds_observed;
    for (const Message& m : messages) {
      tally_->total += m.value;  // racing write through the shared pointer
    }
  }

 private:
  std::shared_ptr<SharedTally> tally_;  // P1: shared state in a kParallelSafe agent
};

std::int64_t RacyCounterAgent::rounds_observed = 0;

}  // namespace anonet_fixtures
