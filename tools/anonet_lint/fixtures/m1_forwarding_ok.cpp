// POSITIVE fixture — anonet_lint must report ZERO findings here.
//
// Pure forwarding into a capability-declared agent is NOT a leak: the v1
// analyzer flagged any agent whose send() named (or forwarded) its
// outdegree/port parameters without declaring the capability itself, which
// made thin wrapper agents around declared consumers impossible to write
// cleanly. v2 resolves the forward target through the call graph: the
// wrapped MeteredFanoutAgent declares kNeedsOutdegree and
// kNeedsOutputPorts, so the wrapper's send() passing its parameters
// straight through observes nothing the declaration does not already
// account for. The self-test suite locks this file at zero findings —
// a regression that re-flags it reintroduces the v1 false positive.

#include <cstdint>
#include <vector>

namespace anonet_fixtures {

class MeteredFanoutAgent {
 public:
  struct Message {
    std::int64_t share;
  };

  static constexpr bool kParallelSafe = true;
  // The declared consumer: observing outdegree and ports is its row of
  // Table 1 (spelled the way the real capability header does).
  static constexpr int kModelCapabilities =
      kNeedsOutdegree | kNeedsOutputPorts;

  [[nodiscard]] Message send(int outdegree, int port) const {
    return Message{state_ / (outdegree + 1) + port};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) state_ += m.share;
  }

 private:
  static constexpr int kNeedsOutdegree = 1;
  static constexpr int kNeedsOutputPorts = 2;
  std::int64_t state_ = 0;
};

class ForwardingShimAgent {
 public:
  using Message = MeteredFanoutAgent::Message;

  static constexpr bool kParallelSafe = true;

  // Pure forwarding: both parameters go straight into the declared
  // consumer, so the shim observes nothing itself. Must NOT be flagged.
  [[nodiscard]] Message send(int outdegree, int port) const {
    return inner_.send(outdegree, port);
  }

  void receive(const std::vector<Message>& messages) {
    inner_.receive(messages);
  }

 private:
  MeteredFanoutAgent inner_;
};

}  // namespace anonet_fixtures
