// Negative fixture — anonet_lint MUST flag this file under rule D1.
//
// The v1 analyzer only recognized iteration over a container *declared* as
// std::unordered_map<...> by that spelling; hiding the type behind a
// `using` alias (or grabbing an `auto&` reference to the container first)
// made the bucket-order leak invisible. Both laundering layers appear
// here: `Tally` is an unordered_map by alias, `view` is an auto& alias of
// the aliased variable, and the range-for walks `view` — three renames
// away from the word "unordered", same implementation-defined order
// leaking into the constructed message.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace anonet_fixtures {

using Tally = std::unordered_map<std::int64_t, std::int64_t>;
using TallyAlias = Tally;  // alias of an alias: still unordered

class AliasedHistogramAgent {
 public:
  struct Message {
    std::vector<std::int64_t> keys;
  };

  static constexpr bool kParallelSafe = true;

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) {
      for (std::int64_t k : m.keys) counts_[k] += 1;
    }
  }

  // D1: the range-for order is bucket order, three aliases deep.
  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    Message out;
    const auto& view = counts_;
    for (const auto& entry : view) {
      out.keys.push_back(entry.first);
    }
    return out;
  }

 private:
  TallyAlias counts_;
};

}  // namespace anonet_fixtures
