// Negative fixture — anonet_lint MUST flag this file under rule M1.
//
// Positional outdegree use laundered through a helper: the in-class send()
// declaration leaves both parameters unnamed (clean under the plain
// parameter-name heuristic), the out-of-line *template* definition renames
// the outdegree to `fanout` and forwards it into weight_for(), and the class
// never declares ModelCapabilities::kNeedsOutdegree. Renaming and forwarding
// does not change what the sending function observes — under simple
// broadcast the executor passes outdegree 0 and the division is garbage.
// M1 must see through both layers: the template-qualified out-of-line
// definition (`LaunderingAgent<T>::send`) and the helper call.

#include <span>

namespace anonet_fixtures {

template <typename T>
class LaunderingAgent {
 public:
  struct Message {
    T share{};
  };

  explicit LaunderingAgent(T value) : state_(value) {}

  // Declaration: parameters deliberately unnamed, so the naive check passes.
  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const;

  void receive(std::span<const Message> messages) {
    state_ = T{};
    for (const Message& m : messages) state_ += m.share;
  }

  [[nodiscard]] T output() const { return state_; }

 private:
  // The helper that actually consumes the audience size.
  [[nodiscard]] Message weight_for(int fanout) const {
    return Message{state_ / static_cast<T>(fanout + 1)};
  }

  T state_{};
};

// M1: the definition renames the outdegree parameter and forwards it.
template <typename T>
typename LaunderingAgent<T>::Message LaunderingAgent<T>::send(
    int fanout, int /*port*/) const {
  return weight_for(fanout);
}

}  // namespace anonet_fixtures
