// Negative fixture — anonet_lint MUST flag this file under rule M1.
//
// A transitive audience-information leak TWO hops deep, in the direction
// the v1 analyzer could not see at all: v1's only M1 entry point was the
// parameter list of an agent's send(), so a leak that never touches those
// parameters — harness code reading a vertex degree from the graph and
// feeding it INTO the agent through a setter — passed silently. Here the
// degree travels
//
//     local_fanout()  ->  probe_audience()  ->  CalibratedGossipAgent::calibrate()
//
// (helper -> helper -> agent method), and CalibratedGossipAgent declares
// no ModelCapabilities::kNeedsOutdegree: under simple broadcast the agent
// now "knows" its audience size, quietly proving a theorem Table 1
// forbids. The whole-program call graph must track the taint through both
// helper returns; `--max-hops 1` (the v1-equivalent single-hop analysis)
// must NOT flag this file — the self-test suite pins both behaviors.

#include <cstdint>
#include <vector>

namespace anonet_fixtures {

struct MiniGraph {
  std::vector<std::vector<int>> adjacency;

  [[nodiscard]] int out_degree(int v) const {
    return static_cast<int>(adjacency[static_cast<std::size_t>(v)].size());
  }
};

class CalibratedGossipAgent {
 public:
  struct Message {
    std::int64_t value;
  };

  static constexpr bool kParallelSafe = true;

  explicit CalibratedGossipAgent(std::int64_t input) : value_(input) {}

  // The side door: nothing about this signature says "audience size".
  void calibrate(int hint) { split_hint_ = hint; }

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_ / (split_hint_ + 1)};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
  }

 private:
  std::int64_t value_;
  int split_hint_ = 0;
};

// Hop 1: the raw audience source.
[[nodiscard]] inline int local_fanout(const MiniGraph& g, int v) {
  return g.out_degree(v);
}

// Hop 2: an innocent-looking indirection.
[[nodiscard]] inline int probe_audience(const MiniGraph& g, int v) {
  return local_fanout(g, v);
}

inline void wire_up(const MiniGraph& g) {
  std::vector<CalibratedGossipAgent> agents;
  for (int v = 0; v < static_cast<int>(g.adjacency.size()); ++v) {
    agents.emplace_back(1);
  }
  for (int v = 0; v < static_cast<int>(agents.size()); ++v) {
    CalibratedGossipAgent& agent = agents[static_cast<std::size_t>(v)];
    // M1: audience information, laundered through two helpers.
    agent.calibrate(probe_audience(g, v));
  }
}

}  // namespace anonet_fixtures
