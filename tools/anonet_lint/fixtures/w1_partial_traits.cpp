// Negative fixture — anonet_lint MUST flag this file under rule W1.
//
// A MessageTraits specialization that defines encoded_bits and encode but
// NOT decode: a half-implemented codec passes "is there a specialization?"
// checks while still breaking the round-trip property the wire layer
// depends on. W1 requires the three members to be defined together, and
// names the missing ones.

#include <cstdint>
#include <vector>

namespace anonet_fixtures {

class HalfCodecAgent {
 public:
  struct Message {
    std::int64_t value;
  };

  static constexpr bool kParallelSafe = true;

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
  }

 private:
  std::int64_t value_ = 0;
};

namespace wire {

template <typename M>
struct MessageTraits;  // primary template: never defined

struct BitWriter;
struct BitReader;

template <>
struct MessageTraits<HalfCodecAgent::Message> {
  [[nodiscard]] static std::size_t encoded_bits(
      const HalfCodecAgent::Message&) {
    return 64;
  }

  static void encode(const HalfCodecAgent::Message&, BitWriter&) {}

  // decode() is missing: the round trip cannot be completed.
};

}  // namespace wire

}  // namespace anonet_fixtures
