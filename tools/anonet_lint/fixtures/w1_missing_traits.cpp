// Negative fixture — anonet_lint MUST flag this file under rule W1.
//
// An agent whose Message is reachable from send() but which has NO
// MessageTraits specialization at all: every message that crosses the
// wire layer must be encodable, or the bit-metering and bound-checking
// machinery silently under-counts it. The forward declaration of the
// primary template below is what marks this translation unit as
// participating in the wire layer; the missing specialization for
// UnmeteredAgent::Message is the violation.

#include <cstdint>
#include <vector>

namespace anonet_fixtures {

namespace wire {
template <typename M>
struct MessageTraits;  // primary template: never defined
}  // namespace wire

class UnmeteredAgent {
 public:
  struct Message {
    std::int64_t value;
    std::int64_t round;
  };

  static constexpr bool kParallelSafe = true;

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_, round_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
    ++round_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t round_ = 0;
};

}  // namespace anonet_fixtures
