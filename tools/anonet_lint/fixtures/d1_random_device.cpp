// Negative fixture — anonet_lint MUST flag this file under rule D1.
//
// The agent seeds per-round behavior from std::random_device and the global
// rand() pool: two runs with identical (inputs, schedule, seed) diverge,
// breaking the engine's bitwise-determinism guarantee (the counter-keyed
// RNG exists precisely so no agent ever needs this).

#include <cstdlib>
#include <random>
#include <span>

namespace anonet_fixtures {

class NoisyGossipAgent {
 public:
  struct Message {
    long value = 0;
  };

  static constexpr bool kParallelSafe = true;

  explicit NoisyGossipAgent(long input) : value_(input) {}

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    std::random_device entropy;  // D1: nondeterministic source
    return Message{value_ ^ static_cast<long>(entropy())};
  }

  void receive(std::span<const Message> messages) {
    for (const Message& m : messages) {
      if (rand() % 2 == 0) {  // D1: hidden-state global RNG
        value_ ^= m.value;
      }
    }
  }

 private:
  long value_;
};

}  // namespace anonet_fixtures
