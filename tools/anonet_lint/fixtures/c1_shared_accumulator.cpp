// Negative fixture — anonet_lint MUST flag this file under rule C1.
//
// A parallel_blocks callback accumulating into a shared, non-atomic,
// non-padded variable captured by reference: every block races on
// `total`, and even when the increments happen to survive, the loss is
// silent and run-dependent. The sanctioned pattern (accumulate into a
// lambda-local, then store into a per-block alignas(64) slot) is what the
// real executor uses; this fixture is the anti-pattern C1 exists to
// catch.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace anonet_fixtures {

struct FakePool {
  void parallel_blocks(std::size_t blocks,
                       const std::function<void(std::size_t)>& fn) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
  }
};

inline std::int64_t racy_sum(const std::vector<std::int64_t>& values,
                             FakePool& pool) {
  std::int64_t total = 0;
  const std::size_t blocks = 4;
  pool.parallel_blocks(blocks, [&](std::size_t b) {
    const std::size_t begin = b * values.size() / blocks;
    const std::size_t end = (b + 1) * values.size() / blocks;
    for (std::size_t i = begin; i < end; ++i) {
      total += values[i];  // C1: shared mutable accumulator, no atomics
    }
  });
  return total;
}

}  // namespace anonet_fixtures
