// Negative fixture — anonet_lint MUST flag this file under rule F1.
//
// Floating-point accumulation across parallel blocks through an
// atomic<double> fetch_add: the atomic removes the data race (so C1 is
// satisfied) but NOT the ordering dependence — FP addition is not
// associative, so the final sum depends on the interleaving of blocks
// and differs run to run. Determinism of the reproduction requires
// block-ordered reduction: accumulate per block, then combine in block
// index order on the calling thread.

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace anonet_fixtures {

struct FakePool {
  void parallel_blocks(std::size_t blocks,
                       const std::function<void(std::size_t)>& fn) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
  }
};

inline double drifting_mean(const std::vector<double>& values,
                            FakePool& pool) {
  std::atomic<double> sum{0.0};
  const std::size_t blocks = 4;
  pool.parallel_blocks(blocks, [&](std::size_t b) {
    const std::size_t begin = b * values.size() / blocks;
    const std::size_t end = (b + 1) * values.size() / blocks;
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) local += values[i];
    sum.fetch_add(local);  // F1: interleaving-ordered FP reduction
  });
  return sum.load() / static_cast<double>(values.size());
}

}  // namespace anonet_fixtures
