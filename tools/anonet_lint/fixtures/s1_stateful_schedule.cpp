// Negative fixture — anonet_lint MUST flag this file under rule S1.
//
// The schedule caches a mersenne twister as a member and advances it inside
// at(): querying rounds 1,2,3 yields different graphs than querying 3,2,1
// or 3 alone, so the topology is a function of call history rather than
// (constructor arguments, t). Replays, the round cache, the persistent
// worker pool and resume-from-JSONL all assume the opposite. The sanctioned
// pattern (a LOCAL generator keyed by mix_seed(seed, t), as in
// RandomSymmetricSchedule::at) appears below and must NOT fire.

#include <cstdint>
#include <random>

namespace anonet_fixtures {

using Vertex = int;

struct Digraph {
  Vertex n = 0;
};

class DynamicGraph {
 public:
  virtual ~DynamicGraph() = default;
  [[nodiscard]] virtual Vertex vertex_count() const = 0;
  [[nodiscard]] virtual Digraph at(int t) const = 0;
};

inline std::uint64_t mix_seed(std::uint64_t seed, int t) {
  return seed ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ull);
}

// S1: the member engine makes at(t) depend on every earlier query.
class DriftingSchedule final : public DynamicGraph {
 public:
  DriftingSchedule(Vertex n, std::uint64_t seed) : n_(n), rng_(seed) {}

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int /*t*/) const override {
    return Digraph{static_cast<Vertex>(rng_() % n_)};
  }

 private:
  Vertex n_;
  mutable std::mt19937_64 rng_;  // S1: stateful generator member
};

// Clean: the generator is local to the round builder and keyed on (seed, t),
// so the same round always reproduces the same graph.
class PureSchedule final : public DynamicGraph {
 public:
  PureSchedule(Vertex n, std::uint64_t seed) : n_(n), seed_(seed) {}

  [[nodiscard]] Vertex vertex_count() const override { return n_; }
  [[nodiscard]] Digraph at(int t) const override {
    std::mt19937_64 rng(mix_seed(seed_, t));
    return Digraph{static_cast<Vertex>(rng() % n_)};
  }

 private:
  Vertex n_;
  std::uint64_t seed_;
};

}  // namespace anonet_fixtures
