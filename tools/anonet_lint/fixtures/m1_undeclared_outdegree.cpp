// Negative fixture — anonet_lint MUST flag this file under rule M1.
//
// The agent consumes its outdegree parameter (a 1/d mass split, Push-Sum
// style) but declares no ModelCapabilities at all. Under kSimpleBroadcast
// the executor hands send() an outdegree of 0 — the division silently
// produces inf/nan and the "algorithm" computes garbage while appearing to
// run under a model where Theorem 4.1 says frequency computation is
// impossible. The missing annotation is exactly what M1 exists to catch.

#include <span>

namespace anonet_fixtures {

class StealthOutdegreeAgent {
 public:
  struct Message {
    double y_share = 0.0;
  };

  explicit StealthOutdegreeAgent(double value) : y_(value) {}

  // M1: names (and uses) `outdegree` without declaring kNeedsOutdegree.
  [[nodiscard]] Message send(int outdegree, int /*port*/) const {
    return Message{y_ / outdegree};
  }

  void receive(std::span<const Message> messages) {
    y_ = 0.0;
    for (const Message& m : messages) y_ += m.y_share;
  }

 private:
  double y_;
};

}  // namespace anonet_fixtures
