// Negative fixture — anonet_lint MUST flag this file under rule W1.
//
// The raw-payload escape: PayloadAgent has a COMPLETE MessageTraits codec,
// yet pack_payload_frame() smuggles its Message across a byte boundary
// with std::memcpy — the bits on the wire are whatever the ABI says, not
// what the codec (and the bandwidth meter) says. That statement is the one
// W1 finding here. The two legitimate neighbors stay silent: the transport
// *control* frame (HelloFrame, not an agent message) may be packed by
// hand, and the MessageTraits-routed encode path is the sanctioned way for
// the same Message to reach bytes.

#include <cstdint>
#include <cstring>
#include <vector>

namespace anonet_fixtures {

namespace wire {

template <typename M>
struct MessageTraits;  // primary template: never defined

struct BitWriter {
  void write_svarint(std::int64_t) {}
};
struct BitReader {
  [[nodiscard]] std::int64_t read_svarint() { return 0; }
};

}  // namespace wire

class PayloadAgent {
 public:
  struct Message {
    std::int64_t value;
    std::int64_t round;
  };

  static constexpr bool kParallelSafe = true;

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{value_, round_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) value_ += m.value;
    ++round_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t round_ = 0;
};

namespace wire {

template <>
struct MessageTraits<PayloadAgent::Message> {
  [[nodiscard]] static std::int64_t encoded_bits(
      const PayloadAgent::Message&) {
    return 128;
  }

  static void encode(const PayloadAgent::Message& m, BitWriter& sink) {
    sink.write_svarint(m.value);
    sink.write_svarint(m.round);
  }

  [[nodiscard]] static PayloadAgent::Message decode(BitReader& src) {
    PayloadAgent::Message m{};
    m.value = src.read_svarint();
    m.round = src.read_svarint();
    return m;
  }
};

}  // namespace wire

// A transport control frame: plain protocol plumbing, not an agent
// message. Hand-packing it is allowed — control frames have no
// MessageTraits obligation and no bandwidth-meter semantics.
struct HelloFrame {
  std::uint32_t magic;
  std::uint16_t version;
};

inline void pack_control_frame(const HelloFrame& hello,
                               std::vector<std::uint8_t>& out) {
  out.resize(sizeof(hello));
  std::memcpy(out.data(), &hello, sizeof(hello));  // exempt: control frame
}

// VIOLATION: the agent payload bypasses its codec. The meter charges
// encoded_bits() = 128 bits; this puts sizeof(Message) ABI bytes on the
// wire instead.
inline void pack_payload_frame(const PayloadAgent::Message& message,
                               std::vector<std::uint8_t>& out) {
  out.resize(sizeof(message));
  std::memcpy(out.data(), &message, sizeof(PayloadAgent::Message));
}

// The sanctioned route for the same message: statements that go through
// the codec are exempt even though they name PayloadAgent::Message.
inline void pack_payload_frame_properly(const PayloadAgent::Message& message,
                                        wire::BitWriter& sink) {
  wire::MessageTraits<PayloadAgent::Message>::encode(message, sink);
}

}  // namespace anonet_fixtures
