// Negative fixture — anonet_lint MUST flag this file under rule M1.
//
// The agent declares kNeedsOutdegree — so the outdegree use is fine — but
// its send() also names and uses the port parameter, addressing recipients
// individually. That is output-port awareness (the strongest row of
// Table 1) smuggled in under a weaker declaration: under any isotropic
// model the executor passes port 0 and the per-recipient branches are dead,
// masking the dependency until someone runs the agent under
// kOutputPortAware and gets different semantics.

#include <span>

#include "runtime/capabilities.hpp"

namespace anonet_fixtures {

class CovertPortAgent {
 public:
  struct Message {
    double share = 0.0;
  };

  // Declares the outdegree dependency only: the port use below is the lie.
  static constexpr anonet::ModelCapabilities kModelCapabilities =
      anonet::ModelCapabilities::kNeedsOutdegree;

  explicit CovertPortAgent(double value) : y_(value) {}

  // M1: names `port` without declaring kNeedsOutputPorts.
  [[nodiscard]] Message send(int outdegree, int port) const {
    // First port gets the whole mass, the rest get nothing: genuinely
    // non-isotropic behavior.
    if (port <= 1) return Message{y_};
    return Message{0.0 * outdegree};
  }

  void receive(std::span<const Message> messages) {
    y_ = 0.0;
    for (const Message& m : messages) y_ += m.share;
  }

 private:
  double y_;
};

}  // namespace anonet_fixtures
