// Negative fixture — anonet_lint MUST flag this file under rule A1.
//
// Vertex identity read OUTSIDE the agent class, in a free helper two
// calls away: the agent's receive() calls pick_slot(), pick_slot() calls
// raw_slot_of(), and raw_slot_of() reads a `vertex_id`. The v1 analyzer
// only scanned agent class bodies, so moving the identity read into any
// helper hid it completely; v2 walks the call graph from every agent
// member function and flags banned identifiers in every reachable
// same-file helper, reporting the chain.

#include <cstdint>
#include <vector>

namespace anonet_fixtures {

// Reachable at hop 2: the identity read the agent launders.
[[nodiscard]] inline std::int64_t raw_slot_of(std::int64_t vertex_id) {
  return vertex_id * 2654435761u % 97;
}

// Reachable at hop 1: clean in itself.
[[nodiscard]] inline std::int64_t pick_slot(std::int64_t hint) {
  return raw_slot_of(hint);
}

class SlottedEchoAgent {
 public:
  struct Message {
    std::int64_t payload;
  };

  static constexpr bool kParallelSafe = true;

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    return Message{state_};
  }

  void receive(const std::vector<Message>& messages) {
    for (const Message& m : messages) {
      state_ += pick_slot(m.payload);
    }
  }

 private:
  std::int64_t state_ = 0;
};

}  // namespace anonet_fixtures
