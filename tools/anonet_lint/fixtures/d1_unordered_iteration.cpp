// Negative fixture — anonet_lint MUST flag this file under rule D1.
//
// The agent accumulates counts in an unordered_map and walks it when
// building its outgoing message: bucket order is implementation-defined, so
// the message payload (and everything downstream of it) varies across
// standard libraries and hash seeds even though the multiset of entries is
// identical. The library's ordered-map house style exists to rule this out.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace anonet_fixtures {

class UnorderedCensusAgent {
 public:
  struct Message {
    std::vector<std::int64_t> values;
  };

  explicit UnorderedCensusAgent(std::int64_t input) { counts_[input] = 1; }

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    Message out;
    for (const auto& entry : counts_) {  // D1: unordered iteration
      out.values.push_back(entry.first);
    }
    return out;
  }

  void receive(std::span<const Message> messages) {
    for (const Message& m : messages) {
      for (std::int64_t v : m.values) counts_[v] += 1;
    }
  }

 private:
  std::unordered_map<std::int64_t, int> counts_;
};

}  // namespace anonet_fixtures
