// Negative fixture — anonet_lint MUST flag this file under rule A1.
//
// The agent smuggles its executor vertex index into its state and messages.
// Anonymity is the paper's ground rule (Section 2.1): agents are identical
// deterministic automata, and an algorithm that reads a vertex id is
// solving a different — much easier — problem (it gets leader election for
// free). Nothing in the Executor API hands an agent its index; this fixture
// models the contributor who plumbs it through a constructor anyway.

#include <cstdint>
#include <span>

namespace anonet_fixtures {

using Vertex = std::int32_t;

class IdentityLeakAgent {
 public:
  struct Message {
    std::int64_t value = 0;
  };

  IdentityLeakAgent(std::int64_t input, Vertex vertex_id)  // A1: vertex index
      : value_(input), self_(vertex_id) {}

  [[nodiscard]] Message send(int /*outdegree*/, int /*port*/) const {
    // A1: branching on the executor index breaks anonymity — vertex 0
    // elects itself leader, which no anonymous algorithm can do.
    if (self_ == 0) return Message{-1};
    return Message{value_};
  }

  void receive(std::span<const Message> messages) {
    for (const Message& m : messages) {
      if (m.value < value_) value_ = m.value;
    }
  }

 private:
  std::int64_t value_;
  Vertex self_;  // A1: stored executor identity
};

}  // namespace anonet_fixtures
