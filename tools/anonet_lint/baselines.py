"""Machine-readable findings, fingerprints, and the CI ratchet.

A finding's *fingerprint* is content-addressed: sha1 over (repo-relative
path, rule, message, per-message ordinal). Messages name classes, helpers
and parameters rather than line numbers, so fingerprints survive unrelated
line drift — inserting a comment above a finding does not make it "new".

The baseline file (tools/anonet_lint/baseline.json) is the checked-in set
of *accepted* findings, each carrying a justification. Ratchet mode
(--baseline) subtracts baselined fingerprints and fails only on what is
left: CI goes red on a new finding, stays green on the known ones, and
notes stale entries so the baseline only ever shrinks.
"""

from __future__ import annotations

import hashlib
import json
import os

BASELINE_VERSION = 1
UNJUSTIFIED = "UNJUSTIFIED: add a justification before committing"


def repo_relative(path: str, root: str | None = None) -> str:
    root = root or find_repo_root(path)
    if root:
        try:
            rel = os.path.relpath(os.path.abspath(path), root)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def find_repo_root(path: str) -> str | None:
    cur = os.path.abspath(path)
    if os.path.isfile(cur):
        cur = os.path.dirname(cur)
    while True:
        if os.path.isdir(os.path.join(cur, ".git")):
            return cur
        nxt = os.path.dirname(cur)
        if nxt == cur:
            return None
        cur = nxt


def fingerprint_findings(findings, root: str | None = None):
    """[(finding, fingerprint)] with stable per-message ordinals."""
    seen: dict[str, int] = {}
    out = []
    for f in findings:
        rel = repo_relative(f.path, root)
        base = f"{rel}|{f.rule}|{f.message}"
        ordinal = seen.get(base, 0)
        seen[base] = ordinal + 1
        digest = hashlib.sha1(
            f"{base}|{ordinal}".encode("utf-8")).hexdigest()[:16]
        out.append((f, digest))
    return out


def findings_json(findings, root: str | None = None):
    return [{
        "path": repo_relative(f.path, root),
        "line": f.line,
        "rule": f.rule,
        "message": f.message,
        "hops": f.hops,
        "fingerprint": fp,
    } for f, fp in fingerprint_findings(findings, root)]


def write_findings_json(path: str, findings, root: str | None = None):
    payload = {"version": BASELINE_VERSION,
               "findings": findings_json(findings, root)}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"baseline {path}: unsupported version "
                         f"{data.get('version')!r}")
    return {e["fingerprint"]: e for e in data.get("findings", [])}


def apply_baseline(findings, baseline: dict, root: str | None = None):
    """(new, suppressed, stale_entries)."""
    fingered = fingerprint_findings(findings, root)
    new = [(f, fp) for f, fp in fingered if fp not in baseline]
    suppressed = [(f, fp) for f, fp in fingered if fp in baseline]
    present = {fp for _f, fp in fingered}
    stale = [e for fp, e in sorted(baseline.items()) if fp not in present]
    return new, suppressed, stale


def update_baseline(path: str, findings, root: str | None = None):
    """Rewrite the baseline to the current finding set, keeping existing
    justifications and marking genuinely new entries UNJUSTIFIED."""
    old = {}
    if os.path.isfile(path):
        try:
            old = load_baseline(path)
        except (ValueError, json.JSONDecodeError):
            old = {}
    entries = []
    for f, fp in fingerprint_findings(findings, root):
        entry = {
            "fingerprint": fp,
            "path": repo_relative(f.path, root),
            "rule": f.rule,
            "message": f.message,
            "justification": old.get(fp, {}).get("justification",
                                                 UNJUSTIFIED),
        }
        entries.append(entry)
    entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entries
