"""Rule families for anonet_lint v2.

  D1 determinism       banned nondeterministic sources; iteration over
                       unordered containers, including behind type aliases
                       and auto&/auto value aliases.
  A1 anonymity         agent code must not observe executor vertex
                       identity — checked in agent class bodies AND in
                       free helpers (same file) reachable through the
                       call graph from agent member functions.
  P1 parallel safety   kParallelSafe agents must not hold shared state.
  M1 model capability  send() may only consume its outdegree/port
                       parameters under the matching ModelCapabilities
                       declaration; taint follows pure forwards through
                       helpers/lambdas/out-of-line template definitions
                       to any depth, and pure forwarding into a
                       capability-declared agent is whitelisted. Also
                       catches the side door: audience information
                       (out_degree & friends) flowing through helper
                       chains *into* a non-declaring agent's methods.
  W1 wire integrity    every agent Message reachable from send() must
                       have a MessageTraits specialization, with
                       encode/decode/encoded_bits defined together; core
                       agents must register with the static_audit
                       X-macro list (active only when the wire layer /
                       audit registry are in the scanned set).
  C1 parallel phase    state written from parallel_blocks/parallel block
                       callbacks must be lambda-local, per-slot
                       (subscripted), atomic, or cache-line padded.
  F1 float order       floating-point accumulation inside pooled phases
                       must go through block-ordered partials — atomic
                       fetch_add on FP or shared FP += breaks bitwise
                       replay even when C1-safe.
  S1 schedule purity   DynamicGraph subclasses must not hold stateful
                       generator members: at(t) is contractually a pure
                       function of (constructor arguments, t), and an
                       advancing member RNG makes the topology depend on
                       call history and replay order. Per-call local
                       generators keyed by mix_seed(seed, t) stay legal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from callgraph import CallGraph, extract_calls
from frontend import (ProgramIndex, WORD_RE, line_of, match_delim,
                      next_nonspace, next_token, param_names, split_top_level)

ALL_RULES = ("D1", "A1", "P1", "M1", "W1", "C1", "F1", "S1")

# --- D1 banned tokens --------------------------------------------------------

D1_BANNED_TYPES = {
    "random_device": "std::random_device is nondeterministic; derive streams "
                     "from a seeded generator or support/counter_rng.hpp",
    "system_clock": "wall-clock time is not reproducible; only "
                    "std::chrono::steady_clock may be read (timings are "
                    "measurements, not semantics)",
    "high_resolution_clock": "high_resolution_clock may alias system_clock; "
                             "use std::chrono::steady_clock",
}

D1_BANNED_CALLS = {
    "rand": "rand() is a hidden-state global RNG; use a seeded generator",
    "srand": "srand() mutates global RNG state",
    "rand_r": "rand_r() is a nondeterministic-seed idiom; use a seeded "
              "generator",
    "random": "random() is a hidden-state global RNG",
    "drand48": "drand48() is a hidden-state global RNG",
    "lrand48": "lrand48() is a hidden-state global RNG",
    "mrand48": "mrand48() is a hidden-state global RNG",
    "time": "time() reads the wall clock; executions must be a pure function "
            "of (inputs, schedule, seed)",
    "clock": "clock() reads processor time; not reproducible",
    "gettimeofday": "gettimeofday() reads the wall clock",
    "timespec_get": "timespec_get() reads the wall clock",
    "getenv": "getenv() makes behavior depend on the environment",
}

# A1: spellings of an executor vertex identity inside agent code.
A1_BANNED = {
    "Vertex", "VertexId", "vertex_id", "vertex_index", "node_id",
    "agent_index", "self_index", "my_id",
}

# S1: schedule classes (anything deriving from DynamicGraph) must keep at(t)
# a pure function of (constructor arguments, t). Any of these engine types
# held as a *member* advances state across calls, so the emitted topology
# would depend on how many rounds were queried before — and in what order.
S1_STATEFUL_RNGS = (
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24", "ranlux24_base",
    "ranlux48", "ranlux48_base", "linear_congruential_engine",
    "mersenne_twister_engine", "subtract_with_carry_engine",
)
S1_SCHEDULE_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(\w+)[^{;]*?:\s*[^{;]*\bDynamicGraph\b[^{;]*\{")
S1_RNG_RE = re.compile(r"\b(" + "|".join(S1_STATEFUL_RNGS) + r")\b")

# C1: member calls that mutate their object.
MUTATOR_METHODS = {
    "push_back", "emplace_back", "emplace", "insert", "erase", "clear",
    "resize", "append", "write", "add", "store", "exchange", "assign",
    "pop_back", "push", "pop", "reserve",
}
FP_ACCUM_METHODS = {"fetch_add", "fetch_sub"}

ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)"                       # target base identifier
    r"((?:\s*\.\s*[A-Za-z_]\w*)*)"            # optional .field chain
    r"\s*(\[[^\]]*\])?"                       # optional subscript
    r"\s*(\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|=(?![=]))")
INCR_RE = re.compile(r"(?:\+\+|--)\s*([A-Za-z_]\w*)|"
                     r"\b([A-Za-z_]\w*)\s*(?:\+\+|--)")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}(])\s*(?:const\s+)?"
    r"(?:auto|int|bool|long|float|double|unsigned|std\s*::\s*[\w:]+"
    r"(?:<[^;]*?>)?|[A-Z]\w*(?:<[^;]*?>)?)"
    r"[\s&*]+([A-Za-z_]\w*)\s*[=;{(,]")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    hops: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class RuleEngine:
    def __init__(self, index: ProgramIndex, max_hops: int = 8,
                 rules=ALL_RULES):
        self.index = index
        self.graph = CallGraph(index)
        self.max_hops = max_hops
        self.rules = set(rules)
        self.findings: list[Finding] = []

    def report(self, scan, offset: int, rule: str, message: str,
               hops: int = 0):
        line = line_of(scan.text, offset)
        if rule in scan.suppressed.get(line, set()):
            return
        self.findings.append(Finding(scan.path, line, rule, message, hops))

    def run(self):
        if "D1" in self.rules:
            for scan in self.index.scans:
                self.rule_d1(scan)
        if "A1" in self.rules:
            self.rule_a1()
        if "P1" in self.rules:
            self.rule_p1()
        if "M1" in self.rules:
            self.rule_m1()
            self.rule_m1_side_door()
        if "W1" in self.rules:
            self.rule_w1()
        if "C1" in self.rules or "F1" in self.rules:
            self.rule_c1_f1()
        if "S1" in self.rules:
            for scan in self.index.scans:
                self.rule_s1(scan)
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    # --- D1 -----------------------------------------------------------------

    def rule_d1(self, scan):
        text = scan.text
        for m in WORD_RE.finditer(text):
            word = m.group(0)
            if word in D1_BANNED_TYPES:
                self.report(scan, m.start(), "D1",
                            f"use of {word}: {D1_BANNED_TYPES[word]}")
            elif word in D1_BANNED_CALLS:
                after = next_nonspace(text, m.end())
                before = text[m.start() - 1] if m.start() > 0 else " "
                if after < len(text) and text[after] == "(" and before != ".":
                    self.report(scan, m.start(), "D1",
                                f"call to {word}(): {D1_BANNED_CALLS[word]}")

        unordered_names = self.index.unordered_vars.get(scan.path, set())
        if not unordered_names:
            return
        for m in re.finditer(r"\bfor\s*\(", text):
            p_open = text.index("(", m.start())
            p_close = match_delim(text, p_open, "(", ")")
            header = text[p_open + 1:p_close - 1]
            colon = _top_level_colon(header)
            if colon < 0:
                continue
            range_words = set(WORD_RE.findall(header[colon + 1:]))
            hits = range_words & unordered_names
            if hits:
                self.report(
                    scan, m.start(), "D1",
                    f"range-for over unordered container '{sorted(hits)[0]}':"
                    " bucket order is implementation-defined and leaks into "
                    "whatever this loop constructs; iterate a sorted copy or "
                    "an ordered container")
        for name in unordered_names:
            for m in re.finditer(
                    rf"\b{re.escape(name)}\s*\.\s*(?:begin|cbegin)\s*\(",
                    text):
                self.report(
                    scan, m.start(), "D1",
                    f"iteration over unordered container '{name}' via "
                    "begin(): bucket order is implementation-defined")

    # --- A1 -----------------------------------------------------------------

    def rule_a1(self):
        for info in self.index.classes.values():
            if not info.is_agent:
                continue
            for scan, body, base in info.bodies:
                for m in WORD_RE.finditer(body):
                    if m.group(0) in A1_BANNED:
                        self.report(
                            scan, base + m.start(), "A1",
                            f"agent class {info.name} reads "
                            f"'{m.group(0)}': agents are anonymous automata "
                            "and must not observe executor vertex indices "
                            "(Section 2.1)")
            # Transitive: free helpers (same file) reachable from agent
            # member functions must not read vertex identity either.
            flagged = set()
            for fns in info.methods.values():
                for fn in fns:
                    if not fn.body:
                        continue
                    for helper, hops, path in \
                            self.graph.reachable_free_functions(
                                fn, self.max_hops):
                        if id(helper) in flagged:
                            continue
                        for m in WORD_RE.finditer(helper.body):
                            if m.group(0) in A1_BANNED:
                                flagged.add(id(helper))
                                self.report(
                                    helper.scan,
                                    helper.body_offset + m.start(), "A1",
                                    f"helper '{helper.qualname}' reads "
                                    f"'{m.group(0)}' and is reachable from "
                                    f"agent {info.name} via "
                                    f"{' -> '.join(path)} ({hops} hop(s)): "
                                    "agents are anonymous automata and must "
                                    "not observe executor vertex indices, "
                                    "directly or through helpers",
                                    hops=hops)
                                break

    # --- P1 -----------------------------------------------------------------

    def rule_p1(self):
        for info in self.index.classes.values():
            if not info.parallel_safe:
                continue
            for scan, body, base in info.bodies:
                for m in re.finditer(r"\bstatic\b", body):
                    word, _ = next_token(body, m.end())
                    if word in {"constexpr", "const", "consteval",
                                "constinit"}:
                        continue
                    self.report(
                        scan, base + m.start(), "P1",
                        f"{info.name} declares kParallelSafe but introduces "
                        "non-constant static state: static storage is shared "
                        "between agents and races under the thread-parallel "
                        "round phases")
                for m in re.finditer(r"\bshared_ptr\s*<", body):
                    self.report(
                        scan, base + m.start(), "P1",
                        f"{info.name} declares kParallelSafe but holds a "
                        "shared_ptr: state reachable from several agents "
                        "must not be touched in parallel round hooks (cf. "
                        "MinBaseAgent, which stays serial for exactly this "
                        "reason)")

    # --- M1: send()-parameter taint -----------------------------------------

    def rule_m1(self):
        for info in self.index.classes.values():
            if not info.is_agent or "send" not in info.methods:
                continue
            caps = info.capabilities
            if "kModelPolymorphic" in caps:
                continue
            missing = (" (the class declaration was not scanned; declare the "
                       "capability where the class is defined)"
                       if info.declaration_missing else "")
            for position, cap, what in ((0, "kNeedsOutdegree", "outdegree"),
                                        (1, "kNeedsOutputPorts", "port")):
                if cap in caps:
                    continue
                for send_def in info.methods["send"]:
                    if not send_def.body:
                        continue
                    names = send_def.param_names
                    if position >= len(names) or not names[position]:
                        continue
                    for fn, occ, kind, hops, path in \
                            self.graph.trace_param_taint(
                                send_def, names[position], cap,
                                self.max_hops):
                        chain = " -> ".join(path)
                        if kind == "unknown-callee":
                            detail = ("forwards it into a call the index "
                                      "cannot resolve")
                        else:
                            detail = "consumes it"
                        self.report(
                            fn.scan, fn.body_offset + occ, "M1",
                            f"{info.name}::send receives the {what} "
                            f"parameter and {chain} {detail} without the "
                            f"class declaring ModelCapabilities::{cap} — "
                            "renaming and forwarding does not change what "
                            "the sending function observes (Table 1)"
                            f"{missing}", hops=hops)

    # --- M1 side door: audience info flowing INTO a non-declaring agent -----

    def rule_m1_side_door(self):
        tainted = self.graph.audience_tainted_functions(self.max_hops)
        agent_classes = {name: info
                         for name, info in self.index.classes.items()
                         if info.is_agent and
                         "kModelPolymorphic" not in info.capabilities}
        if not agent_classes:
            return
        for fn in self.graph._iter_functions():
            # The runtime layer IS the model: the executor feeding send()
            # its outdegree argument is the contract, not a leak.
            if "/src/runtime/" in fn.scan.path.replace("\\", "/"):
                continue
            # Taint local variables initialized from tainted expressions.
            tainted_vars = set()
            for m in re.finditer(r"\b([A-Za-z_]\w*)\s*=\s*([^;]+);",
                                 fn.body):
                expr = m.group(2)
                if self._expr_audience_tainted(expr, tainted):
                    tainted_vars.add(m.group(1))
            for call in self.graph.calls_of(fn):
                if call.receiver is None:
                    continue
                cls = self.graph.receiver_class(fn, call.receiver)
                if cls is None or cls not in agent_classes:
                    continue
                info = agent_classes[cls]
                if "kNeedsOutdegree" in info.capabilities:
                    continue
                for text, a, b in call.args:
                    hops = self._arg_audience_hops(text, tainted,
                                                   tainted_vars)
                    if hops is None:
                        continue
                    self.report(
                        fn.scan, fn.body_offset + call.offset, "M1",
                        f"audience information (degree of a vertex) flows "
                        f"into {cls}::{call.callee}() through "
                        f"'{text}' ({hops} hop(s) of helpers), but {cls} "
                        "does not declare "
                        "ModelCapabilities::kNeedsOutdegree — feeding an "
                        "agent its audience size through a side door "
                        "proves a theorem Table 1 forbids", hops=hops)

    def _expr_audience_tainted(self, expr: str, tainted) -> bool:
        for call in extract_calls(expr):
            if call.callee in tainted or call.callee in {
                    "out_degree", "in_degree", "outdegree", "indegree"}:
                return True
        return False

    def _arg_audience_hops(self, arg: str, tainted, tainted_vars):
        for call in extract_calls(arg):
            if call.callee in {"out_degree", "in_degree", "outdegree",
                               "indegree"}:
                return 0
            if call.callee in tainted:
                return tainted[call.callee][0]
        for w in WORD_RE.findall(arg):
            if w in tainted_vars:
                return 1
        return None

    # --- W1 -----------------------------------------------------------------

    def rule_w1(self):
        if not self.index.has_wire_layer:
            return  # wire layer out of scope (e.g. a standalone D1 fixture)
        for info in self.index.classes.values():
            if not (info.is_agent and info.has_message and info.has_send):
                continue
            specs = self.index.traits_specs.get(info.name, [])
            scan, _body, base = info.bodies[0] if info.bodies else \
                (None, "", 0)
            if not specs:
                if scan is None:
                    continue
                self.report(
                    scan, base, "W1",
                    f"{info.name}::Message is reachable from send() but has "
                    "no MessageTraits specialization: every message that "
                    "can cross the channel must have a canonical wire "
                    "format (wire/codecs.hpp), or bandwidth metering and "
                    "bounded channels silently lie")
                continue
            for spec in specs:
                missing = [m for m in ("encoded_bits", "encode", "decode")
                           if not spec.defines(m)]
                if missing:
                    self.report(
                        spec.scan, spec.offset, "W1",
                        f"MessageTraits<{info.name}::Message> defines only "
                        "part of the codec (missing: "
                        f"{', '.join(missing)}): encoded_bits/encode/decode "
                        "must be defined together — a size without a codec "
                        "(or vice versa) lets measured and transported bits "
                        "disagree")
        self._rule_w1_raw_payload()
        # Registry mirror: when the static_audit X-macro list is in scope,
        # every core agent must appear in it and register in its header.
        if not self.index.audit_list_seen:
            return
        listed = set(self.index.audit_list)
        for info in self.index.classes.values():
            if not (info.is_agent and info.has_message and info.has_send):
                continue
            core_bodies = [(s, b, o) for s, b, o in info.bodies
                           if "/src/core/" in s.path.replace("\\", "/")]
            if not core_bodies:
                continue
            scan, _body, base = core_bodies[0]
            if info.name not in listed:
                self.report(
                    scan, base, "W1",
                    f"core agent {info.name} is missing from "
                    "ANONET_CORE_AGENT_LIST (src/runtime/static_audit.hpp): "
                    "the compile-time audit cannot vouch for an unlisted "
                    "agent")
            if not info.audit_registered:
                self.report(
                    scan, base, "W1",
                    f"core agent {info.name} does not invoke "
                    "ANONET_STATIC_AUDIT_DECLARATIONS in its header: the "
                    "declaration audit must run where the class is defined")

    # Raw-payload escape (transport hardening): a statement that pushes an
    # agent's Message across a byte boundary with memcpy / reinterpret_cast /
    # bit_cast bypasses the canonical codec — the bits on the wire are no
    # longer the bits the bandwidth meter charges, and layout becomes ABI-
    # dependent. Agent payloads must route through MessageTraits
    # (wire::encode / wire::decode / make_message_frame); statements that
    # mention those are exempt, and transport *control* frames (HELLO,
    # ASSIGN, ... — structs of non-agent classes) never match because the
    # pattern keys on the qualified `<Agent>::Message` spelling.
    def _rule_w1_raw_payload(self):
        agent_names = [info.name for info in self.index.classes.values()
                       if info.is_agent and info.has_message and
                       info.has_send]
        if not agent_names:
            return
        escape_re = re.compile(r"\b(?:memcpy|reinterpret_cast|bit_cast)\b")
        for scan in self.index.scans:
            text = scan.text
            for m in escape_re.finditer(text):
                stmt_start = max(text.rfind(";", 0, m.start()),
                                 text.rfind("{", 0, m.start()),
                                 text.rfind("}", 0, m.start())) + 1
                stmt_end = text.find(";", m.end())
                if stmt_end < 0:
                    stmt_end = len(text)
                stmt = text[stmt_start:stmt_end]
                if ("MessageTraits" in stmt or "wire::encode" in stmt
                        or "wire::decode" in stmt
                        or "make_message_frame" in stmt):
                    continue
                for name in agent_names:
                    if f"{name}::Message" in stmt:
                        self.report(
                            scan, m.start(), "W1",
                            f"raw byte reinterpretation of {name}::Message "
                            "(memcpy/reinterpret_cast/bit_cast) bypasses "
                            "its canonical codec: agent payloads must "
                            "cross byte boundaries through MessageTraits "
                            "(wire::encode/wire::decode); only transport "
                            "control frames may be packed by hand")
                        break

    # --- S1: schedule purity ------------------------------------------------

    def rule_s1(self, scan):
        text = scan.text
        for m in S1_SCHEDULE_CLASS_RE.finditer(text):
            name = m.group(1)
            body_open = m.end() - 1
            body_close = match_delim(text, body_open, "{", "}")
            body = text[body_open + 1:body_close - 1]
            # Blank out nested brace groups (inline member-function bodies,
            # brace initializers) while preserving offsets: a *local*
            # generator keyed by mix_seed(seed, t) inside at()/view() is the
            # sanctioned pattern; only engines stored as members — declared
            # at depth 1 of the class body — persist across calls.
            chars = list(body)
            depth = 0
            for i, c in enumerate(body):
                if c == "{":
                    depth += 1
                    chars[i] = " "
                elif c == "}":
                    depth -= 1
                    chars[i] = " "
                elif depth > 0 and c != "\n":
                    chars[i] = " "
            members_only = "".join(chars)
            for rm in S1_RNG_RE.finditer(members_only):
                self.report(
                    scan, body_open + 1 + rm.start(), "S1",
                    f"schedule class {name} holds a stateful generator "
                    f"member ({rm.group(1)}): DynamicGraph::at(t) must be a "
                    "pure function of (constructor arguments, t), but an "
                    "engine stored in the object advances on every query, "
                    "so the emitted topology depends on call history and "
                    "replay order — key a local generator (or "
                    "support/counter_rng.hpp) on mix_seed(seed, t) inside "
                    "the round builder instead")

    # --- C1 / F1 ------------------------------------------------------------

    def rule_c1_f1(self):
        for scan in self.index.scans:
            text = scan.text
            for m in re.finditer(r"\b(?:parallel_blocks|parallel)\s*\(",
                                 text):
                p_open = text.index("(", m.start())
                p_close = match_delim(text, p_open, "(", ")")
                args_text = text[p_open + 1:p_close - 1]
                lam = re.search(r"\[[^\[\]]*\]", args_text)
                if not lam:
                    continue
                # Lambda parameter list and body, offsets absolute.
                rest = p_open + 1 + lam.end()
                rest = next_nonspace(text, rest)
                lam_params = ""
                if rest < len(text) and text[rest] == "(":
                    pp_close = match_delim(text, rest, "(", ")")
                    lam_params = text[rest + 1:pp_close - 1]
                    rest = pp_close
                body_open = text.find("{", rest)
                if body_open < 0 or body_open > p_close:
                    continue
                body_close = match_delim(text, body_open, "{", "}")
                body = text[body_open:body_close]
                self._check_block_callback(scan, text, body, body_open,
                                           lam_params)

    def _check_block_callback(self, scan, text, body, body_abs, lam_params):
        locals_ = set(param_names(lam_params))
        locals_.discard("")
        for m in LOCAL_DECL_RE.finditer(body):
            locals_.add(m.group(1))
        synchronized = bool(re.search(
            r"lock_guard|scoped_lock|unique_lock", body))

        def decl_text_for(name: str) -> str:
            decl_re = re.compile(rf"[^\n;{{}}]*\b{re.escape(name)}\s*[;=({{]")
            best = ""
            for dm in decl_re.finditer(text):
                if dm.start() < body_abs:
                    best = dm.group(0)
                else:
                    if not best:
                        best = dm.group(0)
                    break
            return best

        def classify(name: str, subscript: str | None, offset: int,
                     op_desc: str, fp_hint: bool):
            if name in locals_ or name == "this":
                return
            if subscript:
                return  # per-slot write: the sanctioned pattern
            decl = decl_text_for(name)
            is_atomic = "atomic" in decl
            is_fp = fp_hint or "double" in decl or "float" in decl
            # Any cross-block FP accumulation that is not a per-slot write
            # breaks the block-ordered reduction contract — atomicity or a
            # lock removes the race but not the ordering dependence.
            if "F1" in self.rules and is_fp:
                if op_desc.startswith(("fetch_", "+=", "-=", "*=", "/=")):
                    self.report(
                        scan, body_abs + offset, "F1",
                        f"floating-point accumulation '{op_desc}' into "
                        f"captured '{name}' inside a parallel block "
                        "callback: claim order is scheduler-dependent, so "
                        "the sum depends on thread interleaving even when "
                        "the access is atomic or locked — accumulate into "
                        "block-indexed partials and reduce serially in "
                        "block order (the executor's Partial pattern)")
                    return
            if "C1" not in self.rules:
                return
            if is_atomic or "alignas" in decl:
                return
            if synchronized and not is_fp:
                return
            self.report(
                scan, body_abs + offset, "C1",
                f"'{name}' is captured and mutated ('{op_desc}') inside a "
                "parallel block callback without being lambda-local, "
                "per-slot (subscripted), atomic, or cache-line padded: "
                "blocks run concurrently, so this races or depends on "
                "claim order — give each block its own alignas(64) "
                "partial and reduce after the phase")

        for m in ASSIGN_RE.finditer(body):
            name, _fields, subscript, op = (m.group(1), m.group(2),
                                            m.group(3), m.group(4))
            prev = body[:m.start()].rstrip()
            # Skip declarations-with-initializer (`int x = ...`) — the
            # target is then local by definition — and comparisons.
            if name in locals_:
                continue
            classify(name, subscript, m.start(), op, fp_hint=False)
        for m in INCR_RE.finditer(body):
            name = m.group(1) or m.group(2)
            classify(name, None, m.start(), "++/--", fp_hint=False)
        for m in re.finditer(
                rf"\b([A-Za-z_]\w*)\s*(->|\.)\s*([A-Za-z_]\w*)\s*\(", body):
            name, arrow, method = m.group(1), m.group(2), m.group(3)
            if method in FP_ACCUM_METHODS:
                classify(name, None, m.start(), method, fp_hint=True)
            elif method in MUTATOR_METHODS or arrow == "->":
                decl = decl_text_for(name) if name not in locals_ else ""
                if arrow == "->" and method not in MUTATOR_METHODS and \
                        "const" in decl:
                    continue
                if method in MUTATOR_METHODS or arrow == "->":
                    classify(name, None, m.start(), f"{method}()",
                             fp_hint=False)


def _top_level_colon(header: str) -> int:
    depth = 0
    for i, c in enumerate(header):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                continue
            if i > 0 and header[i - 1] == ":":
                continue
            return i
    return -1
