#!/usr/bin/env python3
"""anonet-check v2: whole-program model-compliance analysis for anonet.

The library's guarantees are statements about what agent code is *allowed*
to observe (docs/static_analysis.md): deterministic anonymous automata
whose sending functions see exactly what their communication model
provides. v2 enforces the discipline with a proper two-pass front end — a
declaration/definition index plus an interprocedural call graph over the
given roots — so capability taint propagates *transitively* through
helpers, lambdas and out-of-line template definitions instead of the v1
single-hop forwarding heuristic.

Rule families (docs/static_analysis.md has the full table):

  D1 determinism     nondeterministic sources; unordered-container
                     iteration, incl. behind type/auto aliases
  A1 anonymity       vertex identity in agent code or helpers reachable
                     from it through the call graph
  P1 parallel safety kParallelSafe agents must not hold shared state
  M1 model capability send() outdegree/port consumption (any number of
                     forwarding hops) requires the declared capability;
                     pure forwarding into a capability-declared agent is
                     whitelisted; audience info flowing INTO a
                     non-declaring agent through helper chains is caught
  W1 wire integrity  MessageTraits present and complete for every agent
                     Message reachable from send(); core agents must
                     register with the static_audit X-macro list
  C1 parallel phase  shared-mutable state in parallel_blocks callbacks
                     (must be lambda-local, per-slot, atomic, or padded)
  F1 float order     FP accumulation in pooled phases must go through
                     block-ordered partials (bitwise-replay contract)
  S1 schedule purity DynamicGraph subclasses must not hold stateful
                     generator members — at(t) is a pure function of
                     (constructor arguments, t)

Output: human-readable findings by default, `--json FILE` for the
machine-readable form (content-addressed fingerprints). Ratchet:
`--baseline FILE` subtracts the checked-in accepted findings and fails
only on new ones; `--update-baseline` rewrites the file, preserving
justifications. `anonet-lint-allow(RULE)` on the flagged line suppresses
in-source; src/ and examples/ are expected to stay at zero suppressions.

Exit codes: 0 clean (after baseline), 1 findings (or --expect rule did
not fire), 2 usage.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import baselines                              # noqa: E402
from frontend import ProgramIndex, gather_files  # noqa: E402
from rules import ALL_RULES, RuleEngine       # noqa: E402


def build_engine(paths, compile_commands=None, max_hops=8, rules=ALL_RULES):
    """(engine, files, unbuilt) — shared by the CLI and the self-tests."""
    files, unbuilt = gather_files(paths, compile_commands)
    index = ProgramIndex()
    for path in files:
        index.add_file(path)
    index.build()
    engine = RuleEngine(index, max_hops=max_hops, rules=rules)
    engine.run()
    return engine, files, unbuilt


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="anonet_lint",
        description="whole-program model-compliance & determinism lint for "
                    "anonet (rules D1/A1/P1/M1/W1/C1/F1/S1; see "
                    "docs/static_analysis.md)")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="exported compilation database; used to "
                             "cross-check that every linted TU is built")
    parser.add_argument("--expect", metavar="RULE",
                        help="fixture mode: succeed iff at least one "
                             "finding of RULE fires (and print them)")
    parser.add_argument("--rules", metavar="LIST",
                        help="comma-separated rule subset to run "
                             f"(default: {','.join(ALL_RULES)})")
    parser.add_argument("--max-hops", type=int, default=8, metavar="N",
                        help="call-graph taint depth bound (default 8; "
                             "1 approximates the v1 single-hop analysis)")
    parser.add_argument("--json", metavar="FILE", dest="json_out",
                        help="write machine-readable findings (all of "
                             "them, pre-baseline) to FILE")
    parser.add_argument("--baseline", metavar="FILE",
                        help="ratchet mode: fail only on findings absent "
                             "from this checked-in baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline to the current findings, "
                             "preserving existing justifications")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-file summary line")
    args = parser.parse_args(argv)

    rules = ALL_RULES
    if args.rules:
        rules = tuple(r.strip().upper() for r in args.rules.split(","))
        bad = [r for r in rules if r not in ALL_RULES]
        if bad:
            print(f"anonet_lint: unknown rule(s) {','.join(bad)}",
                  file=sys.stderr)
            return 2
    if args.update_baseline and not args.baseline:
        print("anonet_lint: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2

    try:
        engine, files, unbuilt = build_engine(
            args.paths, args.compile_commands, args.max_hops, rules)
    except FileNotFoundError as err:
        print(f"anonet_lint: {err}", file=sys.stderr)
        return 2
    if not files:
        print("anonet_lint: no C++ sources found under given paths",
              file=sys.stderr)
        return 2
    findings = engine.findings
    root = baselines.find_repo_root(files[0])

    if args.json_out:
        baselines.write_findings_json(args.json_out, findings, root)

    if args.expect:
        for f in findings:
            print(f.render())
        fired = sorted({f.rule for f in findings})
        if args.expect in fired:
            if not args.quiet:
                print(f"anonet_lint: expected rule {args.expect} fired "
                      f"({len(findings)} finding(s))")
            return 0
        print(f"anonet_lint: expected rule {args.expect} did NOT fire "
              f"(fired: {fired or 'none'})", file=sys.stderr)
        return 1

    if args.update_baseline:
        entries = baselines.update_baseline(args.baseline, findings, root)
        unjustified = sum(1 for e in entries
                          if e["justification"] == baselines.UNJUSTIFIED)
        print(f"anonet_lint: baseline {args.baseline} updated "
              f"({len(entries)} finding(s), {unjustified} unjustified)")
        return 0

    if args.baseline:
        try:
            baseline = baselines.load_baseline(args.baseline)
        except (OSError, ValueError) as err:
            print(f"anonet_lint: cannot load baseline: {err}",
                  file=sys.stderr)
            return 2
        new, suppressed, stale = baselines.apply_baseline(
            findings, baseline, root)
        for f, fp in new:
            print(f"{f.render()}  [new, fingerprint {fp}]")
        for entry in stale:
            print(f"note: stale baseline entry {entry['fingerprint']} "
                  f"({entry['rule']} in {entry['path']}): the finding no "
                  "longer fires — remove it with --update-baseline")
        for path in unbuilt:
            print(f"note: {path} is not in the compilation database "
                  "(linted anyway)")
        if new:
            print(f"anonet_lint: {len(new)} NEW finding(s) not in baseline "
                  f"({len(suppressed)} baselined, {len(stale)} stale)",
                  file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"anonet_lint: clean ({len(files)} files, "
                  f"{len(suppressed)} baselined finding(s), "
                  f"{len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'}"
                  ")")
        return 0

    for f in findings:
        print(f.render())
    for path in unbuilt:
        print(f"note: {path} is not in the compilation database "
              "(linted anyway)")
    if findings:
        print(f"anonet_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"anonet_lint: clean ({len(files)} files, rules "
              f"{'/'.join(rules)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
