#!/usr/bin/env python3
"""anonet-check: model-compliance & determinism static analysis for anonet.

The library's guarantees are statements about what agent code is *allowed*
to observe (docs/static_analysis.md): deterministic anonymous automata whose
sending functions see exactly what their communication model provides. This
tool enforces the discipline syntactically, over `src/` and `examples/`:

  D1 determinism     bans nondeterministic sources (rand, std::random_device,
                     wall-clock time sources other than steady_clock, getenv)
                     and iteration over unordered_* containers, whose order
                     would otherwise leak into message/state construction.
  A1 anonymity       member code of agent classes must not read executor
                     vertex indices (Vertex-typed values, vertex_id-style
                     identifiers): agents are anonymous automata.
  P1 parallel safety agents declaring kParallelSafe must not hold or touch
                     state shared between agents: no static locals, no
                     non-constant static data members, no shared_ptr members.
  M1 model capability send() may only *name* its outdegree/port parameters
                     (house style comments out unused ones) when the agent
                     declares the matching ModelCapabilities bit
                     (src/runtime/capabilities.hpp).

Operation: pass one or more files or directories. When
--compile-commands points at an exported compilation database, the set of
translation units under the given roots is cross-checked against it (a .cpp
that is never built gets linted anyway, with a note). The analysis itself is
AST-less — a comment/string-stripped token scan with class-body and
member-function extraction. That is deliberate: the container toolchain
ships no libclang/clang-query, and the project's house style (one class per
concern, canonical send/receive signatures) makes token-level scope
extraction reliable. Negative fixtures under tools/anonet_lint/fixtures/
pin every rule; CTest runs them via lint.fixture_* (tests/CMakeLists.txt).

Suppression: a comment containing `anonet-lint-allow(RULE)` on the flagged
line suppresses that rule there. src/ and examples/ are expected to stay at
zero findings *and* zero suppressions; a suppression is a review flag.

Exit codes: 0 clean, 1 findings (or --expect rule did not fire), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

CXX_EXTENSIONS = {".hpp", ".h", ".cpp", ".cc", ".cxx"}

# --- D1 banned tokens --------------------------------------------------------

# Nondeterministic or environment-dependent types: banned wherever they appear.
D1_BANNED_TYPES = {
    "random_device": "std::random_device is nondeterministic; derive streams "
                     "from a seeded generator or support/counter_rng.hpp",
    "system_clock": "wall-clock time is not reproducible; only "
                    "std::chrono::steady_clock may be read (timings are "
                    "measurements, not semantics)",
    "high_resolution_clock": "high_resolution_clock may alias system_clock; "
                             "use std::chrono::steady_clock",
}

# Banned only when called (identifier directly followed by `(`).
D1_BANNED_CALLS = {
    "rand": "rand() is a hidden-state global RNG; use a seeded generator",
    "srand": "srand() mutates global RNG state",
    "rand_r": "rand_r() is a nondeterministic-seed idiom; use a seeded "
              "generator",
    "random": "random() is a hidden-state global RNG",
    "drand48": "drand48() is a hidden-state global RNG",
    "lrand48": "lrand48() is a hidden-state global RNG",
    "mrand48": "mrand48() is a hidden-state global RNG",
    "time": "time() reads the wall clock; executions must be a pure function "
            "of (inputs, schedule, seed)",
    "clock": "clock() reads processor time; not reproducible",
    "gettimeofday": "gettimeofday() reads the wall clock",
    "timespec_get": "timespec_get() reads the wall clock",
    "getenv": "getenv() makes behavior depend on the environment",
}

# A1: spellings of an executor vertex identity inside agent code.
A1_BANNED = {
    "Vertex", "VertexId", "vertex_id", "vertex_index", "node_id",
    "agent_index", "self_index", "my_id",
}

WORD_RE = re.compile(r"[A-Za-z_]\w*")
ALLOW_RE = re.compile(r"anonet-lint-allow\((\w\d?)\)")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")
# Out-of-line member definitions, including template specializations:
# `Foo::send(`, `Foo<T>::send(`, `Foo<T, U>::operator()(`.
QUALIFIED_MEMBER_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:<[^<>;{}]*>)?\s*::\s*(~?[A-Za-z_]\w*)\s*\(")
# Keywords that look like call expressions in a token scan.
NOT_A_CALL = {"if", "for", "while", "switch", "return", "sizeof", "catch",
              "alignof", "decltype", "noexcept", "assert"}
CAPS_RE = re.compile(r"\bkModelCapabilities\s*=\s*([^;]+);")
PARALLEL_SAFE_RE = re.compile(r"\bkParallelSafe\s*=\s*true\b")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ClassInfo:
    name: str
    capabilities: set = field(default_factory=set)
    declares_capabilities: bool = False
    parallel_safe: bool = False
    # (path, body_text, body_start_offset) of the class body and of every
    # out-of-line member function definition.
    bodies: list = field(default_factory=list)
    # (path, offset, params_text, body_text) per send() declaration or
    # definition; body_text is "" for a declaration without a body.
    send_params: list = field(default_factory=list)
    # True when the class body itself was never scanned (only out-of-line
    # definitions were seen) — capabilities are then unknown, not absent.
    declaration_missing: bool = False


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string and char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"':
            # Raw string literal R"delim( ... )delim"
            if i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i + 1)
                    end = n if end == -1 else end + len(closer)
                    for j in range(i, end):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        elif c == "'":
            out[i] = " "
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n:
                        out[i] = " "
                    i += 1
                    continue
                out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_delim(text: str, start: int, open_c: str, close_c: str) -> int:
    """Offset just past the delimiter closing text[start] (== open_c)."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_c:
            depth += 1
        elif text[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def next_token(text: str, offset: int):
    m = WORD_RE.search(text, offset)
    return (m.group(0), m.start()) if m else ("", len(text))


def next_nonspace(text: str, offset: int) -> int:
    while offset < len(text) and text[offset].isspace():
        offset += 1
    return offset


class FileScan:
    def __init__(self, path: str):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            self.raw = fh.read()
        self.text = strip_comments_and_strings(self.raw)
        self.suppressed = {}  # line -> set of rules
        for i, line in enumerate(self.raw.splitlines(), start=1):
            for m in ALLOW_RE.finditer(line):
                self.suppressed.setdefault(i, set()).add(m.group(1))


class Linter:
    def __init__(self):
        self.classes: dict = {}
        self.scans: list = []
        self.findings: list = []

    # --- collection ---------------------------------------------------------

    def add_file(self, path: str):
        self.scans.append(FileScan(path))

    def class_info(self, name: str) -> ClassInfo:
        if name not in self.classes:
            self.classes[name] = ClassInfo(name)
        return self.classes[name]

    def collect(self):
        for scan in self.scans:
            self._collect_classes(scan)
        for scan in self.scans:
            self._collect_out_of_line(scan)

    def _collect_classes(self, scan: FileScan):
        text = scan.text
        for m in CLASS_RE.finditer(text):
            name = m.group(2)
            # Walk to the opening brace, bailing at `;` (forward declaration)
            # — base clauses may contain template angle brackets and parens.
            i = m.end()
            depth_angle = depth_paren = 0
            body_start = -1
            while i < len(text):
                c = text[i]
                if c == "<":
                    depth_angle += 1
                elif c == ">":
                    depth_angle = max(0, depth_angle - 1)
                elif c == "(":
                    depth_paren += 1
                elif c == ")":
                    depth_paren -= 1
                elif c == ";" and depth_angle == 0 and depth_paren == 0:
                    break
                elif c == "{" and depth_angle == 0 and depth_paren == 0:
                    body_start = i
                    break
                i += 1
            if body_start < 0:
                continue
            body_end = match_delim(text, body_start, "{", "}")
            body = text[body_start:body_end]
            info = self.class_info(name)
            info.bodies.append((scan, body, body_start))
            if PARALLEL_SAFE_RE.search(body):
                info.parallel_safe = True
            cm = CAPS_RE.search(body)
            if cm:
                info.declares_capabilities = True
                info.capabilities |= set(re.findall(r"\bk\w+", cm.group(1)))
            for sm in re.finditer(r"\bsend\s*\(", body):
                p_open = body.index("(", sm.start())
                p_close = match_delim(body, p_open, "(", ")")
                info.send_params.append(
                    (scan, body_start + sm.start(),
                     body[p_open + 1:p_close - 1],
                     self._trailing_body(body, p_close)))

    def _collect_out_of_line(self, scan: FileScan):
        text = scan.text
        for m in QUALIFIED_MEMBER_RE.finditer(text):
            cls, member = m.group(1), m.group(2)
            if cls not in self.classes:
                # An out-of-line send() of an agent class whose declaration
                # was not scanned (e.g. a lone .cpp): check it anyway with
                # unknown capabilities rather than silently skipping.
                if member != "send" or "Agent" not in cls:
                    continue
                info = self.class_info(cls)
                info.declaration_missing = True
            else:
                info = self.classes[cls]
            p_open = text.index("(", m.end() - 1)
            p_close = match_delim(text, p_open, "(", ")")
            # Definition if a `{` follows before any top-level `;` (the
            # constructor init list may intervene).
            i = p_close
            depth_paren = 0
            body_start = -1
            while i < len(text):
                c = text[i]
                if c == "(":
                    depth_paren += 1
                elif c == ")":
                    depth_paren -= 1
                elif c == ";" and depth_paren == 0:
                    break
                elif c == "{" and depth_paren == 0:
                    body_start = i
                    break
                i += 1
            if body_start < 0:
                continue  # qualified call or declaration, not a definition
            body_end = match_delim(text, body_start, "{", "}")
            info.bodies.append((scan, text[body_start:body_end], body_start))
            if member == "send":
                info.send_params.append(
                    (scan, m.start(), text[p_open + 1:p_close - 1],
                     text[body_start:body_end]))

    @staticmethod
    def _trailing_body(text: str, offset: int) -> str:
        """The `{...}` body following a parameter list, '' for declarations."""
        i = offset
        depth_paren = 0
        while i < len(text):
            c = text[i]
            if c == "(":
                depth_paren += 1
            elif c == ")":
                depth_paren -= 1
            elif c == ";" and depth_paren == 0:
                return ""
            elif c == "{" and depth_paren == 0:
                return text[i:match_delim(text, i, "{", "}")]
            i += 1
        return ""

    # --- reporting ----------------------------------------------------------

    def report(self, scan: FileScan, offset: int, rule: str, message: str):
        line = line_of(scan.text, offset)
        if rule in scan.suppressed.get(line, set()):
            return
        self.findings.append(Finding(scan.path, line, rule, message))

    # --- rules --------------------------------------------------------------

    def run(self):
        self.collect()
        for scan in self.scans:
            self.rule_d1(scan)
        self.rule_a1()
        self.rule_p1()
        self.rule_m1()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))

    def rule_d1(self, scan: FileScan):
        text = scan.text
        for m in WORD_RE.finditer(text):
            word = m.group(0)
            if word in D1_BANNED_TYPES:
                self.report(scan, m.start(), "D1",
                            f"use of {word}: {D1_BANNED_TYPES[word]}")
            elif word in D1_BANNED_CALLS:
                after = next_nonspace(text, m.end())
                before = text[m.start() - 1] if m.start() > 0 else " "
                # A call expression, not a member/qualified name of ours:
                # `std::time(` and bare `time(` count, `x.time(` does not.
                if after < len(text) and text[after] == "(" and before != ".":
                    self.report(scan, m.start(), "D1",
                                f"call to {word}(): {D1_BANNED_CALLS[word]}")

        # Iteration over unordered containers: collect declared names, then
        # flag range-for ranges and .begin() walks that mention them.
        unordered_names = set()
        for m in UNORDERED_DECL_RE.finditer(text):
            close = match_delim(text, text.index("<", m.start()), "<", ">")
            name, _ = next_token(text, close)
            if name and name not in {"const", "auto"}:
                unordered_names.add(name)
        if not unordered_names:
            return
        for m in re.finditer(r"\bfor\s*\(", text):
            p_open = text.index("(", m.start())
            p_close = match_delim(text, p_open, "(", ")")
            header = text[p_open + 1:p_close - 1]
            colon = self._top_level_colon(header)
            if colon < 0:
                continue
            range_words = set(WORD_RE.findall(header[colon + 1:]))
            hits = range_words & unordered_names
            if hits:
                self.report(
                    scan, m.start(), "D1",
                    f"range-for over unordered container '{sorted(hits)[0]}':"
                    " bucket order is implementation-defined and leaks into "
                    "whatever this loop constructs; iterate a sorted copy or "
                    "an ordered container")
        for name in unordered_names:
            for m in re.finditer(
                    rf"\b{re.escape(name)}\s*\.\s*(?:begin|cbegin)\s*\(",
                    text):
                self.report(
                    scan, m.start(), "D1",
                    f"iteration over unordered container '{name}' via "
                    "begin(): bucket order is implementation-defined")

    @staticmethod
    def _top_level_colon(header: str) -> int:
        depth = 0
        for i, c in enumerate(header):
            if c in "(<[{":
                depth += 1
            elif c in ")>]}":
                depth -= 1
            elif c == ":" and depth == 0:
                # skip `::`
                if i + 1 < len(header) and header[i + 1] == ":":
                    continue
                if i > 0 and header[i - 1] == ":":
                    continue
                return i
        return -1

    def rule_a1(self):
        for info in self.classes.values():
            if "Agent" not in info.name:
                continue
            for scan, body, base in info.bodies:
                for m in WORD_RE.finditer(body):
                    if m.group(0) in A1_BANNED:
                        self.report(
                            scan, base + m.start(), "A1",
                            f"agent class {info.name} reads "
                            f"'{m.group(0)}': agents are anonymous automata "
                            "and must not observe executor vertex indices "
                            "(Section 2.1)")

    def rule_p1(self):
        for info in self.classes.values():
            if not info.parallel_safe:
                continue
            for scan, body, base in info.bodies:
                for m in re.finditer(r"\bstatic\b", body):
                    word, _ = next_token(body, m.end())
                    if word in {"constexpr", "const", "consteval",
                                "constinit"}:
                        continue
                    self.report(
                        scan, base + m.start(), "P1",
                        f"{info.name} declares kParallelSafe but introduces "
                        "non-constant static state: static storage is shared "
                        "between agents and races under the thread-parallel "
                        "round phases")
                for m in re.finditer(r"\bshared_ptr\s*<", body):
                    self.report(
                        scan, base + m.start(), "P1",
                        f"{info.name} declares kParallelSafe but holds a "
                        "shared_ptr: state reachable from several agents "
                        "must not be touched in parallel round hooks (cf. "
                        "MinBaseAgent, which stays serial for exactly this "
                        "reason)")

    def rule_m1(self):
        for info in self.classes.values():
            if "Agent" not in info.name or not info.send_params:
                continue
            caps = info.capabilities
            polymorphic = "kModelPolymorphic" in caps
            missing = (" (the class declaration was not scanned; declare the "
                       "capability where the class is defined)"
                       if info.declaration_missing else "")
            for scan, offset, params, body in info.send_params:
                names = self._param_names(params)
                if len(names) >= 1 and names[0] and not polymorphic and \
                        "kNeedsOutdegree" not in caps:
                    self.report(
                        scan, offset, "M1",
                        f"{info.name}::send names its outdegree parameter "
                        f"'{names[0]}' but the class does not declare "
                        "ModelCapabilities::kNeedsOutdegree — either the "
                        "agent peeks at audience information its model may "
                        "hide (Table 1), or the parameter should be "
                        f"commented out{missing}")
                if len(names) >= 2 and names[1] and not polymorphic and \
                        "kNeedsOutputPorts" not in caps:
                    self.report(
                        scan, offset, "M1",
                        f"{info.name}::send names its port parameter "
                        f"'{names[1]}' but the class does not declare "
                        "ModelCapabilities::kNeedsOutputPorts — only "
                        f"kOutputPortAware addresses ports (Table 1){missing}")
                if polymorphic or not body:
                    continue
                # Positional laundering: send() forwards the (possibly
                # renamed) outdegree/port parameter into a helper call. The
                # naming check above already fires on the definition; this
                # pins the *use site* so the flow through helpers is visible
                # even when the in-class declaration leaves params unnamed.
                for position, cap, what in ((0, "kNeedsOutdegree",
                                             "outdegree"),
                                            (1, "kNeedsOutputPorts", "port")):
                    if cap in caps or len(names) <= position or \
                            not names[position]:
                        continue
                    pname = names[position]
                    for cm in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", body):
                        callee = cm.group(1)
                        if callee in NOT_A_CALL or callee == "send":
                            continue
                        a_open = body.index("(", cm.end() - 1)
                        a_close = match_delim(body, a_open, "(", ")")
                        args = body[a_open + 1:a_close - 1]
                        if re.search(rf"\b{re.escape(pname)}\b", args):
                            self.report(
                                scan, offset, "M1",
                                f"{info.name}::send forwards its {what} "
                                f"parameter '{pname}' into helper "
                                f"'{callee}()' without declaring "
                                f"ModelCapabilities::{cap} — renaming and "
                                "forwarding does not change what the "
                                "sending function observes (Table 1)"
                                f"{missing}")

    @staticmethod
    def _param_names(params: str):
        """['outdegree', ''] — the declared name per parameter, '' if none."""
        parts, depth, cur = [], 0, []
        for c in params:
            if c in "(<[{":
                depth += 1
            elif c in ")>]}":
                depth -= 1
            if c == "," and depth == 0:
                parts.append("".join(cur))
                cur = []
            else:
                cur.append(c)
        if cur:
            parts.append("".join(cur))
        names = []
        for part in parts:
            words = WORD_RE.findall(part.split("=")[0])
            words = [w for w in words
                     if w not in {"int", "const", "unsigned", "signed",
                                  "long", "short", "char", "bool", "auto",
                                  "std", "size_t", "int32_t", "int64_t",
                                  "uint32_t", "uint64_t"}]
            names.append(words[-1] if words else "")
        return names


def gather_files(roots, compile_commands):
    files = []
    seen = set()
    for root in roots:
        root = os.path.abspath(root)
        if os.path.isfile(root):
            if root not in seen:
                seen.add(root)
                files.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in CXX_EXTENSIONS:
                    path = os.path.join(dirpath, fn)
                    if path not in seen:
                        seen.add(path)
                        files.append(path)
    unbuilt = []
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as fh:
            db = json.load(fh)
        built = {os.path.abspath(os.path.join(e.get("directory", "."),
                                              e["file"])) for e in db}
        unbuilt = [f for f in files
                   if os.path.splitext(f)[1] not in {".hpp", ".h"} and
                   f not in built]
    return files, unbuilt


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="anonet_lint",
        description="model-compliance & determinism lint for anonet "
                    "(rules D1/A1/P1/M1; see docs/static_analysis.md)")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="exported compilation database; used to "
                             "cross-check that every linted TU is built")
    parser.add_argument("--expect", metavar="RULE",
                        help="fixture mode: succeed iff at least one "
                             "finding of RULE fires (and print them)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-file summary line")
    args = parser.parse_args(argv)

    files, unbuilt = gather_files(args.paths, args.compile_commands)
    if not files:
        print("anonet_lint: no C++ sources found under given paths",
              file=sys.stderr)
        return 2

    linter = Linter()
    for path in files:
        linter.add_file(path)
    linter.run()

    for f in linter.findings:
        print(f.render())
    for path in unbuilt:
        print(f"note: {path} is not in the compilation database "
              "(linted anyway)")

    if args.expect:
        fired = sorted({f.rule for f in linter.findings})
        if args.expect in fired:
            if not args.quiet:
                print(f"anonet_lint: expected rule {args.expect} fired "
                      f"({len(linter.findings)} finding(s))")
            return 0
        print(f"anonet_lint: expected rule {args.expect} did NOT fire "
              f"(fired: {fired or 'none'})", file=sys.stderr)
        return 1

    if linter.findings:
        print(f"anonet_lint: {len(linter.findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"anonet_lint: clean ({len(files)} files, rules D1/A1/P1/M1)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
