"""Interprocedural call graph and taint propagation for anonet_lint.

Built on the ProgramIndex (frontend.py). Two facilities:

  * CallGraph — call-site extraction with receiver-type resolution
    (`obj.method(...)` resolves `obj` against parameter lists, enclosing
    function bodies, and class member declarations) and name-based edges
    to free functions and members;
  * taint walks used by the rules:
      - `trace_param_taint`: forward taint from a tainted *parameter*
        (M1: send()'s outdegree/port) through pure forwards into helper
        parameters, flagging any consuming use; forwarding into a method
        of a class that *declares* the matching capability is whitelisted
        (the declaration accounts for the observation);
      - `audience_tainted_functions`: the fixpoint of functions whose
        return value carries audience information (out_degree & friends),
        so `helper -> helper -> agent method` side-door leaks are caught
        no matter how many hops deep.

Resolution is name-based and conservative-by-construction where it must
be: a tainted value forwarded into a callee the index cannot resolve is a
finding, not a silent pass.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from frontend import (FunctionDef, NOT_A_CALL, ProgramIndex, WORD_RE,
                      match_delim, split_top_level)

# Calls whose result carries the caller's audience size: the executor/graph
# surface that reveals per-vertex degrees.
AUDIENCE_SOURCES = {"out_degree", "in_degree", "outdegree", "indegree",
                    "degree", "out_edges", "in_edges"}

CALL_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?"      # optional receiver
    r"\b([A-Za-z_]\w*)\s*"                        # callee
    r"(?:<[^<>();]*>\s*)?"                        # template args
    r"\(")


@dataclass
class CallSite:
    receiver: str | None
    callee: str
    args: list          # [(text, abs_span_start, abs_span_end)], top-level
    offset: int         # offset of the callee token within the body
    arg_span: tuple     # (open+1, close-1) span of the whole arg list


def extract_calls(body: str):
    """All call expressions in a function body (offsets body-relative)."""
    calls = []
    for m in CALL_RE.finditer(body):
        receiver, callee = m.group(1), m.group(2)
        if callee in NOT_A_CALL:
            continue
        p_open = body.index("(", m.end() - 1)
        p_close = match_delim(body, p_open, "(", ")")
        args_text = body[p_open + 1:p_close - 1]
        args, cursor = [], p_open + 1
        for part in split_top_level(args_text):
            args.append((part.strip(), cursor, cursor + len(part)))
            cursor += len(part) + 1
        calls.append(CallSite(receiver=receiver, callee=callee, args=args,
                              offset=m.start(2) if m.group(2) else m.start(),
                              arg_span=(p_open + 1, p_close - 1)))
    return calls


class CallGraph:
    def __init__(self, index: ProgramIndex):
        self.index = index
        self._calls_cache: dict[int, list] = {}

    def calls_of(self, fn: FunctionDef):
        key = id(fn)
        if key not in self._calls_cache:
            self._calls_cache[key] = extract_calls(fn.body)
        return self._calls_cache[key]

    # -- receiver/type resolution -------------------------------------------

    def receiver_class(self, fn: FunctionDef, receiver: str) -> str | None:
        """The class name of `receiver` as declared in fn's scope."""
        if receiver in (None, "this"):
            return fn.owner
        decl_re = re.compile(
            rf"\b([A-Za-z_][\w:]*)\s*(?:<[^;<>]*>)?\s*[&*]?\s+"
            rf"{re.escape(receiver)}\s*[;={{(,)]")
        scopes = [fn.params_text, fn.body]
        if fn.owner and fn.owner in self.index.classes:
            scopes.append(self.index.classes[fn.owner].member_decls)
        for scope in scopes:
            for m in decl_re.finditer(scope):
                type_name = m.group(1).split("::")[-1]
                if type_name in {"const", "auto", "return", "new"}:
                    continue
                if type_name in self.index.classes:
                    return type_name
        return None

    def resolve(self, fn: FunctionDef, call: CallSite):
        """Candidate FunctionDefs for a call, best effort.

        Returns (class_name | None, [FunctionDef]); class_name is the
        resolved receiver class when the call is a member call.
        """
        if call.receiver is not None:
            cls = self.receiver_class(fn, call.receiver)
            if cls is not None:
                info = self.index.classes[cls]
                return cls, [f for f in info.methods.get(call.callee, [])
                             if f.body]
            return None, []
        # Unqualified: same-class member first.
        if fn.owner and fn.owner in self.index.classes:
            own = self.index.classes[fn.owner].methods.get(call.callee, [])
            own = [f for f in own if f.body]
            if own:
                return fn.owner, own
        # Free functions defined in the same file, then anywhere (unique).
        frees = self.index.free_functions.get(call.callee, [])
        same_file = [f for f in frees if f.scan is fn.scan and f.body]
        if same_file:
            return None, same_file
        with_body = [f for f in frees if f.body]
        if len(with_body) == 1:
            return None, with_body
        return None, []

    # -- forward parameter taint (M1) ----------------------------------------

    def trace_param_taint(self, fn: FunctionDef, var: str, cap: str,
                          max_hops: int, _hops: int = 0, _visited=None,
                          _path=None):
        """Yields (fn, body_offset_of_use, kind, hops, path) for every
        consuming use of the tainted parameter `var` reachable from `fn`.

        kind is 'use' (expression consumption), 'unknown-callee' (pure
        forward into a call the index cannot resolve), or 'unnamed' never
        (an unnamed callee parameter means the value is dropped — allowed).
        Pure forwards into methods of classes declaring `cap` are allowed.
        """
        if _visited is None:
            _visited = set()
        if _path is None:
            _path = [fn.qualname]
        key = (id(fn), var)
        if key in _visited:
            return
        _visited.add(key)
        calls = self.calls_of(fn)
        # Occurrences of var that are a whole top-level argument of a call:
        # candidate pure forwards. Every other occurrence is a use.
        forward_spans = {}  # occurrence offset -> (call, arg_index)
        for call in calls:
            for idx, (text, a, b) in enumerate(call.args):
                if text == var:
                    occ = fn.body.index(var, a, b)
                    forward_spans[occ] = (call, idx)
        for m in re.finditer(rf"\b{re.escape(var)}\b", fn.body):
            occ = m.start()
            if occ not in forward_spans:
                yield (fn, occ, "use", _hops, list(_path))
                continue
            call, idx = forward_spans[occ]
            cls, candidates = self.resolve(fn, call)
            if cls is not None and cls in self.index.classes:
                info = self.index.classes[cls]
                if cap in info.capabilities or \
                        "kModelPolymorphic" in info.capabilities:
                    continue  # declared consumer: the whitelist
            if not candidates:
                yield (fn, occ, "unknown-callee", _hops, list(_path))
                continue
            if _hops >= max_hops:
                yield (fn, occ, "use", _hops, list(_path))
                continue
            for cand in candidates:
                names = cand.param_names
                if idx >= len(names) or not names[idx]:
                    continue  # callee ignores the value: dropped, allowed
                yield from self.trace_param_taint(
                    cand, names[idx], cap, max_hops, _hops + 1, _visited,
                    _path + [cand.qualname])

    # -- audience-returning functions (side-door M1) -------------------------

    def audience_tainted_functions(self, max_hops: int):
        """{qualname: (hops, via)} of functions whose return value carries
        audience information, to the fixpoint (bounded by max_hops)."""
        tainted: dict[str, tuple] = {}
        all_fns = list(self._iter_functions())

        def returns_call_to(fn: FunctionDef, names: set) -> str | None:
            for m in re.finditer(r"\breturn\b([^;]*);", fn.body):
                expr = m.group(1)
                for call in extract_calls(expr):
                    if call.callee in names:
                        return call.callee
            return None

        for fn in all_fns:
            via = returns_call_to(fn, AUDIENCE_SOURCES)
            if via:
                tainted[fn.qualname] = (1, via)
        for _ in range(max_hops - 1):
            changed = False
            for fn in all_fns:
                if fn.qualname in tainted:
                    continue
                via = returns_call_to(fn, set(tainted))
                if via:
                    tainted[fn.qualname] = (tainted[via][0] + 1, via)
                    changed = True
            if not changed:
                break
        return tainted

    def _iter_functions(self):
        for fns in self.index.free_functions.values():
            for fn in fns:
                if fn.body:
                    yield fn
        for info in self.index.classes.values():
            for fns in info.methods.values():
                for fn in fns:
                    if fn.body:
                        yield fn

    # -- reachable helper closure (A1) ---------------------------------------

    def reachable_free_functions(self, fn: FunctionDef, max_hops: int):
        """Free functions in the same file reachable from fn, with the call
        chain: [(helper_fn, hops, path), ...]."""
        out = []
        seen = set()

        def walk(cur: FunctionDef, hops: int, path):
            if hops >= max_hops:
                return
            for call in self.calls_of(cur):
                if call.receiver is not None:
                    continue
                frees = self.index.free_functions.get(call.callee, [])
                for helper in frees:
                    if helper.scan is not cur.scan or not helper.body:
                        continue
                    if id(helper) in seen:
                        continue
                    seen.add(id(helper))
                    out.append((helper, hops + 1,
                                path + [helper.qualname]))
                    walk(helper, hops + 1, path + [helper.qualname])

        walk(fn, 0, [fn.qualname])
        return out
