"""Two-pass front end for anonet_lint.

Pass 1 (per file): strip comments/strings preserving offsets, record
suppression comments, and extract a *declaration/definition index*:

  * every class/struct body, with its capability declarations
    (kModelCapabilities, kParallelSafe), nested `struct Message`, and every
    member function defined in-class;
  * every out-of-line member definition, including template
    specializations (`Foo<T>::send(...) { ... }`);
  * every free function definition at any scope;
  * every `MessageTraits<...>` specialization and what it defines;
  * unordered-container declarations, *including* those hidden behind
    `using`/`typedef` aliases and `auto&`/`auto` value aliases (rule D1).

Pass 2 (whole program) lives in callgraph.py: call-site extraction and
name resolution over this index.

Everything here is deliberately AST-less — a token scan with balanced
delimiter matching — because the container toolchain ships no libclang.
The house style (one class per concern, canonical send/receive signatures)
makes scope extraction reliable; the self-test suite
(tools/anonet_lint/tests/) pins the behavior on synthetic snippets.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

CXX_EXTENSIONS = {".hpp", ".h", ".cpp", ".cc", ".cxx"}

WORD_RE = re.compile(r"[A-Za-z_]\w*")
ALLOW_RE = re.compile(r"anonet-lint-allow\((\w\d?)\)")
CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")
# Out-of-line member definitions, including template specializations.
QUALIFIED_MEMBER_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:<[^<>;{}]*>)?\s*::\s*(~?[A-Za-z_]\w*)\s*\(")
CAPS_RE = re.compile(r"\bkModelCapabilities\s*=\s*([^;]+);")
PARALLEL_SAFE_RE = re.compile(r"\bkParallelSafe\s*=\s*(true|false)\b")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
USING_ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);")
TYPEDEF_RE = re.compile(r"\btypedef\s+([^;]+?)\s+([A-Za-z_]\w*)\s*;")
MESSAGE_TRAITS_RE = re.compile(
    r"\bstruct\s+MessageTraits\s*<\s*([A-Za-z_]\w*)\s*(?:<[^<>]*>\s*)?"
    r"::\s*Message\s*>")
AUDIT_REGISTER_RE = re.compile(r"\bANONET_STATIC_AUDIT_DECLARATIONS\s*\(\s*"
                               r"([A-Za-z_]\w*)\s*\)")
AUDIT_LIST_ENTRY_RE = re.compile(r"^\s*X\s*\(\s*([A-Za-z_]\w*)\s*\)",
                                 re.MULTILINE)

# Keywords that look like call expressions in a token scan.
NOT_A_CALL = {"if", "for", "while", "switch", "return", "sizeof", "catch",
              "alignof", "decltype", "noexcept", "assert", "defined",
              "static_assert", "requires", "new", "delete", "throw",
              "constexpr", "else", "do", "alignas"}

PARAM_TYPE_WORDS = {"int", "const", "unsigned", "signed", "long", "short",
                    "char", "bool", "auto", "std", "size_t", "int32_t",
                    "int64_t", "uint32_t", "uint64_t", "double", "float"}


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string and char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"':
            if i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i + 1)
                    end = n if end == -1 else end + len(closer)
                    for j in range(i, end):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        elif c == "'":
            out[i] = " "
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n:
                        out[i] = " "
                    i += 1
                    continue
                out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_delim(text: str, start: int, open_c: str, close_c: str) -> int:
    """Offset just past the delimiter closing text[start] (== open_c)."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_c:
            depth += 1
        elif text[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def next_token(text: str, offset: int):
    m = WORD_RE.search(text, offset)
    return (m.group(0), m.start()) if m else ("", len(text))


def next_nonspace(text: str, offset: int) -> int:
    while offset < len(text) and text[offset].isspace():
        offset += 1
    return offset


def split_top_level(text: str, sep: str = ","):
    """Split on sep at delimiter depth 0 (angle/paren/bracket/brace aware)."""
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return parts


def param_names(params: str):
    """['outdegree', ''] — the declared name per parameter, '' if none."""
    names = []
    for part in split_top_level(params):
        if not part.strip():
            continue
        words = WORD_RE.findall(part.split("=")[0])
        words = [w for w in words if w not in PARAM_TYPE_WORDS]
        names.append(words[-1] if words else "")
    return names


@dataclass
class FileScan:
    path: str
    raw: str = ""
    text: str = ""
    suppressed: dict = field(default_factory=dict)  # line -> set of rules

    @classmethod
    def from_path(cls, path: str) -> "FileScan":
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            return cls.from_text(path, fh.read())

    @classmethod
    def from_text(cls, path: str, raw: str) -> "FileScan":
        scan = cls(path=path, raw=raw)
        scan.text = strip_comments_and_strings(raw)
        for i, line in enumerate(raw.splitlines(), start=1):
            for m in ALLOW_RE.finditer(line):
                scan.suppressed.setdefault(i, set()).add(m.group(1))
        return scan


@dataclass
class FunctionDef:
    name: str                 # member or free-function name
    owner: str | None         # class name, None for free functions
    scan: FileScan = None
    offset: int = 0           # absolute offset of the name in scan.text
    params_text: str = ""
    body: str = ""            # "{...}", "" for bodiless declarations
    body_offset: int = 0      # absolute offset of body in scan.text

    @property
    def qualname(self) -> str:
        return f"{self.owner}::{self.name}" if self.owner else self.name

    @property
    def param_names(self):
        return param_names(self.params_text)


@dataclass
class TraitsSpec:
    for_class: str
    scan: FileScan
    offset: int
    body: str

    def defines(self, member: str) -> bool:
        return re.search(rf"\b{member}\s*\(", self.body) is not None


@dataclass
class ClassInfo:
    name: str
    capabilities: set = field(default_factory=set)
    declares_capabilities: bool = False
    parallel_safe: bool | None = None  # None: not declared either way
    has_message: bool = False
    has_send: bool = False
    audit_registered: bool = False
    bodies: list = field(default_factory=list)      # (scan, body, abs_offset)
    methods: dict = field(default_factory=dict)     # name -> [FunctionDef]
    member_decls: str = ""   # concatenated class-body text, for type lookups
    declaration_missing: bool = False

    def add_method(self, fn: FunctionDef):
        self.methods.setdefault(fn.name, []).append(fn)
        if fn.name == "send":
            self.has_send = True

    @property
    def is_agent(self) -> bool:
        return "Agent" in self.name


class ProgramIndex:
    """The whole-program declaration/definition index (front-end pass 1)."""

    def __init__(self):
        self.scans: list[FileScan] = []
        self.classes: dict[str, ClassInfo] = {}
        self.free_functions: dict[str, list[FunctionDef]] = {}
        self.traits_specs: dict[str, list[TraitsSpec]] = {}
        self.audit_list: list[str] = []      # ANONET_CORE_AGENT_LIST entries
        self.audit_list_seen: bool = False
        self.has_wire_layer: bool = False    # any MessageTraits in scope
        # path -> set of unordered-container *variable* names (incl. aliases)
        self.unordered_vars: dict[str, set] = {}

    # -- collection ----------------------------------------------------------

    def add_file(self, path: str):
        self.add_scan(FileScan.from_path(path))

    def add_source(self, path: str, text: str):
        """Testing hook: index an in-memory snippet."""
        self.add_scan(FileScan.from_text(path, text))

    def add_scan(self, scan: FileScan):
        self.scans.append(scan)

    def class_info(self, name: str) -> ClassInfo:
        if name not in self.classes:
            self.classes[name] = ClassInfo(name)
        return self.classes[name]

    def build(self):
        for scan in self.scans:
            self._collect_classes(scan)
        for scan in self.scans:
            self._collect_out_of_line(scan)
            self._collect_free_functions(scan)
            self._collect_traits(scan)
            self._collect_audit_registry(scan)
            self._collect_unordered(scan)

    # -- classes -------------------------------------------------------------

    def _collect_classes(self, scan: FileScan):
        text = scan.text
        for m in CLASS_RE.finditer(text):
            name = m.group(2)
            if name == "MessageTraits":
                continue  # indexed separately by _collect_traits
            i = m.end()
            depth_angle = depth_paren = 0
            body_start = -1
            while i < len(text):
                c = text[i]
                if c == "<":
                    depth_angle += 1
                elif c == ">":
                    depth_angle = max(0, depth_angle - 1)
                elif c == "(":
                    depth_paren += 1
                elif c == ")":
                    depth_paren -= 1
                elif c == ";" and depth_angle == 0 and depth_paren == 0:
                    break
                elif c == "{" and depth_angle == 0 and depth_paren == 0:
                    body_start = i
                    break
                i += 1
            if body_start < 0:
                continue
            body_end = match_delim(text, body_start, "{", "}")
            body = text[body_start:body_end]
            info = self.class_info(name)
            info.bodies.append((scan, body, body_start))
            info.member_decls += body
            pm = PARALLEL_SAFE_RE.search(body)
            if pm:
                info.parallel_safe = pm.group(1) == "true"
            cm = CAPS_RE.search(body)
            if cm:
                info.declares_capabilities = True
                info.capabilities |= set(re.findall(r"\bk\w+", cm.group(1)))
            if re.search(r"\bstruct\s+Message\b", body):
                info.has_message = True
            self._collect_methods(scan, info, body, body_start)

    def _collect_methods(self, scan: FileScan, info: ClassInfo, body: str,
                         base: int):
        """In-class member function definitions and declarations."""
        for m in re.finditer(r"\b(~?[A-Za-z_]\w*)\s*\(", body):
            name = m.group(1)
            if name in NOT_A_CALL or name.startswith("~"):
                continue
            # A definition/declaration (not a call) is preceded by a type or
            # access boundary, heuristically: previous non-space char is one
            # of ;{}&*>: or a word that is not an operator keyword.
            prev = body[:m.start()].rstrip()
            if not prev or prev[-1] not in ";{}&*>:" and \
                    not prev[-1].isalnum() and prev[-1] != "_":
                continue
            p_open = body.index("(", m.start())
            p_close = match_delim(body, p_open, "(", ")")
            fn_body = trailing_body(body, p_close)
            # Skip plain calls: a call is followed by ; , ) not a body/decl
            # terminator — trailing_body already returns '' for those, but a
            # call statement `foo(x);` also yields ''. Disambiguate: treat as
            # method iff a body exists or the `(`-preceding text ends with a
            # plausible return type (word, `>`, `&`, `*`) at statement start.
            if not fn_body:
                stmt = prev.rsplit(";", 1)[-1].rsplit("{", 1)[-1].strip()
                if not re.search(r"[\w>&*\]]\s*$", stmt) or \
                        len(stmt.split()) < 1 or stmt.endswith(("return",
                                                                "co_return")):
                    continue
                # Bodiless in-class declaration: keep for param names.
                if ";" not in body[p_close:p_close + 40].split("{")[0]:
                    continue
            fn = FunctionDef(name=name, owner=info.name, scan=scan,
                             offset=base + m.start(),
                             params_text=body[p_open + 1:p_close - 1],
                             body=fn_body)
            if fn_body:
                fn.body_offset = base + body.index(fn_body, p_close)
            info.add_method(fn)

    def _collect_out_of_line(self, scan: FileScan):
        text = scan.text
        for m in QUALIFIED_MEMBER_RE.finditer(text):
            cls, member = m.group(1), m.group(2)
            if cls in ("std", "wire", "detail", "chrono"):
                continue
            if cls not in self.classes:
                if member != "send" or "Agent" not in cls:
                    continue
                info = self.class_info(cls)
                info.declaration_missing = True
            else:
                info = self.classes[cls]
            p_open = text.index("(", m.end() - 1)
            p_close = match_delim(text, p_open, "(", ")")
            i = p_close
            depth_paren = 0
            body_start = -1
            while i < len(text):
                c = text[i]
                if c == "(":
                    depth_paren += 1
                elif c == ")":
                    depth_paren -= 1
                elif c == ";" and depth_paren == 0:
                    break
                elif c == "{" and depth_paren == 0:
                    body_start = i
                    break
                i += 1
            if body_start < 0:
                continue  # qualified call or declaration, not a definition
            body_end = match_delim(text, body_start, "{", "}")
            fn = FunctionDef(name=member, owner=cls, scan=scan,
                             offset=m.start(),
                             params_text=text[p_open + 1:p_close - 1],
                             body=text[body_start:body_end],
                             body_offset=body_start)
            info.add_method(fn)
            info.bodies.append((scan, fn.body, body_start))

    # -- free functions ------------------------------------------------------

    def _collect_free_functions(self, scan: FileScan):
        text = scan.text
        class_spans = []
        for info in self.classes.values():
            for s, body, off in info.bodies:
                if s is scan:
                    class_spans.append((off, off + len(body)))
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", text):
            name = m.group(1)
            if name in NOT_A_CALL:
                continue
            start = m.start()
            if any(a <= start < b for a, b in class_spans):
                continue  # member, already collected
            before = text[:start].rstrip()
            if before.endswith("::") or before.endswith("."):
                continue  # qualified member definition or member call
            # Require a return type token right before the name: a word,
            # `>`, `&` or `*` — rejects call statements (preceded by
            # ;={}(,&&|| operators handled by the same test).
            if not re.search(r"[\w>&*]\s*$", before):
                continue
            last_word = re.search(r"([A-Za-z_]\w*)\s*$", before)
            if last_word and last_word.group(1) in {"return", "else", "in",
                                                    "case", "goto", "co_await",
                                                    "co_return", "operator"}:
                continue
            p_open = text.index("(", start)
            p_close = match_delim(text, p_open, "(", ")")
            body = trailing_body(text, p_close)
            if not body:
                continue
            fn = FunctionDef(name=name, owner=None, scan=scan, offset=start,
                             params_text=text[p_open + 1:p_close - 1],
                             body=body,
                             body_offset=text.index(body, p_close))
            self.free_functions.setdefault(name, []).append(fn)

    # -- wire traits / audit registry ---------------------------------------

    def _collect_traits(self, scan: FileScan):
        text = scan.text
        if "MessageTraits" in text:
            self.has_wire_layer = True
        for m in MESSAGE_TRAITS_RE.finditer(text):
            brace = text.find("{", m.end())
            semi = text.find(";", m.end())
            if brace < 0 or (0 <= semi < brace):
                continue  # forward declaration
            body = text[brace:match_delim(text, brace, "{", "}")]
            self.traits_specs.setdefault(m.group(1), []).append(
                TraitsSpec(m.group(1), scan, m.start(), body))

    def _collect_audit_registry(self, scan: FileScan):
        text = scan.text
        for m in AUDIT_REGISTER_RE.finditer(text):
            self.class_info(m.group(1)).audit_registered = True
        list_m = re.search(r"#define\s+ANONET_CORE_AGENT_LIST\s*\(\s*X\s*\)",
                           scan.raw)
        if list_m:
            self.audit_list_seen = True
            # The X(...) entries of the continued macro definition.
            tail = scan.raw[list_m.end():]
            block = tail.split("\n\n", 1)[0]
            self.audit_list = re.findall(r"X\s*\(\s*([A-Za-z_]\w*)\s*\)",
                                         block)

    # -- unordered containers incl. aliases (rule D1) ------------------------

    def _collect_unordered(self, scan: FileScan):
        text = scan.text
        names: set[str] = set()
        alias_types: set[str] = set()
        for m in USING_ALIAS_RE.finditer(text):
            if UNORDERED_DECL_RE.search(m.group(2)):
                alias_types.add(m.group(1))
        for m in TYPEDEF_RE.finditer(text):
            if UNORDERED_DECL_RE.search(m.group(1)):
                alias_types.add(m.group(2))
        # Aliases of aliases.
        changed = True
        while changed:
            changed = False
            for m in USING_ALIAS_RE.finditer(text):
                target_words = set(WORD_RE.findall(m.group(2)))
                if target_words & alias_types and m.group(1) not in alias_types:
                    alias_types.add(m.group(1))
                    changed = True
        for m in UNORDERED_DECL_RE.finditer(text):
            close = match_delim(text, text.index("<", m.start()), "<", ">")
            name, _ = next_token(text, close)
            if name and name not in {"const", "auto"}:
                names.add(name)
        for alias in alias_types:
            for m in re.finditer(rf"\b{re.escape(alias)}\s*[&]?\s+"
                                 rf"([A-Za-z_]\w*)\s*[;={{(]", text):
                names.add(m.group(1))
        # Reference/value aliases: `auto& view = table;` / `auto copy = table;`
        changed = True
        while changed:
            changed = False
            for m in re.finditer(r"\b(?:const\s+)?auto\s*&?\s+([A-Za-z_]\w*)"
                                 r"\s*=\s*([A-Za-z_]\w*)\s*[;)]", text):
                if m.group(2) in names and m.group(1) not in names:
                    names.add(m.group(1))
                    changed = True
        if names:
            self.unordered_vars[scan.path] = names


def trailing_body(text: str, offset: int) -> str:
    """The `{...}` body following a parameter list, '' for declarations."""
    i = offset
    depth_paren = 0
    while i < len(text):
        c = text[i]
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c in ";," and depth_paren == 0:
            return ""
        elif c == "{" and depth_paren == 0:
            return text[i:match_delim(text, i, "{", "}")]
        elif c == "=" and depth_paren == 0:
            # `= default`, `= delete`, or an initializer: not a body.
            return ""
        i += 1
    return ""


def gather_files(roots, compile_commands=None):
    import json
    files = []
    seen = set()
    for root in roots:
        root = os.path.abspath(root)
        if os.path.isfile(root):
            if root not in seen:
                seen.add(root)
                files.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in CXX_EXTENSIONS:
                    path = os.path.join(dirpath, fn)
                    if path not in seen:
                        seen.add(path)
                        files.append(path)
    unbuilt = []
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as fh:
            db = json.load(fh)
        built = {os.path.abspath(os.path.join(e.get("directory", "."),
                                              e["file"])) for e in db}
        unbuilt = [f for f in files
                   if os.path.splitext(f)[1] not in {".hpp", ".h"} and
                   f not in built]
    return files, unbuilt
