// Tests for the function-class library (functions/functions.hpp).

#include "functions/functions.hpp"

#include <gtest/gtest.h>

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

TEST(Frequency, OfVector) {
  const std::vector<std::int64_t> v{1, 2, 2, 3, 2, 1};
  const Frequency nu = Frequency::of(v);
  EXPECT_EQ(nu.at(1), r(1, 3));
  EXPECT_EQ(nu.at(2), r(1, 2));
  EXPECT_EQ(nu.at(3), r(1, 6));
  EXPECT_EQ(nu.at(99), r(0));
}

TEST(Frequency, ValidatesInvariant) {
  EXPECT_THROW(Frequency({{1, r(1, 2)}}), std::invalid_argument);  // sum != 1
  EXPECT_THROW(Frequency({{1, r(1, 2)}, {2, r(-1, 2)}, {3, r(1)}}),
               std::invalid_argument);
  EXPECT_THROW(Frequency::of(std::vector<std::int64_t>{}),
               std::invalid_argument);
}

TEST(Frequency, CanonicalVectorSizeIsLcmOfDenominators) {
  // ν = {a: 1/2, b: 1/3, c: 1/6} -> ⟨ν⟩ of size 6 = lcm(2, 3, 6).
  const Frequency nu({{10, r(1, 2)}, {20, r(1, 3)}, {30, r(1, 6)}});
  const auto canonical = nu.canonical_vector();
  EXPECT_EQ(canonical,
            (std::vector<std::int64_t>{10, 10, 10, 20, 20, 30}));
  EXPECT_EQ(Frequency::of(canonical), nu);  // round-trip
}

TEST(Frequency, EquivalentVectorsHaveEqualFrequencies) {
  const std::vector<std::int64_t> v{1, 1, 2};
  const std::vector<std::int64_t> w{1, 2, 1, 1, 2, 1};  // doubled
  EXPECT_EQ(Frequency::of(v), Frequency::of(w));
}

TEST(SymmetricFunction, PermutationInvariantByConstruction) {
  const SymmetricFunction sum = sum_function();
  EXPECT_EQ(sum(std::vector<std::int64_t>{3, 1, 2}),
            sum(std::vector<std::int64_t>{2, 3, 1}));
}

TEST(SymmetricFunction, PaperExamples) {
  const std::vector<std::int64_t> v{4, -1, 4, 7};
  EXPECT_EQ(min_function()(v), r(-1));
  EXPECT_EQ(max_function()(v), r(7));
  EXPECT_EQ(support_size()(v), r(3));
  EXPECT_EQ(average_function()(v), r(14, 4));
  EXPECT_EQ(sum_function()(v), r(14));
  EXPECT_EQ(count_function()(v), r(4));
  EXPECT_EQ(median_function()(v), r(4));
}

TEST(SymmetricFunction, ThresholdPredicate) {
  const SymmetricFunction phi = threshold_predicate(1, r(1, 2));
  EXPECT_EQ(phi(std::vector<std::int64_t>{1, 1, 2}), r(1));   // 2/3 >= 1/2
  EXPECT_EQ(phi(std::vector<std::int64_t>{1, 2, 2}), r(0));   // 1/3 < 1/2
  EXPECT_EQ(phi(std::vector<std::int64_t>{1, 2}), r(1));      // boundary
}

TEST(SymmetricFunction, EvalFrequencyMatchesDirectEvaluation) {
  const std::vector<std::int64_t> v{5, 5, 8, 8, 8, 2};
  const Frequency nu = Frequency::of(v);
  EXPECT_EQ(average_function().eval_frequency(nu), average_function()(v));
  EXPECT_EQ(min_function().eval_frequency(nu), min_function()(v));
  // sum is NOT frequency-based: ⟨ν⟩ has size 6 here so it agrees, but on the
  // doubled vector it must not.
  std::vector<std::int64_t> doubled = v;
  doubled.insert(doubled.end(), v.begin(), v.end());
  EXPECT_NE(sum_function().eval_frequency(Frequency::of(doubled)),
            sum_function()(doubled));
}

TEST(SymmetricFunction, EmptyInputThrows) {
  EXPECT_THROW(min_function()(std::vector<std::int64_t>{}),
               std::invalid_argument);
}

TEST(SymmetricFunction, ApproxEvaluators) {
  const std::map<std::int64_t, double> nu{{0, 0.25}, {4, 0.75}};
  EXPECT_DOUBLE_EQ(average_function().eval_approximate(nu), 3.0);
  EXPECT_DOUBLE_EQ(
      threshold_predicate(4, r(1, 2)).eval_approximate(nu), 1.0);
  EXPECT_DOUBLE_EQ(
      threshold_predicate(0, r(1, 2)).eval_approximate(nu), 0.0);
  EXPECT_TRUE(average_function().continuous_in_frequency());
  EXPECT_FALSE(sum_function().continuous_in_frequency());
  EXPECT_THROW(static_cast<void>(sum_function().eval_approximate(nu)),
               std::logic_error);
}

TEST(SymmetricFunction, ExtendedLibrary) {
  const std::vector<std::int64_t> v{2, 2, 5, 5, 5, 5};
  EXPECT_EQ(range_function()(v), r(3));
  // mean = 4, E[X²] = (4+4+25·4)/6 = 18, variance = 18 - 16 = 2.
  EXPECT_EQ(variance_function()(v), r(2));
  EXPECT_EQ(mode_frequency()(v), r(4, 6));
  EXPECT_EQ(sum_of_squares()(v), r(108));
}

TEST(SymmetricFunction, ExtendedApproxEvaluators) {
  const std::map<std::int64_t, double> nu{{2, 1.0 / 3}, {5, 2.0 / 3}};
  EXPECT_NEAR(variance_function().eval_approximate(nu), 2.0, 1e-12);
  EXPECT_NEAR(mode_frequency().eval_approximate(nu), 2.0 / 3, 1e-12);
  EXPECT_FALSE(sum_of_squares().continuous_in_frequency());
}

TEST(Classification, ExtendedLibraryClasses) {
  EXPECT_EQ(classify_empirically(range_function(), 100, 11),
            FunctionClass::kSetBased);
  EXPECT_EQ(classify_empirically(variance_function(), 100, 12),
            FunctionClass::kFrequencyBased);
  EXPECT_EQ(classify_empirically(mode_frequency(), 100, 13),
            FunctionClass::kFrequencyBased);
  EXPECT_EQ(classify_empirically(sum_of_squares(), 100, 14),
            FunctionClass::kMultisetBased);
}

TEST(Classification, EmpiricalClassesMatchDeclarations) {
  EXPECT_EQ(classify_empirically(min_function(), 100, 1),
            FunctionClass::kSetBased);
  EXPECT_EQ(classify_empirically(max_function(), 100, 2),
            FunctionClass::kSetBased);
  EXPECT_EQ(classify_empirically(support_size(), 100, 3),
            FunctionClass::kSetBased);
  EXPECT_EQ(classify_empirically(average_function(), 100, 4),
            FunctionClass::kFrequencyBased);
  EXPECT_EQ(classify_empirically(median_function(), 100, 5),
            FunctionClass::kFrequencyBased);
  EXPECT_EQ(classify_empirically(sum_function(), 100, 6),
            FunctionClass::kMultisetBased);
  EXPECT_EQ(classify_empirically(count_function(), 100, 7),
            FunctionClass::kMultisetBased);
}

TEST(Classification, StrictInclusionsWitnessed) {
  // The paper's chain set-based ⊊ frequency-based ⊊ multiset-based:
  // average is frequency- but not set-based; sum is multiset- but not
  // frequency-based.
  EXPECT_NE(classify_empirically(average_function(), 100, 8),
            FunctionClass::kSetBased);
  EXPECT_NE(classify_empirically(sum_function(), 100, 9),
            FunctionClass::kFrequencyBased);
}

TEST(Names, ToString) {
  EXPECT_EQ(to_string(FunctionClass::kSetBased), "set-based");
  EXPECT_EQ(to_string(FunctionClass::kFrequencyBased), "frequency-based");
  EXPECT_EQ(to_string(FunctionClass::kMultisetBased), "multiset-based");
}

}  // namespace
}  // namespace anonet
