// Tests for exact-rational Push-Sum and its cross-validation against the
// floating-point implementation.

#include "core/exact_pushsum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"
#include "runtime/trace.hpp"

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

TEST(ExactPushSum, MassIsIdenticallyConserved) {
  std::vector<ExactPushSumAgent> agents;
  agents.emplace_back(r(5), r(1));
  agents.emplace_back(r(-3), r(2));
  agents.emplace_back(r(7, 2), r(1));
  Executor<ExactPushSumAgent> exec(
      std::make_shared<RandomStronglyConnectedSchedule>(3, 2, 41),
      std::move(agents), CommModel::kOutdegreeAware);
  const Rational y_mass = r(5) + r(-3) + r(7, 2);
  const Rational z_mass = r(4);
  for (int round = 0; round < 40; ++round) {
    exec.step();
    Rational y, z;
    for (Vertex v = 0; v < 3; ++v) {
      y += exec.agent(v).y();
      z += exec.agent(v).z();
    }
    // Exact equality, not within-epsilon: this is the point.
    EXPECT_EQ(y, y_mass) << round;
    EXPECT_EQ(z, z_mass) << round;
  }
}

TEST(ExactPushSum, ConvergesToQuotSum) {
  std::vector<ExactPushSumAgent> agents;
  agents.emplace_back(r(1), r(1));
  agents.emplace_back(r(2), r(1));
  agents.emplace_back(r(3), r(1));
  agents.emplace_back(r(6), r(1));
  Executor<ExactPushSumAgent> exec(
      std::make_shared<StaticSchedule>(random_strongly_connected(4, 3, 7)),
      std::move(agents), CommModel::kOutdegreeAware);
  exec.run(60);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_NEAR(exec.agent(v).output().to_double(), 3.0, 1e-9) << v;
  }
}

TEST(ExactPushSum, FloatImplementationTracksExactTrajectory) {
  // Same schedule, same inputs: the double-based agent must follow the true
  // rational trajectory to within accumulated roundoff.
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 99);
  std::vector<ExactPushSumAgent> exact_agents;
  std::vector<PushSumAgent> float_agents;
  const std::vector<std::int64_t> values{4, -1, 0, 9, 3};
  for (std::int64_t v : values) {
    exact_agents.emplace_back(r(v), r(1));
    float_agents.emplace_back(static_cast<double>(v), 1.0);
  }
  Executor<ExactPushSumAgent> exact_exec(schedule, std::move(exact_agents),
                                         CommModel::kOutdegreeAware);
  Executor<PushSumAgent> float_exec(schedule, std::move(float_agents),
                                    CommModel::kOutdegreeAware);
  for (int round = 0; round < 50; ++round) {
    exact_exec.step();
    float_exec.step();
    for (Vertex v = 0; v < 5; ++v) {
      EXPECT_NEAR(float_exec.agent(v).y(), exact_exec.agent(v).y().to_double(),
                  1e-10)
          << "round " << round << " v " << v;
      EXPECT_NEAR(float_exec.agent(v).z(), exact_exec.agent(v).z().to_double(),
                  1e-10)
          << "round " << round << " v " << v;
    }
  }
}

TEST(ExactPushSum, InputValidation) {
  EXPECT_THROW(ExactPushSumAgent(r(1), r(0)), std::invalid_argument);
  EXPECT_THROW(ExactPushSumAgent(r(1), r(-1)), std::invalid_argument);
  ExactPushSumAgent agent(r(1), r(1));
  EXPECT_THROW(agent.send(0, 0), std::logic_error);
}

TEST(TraceRecorder, CsvRoundTripShape) {
  TraceRecorder trace({"a", "b"});
  trace.record(1, std::vector<double>{0.5, 1.5});
  trace.record(2, std::vector<double>{0.25, 1.75});
  EXPECT_EQ(trace.rows(), 2u);
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("round,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5,1.5"), std::string::npos);
  EXPECT_NE(csv.find("2,0.25,1.75"), std::string::npos);
  EXPECT_THROW(trace.record(3, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(TraceRecorder, DefaultLabelsAndFileOutput) {
  TraceRecorder trace;
  trace.record(1, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_NE(trace.to_csv().find("round,agent0,agent1,agent2"),
            std::string::npos);
  const std::string path = "/tmp/anonet_trace_test.csv";
  trace.write_csv(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_THROW(trace.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace anonet
