// Tests for the round engine's worker pool: full coverage of the index
// range, deterministic block boundaries, exception propagation, reuse.

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace anonet {
namespace {

TEST(ThreadPool, BlockCountMath) {
  EXPECT_EQ(ThreadPool::block_count(0, 8), 0);
  EXPECT_EQ(ThreadPool::block_count(1, 8), 1);
  EXPECT_EQ(ThreadPool::block_count(8, 8), 1);
  EXPECT_EQ(ThreadPool::block_count(9, 8), 2);
  EXPECT_EQ(ThreadPool::block_count(17, 8), 3);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const std::int64_t count = 1003;  // deliberately not a block multiple
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_blocks(count, 64,
                         [&](std::int64_t begin, std::int64_t end,
                             std::int64_t) {
                           for (std::int64_t i = begin; i < end; ++i) {
                             hits[static_cast<std::size_t>(i)].fetch_add(1);
                           }
                         });
    for (std::int64_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, BlockBoundariesAreDeterministic) {
  // Per-block partial sums reduced in block order must be identical no
  // matter how many workers ran the job — the executor's statistics and
  // shuffle reproducibility rest on this.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    const std::int64_t count = 5000;
    const std::int64_t block = 128;
    std::vector<std::int64_t> partial(
        static_cast<std::size_t>(ThreadPool::block_count(count, block)));
    pool.parallel_blocks(count, block,
                         [&](std::int64_t begin, std::int64_t end,
                             std::int64_t b) {
                           std::int64_t sum = 0;
                           for (std::int64_t i = begin; i < end; ++i) {
                             sum += i * i;
                           }
                           partial[static_cast<std::size_t>(b)] = sum;
                         });
    return partial;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::int64_t> total{0};
    pool.parallel_blocks(100, 7,
                         [&](std::int64_t begin, std::int64_t end,
                             std::int64_t) {
                           for (std::int64_t i = begin; i < end; ++i) {
                             total.fetch_add(i);
                           }
                         });
    EXPECT_EQ(total.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPool, BackToBackJobsNeverLoseOrLeakBlocks) {
  // Regression for a stale-worker race: a worker that woke for job G but
  // was preempted before claiming its first block must not consume blocks
  // (or invoke the callable) of job G+1. Tiny jobs submitted back-to-back
  // maximize the window in which workers from the previous generation are
  // still in flight; every index must be hit exactly once per job.
  ThreadPool pool(4);
  for (int job = 0; job < 2000; ++job) {
    const std::int64_t count = 2 + (job % 7) * 3;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
    pool.parallel_blocks(count, 1,
                         [&](std::int64_t begin, std::int64_t end,
                             std::int64_t) {
                           for (std::int64_t i = begin; i < end; ++i) {
                             hits[static_cast<std::size_t>(i)].fetch_add(1);
                           }
                         });
    for (std::int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "job " << job << " index " << i;
    }
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_blocks(100, 10,
                             [&](std::int64_t begin, std::int64_t,
                                 std::int64_t) {
                               if (begin >= 50) {
                                 throw std::runtime_error("boom");
                               }
                             }),
        std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> ran{0};
    pool.parallel_blocks(10, 1, [&](std::int64_t, std::int64_t,
                                    std::int64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPool, FailFastCancelsPendingBlocksOnBothPaths) {
  // Regression: the pooled path used to run every remaining block to
  // completion after the first throw, while the serial path stopped at the
  // throwing block. Both must now fail fast and rethrow the first error.
  // With every block throwing, each participating thread can complete at
  // most one block before the cursor is exhausted by the cancellation.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    const std::int64_t blocks = 10000;
    std::atomic<std::int64_t> executed{0};
    std::string caught;
    try {
      pool.parallel_blocks(blocks, 1,
                           [&](std::int64_t, std::int64_t, std::int64_t) {
                             executed.fetch_add(1);
                             throw std::runtime_error("boom");
                           });
      FAIL() << "parallel_blocks swallowed the exception";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "boom");
    EXPECT_LE(executed.load(), static_cast<std::int64_t>(threads))
        << "fail-fast cancellation left blocks running (threads=" << threads
        << ")";

    // The pool survives a cancelled job: the next job covers every index.
    std::atomic<int> ran{0};
    pool.parallel_blocks(10, 1, [&](std::int64_t, std::int64_t,
                                    std::int64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPool, SerialPathStopsExactlyAtTheThrowingBlock) {
  ThreadPool pool(1);
  std::vector<std::int64_t> seen;
  EXPECT_THROW(
      pool.parallel_blocks(10, 1,
                           [&](std::int64_t, std::int64_t, std::int64_t b) {
                             seen.push_back(b);
                             if (b == 3) throw std::logic_error("stop");
                           }),
      std::logic_error);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_blocks(0, 16, [&](std::int64_t, std::int64_t, std::int64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace anonet
