// Tests for the wire layer (wire/wire.hpp, wire/codecs.hpp): primitive
// round trips, exact bit accounting, truncation behavior, and the
// per-message-type property `decode(encode(m)) == m` with
// `encoded_bits(m) == bits actually written` for every core agent Message.

#include "wire/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "wire/codecs.hpp"

namespace anonet {
namespace {

// --- primitives --------------------------------------------------------------

TEST(Wire, BitsRoundTripLsbFirst) {
  wire::BitWriter w;
  w.write_bits(0b1011u, 4);
  w.write_bit(true);
  w.write_bits(0x5au, 8);
  EXPECT_EQ(w.bit_size(), 13);
  wire::BitReader r(w);
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_bits(8), 0x5au);
  EXPECT_EQ(r.remaining(), 0);
  EXPECT_THROW(w.write_bits(0, 65), std::invalid_argument);
  EXPECT_THROW(w.write_bits(0, -1), std::invalid_argument);
}

TEST(Wire, UvarintRoundTripMatchesSizeFormula) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 (1ull << 63) - 1,
                                 1ull << 63,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    wire::BitWriter w;
    w.write_uvarint(v);
    EXPECT_EQ(w.bit_size(), wire::uvarint_bits(v)) << v;
    wire::BitReader r(w);
    EXPECT_EQ(r.read_uvarint(), v);
    EXPECT_EQ(r.remaining(), 0) << v;
  }
}

TEST(Wire, SvarintRoundTripMatchesSizeFormula) {
  const std::int64_t cases[] = {0,
                                -1,
                                1,
                                -64,
                                64,
                                -12345678,
                                12345678,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t v : cases) {
    wire::BitWriter w;
    w.write_svarint(v);
    EXPECT_EQ(w.bit_size(), wire::svarint_bits(v)) << v;
    wire::BitReader r(w);
    EXPECT_EQ(r.read_svarint(), v);
  }
}

TEST(Wire, DoubleRoundTripIsBitExact) {
  const double cases[] = {0.0,
                          -0.0,
                          1.5,
                          -1.0 / 3.0,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};
  for (double v : cases) {
    wire::BitWriter w;
    w.write_double(v);
    EXPECT_EQ(w.bit_size(), wire::kDoubleBits);
    wire::BitReader r(w);
    // Bit-level comparison: distinguishes -0.0 from 0.0, preserves NaN.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.read_double()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Wire, TruncatedInputThrowsInsteadOfFabricatingBits) {
  wire::BitWriter w;
  w.write_bits(0x3u, 2);
  wire::BitReader r(w);
  EXPECT_THROW((void)r.read_bits(3), std::out_of_range);
  // The failed read consumes nothing usable; a fitting read still works.
  wire::BitReader r2(w);
  EXPECT_EQ(r2.read_bits(2), 0x3u);
  EXPECT_THROW((void)r2.read_bit(), std::out_of_range);
}

TEST(Wire, UvarintOverflowingSixtyFourBitsThrows) {
  // Ten full continuation groups put the 11th shift past bit 63.
  wire::BitWriter w;
  for (int i = 0; i < 10; ++i) w.write_bits(0xffu, 8);
  w.write_bits(0x01u, 8);
  wire::BitReader r(w);
  EXPECT_THROW((void)r.read_uvarint(), std::out_of_range);
}

TEST(Wire, BigIntRoundTripMatchesSizeFormula) {
  std::mt19937_64 rng(2024);
  std::vector<BigInt> cases = {BigInt(0), BigInt(1), BigInt(-1), BigInt(255),
                               BigInt(-256)};
  // Wide magnitudes: random 64-bit chunks stacked by shifting.
  for (int width = 1; width <= 6; ++width) {
    BigInt big(0);
    for (int c = 0; c < width; ++c) {
      big = big.shifted_left(61) + BigInt(static_cast<std::int64_t>(
                                       rng() >> 3));
    }
    cases.push_back(big);
    cases.push_back(BigInt(0) - big);
  }
  // Inline/limb spill frontier: every value within 2 of ±2^62, ±2^63, ±2^64
  // exercises both the small-magnitude decode lane (length <= 64) and the
  // general shift-accumulate lane right where the representation changes.
  for (int bits : {62, 63, 64}) {
    const BigInt base = BigInt(1).shifted_left(static_cast<std::size_t>(bits));
    for (std::int64_t d = -2; d <= 2; ++d) {
      cases.push_back(base + BigInt(d));
      cases.push_back(BigInt(0) - base + BigInt(d));
    }
  }
  for (const BigInt& v : cases) {
    wire::BitWriter w;
    w.write_bigint(v);
    EXPECT_EQ(w.bit_size(), wire::bigint_bits(v));
    wire::BitReader r(w);
    EXPECT_EQ(r.read_bigint(), v);
    EXPECT_EQ(r.remaining(), 0);
  }
}

TEST(Wire, TruncatedBigIntThrows) {
  wire::BitWriter w;
  w.write_bigint(BigInt(1).shifted_left(100));
  wire::BitReader r(w.bytes().data(), w.bit_size() - 8);
  EXPECT_THROW((void)r.read_bigint(), std::out_of_range);
}

TEST(Wire, RationalRoundTrip) {
  const Rational cases[] = {Rational(0), Rational(1), Rational(-7, 3),
                            Rational(BigInt(1).shifted_left(200), BigInt(3).shifted_left(100) + BigInt(1))};
  for (const Rational& v : cases) {
    wire::BitWriter w;
    w.write_rational(v);
    EXPECT_EQ(w.bit_size(), wire::rational_bits(v));
    wire::BitReader r(w);
    EXPECT_EQ(r.read_rational(), v);
  }
}

// --- message codecs ----------------------------------------------------------

// Encodes m, checks the size formula against the bits actually written,
// decodes from exactly those bits, and checks full consumption.
template <typename M>
M round_trip_checked(const M& m) {
  wire::BitWriter w;
  wire::encode(m, w);
  EXPECT_EQ(wire::encoded_bits(m), w.bit_size());
  wire::BitReader r(w);
  M out = wire::decode<M>(r);
  EXPECT_EQ(r.remaining(), 0);
  return out;
}

TEST(Wire, SetGossipMessageRoundTrip) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    SetGossipAgent::Message m;
    std::int64_t v = static_cast<std::int64_t>(rng() % 2000) - 1000;
    const int count = static_cast<int>(rng() % 8);
    for (int i = 0; i < count; ++i) {
      m.values.push_back(v);  // strictly increasing by construction
      v += 1 + static_cast<std::int64_t>(rng() % 1000);
    }
    EXPECT_EQ(round_trip_checked(m).values, m.values);
  }
}

TEST(Wire, SetGossipDecodeRejectsNonIncreasingKeys) {
  // A zero delta is not a representable message: the codec reserves it as a
  // decode error instead of silently collapsing duplicate values.
  wire::BitWriter w;
  w.write_uvarint(2);  // count
  w.write_svarint(5);  // first value
  w.write_uvarint(0);  // forged zero gap
  wire::BitReader r(w);
  EXPECT_THROW((void)wire::decode<SetGossipAgent::Message>(r),
               wire::DecodeError);
}

TEST(Wire, CorruptCountPrefixFailsFastInsteadOfReserving) {
  // A forged count of 2^62 with two bytes of actual payload: the clamped
  // count read must throw before any container reserve sees the number.
  wire::BitWriter w;
  w.write_uvarint(1ull << 62);
  w.write_bits(0xabu, 8);
  {
    wire::BitReader r(w);
    EXPECT_THROW((void)wire::decode<SetGossipAgent::Message>(r),
                 wire::DecodeError);
  }
  {
    wire::BitReader r(w);
    EXPECT_THROW((void)wire::decode<FrequencyPushSumAgent::Message>(r),
                 wire::DecodeError);
  }
  {
    wire::BitReader r(w);
    EXPECT_THROW((void)wire::decode<FrequencyUniformAgent::Message>(r),
                 wire::DecodeError);
  }
}

TEST(Wire, CorruptRationalDenominatorIsADecodeError) {
  // numerator 1, denominator 0 — unrepresentable by the encoder (Rational
  // forbids zero denominators), so the decoder must classify it as corrupt
  // input rather than letting std::domain_error escape.
  wire::BitWriter w;
  w.write_bigint(BigInt(1));
  w.write_bigint(BigInt(0));
  wire::BitReader r(w);
  EXPECT_THROW((void)r.read_rational(), wire::DecodeError);
}

// Property test for socket-facing decode paths: over truncations and
// single-bit flips of valid encodings, decode either succeeds or throws
// wire::DecodeError — never UB (ASan/UBSan cover the never-crash half in
// the sanitizer stages) and never a foreign exception type.
template <typename M>
void expect_decode_contained(const wire::BitWriter& w, std::int64_t bits) {
  wire::BitReader r(w.bytes().data(), bits);
  try {
    (void)wire::decode<M>(r);
  } catch (const wire::DecodeError&) {
    // fine: corrupt input reported as such
  }
  // any other exception type escapes and fails the test
}

template <typename M>
void corrupt_stream_property(const M& message) {
  wire::BitWriter w;
  wire::encode(message, w);
  // Every truncation length, including zero.
  for (std::int64_t bits = 0; bits < w.bit_size(); ++bits) {
    expect_decode_contained<M>(w, bits);
  }
  // Every single-bit flip.
  for (std::int64_t bit = 0; bit < w.bit_size(); ++bit) {
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes[static_cast<std::size_t>(bit >> 3)] ^=
        static_cast<std::uint8_t>(1u << (bit & 7));
    wire::BitReader r(bytes.data(), w.bit_size());
    try {
      (void)wire::decode<M>(r);
    } catch (const wire::DecodeError&) {
    }
  }
}

TEST(Wire, CorruptStreamsNeverEscapeDecodeError) {
  SetGossipAgent::Message gossip;
  gossip.values = {-100, -7, 0, 3, 900000};
  corrupt_stream_property(gossip);

  FrequencyPushSumAgent::Message pushsum;
  pushsum.keys = {1, 5, 9};
  pushsum.ys = {0.5, 0.25, 0.125};
  pushsum.zs = {1.0, 2.0, 3.0};
  pushsum.outdegree = 4;
  corrupt_stream_property(pushsum);

  ExactPushSumAgent::Message exact;
  exact.y_share = Rational(7, 48);
  exact.z_share = Rational(BigInt(1), BigInt(3).shifted_left(80));
  corrupt_stream_property(exact);

  FrequencyMetropolisAgent::Message metro;
  metro.keys = {-3, 12};
  metro.xs = {0.75, -1.5};
  metro.degree = 2;
  corrupt_stream_property(metro);

  MinBaseAgent::Message base;
  base.view = ViewId{129};
  base.port = 7;
  corrupt_stream_property(base);
}

TEST(Wire, PushSumMessageRoundTrip) {
  std::mt19937_64 rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    PushSumAgent::Message m;
    m.y_share = std::bit_cast<double>(rng() | 0x10ull);
    m.z_share = 1.0 / static_cast<double>(1 + rng() % 97);
    if (std::isnan(m.y_share)) m.y_share = -0.25;
    const auto out = round_trip_checked(m);
    EXPECT_EQ(out.y_share, m.y_share);
    EXPECT_EQ(out.z_share, m.z_share);
  }
}

TEST(Wire, FrequencyPushSumMessageRoundTrip) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    // Stage entries through a map to get the sorted-unique key order the
    // message's parallel vectors require.
    std::map<std::int64_t, std::pair<double, double>> staged;
    const int count = static_cast<int>(rng() % 6);
    for (int i = 0; i < count; ++i) {
      staged[static_cast<std::int64_t>(rng() % 5000) - 2500] = {
          static_cast<double>(rng() % 1000) / 8.0,
          static_cast<double>(rng() % 1000) / 16.0};
    }
    FrequencyPushSumAgent::Message m;
    for (const auto& [key, yz] : staged) {
      m.keys.push_back(key);
      m.ys.push_back(yz.first);
      m.zs.push_back(yz.second);
    }
    m.outdegree = static_cast<int>(rng() % 7) + 1;
    const auto out = round_trip_checked(m);
    EXPECT_EQ(out.outdegree, m.outdegree);
    EXPECT_EQ(out.keys, m.keys);
    EXPECT_EQ(out.ys, m.ys);
    EXPECT_EQ(out.zs, m.zs);
  }
}

TEST(Wire, ExactPushSumMessageRoundTripAndGrowth) {
  ExactPushSumAgent::Message m;
  m.y_share = Rational(7, 48);
  m.z_share = Rational(1, 3);
  auto out = round_trip_checked(m);
  EXPECT_EQ(out.y_share, m.y_share);
  EXPECT_EQ(out.z_share, m.z_share);
  // The denominators of exact shares grow with the round; the measured
  // bits must grow along (the "infinite bandwidth" regime, wire/codecs.hpp).
  ExactPushSumAgent::Message deep;
  deep.y_share = Rational(BigInt(1), BigInt(3).shifted_left(512));
  deep.z_share = Rational(BigInt(1), BigInt(5).shifted_left(512));
  EXPECT_GT(wire::encoded_bits(deep), wire::encoded_bits(m) + 1024);
  out = round_trip_checked(deep);
  EXPECT_EQ(out.y_share, deep.y_share);
}

TEST(Wire, MetropolisMessagesRoundTrip) {
  MetropolisAgent::Message m;
  m.x = -3.75;
  m.degree = 4;
  const auto out = round_trip_checked(m);
  EXPECT_EQ(out.x, m.x);
  EXPECT_EQ(out.degree, m.degree);

  std::mt19937_64 rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    std::map<std::int64_t, double> staged;
    const int count = static_cast<int>(rng() % 6);
    for (int i = 0; i < count; ++i) {
      staged[static_cast<std::int64_t>(rng() % 4000) - 2000] =
          static_cast<double>(rng() % 512) / 32.0;
    }
    FrequencyMetropolisAgent::Message f;
    for (const auto& [key, x] : staged) {
      f.keys.push_back(key);
      f.xs.push_back(x);
    }
    f.degree = static_cast<int>(rng() % 9) + 1;
    const auto fout = round_trip_checked(f);
    EXPECT_EQ(fout.degree, f.degree);
    EXPECT_EQ(fout.keys, f.keys);
    EXPECT_EQ(fout.xs, f.xs);
  }
}

TEST(Wire, UniformConsensusMessagesRoundTrip) {
  UniformWeightAgent::Message m;
  m.x = 0.125;
  EXPECT_EQ(round_trip_checked(m).x, m.x);

  std::mt19937_64 rng(15);
  for (int trial = 0; trial < 30; ++trial) {
    FrequencyUniformAgent::Message f;
    const int count = static_cast<int>(rng() % 6);
    for (int i = 0; i < count; ++i) {
      f.x.emplace(static_cast<std::int64_t>(rng() % 4000) - 2000,
                  static_cast<double>(rng() % 512) / 64.0);
    }
    EXPECT_EQ(round_trip_checked(f).x, f.x);
  }
}

TEST(Wire, ViewReferenceMessagesRoundTrip) {
  // Interned references (codecs.hpp header comment): the wire carries a
  // registry slot, not a serialized subtree, so the bits stay logarithmic
  // in the registry size however large the mathematical view grows.
  for (ViewId view : {kInvalidView, ViewId{0}, ViewId{1}, ViewId{4096}}) {
    HistoryFrequencyAgent::Message h;
    h.view = view;
    EXPECT_EQ(round_trip_checked(h).view, view);

    MinBaseAgent::Message b;
    b.view = view;
    b.port = 3;
    const auto out = round_trip_checked(b);
    EXPECT_EQ(out.view, view);
    EXPECT_EQ(out.port, b.port);
    EXPECT_LE(wire::encoded_bits(b), 48);
  }
}

}  // namespace
}  // namespace anonet
