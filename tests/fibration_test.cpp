// Tests for fibration verification and lifting (fibration/fibration.hpp).

#include "fibration/fibration.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace anonet {
namespace {

TEST(Fibration, IdentityIsAFibration) {
  const Digraph g = directed_ring(5);
  std::vector<Vertex> identity{0, 1, 2, 3, 4};
  EXPECT_TRUE(is_fibration(g, g, identity));
}

TEST(Fibration, ModPRingProjection) {
  const LiftedGraph lift = ring_fibration(9, 3);
  EXPECT_TRUE(
      is_fibration(lift.graph, bidirectional_ring(3), lift.projection));
}

TEST(Fibration, WrongProjectionRejected) {
  const Digraph g = bidirectional_ring(6);
  const Digraph base = bidirectional_ring(3);
  // A non-structure-preserving map: everything to vertex 0.
  std::vector<Vertex> collapse(6, 0);
  EXPECT_FALSE(is_fibration(g, base, collapse));
}

TEST(Fibration, ValueMismatchRejected) {
  const LiftedGraph lift = ring_fibration(6, 3);
  const std::vector<int> base_values{1, 2, 3};
  std::vector<int> lift_values = lift_along(lift.projection, base_values);
  EXPECT_TRUE(is_fibration(lift.graph, lift_values, bidirectional_ring(3),
                           base_values, lift.projection));
  lift_values[0] = 99;
  EXPECT_FALSE(is_fibration(lift.graph, lift_values, bidirectional_ring(3),
                            base_values, lift.projection));
}

TEST(Fibration, SurjectivityRequired) {
  // Map a 3-ring onto a 2-vertex base that has an unreachable extra vertex.
  Digraph base(2);
  base.add_edge(0, 0);
  base.add_edge(0, 0);
  base.add_edge(0, 0);
  base.add_edge(1, 1);
  const Digraph g = bidirectional_ring(3);
  std::vector<Vertex> projection(3, 0);
  EXPECT_FALSE(is_fibration(g, base, projection));
}

TEST(Fibration, ColorMismatchRejected) {
  Digraph g(2);
  g.add_edge(0, 0, 1);
  g.add_edge(1, 1, 1);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 2);
  Digraph base(1);
  base.add_edge(0, 0, 1);
  base.add_edge(0, 0, 2);
  EXPECT_TRUE(is_fibration(g, base, {0, 0}));
  Digraph bad_base(1);
  bad_base.add_edge(0, 0, 1);
  bad_base.add_edge(0, 0, 7);  // wrong color
  EXPECT_FALSE(is_fibration(g, bad_base, {0, 0}));
}

TEST(Fibration, LiftAlongCopiesFibrewise) {
  const std::vector<Vertex> projection{0, 1, 0, 1, 0};
  const std::vector<int> base_values{10, 20};
  EXPECT_EQ(lift_along(projection, base_values),
            (std::vector<int>{10, 20, 10, 20, 10}));
}

TEST(Fibration, FibreSizes) {
  EXPECT_EQ(fibre_sizes({0, 1, 0, 2, 0}, 3), (std::vector<int>{3, 1, 1}));
}

TEST(Fibration, ProjectionSizeMismatchThrows) {
  EXPECT_THROW(
      static_cast<void>(is_fibration(directed_ring(3), directed_ring(3),
                                     {0, 1})),
      std::invalid_argument);
}

TEST(Fibration, CompositionOfLifts) {
  // A random lift of a random lift still fibres onto the original base via
  // the composed projection.
  const Digraph base = random_strongly_connected(3, 2, 5);
  const LiftedGraph middle = random_lift(base, {2, 2, 2}, 6);
  const LiftedGraph top = random_lift(middle.graph, {2, 1, 2, 1, 2, 1}, 7);
  std::vector<Vertex> composed;
  composed.reserve(top.projection.size());
  for (Vertex v : top.projection) {
    composed.push_back(middle.projection[static_cast<std::size_t>(v)]);
  }
  EXPECT_TRUE(is_fibration(top.graph, base, composed));
}

}  // namespace
}  // namespace anonet
