// Tests for the executable impossibility machinery (core/lifting_demo.hpp):
// Lemma 3.1 as a property, and the Section 4.1 ring obstruction.

#include "core/lifting_demo.hpp"

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

TEST(Lifting, GossipLemmaHoldsOnRandomLifts) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph base = random_strongly_connected(4, 4, seed + 70);
    const LiftedGraph lift = random_lift(base, {2, 3, 2, 2}, seed);
    const std::vector<std::int64_t> base_inputs{1, 2, 3, 1};
    EXPECT_TRUE(gossip_lifting_holds(lift, base, base_inputs, 10)) << seed;
  }
}

TEST(Lifting, GossipLemmaHoldsOnRingFibrations) {
  const LiftedGraph lift = ring_fibration(12, 4);
  EXPECT_TRUE(gossip_lifting_holds(lift, bidirectional_ring(4),
                                   {5, 6, 7, 8}, 15));
}

TEST(Lifting, PortedRingIsAValidPortLabelling) {
  const Digraph g = ported_ring(5);
  EXPECT_NO_THROW(validate_output_ports(g));
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_THROW(ported_ring(2), std::invalid_argument);
}

TEST(Lifting, RingObstructionForcesAverageButBlocksSum) {
  // v and w are frequency-equivalent with different sums: the obstruction
  // applies to sum (f(v) != f(w)) but is vacuous for average (f(v) == f(w)).
  const std::vector<std::int64_t> v{1, 2, 1, 2, 1, 2};
  const std::vector<std::int64_t> w{1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2};
  for (CommModel model :
       {CommModel::kSymmetricBroadcast, CommModel::kOutdegreeAware,
        CommModel::kOutputPortAware}) {
    const LiftingObstruction obstruction =
        demonstrate_ring_obstruction(v, w, model, sum_function(), 12);
    ASSERT_TRUE(obstruction.applicable) << to_string(model);
    EXPECT_TRUE(obstruction.lifting_verified) << to_string(model);
    EXPECT_NE(obstruction.f_of_v, obstruction.f_of_w) << to_string(model);

    const LiftingObstruction harmless =
        demonstrate_ring_obstruction(v, w, model, average_function(), 12);
    EXPECT_EQ(harmless.f_of_v, harmless.f_of_w);
  }
}

TEST(Lifting, ObstructionAppliesToCountHenceNIsNotComputable) {
  // Any two equal-frequency vectors of different sizes kill `count`: the
  // network cannot learn its own size in these models.
  const std::vector<std::int64_t> v{3, 3, 4};
  const std::vector<std::int64_t> w{3, 3, 4, 3, 3, 4, 3, 3, 4};
  const LiftingObstruction obstruction = demonstrate_ring_obstruction(
      v, w, CommModel::kOutdegreeAware, count_function(), 12);
  ASSERT_TRUE(obstruction.applicable);
  EXPECT_TRUE(obstruction.lifting_verified);
  EXPECT_EQ(obstruction.f_of_v, r(3));
  EXPECT_EQ(obstruction.f_of_w, r(9));
}

TEST(Lifting, RequiresFrequencyEquivalentInputs) {
  EXPECT_THROW(demonstrate_ring_obstruction({1, 1}, {1, 2},
                                            CommModel::kOutdegreeAware,
                                            sum_function(), 5),
               std::invalid_argument);
}

TEST(Lifting, ReportsInapplicabilityForTinyCommonSize) {
  // |v| = 3, |w| = 5 share only gcd 1 < 3: no usable ring size.
  const std::vector<std::int64_t> v{2, 2, 2};
  const std::vector<std::int64_t> w{2, 2, 2, 2, 2};
  const LiftingObstruction obstruction = demonstrate_ring_obstruction(
      v, w, CommModel::kOutdegreeAware, count_function(), 5);
  EXPECT_FALSE(obstruction.applicable);
}

TEST(Lifting, VerifiedAcrossManyFrequencyPatterns) {
  // Sweep several frequency patterns; the lifting must hold in every model.
  const std::vector<std::vector<std::int64_t>> patterns{
      {0, 0, 0, 1}, {5, 6, 7, 8}, {1, 1, 2, 2}, {9, 9, 9, 9}};
  for (const auto& pattern : patterns) {
    std::vector<std::int64_t> v, w;
    for (int copy = 0; copy < 2; ++copy) {
      v.insert(v.end(), pattern.begin(), pattern.end());
    }
    for (int copy = 0; copy < 3; ++copy) {
      w.insert(w.end(), pattern.begin(), pattern.end());
    }
    for (CommModel model :
         {CommModel::kSymmetricBroadcast, CommModel::kOutdegreeAware,
          CommModel::kOutputPortAware}) {
      const LiftingObstruction obstruction = demonstrate_ring_obstruction(
          v, w, model, count_function(), 10);
      ASSERT_TRUE(obstruction.applicable);
      EXPECT_TRUE(obstruction.lifting_verified)
          << to_string(model) << " pattern[0]=" << pattern[0];
    }
  }
}

}  // namespace
}  // namespace anonet
