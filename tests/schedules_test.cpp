// Tests for dynamic-graph schedules and dynamic-diameter measurement.

#include <gtest/gtest.h>

#include "dynamics/adversarial.hpp"
#include "dynamics/connectivity.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace anonet {
namespace {

TEST(Schedules, StaticScheduleRepeatsTheGraph) {
  StaticSchedule schedule(directed_ring(4));
  EXPECT_EQ(schedule.vertex_count(), 4);
  const Digraph g1 = schedule.at(1);
  const Digraph g9 = schedule.at(9);
  EXPECT_EQ(g1.edge_count(), g9.edge_count());
  EXPECT_TRUE(g1.has_all_self_loops());
  EXPECT_THROW(schedule.at(0), std::invalid_argument);
}

TEST(Schedules, StaticDynamicDiameterEqualsDiameter) {
  // For a static strongly connected graph the dynamic diameter equals the
  // ordinary diameter (products of the same graph with self-loops).
  for (Vertex n : {3, 5, 8}) {
    StaticSchedule schedule(directed_ring(n));
    EXPECT_EQ(dynamic_diameter(schedule, 3, 2 * n),
              diameter(directed_ring(n)))
        << n;
  }
}

TEST(Schedules, PeriodicScheduleCycles) {
  Digraph a(2);
  a.add_edge(0, 1);
  Digraph b(2);
  b.add_edge(1, 0);
  PeriodicSchedule schedule({a, b});
  EXPECT_TRUE(schedule.at(1).has_edge(0, 1));
  EXPECT_FALSE(schedule.at(1).has_edge(1, 0));
  EXPECT_TRUE(schedule.at(2).has_edge(1, 0));
  EXPECT_TRUE(schedule.at(3).has_edge(0, 1));  // period 2
  EXPECT_TRUE(schedule.at(1).has_all_self_loops());  // added by constructor
}

TEST(Schedules, PeriodicAlternationHasFiniteDynamicDiameter) {
  // Two half-rings, neither strongly connected, alternating: together they
  // cover the ring, so the dynamic diameter is finite — the "intermediate
  // graphs may be disconnected" regime.
  const Vertex n = 6;
  Digraph evens(n), odds(n);
  for (Vertex v = 0; v < n; ++v) {
    if (v % 2 == 0) evens.add_edge(v, (v + 1) % n);
    else odds.add_edge(v, (v + 1) % n);
    evens.add_edge(v, v);
    odds.add_edge(v, v);
  }
  PeriodicSchedule schedule({evens, odds});
  const int d = dynamic_diameter(schedule, 8, 100);
  EXPECT_GT(d, 0);
  EXPECT_LE(d, 2 * n);
}

TEST(Schedules, RandomStronglyConnectedScheduleIsDeterministicInT) {
  RandomStronglyConnectedSchedule schedule(6, 3, 17);
  const Digraph g3a = schedule.at(3);
  const Digraph g3b = schedule.at(3);
  EXPECT_EQ(g3a.edges(), g3b.edges());
  EXPECT_TRUE(is_strongly_connected(schedule.at(1)));
  EXPECT_TRUE(is_strongly_connected(schedule.at(12)));
  // Different rounds should (almost surely) differ.
  EXPECT_NE(schedule.at(1).edges(), schedule.at(2).edges());
}

TEST(Schedules, RandomStronglyConnectedDynamicDiameterAtMostN) {
  RandomStronglyConnectedSchedule schedule(7, 2, 5);
  const int d = dynamic_diameter(schedule, 10, 7);
  EXPECT_GT(d, 0);
  EXPECT_LE(d, 6);
}

TEST(Schedules, RandomSymmetricScheduleIsSymmetricEveryRound) {
  RandomSymmetricSchedule schedule(8, 3, 23);
  for (int t = 1; t <= 10; ++t) {
    EXPECT_TRUE(schedule.at(t).is_symmetric()) << t;
    EXPECT_TRUE(is_strongly_connected(schedule.at(t))) << t;
  }
}

TEST(Schedules, TokenRingIsSparseButFinitelyConnected) {
  TokenRingSchedule schedule(4);
  for (int t = 1; t <= 8; ++t) {
    EXPECT_EQ(schedule.at(t).edge_count(), 5);  // 4 self-loops + 1 edge
  }
  const int d = dynamic_diameter(schedule, 6, 64);
  EXPECT_GT(d, 4);   // much worse than a static ring
  EXPECT_LE(d, 16);  // but finite (~n^2)
}

TEST(Schedules, AsyncStartIsolatesLateStarters) {
  auto inner = std::make_shared<StaticSchedule>(complete_graph(3));
  AsyncStartSchedule schedule(inner, {1, 1, 5});
  // Rounds 1-4: vertex 2 only has its self-loop.
  const Digraph g2 = schedule.at(2);
  EXPECT_EQ(g2.outdegree(2), 1);
  EXPECT_EQ(g2.indegree(2), 1);
  EXPECT_TRUE(g2.has_edge(0, 1));
  // Round 5 onwards: full graph again.
  const Digraph g5 = schedule.at(5);
  EXPECT_EQ(g5.outdegree(2), 3);
}

TEST(Schedules, AsyncStartValidatesSizes) {
  auto inner = std::make_shared<StaticSchedule>(complete_graph(3));
  EXPECT_THROW(AsyncStartSchedule(inner, {1, 1}), std::invalid_argument);
  EXPECT_THROW(AsyncStartSchedule(nullptr, {}), std::invalid_argument);
}

TEST(Schedules, RandomMatchingIsDegreeAtMostOne) {
  RandomMatchingSchedule schedule(7, 3);
  for (int t = 1; t <= 10; ++t) {
    const Digraph g = schedule.at(t);
    EXPECT_TRUE(g.is_symmetric()) << t;
    EXPECT_TRUE(g.has_all_self_loops()) << t;
    for (Vertex v = 0; v < 7; ++v) {
      EXPECT_LE(g.outdegree(v), 2) << t;  // self + at most one partner
    }
  }
  // Deterministic in (seed, t).
  EXPECT_EQ(schedule.at(4).edges(), RandomMatchingSchedule(7, 3).at(4).edges());
}

TEST(Schedules, RandomMatchingHasFiniteDynamicDiameterEmpirically) {
  RandomMatchingSchedule schedule(6, 9);
  const int d = dynamic_diameter(schedule, 5, 400);
  EXPECT_GT(d, 0);
}

TEST(Schedules, GrowingGapHasBurstsWithDoublingGaps) {
  GrowingGapSchedule schedule(bidirectional_ring(4), 2, 3);
  // Bursts at rounds {1,2}, then gap 3 -> {6,7}, gap 6 -> {14,15}, ...
  EXPECT_TRUE(schedule.in_burst(1));
  EXPECT_TRUE(schedule.in_burst(2));
  EXPECT_FALSE(schedule.in_burst(3));
  EXPECT_TRUE(schedule.in_burst(6));
  EXPECT_FALSE(schedule.in_burst(8));
  EXPECT_TRUE(schedule.in_burst(14));
  // In-burst rounds carry the base graph; gaps carry self-loops only.
  EXPECT_GT(schedule.at(1).edge_count(), 4);
  EXPECT_EQ(schedule.at(3).edge_count(), 4);
  EXPECT_THROW(GrowingGapSchedule(bidirectional_ring(3), 0, 1),
               std::invalid_argument);
}

TEST(Schedules, GrowingGapHasNoFiniteDynamicDiameter) {
  // Any claimed window bound is violated by a late-enough gap.
  GrowingGapSchedule schedule(bidirectional_ring(4), 2, 3);
  EXPECT_EQ(window_to_complete(schedule, 16, 10), -1);  // inside a long gap
}

TEST(Schedules, DynamicDiameterUnreachableReturnsMinusOne) {
  Digraph disconnected(3);
  disconnected.ensure_self_loops();
  StaticSchedule schedule(disconnected);
  EXPECT_EQ(dynamic_diameter(schedule, 2, 10), -1);
}

TEST(Schedules, SpoonerServesTheBridgeOnlyOnPeriodMultiples) {
  const Vertex n = 6;
  SpoonerSchedule schedule(n, 5);
  EXPECT_EQ(schedule.vertex_count(), n);
  EXPECT_EQ(schedule.period(), 5);
  for (int t = 1; t <= 12; ++t) {
    EXPECT_EQ(schedule.bridge_round(t), t % 5 == 0) << t;
    const Digraph g = schedule.at(t);
    EXPECT_TRUE(g.is_symmetric()) << t;
    EXPECT_TRUE(g.has_all_self_loops()) << t;
    EXPECT_EQ(g.has_edge(n - 2, n - 1), t % 5 == 0) << t;
    // Off-bridge rounds isolate the handle (self-loop only).
    if (t % 5 != 0) {
      EXPECT_EQ(g.outdegree(n - 1), 1) << t;
    }
  }
}

TEST(Schedules, SpoonerRealizesDynamicDiameterPeriodPlusTwo) {
  // The handle waits up to `period` rounds at the bridge; crossing the bowl
  // adds two hub hops, so D = period + 2 — the prescribed-delay adversary.
  for (int period : {2, 5}) {
    SpoonerSchedule schedule(6, period);
    EXPECT_EQ(dynamic_diameter(schedule, 3 * period, 4 * period + 8),
              period + 2)
        << period;
  }
}

TEST(Schedules, SpoonerValidates) {
  EXPECT_THROW(SpoonerSchedule(2, 1), std::invalid_argument);
  EXPECT_THROW(SpoonerSchedule(5, 0), std::invalid_argument);
}

TEST(Schedules, UnionRingNoRoundIsConnectedButTheUnionIs) {
  const Vertex n = 6;
  UnionRingSchedule schedule(n, 3);
  EXPECT_EQ(schedule.parts(), 3);
  for (int t = 1; t <= 7; ++t) {
    const Digraph g = schedule.at(t);
    EXPECT_FALSE(is_strongly_connected(g)) << t;
    EXPECT_TRUE(g.is_symmetric()) << t;
    EXPECT_TRUE(g.has_all_self_loops()) << t;
  }
  // Phases cycle with period `parts`.
  EXPECT_EQ(schedule.at(1).edges(), schedule.at(4).edges());
  // The union over any window of `parts` rounds is the ring, so information
  // still flows: finite dynamic diameter, at most parts * n.
  const int d = dynamic_diameter(schedule, 6, 3 * static_cast<int>(n));
  EXPECT_GT(d, 0);
  EXPECT_LE(d, 3 * static_cast<int>(n));
}

TEST(Schedules, UnionRingValidates) {
  EXPECT_THROW(UnionRingSchedule(1, 1), std::invalid_argument);
  EXPECT_THROW(UnionRingSchedule(4, 0), std::invalid_argument);
}

TEST(Schedules, GrowingGapRingServesTheRingExactlyOnPowersOfTwo) {
  const Vertex n = 6;
  GrowingGapRingSchedule schedule(n);
  EXPECT_EQ(schedule.vertex_count(), n);
  for (int t = 1; t <= 64; ++t) {
    const bool power_of_two = (t & (t - 1)) == 0;
    EXPECT_EQ(GrowingGapRingSchedule::connected_round(t), power_of_two) << t;
    const Digraph g = schedule.at(t);
    EXPECT_TRUE(g.is_symmetric()) << t;
    EXPECT_TRUE(g.has_all_self_loops()) << t;
    if (power_of_two) {
      EXPECT_TRUE(is_strongly_connected(g)) << t;
      // Bidirectional ring + self-loops: 3n directed edges.
      EXPECT_EQ(g.edge_count(), 3 * n) << t;
    } else {
      // Self-loops only: every vertex isolated.
      EXPECT_EQ(g.edge_count(), n) << t;
    }
  }
}

TEST(Schedules, GrowingGapRingHasUnboundedDelayButConnectsInfinitelyOften) {
  GrowingGapRingSchedule schedule(5);
  // The gap between consecutive connected rounds doubles forever, so no
  // window bound certifies the dynamic diameter: measuring inside a long
  // silent stretch finds no path within the window.
  EXPECT_EQ(dynamic_diameter(schedule, 5, 10), -1);
  // Yet connectivity recurs: the next power of two always arrives.
  int connected = 0;
  for (int t = 1; t <= 1024; ++t) {
    if (GrowingGapRingSchedule::connected_round(t)) ++connected;
  }
  EXPECT_EQ(connected, 11);  // 1, 2, 4, ..., 1024
}

TEST(Schedules, GrowingGapRingServesBorrowedPhaseViews) {
  GrowingGapRingSchedule schedule(4);
  EXPECT_TRUE(schedule.view(3).is_borrowed());
  // Both phase graphs are stable members.
  EXPECT_EQ(&schedule.view(1).get(), &schedule.view(4).get());
  EXPECT_EQ(&schedule.view(3).get(), &schedule.view(5).get());
  EXPECT_NE(&schedule.view(3).get(), &schedule.view(4).get());
}

TEST(Schedules, GrowingGapRingValidates) {
  EXPECT_THROW(GrowingGapRingSchedule(1), std::invalid_argument);
  EXPECT_THROW(GrowingGapRingSchedule(0), std::invalid_argument);
  // n == 2 is the degenerate complete ring: no duplicate parallel edges.
  GrowingGapRingSchedule two(2);
  const Digraph g = two.at(1);
  EXPECT_EQ(g.edge_count(), 4);  // two self-loops + one bidirectional pair
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Schedules, AdversarialSchedulesServeBorrowedPhaseViews) {
  SpoonerSchedule spooner(5, 4);
  EXPECT_TRUE(spooner.view(4).is_borrowed());
  // The two phase graphs are stable members: same round class, same object.
  EXPECT_EQ(&spooner.view(4).get(), &spooner.view(8).get());
  EXPECT_EQ(&spooner.view(1).get(), &spooner.view(2).get());
  EXPECT_NE(&spooner.view(1).get(), &spooner.view(4).get());

  UnionRingSchedule ring(6, 3);
  EXPECT_TRUE(ring.view(2).is_borrowed());
  EXPECT_EQ(&ring.view(2).get(), &ring.view(5).get());
  EXPECT_NE(&ring.view(2).get(), &ring.view(3).get());
}

TEST(Schedules, RandomScheduleViewsAreCachedPerRound) {
  RandomStronglyConnectedSchedule schedule(6, 3, 17);
  // Repeating a round serves the cached graph: same object, no rebuild.
  const RoundGraphRef a = schedule.view(3);
  const RoundGraphRef b = schedule.view(3);
  EXPECT_TRUE(a.is_borrowed());
  EXPECT_EQ(&a.get(), &b.get());
  // Consecutive rounds come from different slots — the executor keys its
  // per-graph caches on the address, so a changed topology must change it.
  const RoundGraphRef c = schedule.view(4);
  EXPECT_NE(&b.get(), &c.get());
  // Cached views carry exactly the at(t) graph, wherever they live.
  for (int t : {1, 2, 3, 2, 5, 1}) {
    EXPECT_EQ(schedule.view(t).get().edges(), schedule.at(t).edges()) << t;
  }
  RandomSymmetricSchedule symmetric(6, 3, 9);
  EXPECT_TRUE(symmetric.view(2).is_borrowed());
  EXPECT_EQ(symmetric.view(2).get().edges(), symmetric.at(2).edges());
  RandomMatchingSchedule matching(6, 9);
  EXPECT_TRUE(matching.view(2).is_borrowed());
  EXPECT_EQ(matching.view(2).get().edges(), matching.at(2).edges());
}

}  // namespace
}  // namespace anonet
