// Tests for the distributed minimum-base algorithm (core/minbase_agent.hpp):
// correctness by round n + D, all three valued variants, self-stabilization.

#include "core/minbase_agent.hpp"

#include <gtest/gtest.h>

#include "dynamics/schedules.hpp"
#include "fibration/minimum_base.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

struct Rig {
  std::shared_ptr<ViewRegistry> registry = std::make_shared<ViewRegistry>();
  std::shared_ptr<LabelCodec> codec = std::make_shared<LabelCodec>();

  std::vector<MinBaseAgent> agents(const std::vector<std::int64_t>& inputs,
                                   CommModel model) {
    std::vector<MinBaseAgent> result;
    for (std::int64_t input : inputs) {
      result.emplace_back(registry, codec, input, model);
    }
    return result;
  }
};

// Ground-truth minimum base for a given model, via the centralized pipeline.
MinimumBase centralized_truth(const Digraph& g,
                              const std::vector<std::int64_t>& inputs,
                              CommModel model,
                              const std::shared_ptr<LabelCodec>& codec) {
  std::vector<int> labels;
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    if (model == CommModel::kOutdegreeAware) {
      labels.push_back(codec->valued_degree_label(
          inputs[v], g.outdegree(static_cast<Vertex>(v))));
    } else {
      labels.push_back(codec->value_label(inputs[v]));
    }
  }
  return minimum_base(g, labels);
}

TEST(MinBaseAgent, RecoversBaseByRoundNPlus2D) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Digraph base = random_strongly_connected(3, 2, seed + 30);
    LiftedGraph lift = random_lift(base, {2, 2, 2}, seed);
    ASSERT_TRUE(is_strongly_connected(lift.graph));
    Digraph g = lift.graph;
    const std::vector<std::int64_t> inputs{7, 7, 9, 9, 7, 7};

    Rig setup;
    Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(g),
                                setup.agents(inputs, CommModel::kOutdegreeAware),
                                CommModel::kOutdegreeAware);
    const int n = g.vertex_count();
    const int d = diameter(g);
    exec.run(n + 2 * d);
    const MinimumBase truth = centralized_truth(
        g, inputs, CommModel::kOutdegreeAware, setup.codec);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const ExtractedBase& candidate = exec.agent(v).candidate();
      ASSERT_TRUE(candidate.plausible) << seed << " v=" << v;
      EXPECT_TRUE(find_isomorphism(candidate.base, candidate.values,
                                   truth.base, truth.values)
                      .has_value())
          << seed << " v=" << v;
    }
  }
}

TEST(MinBaseAgent, CandidateStaysCorrectAfterStabilization) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 2, 1, 2, 1, 2};
  Rig setup;
  Executor<MinBaseAgent> exec(
      std::make_shared<StaticSchedule>(g),
      setup.agents(inputs, CommModel::kSymmetricBroadcast),
      CommModel::kSymmetricBroadcast);
  const MinimumBase truth = centralized_truth(
      g, inputs, CommModel::kSymmetricBroadcast, setup.codec);
  exec.run(g.vertex_count() + 2 * diameter(g));
  for (int extra = 0; extra < 5; ++extra) {
    exec.step();
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const ExtractedBase& candidate = exec.agent(v).candidate();
      ASSERT_TRUE(candidate.plausible);
      EXPECT_TRUE(find_isomorphism(candidate.base, candidate.values,
                                   truth.base, truth.values)
                      .has_value());
    }
  }
}

TEST(MinBaseAgent, PortColorsSharpenTheBase) {
  // With output ports, fibrations are coverings: on a port-colored prime
  // graph the extracted base keeps port colors, and extraction on a covering
  // lift recovers a base with the same vertex count as the base graph.
  Digraph base = random_strongly_connected(4, 3, 8);
  base.assign_output_ports();
  const LiftedGraph lift = random_covering_lift(base, 2, 8);
  ASSERT_TRUE(is_strongly_connected(lift.graph));
  const std::vector<std::int64_t> inputs(
      static_cast<std::size_t>(lift.graph.vertex_count()), 5);
  Rig setup;
  Executor<MinBaseAgent> exec(
      std::make_shared<StaticSchedule>(lift.graph),
      setup.agents(inputs, CommModel::kOutputPortAware),
      CommModel::kOutputPortAware);
  exec.run(lift.graph.vertex_count() + 2 * diameter(lift.graph));
  for (Vertex v = 0; v < lift.graph.vertex_count(); ++v) {
    const ExtractedBase& candidate = exec.agent(v).candidate();
    ASSERT_TRUE(candidate.plausible);
    // The covering lift collapses exactly back to the (uniformly valued)
    // base pattern: same vertex count.
    EXPECT_EQ(candidate.base.vertex_count(), base.vertex_count()) << v;
  }
}

TEST(MinBaseAgent, UniformRingCollapsesToOneVertex) {
  const Digraph g = bidirectional_ring(5);
  const std::vector<std::int64_t> inputs(5, 3);
  Rig setup;
  Executor<MinBaseAgent> exec(
      std::make_shared<StaticSchedule>(g),
      setup.agents(inputs, CommModel::kSymmetricBroadcast),
      CommModel::kSymmetricBroadcast);
  exec.run(10);
  for (Vertex v = 0; v < 5; ++v) {
    const ExtractedBase& candidate = exec.agent(v).candidate();
    ASSERT_TRUE(candidate.plausible);
    EXPECT_EQ(candidate.base.vertex_count(), 1);
  }
}

TEST(MinBaseAgent, SelfStabilizesAfterStateCorruption) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 2, 1, 2, 1, 2};
  Rig setup;
  Executor<MinBaseAgent> exec(
      std::make_shared<StaticSchedule>(g),
      setup.agents(inputs, CommModel::kSymmetricBroadcast),
      CommModel::kSymmetricBroadcast);
  exec.run(4);
  // Corrupt every agent with garbage views of assorted shapes and depths.
  ViewRegistry& reg = *setup.registry;
  const ViewId junk_leaf = reg.leaf(setup.codec->value_label(999));
  const ViewId junk_node =
      reg.node(setup.codec->value_label(123), {{junk_leaf, 0}, {junk_leaf, 0}});
  const ViewId junk_deep =
      reg.node(setup.codec->value_label(55), {{junk_node, 0}});
  const ViewId junk[] = {junk_leaf, junk_node, junk_deep,
                         junk_leaf, junk_deep, junk_node};
  for (Vertex v = 0; v < 6; ++v) {
    exec.agents()[static_cast<std::size_t>(v)].corrupt(junk[v]);
  }
  // Enough fresh rounds flush the corrupted layers below the extraction
  // window (twice the corruption depth plus n + 2D is ample here).
  exec.run(3 * (g.vertex_count() + diameter(g)));
  const MinimumBase truth = centralized_truth(
      g, inputs, CommModel::kSymmetricBroadcast, setup.codec);
  for (Vertex v = 0; v < 6; ++v) {
    const ExtractedBase& candidate = exec.agent(v).candidate();
    ASSERT_TRUE(candidate.plausible) << v;
    EXPECT_TRUE(find_isomorphism(candidate.base, candidate.values, truth.base,
                                 truth.values)
                    .has_value())
        << v;
  }
}

TEST(MinBaseAgent, FiniteStateVariantStabilizesWithSufficientWindow) {
  // End of Section 3.2: the algorithm can be made finite-state by bounding
  // the view depth; a window >= n + 2D suffices for our extraction.
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 2, 1, 2, 1, 2};
  const int window = g.vertex_count() + 2 * diameter(g);
  Rig setup;
  std::vector<MinBaseAgent> agents;
  for (std::int64_t input : inputs) {
    agents.emplace_back(setup.registry, setup.codec, input,
                        CommModel::kSymmetricBroadcast, window);
  }
  Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(g),
                              std::move(agents),
                              CommModel::kSymmetricBroadcast);
  exec.run(3 * window);
  const MinimumBase truth = centralized_truth(
      g, inputs, CommModel::kSymmetricBroadcast, setup.codec);
  for (Vertex v = 0; v < 6; ++v) {
    const ExtractedBase& candidate = exec.agent(v).candidate();
    ASSERT_TRUE(candidate.plausible) << v;
    // Bounded state: the view never exceeds the window.
    EXPECT_LE(setup.registry->depth(exec.agent(v).view()), window);
    EXPECT_TRUE(find_isomorphism(candidate.base, candidate.values, truth.base,
                                 truth.values)
                    .has_value())
        << v;
  }
}

TEST(MinBaseAgent, FiniteStateVariantSelfStabilizesFaster) {
  // The bounded window *hard-deletes* corrupted layers after `window`
  // rounds, so recovery is guaranteed regardless of corruption depth.
  const Digraph g = bidirectional_ring(4);
  const std::vector<std::int64_t> inputs{3, 3, 8, 8};
  const int window = g.vertex_count() + 2 * diameter(g);
  Rig setup;
  std::vector<MinBaseAgent> agents;
  for (std::int64_t input : inputs) {
    agents.emplace_back(setup.registry, setup.codec, input,
                        CommModel::kSymmetricBroadcast, window);
  }
  Executor<MinBaseAgent> exec(std::make_shared<StaticSchedule>(g),
                              std::move(agents),
                              CommModel::kSymmetricBroadcast);
  exec.run(window + 2);
  const ViewId junk = setup.registry->leaf(setup.codec->value_label(4444));
  for (auto& agent : exec.agents()) agent.corrupt(junk);
  exec.run(2 * window + 2);
  const MinimumBase truth = centralized_truth(
      g, inputs, CommModel::kSymmetricBroadcast, setup.codec);
  for (Vertex v = 0; v < 4; ++v) {
    const ExtractedBase& candidate = exec.agent(v).candidate();
    ASSERT_TRUE(candidate.plausible) << v;
    EXPECT_TRUE(find_isomorphism(candidate.base, candidate.values, truth.base,
                                 truth.values)
                    .has_value())
        << v;
  }
}

TEST(MinBaseAgent, RejectsNullDependencies) {
  auto codec = std::make_shared<LabelCodec>();
  EXPECT_THROW(MinBaseAgent(nullptr, codec, 1, CommModel::kSimpleBroadcast),
               std::invalid_argument);
}

}  // namespace
}  // namespace anonet
