// Tests for degree-oblivious uniform-weight consensus
// (core/uniform_consensus.hpp): correctness strictly inside the simple
// symmetric-communications model.

#include "core/uniform_consensus.hpp"

#include <gtest/gtest.h>

#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

TEST(UniformConsensus, RunsUnderSymmetricBroadcastModel) {
  // The executor hides the outdegree in this model; the agents must not
  // need it — this is the whole point of the algorithm.
  std::vector<UniformWeightAgent> agents;
  for (double v : {1.0, 3.0, 5.0, 7.0}) agents.emplace_back(v, 8);
  Executor<UniformWeightAgent> exec(
      std::make_shared<StaticSchedule>(bidirectional_ring(4)),
      std::move(agents), CommModel::kSymmetricBroadcast);
  EXPECT_NO_THROW(exec.run(50));
}

TEST(UniformConsensus, ConvergesToTheAverage) {
  std::vector<UniformWeightAgent> agents;
  for (double v : {0.0, 0.0, 12.0, 0.0, 0.0, 0.0}) agents.emplace_back(v, 10);
  Executor<UniformWeightAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 3, 5), std::move(agents),
      CommModel::kSymmetricBroadcast);
  exec.run(2000);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_NEAR(exec.agent(v).output(), 2.0, 1e-6) << v;
  }
}

TEST(UniformConsensus, PreservesTheSumEveryRound) {
  std::vector<UniformWeightAgent> agents;
  for (double v : {3.0, -1.0, 4.0, 1.0, -5.0}) agents.emplace_back(v, 7);
  Executor<UniformWeightAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(5, 2, 3), std::move(agents),
      CommModel::kSymmetricBroadcast);
  for (int round = 0; round < 80; ++round) {
    exec.step();
    double total = 0.0;
    for (Vertex v = 0; v < 5; ++v) total += exec.agent(v).output();
    EXPECT_NEAR(total, 2.0, 1e-9) << round;
  }
}

TEST(UniformConsensus, BoundMustBeValid) {
  EXPECT_THROW(UniformWeightAgent(1.0, 0), std::invalid_argument);
  EXPECT_THROW(FrequencyUniformAgent(1, 0), std::invalid_argument);
}

TEST(FrequencyUniform, EstimatesConvergeToFrequencies) {
  const std::vector<std::int64_t> inputs{1, 1, 2, 2, 2, 9};
  std::vector<FrequencyUniformAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v, 8);
  Executor<FrequencyUniformAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 3, 9), std::move(agents),
      CommModel::kSymmetricBroadcast);
  exec.run(2500);
  for (Vertex v = 0; v < 6; ++v) {
    const auto& est = exec.agent(v).estimates();
    EXPECT_NEAR(est.at(1), 1.0 / 3, 1e-6);
    EXPECT_NEAR(est.at(2), 0.5, 1e-6);
    EXPECT_NEAR(est.at(9), 1.0 / 6, 1e-6);
  }
}

TEST(FrequencyUniform, LazyJoiningPreservesPerValueSums) {
  const std::vector<std::int64_t> inputs{4, 4, 6, 6, 6, 1};
  std::vector<FrequencyUniformAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v, 9);
  Executor<FrequencyUniformAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 2, 29), std::move(agents),
      CommModel::kSymmetricBroadcast);
  for (int round = 0; round < 60; ++round) {
    exec.step();
    std::map<std::int64_t, double> totals;
    for (Vertex v = 0; v < 6; ++v) {
      for (const auto& [value, x] : exec.agent(v).estimates()) {
        totals[value] += x;
      }
    }
    EXPECT_NEAR(totals[4], 2.0, 1e-9) << round;
    EXPECT_NEAR(totals[6], 3.0, 1e-9) << round;
    EXPECT_NEAR(totals[1], 1.0, 1e-9) << round;
  }
}

TEST(FrequencyUniform, RoundedFrequencyLocksExactly) {
  const std::vector<std::int64_t> inputs{7, 7, 7, 2};
  const Frequency truth = Frequency::of(inputs);
  std::vector<FrequencyUniformAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v, 6);
  Executor<FrequencyUniformAgent> exec(
      std::make_shared<StaticSchedule>(random_symmetric_connected(4, 2, 13)),
      std::move(agents), CommModel::kSymmetricBroadcast);
  exec.run(800);
  for (int extra = 0; extra < 5; ++extra) {
    exec.step();
    for (Vertex v = 0; v < 4; ++v) {
      const auto rounded = exec.agent(v).rounded_frequency();
      ASSERT_TRUE(rounded.has_value());
      EXPECT_EQ(*rounded, truth);
    }
  }
}

TEST(FrequencyUniform, SlowerThanMetropolisButSafe) {
  // The 1/N step is conservative: iterates stay in [0, 1] on indicator
  // initializations regardless of the round graph.
  const std::vector<std::int64_t> inputs{1, 2, 3, 4, 5, 6, 7};
  std::vector<FrequencyUniformAgent> agents;
  for (std::int64_t v : inputs) agents.emplace_back(v, 10);
  Executor<FrequencyUniformAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(7, 4, 17), std::move(agents),
      CommModel::kSymmetricBroadcast);
  for (int round = 0; round < 60; ++round) {
    exec.step();
    for (Vertex v = 0; v < 7; ++v) {
      for (const auto& [value, x] : exec.agent(v).estimates()) {
        EXPECT_GE(x, -1e-12);
        EXPECT_LE(x, 1.0 + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace anonet
