// Unit tests for exact rationals (support/rational.hpp).

#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "support/thread_pool.hpp"

namespace anonet {
namespace {

TEST(Rational, NormalizationInvariant) {
  const Rational half(BigInt(2), BigInt(4));
  EXPECT_EQ(half.numerator(), BigInt(1));
  EXPECT_EQ(half.denominator(), BigInt(2));

  const Rational negative(BigInt(3), BigInt(-6));
  EXPECT_EQ(negative.numerator(), BigInt(-1));
  EXPECT_EQ(negative.denominator(), BigInt(2));

  const Rational zero(BigInt(0), BigInt(-17));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(Rational, Arithmetic) {
  const Rational a(BigInt(1), BigInt(3));
  const Rational b(BigInt(1), BigInt(6));
  EXPECT_EQ(a + b, Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(a - b, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(a * b, Rational(BigInt(1), BigInt(18)));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(BigInt(-1), BigInt(3)));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational(BigInt(-1), BigInt(3)));
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), Rational(BigInt(1), BigInt(2)));
  EXPECT_GT(Rational(1), Rational(BigInt(99), BigInt(100)));
}

TEST(Rational, EqualityIsStructuralAfterReduction) {
  // The class invariant (reduced, positive denominator) makes the defaulted
  // operator== semantically correct.
  EXPECT_EQ(Rational(BigInt(10), BigInt(15)), Rational(BigInt(2), BigInt(3)));
  EXPECT_NE(Rational(BigInt(2), BigInt(3)), Rational(BigInt(3), BigInt(2)));
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(BigInt(3), BigInt(4)).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(4)).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-7), BigInt(2)).to_double(), -3.5);
}

TEST(Rational, AbsAndSignum) {
  EXPECT_EQ(Rational(BigInt(-2), BigInt(3)).abs(),
            Rational(BigInt(2), BigInt(3)));
  EXPECT_EQ(Rational(-5).signum(), -1);
  EXPECT_EQ(Rational(0).signum(), 0);
  EXPECT_EQ(Rational(BigInt(1), BigInt(9)).signum(), 1);
}

// --- lazy normalization -----------------------------------------------------
// Arithmetic defers the gcd; every observable must behave as if results were
// reduced eagerly: equality and ordering exact on unreduced values, canonical
// observers in lowest terms, equal values hashing equal regardless of the
// arithmetic route that produced them.

namespace {

// Arithmetic chains over large coprime-ish denominators overflow the int64
// fast lane, forcing the deferred-gcd BigInt path.
Rational big_fraction(std::mt19937_64& rng) {
  const auto num = static_cast<std::int64_t>(rng() % 2000) - 1000;
  const auto den = (std::int64_t{1} << 60) + 1 +
                   static_cast<std::int64_t>(rng() % 1000) * 2;
  return Rational(BigInt(num), BigInt(den));
}

}  // namespace

TEST(Rational, LazyResultsMatchEagerObservably) {
  std::mt19937_64 rng(41);
  for (int i = 0; i < 200; ++i) {
    const Rational a = big_fraction(rng);
    const Rational b = big_fraction(rng);
    const Rational sum = a + b;  // unreduced internally
    // Equality is exact without normalizing either side.
    EXPECT_EQ(sum, b + a);
    EXPECT_EQ(sum - b, a);
    // Canonical observers agree with an eagerly reduced reconstruction.
    const Rational eager(a.numerator() * b.denominator() +
                             b.numerator() * a.denominator(),
                         a.denominator() * b.denominator());
    EXPECT_EQ(sum.numerator(), eager.numerator());
    EXPECT_EQ(sum.denominator(), eager.denominator());
    EXPECT_EQ(gcd(sum.numerator(), sum.denominator()), BigInt(1));
    EXPECT_GT(sum.denominator().signum(), 0);
    // Equal values hash equal however they were produced.
    EXPECT_EQ(sum.hash(), eager.hash());
    EXPECT_EQ(std::hash<Rational>{}(sum), std::hash<Rational>{}(eager));
  }
}

TEST(Rational, LazySignAndOrderingAreExactUnreduced) {
  std::mt19937_64 rng(43);
  for (int i = 0; i < 200; ++i) {
    const Rational a = big_fraction(rng);
    const Rational b = big_fraction(rng);
    const Rational diff = a - b;  // sign must be exact before any reduction
    EXPECT_EQ(diff.signum() > 0, a > b);
    EXPECT_EQ(diff.signum() < 0, a < b);
    EXPECT_EQ(diff.signum() == 0, a == b);
    EXPECT_EQ((-diff).signum(), -diff.signum());
    EXPECT_EQ(diff.abs().signum(), diff.is_zero() ? 0 : 1);
  }
}

TEST(Rational, ParallelLazyNormalizationPerAgentIsSafe) {
  // The thread-safety contract in rational.hpp: lazy reduction mutates under
  // const, which is safe when each value is observed by exactly one worker —
  // the executor's per-vertex-block access pattern, reproduced here so TSan
  // checks the claim.
  std::mt19937_64 rng(47);
  constexpr std::int64_t kCount = 512;
  std::vector<Rational> values;
  std::vector<std::string> expected;
  values.reserve(kCount);
  expected.reserve(kCount);
  for (std::int64_t i = 0; i < kCount; ++i) {
    const Rational a = big_fraction(rng);
    const Rational b = big_fraction(rng);
    values.push_back(a * b + a - b);  // unreduced chain
    const Rational clone = a * b + a - b;
    expected.push_back(clone.to_string());  // normalizes the clone only
  }
  ThreadPool pool(4);
  std::vector<std::size_t> hashes(static_cast<std::size_t>(kCount), 0);
  pool.parallel_blocks(kCount, 16,
                       [&](std::int64_t begin, std::int64_t end,
                           std::int64_t /*block*/) {
                         for (std::int64_t i = begin; i < end; ++i) {
                           const auto u = static_cast<std::size_t>(i);
                           // Observers trigger the deferred reduction.
                           hashes[u] = values[u].hash();
                         }
                       });
  for (std::int64_t i = 0; i < kCount; ++i) {
    const auto u = static_cast<std::size_t>(i);
    EXPECT_EQ(values[u].to_string(), expected[u]) << i;
    EXPECT_EQ(hashes[u], values[u].hash());
  }
}

TEST(Rational, RandomizedFieldAxioms) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(-50, 50);
  auto random_rational = [&]() {
    std::int64_t d = 0;
    while (d == 0) d = dist(rng);
    return Rational(BigInt(dist(rng)), BigInt(d));
  };
  for (int i = 0; i < 500; ++i) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.reciprocal(), Rational(1));
    }
  }
}

}  // namespace
}  // namespace anonet
