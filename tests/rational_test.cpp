// Unit tests for exact rationals (support/rational.hpp).

#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <random>

namespace anonet {
namespace {

TEST(Rational, NormalizationInvariant) {
  const Rational half(BigInt(2), BigInt(4));
  EXPECT_EQ(half.numerator(), BigInt(1));
  EXPECT_EQ(half.denominator(), BigInt(2));

  const Rational negative(BigInt(3), BigInt(-6));
  EXPECT_EQ(negative.numerator(), BigInt(-1));
  EXPECT_EQ(negative.denominator(), BigInt(2));

  const Rational zero(BigInt(0), BigInt(-17));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(Rational, Arithmetic) {
  const Rational a(BigInt(1), BigInt(3));
  const Rational b(BigInt(1), BigInt(6));
  EXPECT_EQ(a + b, Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(a - b, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(a * b, Rational(BigInt(1), BigInt(18)));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(BigInt(-1), BigInt(3)));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational(BigInt(-1), BigInt(3)));
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), Rational(BigInt(1), BigInt(2)));
  EXPECT_GT(Rational(1), Rational(BigInt(99), BigInt(100)));
}

TEST(Rational, EqualityIsStructuralAfterReduction) {
  // The class invariant (reduced, positive denominator) makes the defaulted
  // operator== semantically correct.
  EXPECT_EQ(Rational(BigInt(10), BigInt(15)), Rational(BigInt(2), BigInt(3)));
  EXPECT_NE(Rational(BigInt(2), BigInt(3)), Rational(BigInt(3), BigInt(2)));
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(BigInt(3), BigInt(4)).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_DOUBLE_EQ(Rational(BigInt(1), BigInt(4)).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(BigInt(-7), BigInt(2)).to_double(), -3.5);
}

TEST(Rational, AbsAndSignum) {
  EXPECT_EQ(Rational(BigInt(-2), BigInt(3)).abs(),
            Rational(BigInt(2), BigInt(3)));
  EXPECT_EQ(Rational(-5).signum(), -1);
  EXPECT_EQ(Rational(0).signum(), 0);
  EXPECT_EQ(Rational(BigInt(1), BigInt(9)).signum(), 1);
}

TEST(Rational, RandomizedFieldAxioms) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(-50, 50);
  auto random_rational = [&]() {
    std::int64_t d = 0;
    while (d == 0) d = dist(rng);
    return Rational(BigInt(dist(rng)), BigInt(d));
  };
  for (int i = 0; i < 500; ++i) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.reciprocal(), Rational(1));
    }
  }
}

}  // namespace
}  // namespace anonet
