// Tests for support/counter_rng.hpp — the determinism linchpin of the round
// engine: every inbox shuffle is a pure function of the (seed, round,
// vertex) key, which is what makes serial and thread-parallel executions
// bitwise-identical. The known-answer vectors below pin the exact stream;
// an "innocent" tweak to the mixing constants would silently change every
// recorded trajectory in the repository, so a KAT failure is a feature.

#include "support/counter_rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

namespace anonet {
namespace {

// --- known-answer vectors ----------------------------------------------------
// Computed from the SplitMix64 construction (Steele, Lea & Flood,
// OOPSLA'14) with this class's key-mixing preamble:
//   state0 = mix(seed ^ 0x9e3779b97f4a7c15) + mix(round ^ 0xbf58476d1ce4e5b9)
//          + mix(vertex ^ 0x94d049bb133111eb)
//   draw   = mix(state += 0x9e3779b97f4a7c15)
// independently of the C++ implementation (reference Python evaluation).

TEST(CounterRng, KnownAnswerAllZeroKey) {
  CounterRng rng(0, 0, 0);
  EXPECT_EQ(rng(), 0xbcd2a7718eca6bc6ull);
  EXPECT_EQ(rng(), 0x2e9cb0b18867974dull);
  EXPECT_EQ(rng(), 0xf4792fea470bf917ull);
  EXPECT_EQ(rng(), 0xac839f564dc47c5aull);
}

TEST(CounterRng, KnownAnswerExecutorDefaultSeed) {
  // The executor's default shuffle seed, round 1, vertex 2.
  CounterRng rng(0x5eedull, 1, 2);
  EXPECT_EQ(rng(), 0xcccae92b11551f1aull);
  EXPECT_EQ(rng(), 0xa4a1ff4a76c29f90ull);
  EXPECT_EQ(rng(), 0x3e6f2facf87160d2ull);
  EXPECT_EQ(rng(), 0x7649b987cc5f947aull);
}

TEST(CounterRng, KnownAnswerSmallKey) {
  CounterRng rng(1, 2, 3);
  EXPECT_EQ(rng(), 0xf08a745e8aa496f5ull);
  EXPECT_EQ(rng(), 0xbc46f9b64ba5932full);
}

// --- key independence --------------------------------------------------------

TEST(CounterRng, KeyComponentsAreDecorrelated) {
  // The constructor mixes each component before summing precisely so that
  // (seed, round + 1, vertex) and (seed, round, vertex + 1) do not alias —
  // with plain addition both would produce state0 + 1.
  CounterRng round_shift(0x5eedull, 2, 1);
  CounterRng vertex_shift(0x5eedull, 1, 2);
  EXPECT_NE(round_shift(), vertex_shift());
  // Pinned values guard the decorrelation itself, not just inequality.
  CounterRng again(0x5eedull, 2, 1);
  EXPECT_EQ(again(), 0x99f2b6be7c2fa077ull);
}

TEST(CounterRng, IdenticalKeysYieldIdenticalStreams) {
  CounterRng a(7, 11, 13);
  CounterRng b(7, 11, 13);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(CounterRng, AdjacentKeysDivergeImmediately) {
  // A weak keyed generator can share long prefixes between adjacent keys;
  // SplitMix64's finalizer avalanche should separate them on draw one for
  // every coordinate direction.
  const std::uint64_t base[3] = {42, 1000, 77};
  CounterRng reference(base[0], base[1], base[2]);
  const std::uint64_t first = reference();
  for (int coordinate = 0; coordinate < 3; ++coordinate) {
    std::uint64_t key[3] = {base[0], base[1], base[2]};
    key[coordinate] += 1;
    CounterRng perturbed(key[0], key[1], key[2]);
    EXPECT_NE(perturbed(), first) << "coordinate " << coordinate;
  }
}

// --- bounded draws and the executor's shuffle --------------------------------

TEST(CounterRng, BoundedStaysInRange) {
  CounterRng rng(3, 1, 4);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(CounterRng, BoundedKnownAnswers) {
  // Lemire reduction (x * bound) >> 64 of the pinned stream above.
  CounterRng rng(0x5eedull, 1, 2);
  EXPECT_EQ(rng.bounded(10), 7ull);
  EXPECT_EQ(rng.bounded(10), 6ull);
  EXPECT_EQ(rng.bounded(10), 2ull);
}

// Replicates the executor's inbox Fisher–Yates (executor.hpp deliver phase)
// and checks the result is a valid permutation, deterministic in the key,
// and different across vertices.
std::vector<int> shuffled_identity(std::size_t deg, std::uint64_t seed,
                                   std::uint64_t round, std::uint64_t vertex) {
  std::vector<int> slice(deg);
  std::iota(slice.begin(), slice.end(), 0);
  CounterRng rng(seed, round, vertex);
  for (std::size_t k = deg - 1; k > 0; --k) {
    std::swap(slice[k], slice[rng.bounded(k + 1)]);
  }
  return slice;
}

TEST(CounterRng, ShuffleIsAPermutation) {
  for (std::size_t deg : {2u, 3u, 17u, 100u}) {
    const std::vector<int> slice = shuffled_identity(deg, 0x5eedull, 3, 9);
    std::set<int> seen(slice.begin(), slice.end());
    EXPECT_EQ(seen.size(), deg);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), static_cast<int>(deg) - 1);
  }
}

TEST(CounterRng, ShuffleIsAPureFunctionOfTheKey) {
  const auto a = shuffled_identity(32, 0x5eedull, 7, 11);
  const auto b = shuffled_identity(32, 0x5eedull, 7, 11);
  EXPECT_EQ(a, b);
  // ... and genuinely keyed: a different vertex or round reorders.
  EXPECT_NE(a, shuffled_identity(32, 0x5eedull, 7, 12));
  EXPECT_NE(a, shuffled_identity(32, 0x5eedull, 8, 11));
}

TEST(CounterRng, BoundedOneIsIdentity) {
  // Degenerate bound used implicitly by degree-1 inboxes.
  CounterRng rng(1, 1, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rng.bounded(1), 0ull);
  }
}

}  // namespace
}  // namespace anonet
