// Tests for the high-level computability harness (core/computability.hpp) —
// each test is one or more cells of Table 1 or Table 2 asserted as facts.

#include "core/computability.hpp"

#include <gtest/gtest.h>

#include "core/census.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

Attempt make_attempt(CommModel model, Knowledge knowledge,
                     std::int64_t parameter, int rounds,
                     double tolerance = 1e-3) {
  Attempt attempt;
  attempt.model = model;
  attempt.knowledge = knowledge;
  attempt.parameter = parameter;
  attempt.rounds = rounds;
  attempt.tolerance = tolerance;
  return attempt;
}

// --- Table 1 (static) --------------------------------------------------------

TEST(Table1, SimpleBroadcastComputesSetBased) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 5, 1, 5, 1, 5};
  const auto result = attempt_static(
      g, inputs, max_function(),
      make_attempt(CommModel::kSimpleBroadcast, Knowledge::kNone, 0, 12));
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.stabilization_round, 0);
}

TEST(Table1, SimpleBroadcastCannotComputeAverage) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 5, 1, 5, 1, 5};
  const auto result = attempt_static(
      g, inputs, average_function(),
      make_attempt(CommModel::kSimpleBroadcast, Knowledge::kNone, 0, 12));
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.mechanism.find("impossible"), std::string::npos);
}

TEST(Table1, OutdegreeAwarenessComputesAverageExactly) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 5, 1, 5, 1, 5};
  const auto result = attempt_static(
      g, inputs, average_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kNone, 0, 25));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_GT(result.stabilization_round, 0);
  EXPECT_EQ(result.final_error, 0.0);
}

TEST(Table1, SymmetricCommunicationsComputesAverageExactly) {
  const Digraph g = random_symmetric_connected(8, 3, 17);
  const std::vector<std::int64_t> inputs{2, 2, 2, 6, 6, 6, 2, 6};
  const auto result = attempt_static(
      g, inputs, average_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kNone, 0, 30));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table1, OutputPortAwarenessComputesAverageExactly) {
  const Digraph g = random_strongly_connected(7, 5, 23);
  const std::vector<std::int64_t> inputs{1, 1, 1, 1, 9, 9, 9};
  const auto result = attempt_static(
      g, inputs, average_function(),
      make_attempt(CommModel::kOutputPortAware, Knowledge::kNone, 0, 30));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table1, SumImpossibleWithoutCentralizedHelp) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 2, 3, 1, 2, 3};
  for (Knowledge knowledge : {Knowledge::kNone, Knowledge::kUpperBound}) {
    const auto result = attempt_static(
        g, inputs, sum_function(),
        make_attempt(CommModel::kOutdegreeAware, knowledge, 10, 25));
    EXPECT_FALSE(result.success) << to_string(knowledge);
    EXPECT_NE(result.mechanism.find("impossible"), std::string::npos);
  }
}

TEST(Table1, KnownSizeUnlocksTheSum) {
  const Digraph g = bidirectional_ring(6);
  const std::vector<std::int64_t> inputs{1, 2, 3, 1, 2, 3};
  const auto result = attempt_static(
      g, inputs, sum_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kExactSize, 6, 25));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_EQ(result.final_error, 0.0);
}

TEST(Table1, UpperBoundDoesNotUnlockTheSumButKeepsFrequencies) {
  // Corollary 4.2: a bound on n leaves the class at frequency-based.
  const Digraph g = random_symmetric_connected(6, 2, 41);
  const std::vector<std::int64_t> inputs{4, 4, 8, 8, 4, 8};
  const auto freq_result = attempt_static(
      g, inputs, average_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kUpperBound, 10,
                   30));
  EXPECT_TRUE(freq_result.success);
  const auto sum_result = attempt_static(
      g, inputs, sum_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kUpperBound, 10,
                   30));
  EXPECT_FALSE(sum_result.success);
}

TEST(Table1, OneLeaderUnlocksTheSum) {
  const Digraph g = bidirectional_ring(6);
  std::vector<std::int64_t> inputs;
  const std::vector<std::int64_t> values{1, 2, 3, 1, 2, 3};
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(encode_leader_input(values[i], i == 0));
  }
  const auto result = attempt_static(
      g, inputs, sum_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kLeaders, 1, 30));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_EQ(ground_truth(inputs, sum_function(), Knowledge::kLeaders), r(12));
}

TEST(Table1, MultipleLeadersAlsoWork) {
  const Digraph g = random_symmetric_connected(9, 3, 51);
  std::vector<std::int64_t> inputs;
  for (int i = 0; i < 9; ++i) {
    inputs.push_back(encode_leader_input(i % 3, i < 3));  // 3 leaders
  }
  const auto result = attempt_static(
      g, inputs, sum_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kLeaders, 3,
                   40));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table1, LeaderWithSimpleBroadcastStaysSetBased) {
  // Bottom-left cell of Table 1: even with a leader, simple broadcast
  // computes only set-based functions.
  const Digraph g = bidirectional_ring(6);
  std::vector<std::int64_t> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(encode_leader_input(i % 2, i == 0));
  }
  const auto result = attempt_static(
      g, inputs, average_function(),
      make_attempt(CommModel::kSimpleBroadcast, Knowledge::kLeaders, 1, 20));
  EXPECT_FALSE(result.success);
}

TEST(Table1, ValidatesNetworkClass) {
  Digraph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_THROW(attempt_static(path, {1, 2, 3}, max_function(),
                              make_attempt(CommModel::kSimpleBroadcast,
                                           Knowledge::kNone, 0, 5)),
               std::invalid_argument);
  // Symmetric model demands a symmetric graph.
  EXPECT_THROW(attempt_static(directed_ring(4), {1, 2, 3, 4}, max_function(),
                              make_attempt(CommModel::kSymmetricBroadcast,
                                           Knowledge::kNone, 0, 5)),
               std::invalid_argument);
}

TEST(Table1, WholeFrequencyBasedLibraryIsComputableWithDegrees) {
  // Not just the average: every frequency-based function in the library is
  // exactly computable once frequencies are (Theorem 4.1's "if" direction
  // is about the whole class).
  const Digraph g = random_symmetric_connected(6, 3, 61);
  const std::vector<std::int64_t> inputs{2, 2, 8, 8, 8, 5};
  for (const SymmetricFunction& f :
       {average_function(), median_function(), variance_function(),
        mode_frequency(), threshold_predicate(8, Rational(BigInt(1), BigInt(2)))}) {
    const auto result = attempt_static(
        g, inputs, f,
        make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kNone, 0, 30));
    EXPECT_TRUE(result.success) << f.name() << ": " << result.mechanism;
    EXPECT_EQ(result.final_error, 0.0) << f.name();
  }
}

TEST(Table1, MultisetOnlyFunctionsNeedHelpEverywhere) {
  const Digraph g = random_symmetric_connected(6, 3, 62);
  const std::vector<std::int64_t> inputs{1, 1, 2, 2, 3, 3};
  for (const SymmetricFunction& f : {sum_function(), sum_of_squares(),
                                     count_function()}) {
    const auto blocked = attempt_static(
        g, inputs, f,
        make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kNone, 0, 25));
    EXPECT_FALSE(blocked.success) << f.name();
    const auto unlocked = attempt_static(
        g, inputs, f,
        make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kExactSize, 6,
                     30));
    EXPECT_TRUE(unlocked.success) << f.name() << ": " << unlocked.mechanism;
  }
}

// --- Table 2 (dynamic) -------------------------------------------------------

TEST(Table2, GossipComputesSetBasedOnDynamicGraphs) {
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(6, 2, 3);
  const std::vector<std::int64_t> inputs{3, 1, 4, 1, 5, 9};
  const auto result = attempt_dynamic(
      schedule, inputs, min_function(),
      make_attempt(CommModel::kSimpleBroadcast, Knowledge::kNone, 0, 15));
  EXPECT_TRUE(result.success);
}

TEST(Table2, PushSumWithBoundComputesAverageExactly) {
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 8);
  const std::vector<std::int64_t> inputs{10, 10, 40, 40, 40};
  const auto result = attempt_dynamic(
      schedule, inputs, average_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kUpperBound, 8,
                   250));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_GT(result.stabilization_round, 0);
}

TEST(Table2, PushSumWithoutBoundOnlyApproximates) {
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 12);
  const std::vector<std::int64_t> inputs{0, 0, 30, 30, 30};
  const auto result = attempt_dynamic(
      schedule, inputs, average_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kNone, 0, 250));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_EQ(result.stabilization_round, -1);  // asymptotic only
  EXPECT_LE(result.final_error, 1e-3);
}

TEST(Table2, WithoutBoundNonContinuousFrequencyFunctionsFail) {
  // Φ_r^ω with rational r is frequency-based but NOT continuous in
  // frequency; without a bound the attempt must refuse (Cor. 5.5's limit).
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(4, 3, 2);
  const std::vector<std::int64_t> inputs{1, 1, 0, 0};
  SymmetricFunction non_continuous{"exact-half", FunctionClass::kFrequencyBased,
                                   [](std::span<const std::int64_t> v) {
                                     std::int64_t ones = 0;
                                     for (auto x : v) ones += (x == 1);
                                     return Rational(
                                         BigInt(2 * ones),
                                         BigInt(static_cast<std::int64_t>(
                                             v.size())));
                                   }};
  const auto result = attempt_dynamic(
      schedule, inputs, non_continuous,
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kNone, 0, 100));
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.mechanism.find("continuous"), std::string::npos);
}

TEST(Table2, PushSumWithExactSizeComputesSum) {
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 14);
  const std::vector<std::int64_t> inputs{1, 2, 3, 4, 5};
  const auto result = attempt_dynamic(
      schedule, inputs, sum_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kExactSize, 5, 250));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table2, PushSumLeaderVariantComputesSum) {
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(5, 3, 18);
  std::vector<std::int64_t> inputs;
  const std::vector<std::int64_t> values{7, 7, 2, 2, 2};
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(encode_leader_input(values[i], i == 2));
  }
  const auto result = attempt_dynamic(
      schedule, inputs, sum_function(),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kLeaders, 1, 300));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table2, MetropolisComputesAverageOnSymmetricDynamic) {
  auto schedule = std::make_shared<RandomSymmetricSchedule>(6, 3, 44);
  const std::vector<std::int64_t> inputs{0, 0, 0, 8, 8, 8};
  const auto result = attempt_dynamic(
      schedule, inputs, average_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kUpperBound, 10,
                   400));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table2, MetropolisLeaderCensusComputesSum) {
  auto schedule = std::make_shared<RandomSymmetricSchedule>(6, 3, 46);
  std::vector<std::int64_t> inputs;
  const std::vector<std::int64_t> values{1, 1, 1, 5, 5, 5};
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(encode_leader_input(values[i], i == 0 || i == 3));
  }
  const auto result = attempt_dynamic(
      schedule, inputs, sum_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kLeaders, 2,
                   500));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table2, OutputPortsMeaninglessOnDynamicNetworks) {
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(4, 2, 1);
  const auto result = attempt_dynamic(
      schedule, {1, 2, 1, 2}, average_function(),
      make_attempt(CommModel::kOutputPortAware, Knowledge::kNone, 0, 10));
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.mechanism.find("static"), std::string::npos);
}

TEST(Table2, ThresholdPredicateAwayFromThresholdApproximates) {
  // Φ_{1/2}^ω on an input with ν(ω) = 2/3, safely away from the threshold:
  // the approximate evaluator settles on 1 (Cor. 5.5 in practice).
  auto schedule = std::make_shared<RandomStronglyConnectedSchedule>(6, 3, 10);
  const std::vector<std::int64_t> inputs{1, 1, 1, 1, 0, 0};
  const auto result = attempt_dynamic(
      schedule, inputs, threshold_predicate(1, r(1, 2)),
      make_attempt(CommModel::kOutdegreeAware, Knowledge::kNone, 0, 250));
  EXPECT_TRUE(result.success) << result.mechanism;
}

TEST(Table2, HistoryTreesGiveExactFrequenciesWithNoHelp) {
  // The symmetric no-help cell: exact δ0 computation, no bound, no degrees
  // (the [26] cell of Table 2, via core/history_tree.hpp).
  auto schedule = std::make_shared<RandomSymmetricSchedule>(5, 3, 48);
  const std::vector<std::int64_t> inputs{10, 10, 10, 40, 40};
  const auto result = attempt_dynamic(
      schedule, inputs, average_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kNone, 0, 64));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_GT(result.stabilization_round, 0);  // exact, not just asymptotic
  EXPECT_NE(result.mechanism.find("history-tree"), std::string::npos);
}

TEST(Table2, HistoryTreesWithLeaderGiveExactMultiset) {
  auto schedule = std::make_shared<RandomSymmetricSchedule>(5, 3, 49);
  std::vector<std::int64_t> inputs;
  const std::vector<std::int64_t> values{3, 3, 7, 7, 7};
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(encode_leader_input(values[i], i == 0));
  }
  const auto result = attempt_dynamic(
      schedule, inputs, sum_function(),
      make_attempt(CommModel::kSymmetricBroadcast, Knowledge::kLeaders, 1,
                   64));
  EXPECT_TRUE(result.success) << result.mechanism;
  EXPECT_GT(result.stabilization_round, 0);
}

}  // namespace
}  // namespace anonet
