// Tests for graph serialization (graph/io.hpp).

#include "graph/io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace anonet {
namespace {

TEST(GraphIo, DotContainsVerticesAndEdges) {
  Digraph g(2);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph anonet"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1 [label=\"3\"]"), std::string::npos);
  EXPECT_NE(dot.find("1 -> 1;"), std::string::npos);
}

TEST(GraphIo, DotWithValues) {
  Digraph g(2);
  g.add_edge(0, 1);
  const std::vector<std::int64_t> values{7, -2};
  const std::string dot = to_dot(g, &values, "valued");
  EXPECT_NE(dot.find("digraph valued"), std::string::npos);
  EXPECT_NE(dot.find("0: 7"), std::string::npos);
  EXPECT_NE(dot.find("1: -2"), std::string::npos);
  const std::vector<std::int64_t> wrong{1};
  EXPECT_THROW(to_dot(g, &wrong), std::invalid_argument);
}

TEST(GraphIo, EdgeListRoundTrip) {
  const Digraph g = random_strongly_connected(6, 5, 3);
  const Digraph parsed = parse_edge_list(to_edge_list(g));
  EXPECT_EQ(parsed.vertex_count(), g.vertex_count());
  EXPECT_EQ(parsed.edges(), g.edges());
}

TEST(GraphIo, EdgeListRoundTripPreservesColors) {
  Digraph g(3);
  g.ensure_self_loops();
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 5);
  const Digraph parsed = parse_edge_list(to_edge_list(g));
  EXPECT_EQ(parsed.edges(), g.edges());
}

TEST(GraphIo, ParseAcceptsCommentsAndBlankLines) {
  const Digraph g = parse_edge_list(
      "# a triangle\n"
      "n 3\n"
      "\n"
      "e 0 1\n"
      "e 1 2\n"
      "  # with a colored closing edge\n"
      "e 2 0 4\n");
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_EQ(g.edge(2).color, 4);
}

TEST(GraphIo, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_edge_list(""), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("e 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n 2\nn 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n 2\nx 0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n 2\ne 0 5\n"), std::out_of_range);
  EXPECT_THROW(parse_edge_list("n 2\ne 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_edge_list("n -1\n"), std::invalid_argument);
}

}  // namespace
}  // namespace anonet
