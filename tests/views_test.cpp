// Tests for hash-consed view trees and single-view base extraction.

#include <gtest/gtest.h>

#include "fibration/minimum_base.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "views/base_extraction.hpp"
#include "views/label_codec.hpp"
#include "views/view_registry.hpp"

namespace anonet {
namespace {

TEST(ViewRegistry, LeafInterning) {
  ViewRegistry reg;
  EXPECT_EQ(reg.leaf(1), reg.leaf(1));
  EXPECT_NE(reg.leaf(1), reg.leaf(2));
  EXPECT_EQ(reg.depth(reg.leaf(1)), 0);
  EXPECT_EQ(reg.label(reg.leaf(7)), 7);
}

TEST(ViewRegistry, NodeChildrenAreAMultiset) {
  ViewRegistry reg;
  const ViewId a = reg.leaf(1);
  const ViewId b = reg.leaf(2);
  const ViewId n1 = reg.node(0, {{a, 0}, {b, 0}});
  const ViewId n2 = reg.node(0, {{b, 0}, {a, 0}});
  EXPECT_EQ(n1, n2);  // order irrelevant
  const ViewId n3 = reg.node(0, {{a, 0}, {a, 0}});
  EXPECT_NE(n1, n3);  // multiplicity matters
  EXPECT_EQ(reg.depth(n1), 1);
}

TEST(ViewRegistry, EdgeColorsDistinguishViews) {
  ViewRegistry reg;
  const ViewId a = reg.leaf(1);
  EXPECT_NE(reg.node(0, {{a, 1}}), reg.node(0, {{a, 2}}));
}

TEST(ViewRegistry, MixedChildDepthsThrow) {
  ViewRegistry reg;
  const ViewId leaf = reg.leaf(1);
  const ViewId deep = reg.node(1, {{leaf, 0}});
  EXPECT_THROW(reg.node(0, {{leaf, 0}, {deep, 0}}), std::invalid_argument);
  EXPECT_THROW(reg.node(0, {}), std::invalid_argument);
}

TEST(ViewRegistry, TruncateCommutesWithConstruction) {
  ViewRegistry reg;
  // Build the view of an agent on a directed 2-ring with labels 1, 2.
  const ViewId l1 = reg.leaf(1);
  const ViewId l2 = reg.leaf(2);
  const ViewId v1_depth1 = reg.node(1, {{l1, 0}, {l2, 0}});
  const ViewId v2_depth1 = reg.node(2, {{l2, 0}, {l1, 0}});
  const ViewId v1_depth2 = reg.node(1, {{v1_depth1, 0}, {v2_depth1, 0}});
  EXPECT_EQ(reg.truncate(v1_depth2, 1), v1_depth1);
  EXPECT_EQ(reg.truncate(v1_depth2, 0), l1);
  EXPECT_EQ(reg.truncate(v1_depth2, 2), v1_depth2);  // identity above depth
  EXPECT_EQ(reg.truncate(v1_depth2, 5), v1_depth2);
}

TEST(ViewRegistry, SubviewsCollectsEverything) {
  ViewRegistry reg;
  const ViewId a = reg.leaf(1);
  const ViewId b = reg.leaf(2);
  const ViewId mid = reg.node(3, {{a, 0}, {b, 0}});
  const ViewId top = reg.node(4, {{mid, 0}, {mid, 0}});
  const auto subs = reg.subviews(top);
  EXPECT_EQ(subs.size(), 4u);  // top, mid, a, b (deduplicated)
}

// Builds the depth-t views of all vertices of g by synchronous iteration —
// the mathematical object the distributed algorithm maintains.
std::vector<ViewId> views_at_depth(ViewRegistry& reg, const Digraph& g,
                                   const std::vector<int>& labels, int t) {
  std::vector<ViewId> current;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    current.push_back(reg.leaf(labels[static_cast<std::size_t>(v)]));
  }
  for (int round = 0; round < t; ++round) {
    std::vector<ViewId> next;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      ViewRegistry::ChildList children;
      for (EdgeId id : g.in_edges(v)) {
        const Edge& e = g.edge(id);
        children.emplace_back(current[static_cast<std::size_t>(e.source)],
                              e.color);
      }
      next.push_back(reg.node(labels[static_cast<std::size_t>(v)],
                              std::move(children)));
    }
    current = std::move(next);
  }
  return current;
}

TEST(Views, SameFibreSameView) {
  // Vertices in the same fibre of a lift have equal views at every depth.
  const Digraph base = random_strongly_connected(3, 3, 9);
  const LiftedGraph lift = random_lift(base, {2, 2, 2}, 9);
  std::vector<int> labels;
  for (Vertex v : lift.projection) labels.push_back(static_cast<int>(v % 2));
  ViewRegistry reg;
  const auto views = views_at_depth(reg, lift.graph, labels, 8);
  const MinimumBase mb = minimum_base(lift.graph, labels);
  for (Vertex u = 0; u < lift.graph.vertex_count(); ++u) {
    for (Vertex v = 0; v < lift.graph.vertex_count(); ++v) {
      const bool same_fibre = mb.projection[static_cast<std::size_t>(u)] ==
                              mb.projection[static_cast<std::size_t>(v)];
      EXPECT_EQ(views[static_cast<std::size_t>(u)] ==
                    views[static_cast<std::size_t>(v)],
                same_fibre)
          << u << " vs " << v;
    }
  }
}

TEST(Views, ExtractBaseMatchesCentralizedMinimumBase) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Digraph base = random_strongly_connected(3, 2, seed + 3);
    const LiftedGraph lift = random_lift(base, {3, 3, 3}, seed);
    const Digraph& g = lift.graph;
    std::vector<int> labels(static_cast<std::size_t>(g.vertex_count()));
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      labels[static_cast<std::size_t>(v)] = static_cast<int>(v % 2);
    }
    ViewRegistry reg;
    const int n = g.vertex_count();
    const int depth = 2 * n;  // comfortably past n + D
    const auto views = views_at_depth(reg, g, labels, depth);
    const MinimumBase truth = minimum_base(g, labels);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const ExtractedBase extracted =
          extract_base(reg, views[static_cast<std::size_t>(v)]);
      ASSERT_TRUE(extracted.plausible) << seed << " v=" << v;
      EXPECT_TRUE(find_isomorphism(extracted.base, extracted.values,
                                   truth.base, truth.values)
                      .has_value())
          << seed << " v=" << v;
    }
  }
}

TEST(Views, ExtractBaseOnPrimeGraphRecoversTheGraph) {
  // All labels distinct: the graph is its own minimum base.
  const Digraph g = random_strongly_connected(5, 3, 42);
  std::vector<int> labels{10, 11, 12, 13, 14};
  ViewRegistry reg;
  const auto views = views_at_depth(reg, g, labels, 12);
  const ExtractedBase extracted = extract_base(reg, views[0]);
  ASSERT_TRUE(extracted.plausible);
  EXPECT_TRUE(
      find_isomorphism(extracted.base, extracted.values, g, labels)
          .has_value());
}

TEST(Views, ExtractBaseNotPlausibleAtDepthZero) {
  ViewRegistry reg;
  const ExtractedBase extracted = extract_base(reg, reg.leaf(1));
  EXPECT_FALSE(extracted.plausible);
}

TEST(ViewRegistry, TreeSizeCountsUnfoldedNodes) {
  ViewRegistry reg;
  const ViewId leaf = reg.leaf(1);
  EXPECT_DOUBLE_EQ(reg.tree_size(leaf), 1.0);
  const ViewId pair = reg.node(0, {{leaf, 0}, {leaf, 0}});
  EXPECT_DOUBLE_EQ(reg.tree_size(pair), 3.0);  // multiplicity counts
  const ViewId deep = reg.node(0, {{pair, 0}, {pair, 0}, {pair, 0}});
  EXPECT_DOUBLE_EQ(reg.tree_size(deep), 10.0);
  // Interned sharing does not shrink the mathematical size: doubling depth
  // roughly squares the unfolded node count.
  ViewId current = reg.leaf(5);
  for (int i = 0; i < 40; ++i) {
    current = reg.node(5, {{current, 0}, {current, 0}});
  }
  EXPECT_GT(reg.tree_size(current), 1e12);
  EXPECT_LT(reg.size(), 100u);  // while the registry stays tiny
}

TEST(LabelCodec, ValueLabelsRoundTrip) {
  LabelCodec codec;
  const int a = codec.value_label(42);
  const int b = codec.value_label(-7);
  EXPECT_EQ(codec.value_label(42), a);  // interning is stable
  EXPECT_NE(a, b);
  EXPECT_EQ(codec.value_of(a), 42);
  EXPECT_EQ(codec.value_of(b), -7);
  EXPECT_FALSE(codec.has_outdegree(a));
  EXPECT_THROW(static_cast<void>(codec.outdegree_of(a)), std::out_of_range);
}

TEST(LabelCodec, ValuedDegreeLabels) {
  LabelCodec codec;
  const int plain = codec.value_label(5);
  const int with_degree = codec.valued_degree_label(5, 3);
  EXPECT_NE(plain, with_degree);  // (5) and (5, d=3) are distinct labels
  EXPECT_NE(codec.valued_degree_label(5, 3), codec.valued_degree_label(5, 4));
  EXPECT_EQ(codec.value_of(with_degree), 5);
  EXPECT_TRUE(codec.has_outdegree(with_degree));
  EXPECT_EQ(codec.outdegree_of(with_degree), 3);
  EXPECT_THROW(static_cast<void>(codec.valued_degree_label(5, -1)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(codec.value_of(9999)), std::out_of_range);
}

}  // namespace
}  // namespace anonet
