// Tests for multiset recovery with centralized help (core/census.hpp):
// Corollaries 4.3 (known n) and 4.4 / eq. (5) (leaders).

#include "core/census.hpp"

#include <gtest/gtest.h>

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

TEST(Census, LeaderEncodingRoundTrip) {
  for (std::int64_t value : {-7LL, -1LL, 0LL, 1LL, 42LL}) {
    for (bool leader : {false, true}) {
      const std::int64_t coded = encode_leader_input(value, leader);
      EXPECT_EQ(decode_leader_value(coded), value) << value << " " << leader;
      EXPECT_EQ(decode_leader_flag(coded), leader) << value << " " << leader;
    }
  }
}

TEST(Census, LeaderEncodingIsInjective) {
  EXPECT_NE(encode_leader_input(3, true), encode_leader_input(3, false));
  EXPECT_NE(encode_leader_input(3, false), encode_leader_input(4, false));
}

TEST(Census, MultisetFromFrequency) {
  const Frequency nu({{1, r(1, 3)}, {2, r(2, 3)}});
  const auto multiset = multiset_from_frequency(nu, 6);
  ASSERT_TRUE(multiset.has_value());
  EXPECT_EQ(multiset->at(1), BigInt(2));
  EXPECT_EQ(multiset->at(2), BigInt(4));
}

TEST(Census, MultisetFromFrequencyRejectsNonIntegral) {
  const Frequency nu({{1, r(1, 3)}, {2, r(2, 3)}});
  EXPECT_FALSE(multiset_from_frequency(nu, 7).has_value());
  EXPECT_THROW(multiset_from_frequency(nu, 0), std::invalid_argument);
}

TEST(Census, FibreSizesWithKnownN) {
  const std::vector<BigInt> ratios{BigInt(1), BigInt(2), BigInt(3)};
  const auto sizes = fibre_sizes_with_known_n(ratios, 12);
  ASSERT_TRUE(sizes.has_value());
  EXPECT_EQ(*sizes, (std::vector<BigInt>{BigInt(2), BigInt(4), BigInt(6)}));
  EXPECT_FALSE(fibre_sizes_with_known_n(ratios, 10).has_value());
}

TEST(Census, FibreSizesWithOneLeader) {
  // eq. (5) with ℓ = 1: the leader class pins the scale to its own ratio.
  const std::vector<BigInt> ratios{BigInt(1), BigInt(2), BigInt(3)};
  const std::vector<bool> leader_class{true, false, false};
  const auto sizes = fibre_sizes_with_leaders(leader_class, ratios, 1);
  ASSERT_TRUE(sizes.has_value());
  EXPECT_EQ(*sizes, (std::vector<BigInt>{BigInt(1), BigInt(2), BigInt(3)}));
}

TEST(Census, FibreSizesWithMultipleLeaders) {
  // ℓ = 4 leaders spread over two classes with ratios 1 and 3 (sum 4):
  // every ratio is scaled by 4/4 = 1... then with ratios doubled the scale
  // halves.
  const std::vector<BigInt> ratios{BigInt(2), BigInt(6), BigInt(4)};
  const std::vector<bool> leader_class{true, true, false};
  const auto sizes = fibre_sizes_with_leaders(leader_class, ratios, 4);
  ASSERT_TRUE(sizes.has_value());
  EXPECT_EQ(*sizes, (std::vector<BigInt>{BigInt(1), BigInt(3), BigInt(2)}));
}

TEST(Census, FibreSizesWithLeadersRejectsNonDivisible) {
  const std::vector<BigInt> ratios{BigInt(2), BigInt(3)};
  const std::vector<bool> leader_class{true, false};
  EXPECT_FALSE(fibre_sizes_with_leaders(leader_class, ratios, 3).has_value());
}

TEST(Census, FibreSizesWithLeadersRequiresALeaderClass) {
  const std::vector<BigInt> ratios{BigInt(1), BigInt(1)};
  EXPECT_FALSE(
      fibre_sizes_with_leaders({false, false}, ratios, 1).has_value());
  EXPECT_THROW(fibre_sizes_with_leaders({true}, ratios, 1),
               std::invalid_argument);
  EXPECT_THROW(fibre_sizes_with_leaders({true, false}, ratios, 0),
               std::invalid_argument);
}

TEST(Census, ExpandMultiset) {
  const auto flat =
      expand_multiset({5, 9}, {BigInt(2), BigInt(3)});
  EXPECT_EQ(flat, (std::vector<std::int64_t>{5, 5, 9, 9, 9}));
  EXPECT_THROW(expand_multiset({5}, {BigInt(1), BigInt(2)}),
               std::invalid_argument);
}

TEST(Census, SumRecoveryEndToEnd) {
  // Frequency (1/3, 2/3) on values (6, 3) with n = 6 gives multiset
  // {6, 6, 3, 3, 3, 3} and sum 24 — the paper's flagship "needs n" example.
  const Frequency nu({{6, r(1, 3)}, {3, r(2, 3)}});
  const auto multiset = multiset_from_frequency(nu, 6);
  ASSERT_TRUE(multiset.has_value());
  std::vector<std::int64_t> values;
  std::vector<BigInt> sizes;
  for (const auto& [value, count] : *multiset) {
    values.push_back(value);
    sizes.push_back(count);
  }
  const auto flat = expand_multiset(values, sizes);
  Rational total;
  for (std::int64_t v : flat) total += Rational(v);
  EXPECT_EQ(total, r(24));
}

}  // namespace
}  // namespace anonet
