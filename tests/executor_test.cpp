// Tests for the synchronous executor: round structure, communication-model
// enforcement, multiset delivery semantics.

#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/convergence.hpp"

namespace anonet {
namespace {

// Probe agent recording everything the executor tells it.
struct ProbeAgent {
  struct Message {
    int payload = 0;
    int port = 0;
  };

  int id = 0;
  mutable int last_outdegree = -1;
  mutable std::vector<int> ports_seen;
  std::vector<Message> last_inbox;

  Message send(int outdegree, int port) const {
    last_outdegree = outdegree;
    ports_seen.push_back(port);
    return Message{id, port};
  }
  void receive(std::vector<Message> messages) {
    last_inbox = std::move(messages);
  }
};

TEST(Executor, RequiresOneAgentPerVertex) {
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  EXPECT_THROW(Executor<ProbeAgent>(net, std::vector<ProbeAgent>(2),
                                    CommModel::kSimpleBroadcast),
               std::invalid_argument);
  EXPECT_THROW(Executor<ProbeAgent>(nullptr, std::vector<ProbeAgent>(0),
                                    CommModel::kSimpleBroadcast),
               std::invalid_argument);
}

TEST(Executor, SimpleBroadcastHidesOutdegree) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  exec.step();
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(exec.agent(v).last_outdegree, 0);  // hidden
  }
}

TEST(Executor, OutdegreeAwareSeesDegreeOnceIsotropically) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents), CommModel::kOutdegreeAware);
  exec.step();
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(exec.agent(v).last_outdegree, 3);
    // One send per round: communications are isotropic by construction.
    EXPECT_EQ(exec.agent(v).ports_seen.size(), 1u);
    EXPECT_EQ(exec.agent(v).ports_seen[0], 0);
  }
}

TEST(Executor, OutputPortAwareSendsPerPort) {
  Digraph g = complete_graph(3);
  g.assign_output_ports();
  auto net = std::make_shared<StaticSchedule>(g);
  std::vector<ProbeAgent> agents(3);
  for (int i = 0; i < 3; ++i) agents[static_cast<std::size_t>(i)].id = i;
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kOutputPortAware);
  exec.step();
  for (Vertex v = 0; v < 3; ++v) {
    std::vector<int> ports = exec.agent(v).ports_seen;
    std::sort(ports.begin(), ports.end());
    EXPECT_EQ(ports, (std::vector<int>{1, 2, 3}));
    // Each agent received one message per in-edge, each carrying the port
    // it was sent through.
    EXPECT_EQ(exec.agent(v).last_inbox.size(), 3u);
  }
}

TEST(Executor, OutputPortAwareRejectsUnlabeledGraph) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));  // no ports
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kOutputPortAware);
  EXPECT_THROW(exec.step(), std::invalid_argument);
}

TEST(Executor, SymmetricModelRejectsAsymmetricRound) {
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSymmetricBroadcast);
  EXPECT_THROW(exec.step(), std::logic_error);
}

TEST(Executor, SymmetricModelAcceptsSymmetricRound) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<ProbeAgent> agents(4);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSymmetricBroadcast);
  EXPECT_NO_THROW(exec.run(3));
  EXPECT_EQ(exec.round(), 3);
}

TEST(Executor, DeliveryFollowsRoundGraph) {
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  std::vector<ProbeAgent> agents(3);
  for (int i = 0; i < 3; ++i) agents[static_cast<std::size_t>(i)].id = i;
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  exec.step();
  // Vertex 1 hears from 0 (ring edge) and itself (self-loop).
  std::vector<int> senders;
  for (const auto& m : exec.agent(1).last_inbox) senders.push_back(m.payload);
  std::sort(senders.begin(), senders.end());
  EXPECT_EQ(senders, (std::vector<int>{0, 1}));
}

TEST(Executor, StatsCountRoundsAndMessages) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(4));
  std::vector<ProbeAgent> agents(4);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  exec.run(5);
  EXPECT_EQ(exec.stats().rounds, 5);
  EXPECT_EQ(exec.stats().messages_delivered, 5 * 16);
  // ProbeAgent declares no weight: payload defaults to one unit/message.
  EXPECT_EQ(exec.stats().payload_units, 5 * 16);
}

// Message type with a declared bandwidth weight.
struct WeightedAgent {
  struct Message {
    int payload = 3;
    [[nodiscard]] std::int64_t weight_units() const { return 7; }
  };
  Message send(int, int) const { return {}; }
  void receive(std::vector<Message>) {}
};

TEST(Executor, PayloadUnitsUseDeclaredWeights) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));
  Executor<WeightedAgent> exec(net, std::vector<WeightedAgent>(3),
                               CommModel::kSimpleBroadcast);
  exec.run(2);
  EXPECT_EQ(exec.stats().messages_delivered, 2 * 9);
  EXPECT_EQ(exec.stats().payload_units, 7 * 2 * 9);
}

TEST(Executor, ShuffleSeedChangesDeliveryOrderNotContent) {
  auto run_with_seed = [](std::uint64_t seed) {
    auto net = std::make_shared<StaticSchedule>(complete_graph(5));
    std::vector<ProbeAgent> agents(5);
    for (int i = 0; i < 5; ++i) agents[static_cast<std::size_t>(i)].id = i;
    Executor<ProbeAgent> exec(net, std::move(agents),
                              CommModel::kSimpleBroadcast, seed);
    exec.step();
    std::vector<int> order;
    for (const auto& m : exec.agent(0).last_inbox) order.push_back(m.payload);
    return order;
  };
  const std::vector<int> order_a = run_with_seed(1);
  const std::vector<int> order_b = run_with_seed(2);
  std::vector<int> sorted_a = order_a, sorted_b = order_b;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  EXPECT_EQ(sorted_a, sorted_b);  // same multiset...
  EXPECT_EQ(sorted_a, (std::vector<int>{0, 1, 2, 3, 4}));
  // ...orders differ for at least some seeds (can coincide, so try a few).
  bool any_difference = order_a != order_b;
  for (std::uint64_t seed = 3; !any_difference && seed < 10; ++seed) {
    any_difference = run_with_seed(seed) != order_a;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Executor, MissingSelfLoopIsRejected) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  // Bypass StaticSchedule's ensure_self_loops with a custom schedule.
  class RawSchedule final : public DynamicGraph {
   public:
    explicit RawSchedule(Digraph g) : g_(std::move(g)) {}
    [[nodiscard]] Vertex vertex_count() const override {
      return g_.vertex_count();
    }
    [[nodiscard]] Digraph at(int) const override { return g_; }

   private:
    Digraph g_;
  };
  auto net = std::make_shared<RawSchedule>(g);
  std::vector<ProbeAgent> agents(2);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  EXPECT_THROW(exec.step(), std::logic_error);
}

TEST(Convergence, Helpers) {
  const std::vector<double> outputs{1.0, 1.5, 0.5};
  EXPECT_DOUBLE_EQ(max_abs_error(outputs, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(spread(outputs), 1.0);
  EXPECT_TRUE(all_equal_to<int>(std::vector<int>{2, 2}, 2));
  EXPECT_FALSE(all_equal_to<int>(std::vector<int>{2, 3}, 2));
}

TEST(Convergence, StabilizationDetector) {
  StabilizationDetector<int> detector(7);
  detector.observe(std::vector<int>{7, 6});
  EXPECT_EQ(detector.stabilized_since(), -1);
  detector.observe(std::vector<int>{7, 7});
  EXPECT_EQ(detector.stabilized_since(), 2);
  detector.observe(std::vector<int>{7, 7});
  EXPECT_EQ(detector.stabilized_since(), 2);
  detector.observe(std::vector<int>{7, 0});
  EXPECT_EQ(detector.stabilized_since(), -1);
}

}  // namespace
}  // namespace anonet
