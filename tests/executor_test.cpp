// Tests for the synchronous executor: round structure, communication-model
// enforcement, multiset delivery semantics.

#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <span>

#include "core/exact_pushsum.hpp"
#include "core/gossip.hpp"
#include "core/pushsum.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/convergence.hpp"

namespace anonet {
namespace {

// Probe agent recording everything the executor tells it.
struct ProbeAgent {
  struct Message {
    int payload = 0;
    int port = 0;
  };

  int id = 0;
  mutable int last_outdegree = -1;
  mutable std::vector<int> ports_seen;
  std::vector<Message> last_inbox;

  Message send(int outdegree, int port) const {
    last_outdegree = outdegree;
    ports_seen.push_back(port);
    return Message{id, port};
  }
  void receive(std::vector<Message> messages) {
    last_inbox = std::move(messages);
  }
};

TEST(Executor, RequiresOneAgentPerVertex) {
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  EXPECT_THROW(Executor<ProbeAgent>(net, std::vector<ProbeAgent>(2),
                                    CommModel::kSimpleBroadcast),
               std::invalid_argument);
  EXPECT_THROW(Executor<ProbeAgent>(nullptr, std::vector<ProbeAgent>(0),
                                    CommModel::kSimpleBroadcast),
               std::invalid_argument);
}

TEST(Executor, RejectsThreadsWithoutParallelSafeOptIn) {
  // ProbeAgent does not declare kParallelSafe, so a parallel executor must
  // be refused at construction instead of racing silently.
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  EXPECT_THROW(Executor<ProbeAgent>(net, std::vector<ProbeAgent>(3),
                                    CommModel::kSimpleBroadcast, 0x5eedull,
                                    /*threads=*/2),
               std::invalid_argument);
  // threads == 1 stays available to any agent type.
  EXPECT_NO_THROW(Executor<ProbeAgent>(net, std::vector<ProbeAgent>(3),
                                       CommModel::kSimpleBroadcast, 0x5eedull,
                                       /*threads=*/1));
}

TEST(Executor, SimpleBroadcastHidesOutdegree) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  exec.step();
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(exec.agent(v).last_outdegree, 0);  // hidden
  }
}

TEST(Executor, OutdegreeAwareSeesDegreeOnceIsotropically) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents), CommModel::kOutdegreeAware);
  exec.step();
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(exec.agent(v).last_outdegree, 3);
    // One send per round: communications are isotropic by construction.
    EXPECT_EQ(exec.agent(v).ports_seen.size(), 1u);
    EXPECT_EQ(exec.agent(v).ports_seen[0], 0);
  }
}

TEST(Executor, OutputPortAwareSendsPerPort) {
  Digraph g = complete_graph(3);
  g.assign_output_ports();
  auto net = std::make_shared<StaticSchedule>(g);
  std::vector<ProbeAgent> agents(3);
  for (int i = 0; i < 3; ++i) agents[static_cast<std::size_t>(i)].id = i;
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kOutputPortAware);
  exec.step();
  for (Vertex v = 0; v < 3; ++v) {
    std::vector<int> ports = exec.agent(v).ports_seen;
    std::sort(ports.begin(), ports.end());
    EXPECT_EQ(ports, (std::vector<int>{1, 2, 3}));
    // Each agent received one message per in-edge, each carrying the port
    // it was sent through.
    EXPECT_EQ(exec.agent(v).last_inbox.size(), 3u);
  }
}

TEST(Executor, OutputPortAwareRejectsUnlabeledGraph) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));  // no ports
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kOutputPortAware);
  EXPECT_THROW(exec.step(), std::invalid_argument);
}

TEST(Executor, SymmetricModelRejectsAsymmetricRound) {
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  std::vector<ProbeAgent> agents(3);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSymmetricBroadcast);
  EXPECT_THROW(exec.step(), std::logic_error);
}

TEST(Executor, SymmetricModelAcceptsSymmetricRound) {
  auto net = std::make_shared<StaticSchedule>(bidirectional_ring(4));
  std::vector<ProbeAgent> agents(4);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSymmetricBroadcast);
  EXPECT_NO_THROW(exec.run(3));
  EXPECT_EQ(exec.round(), 3);
}

TEST(Executor, DeliveryFollowsRoundGraph) {
  auto net = std::make_shared<StaticSchedule>(directed_ring(3));
  std::vector<ProbeAgent> agents(3);
  for (int i = 0; i < 3; ++i) agents[static_cast<std::size_t>(i)].id = i;
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  exec.step();
  // Vertex 1 hears from 0 (ring edge) and itself (self-loop).
  std::vector<int> senders;
  for (const auto& m : exec.agent(1).last_inbox) senders.push_back(m.payload);
  std::sort(senders.begin(), senders.end());
  EXPECT_EQ(senders, (std::vector<int>{0, 1}));
}

TEST(Executor, StatsCountRoundsAndMessages) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(4));
  std::vector<ProbeAgent> agents(4);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  exec.run(5);
  EXPECT_EQ(exec.stats().rounds, 5);
  EXPECT_EQ(exec.stats().messages_delivered, 5 * 16);
  // ProbeAgent declares no weight: payload defaults to one unit/message.
  EXPECT_EQ(exec.stats().payload_units, 5 * 16);
}

// Message type with a declared bandwidth weight.
struct WeightedAgent {
  struct Message {
    int payload = 3;
    [[nodiscard]] std::int64_t weight_units() const { return 7; }
  };
  Message send(int, int) const { return {}; }
  void receive(std::vector<Message>) {}
};

TEST(Executor, PayloadUnitsUseDeclaredWeights) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(3));
  Executor<WeightedAgent> exec(net, std::vector<WeightedAgent>(3),
                               CommModel::kSimpleBroadcast);
  exec.run(2);
  EXPECT_EQ(exec.stats().messages_delivered, 2 * 9);
  EXPECT_EQ(exec.stats().payload_units, 7 * 2 * 9);
}

TEST(Executor, ShuffleSeedChangesDeliveryOrderNotContent) {
  auto run_with_seed = [](std::uint64_t seed) {
    auto net = std::make_shared<StaticSchedule>(complete_graph(5));
    std::vector<ProbeAgent> agents(5);
    for (int i = 0; i < 5; ++i) agents[static_cast<std::size_t>(i)].id = i;
    Executor<ProbeAgent> exec(net, std::move(agents),
                              CommModel::kSimpleBroadcast, seed);
    exec.step();
    std::vector<int> order;
    for (const auto& m : exec.agent(0).last_inbox) order.push_back(m.payload);
    return order;
  };
  const std::vector<int> order_a = run_with_seed(1);
  const std::vector<int> order_b = run_with_seed(2);
  std::vector<int> sorted_a = order_a, sorted_b = order_b;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  EXPECT_EQ(sorted_a, sorted_b);  // same multiset...
  EXPECT_EQ(sorted_a, (std::vector<int>{0, 1, 2, 3, 4}));
  // ...orders differ for at least some seeds (can coincide, so try a few).
  bool any_difference = order_a != order_b;
  for (std::uint64_t seed = 3; !any_difference && seed < 10; ++seed) {
    any_difference = run_with_seed(seed) != order_a;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Executor, MissingSelfLoopIsRejected) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  // Bypass StaticSchedule's ensure_self_loops with a custom schedule.
  class RawSchedule final : public DynamicGraph {
   public:
    explicit RawSchedule(Digraph g) : g_(std::move(g)) {}
    [[nodiscard]] Vertex vertex_count() const override {
      return g_.vertex_count();
    }
    [[nodiscard]] Digraph at(int) const override { return g_; }

   private:
    Digraph g_;
  };
  auto net = std::make_shared<RawSchedule>(g);
  std::vector<ProbeAgent> agents(2);
  Executor<ProbeAgent> exec(net, std::move(agents),
                            CommModel::kSimpleBroadcast);
  EXPECT_THROW(exec.step(), std::logic_error);
}

// Order-*sensitive* span-receive agent: its state folds the exact arrival
// sequence, so two runs end in identical states only if every inbox was
// delivered in the identical order. This is the strongest possible probe for
// the thread-count invariance of the round engine.
struct OrderHashAgent {
  struct Message {
    std::uint64_t tag = 0;
  };

  static constexpr bool kParallelSafe = true;

  std::uint64_t state = 1;

  Message send(int outdegree, int port) const {
    return Message{state ^ (static_cast<std::uint64_t>(outdegree) << 32) ^
                   static_cast<std::uint64_t>(port)};
  }
  void receive(std::span<const Message> messages) {
    for (const Message& m : messages) {
      state = state * 1099511628211ull + m.tag;  // FNV-style, order-sensitive
    }
  }
};

std::vector<std::uint64_t> run_order_hash(const DynamicGraphPtr& net,
                                          CommModel model, int threads,
                                          int rounds,
                                          ExecutorStats* stats_out = nullptr) {
  std::vector<OrderHashAgent> agents(
      static_cast<std::size_t>(net->vertex_count()));
  for (std::size_t i = 0; i < agents.size(); ++i) {
    agents[i].state = 0x1234 + i;
  }
  Executor<OrderHashAgent> exec(net, std::move(agents), model, 0x5eedull,
                                threads);
  exec.run(rounds);
  if (stats_out != nullptr) *stats_out = exec.stats();
  std::vector<std::uint64_t> states;
  for (const auto& a : exec.agents()) states.push_back(a.state);
  return states;
}

TEST(ExecutorDeterminism, ThreadCountInvariantForAllModels) {
  struct Case {
    const char* name;
    DynamicGraphPtr net;
    CommModel model;
  };
  Digraph ported = random_strongly_connected(23, 30, 99);
  ported.assign_output_ports();
  const std::vector<Case> cases = {
      {"simple/dynamic",
       std::make_shared<RandomStronglyConnectedSchedule>(23, 15, 7),
       CommModel::kSimpleBroadcast},
      {"outdegree/dynamic",
       std::make_shared<RandomStronglyConnectedSchedule>(23, 15, 8),
       CommModel::kOutdegreeAware},
      {"symmetric/dynamic", std::make_shared<RandomSymmetricSchedule>(23, 9, 9),
       CommModel::kSymmetricBroadcast},
      {"ports/static", std::make_shared<StaticSchedule>(ported),
       CommModel::kOutputPortAware},
  };
  for (const Case& c : cases) {
    ExecutorStats serial_stats;
    const auto serial = run_order_hash(c.net, c.model, 1, 20, &serial_stats);
    for (int threads : {2, 4, 8}) {
      ExecutorStats parallel_stats;
      const auto parallel =
          run_order_hash(c.net, c.model, threads, 20, &parallel_stats);
      EXPECT_EQ(serial, parallel) << c.name << " threads=" << threads;
      EXPECT_EQ(serial_stats.rounds, parallel_stats.rounds) << c.name;
      EXPECT_EQ(serial_stats.messages_delivered,
                parallel_stats.messages_delivered)
          << c.name;
      EXPECT_EQ(serial_stats.payload_units, parallel_stats.payload_units)
          << c.name;
    }
  }
}

TEST(ExecutorDeterminism, PushSumBitwiseIdenticalAcrossThreadCounts) {
  // Double addition is not associative, so this only passes because the
  // delivery *order* into every inbox is thread-count invariant.
  auto run = [](int threads) {
    auto net = std::make_shared<RandomStronglyConnectedSchedule>(31, 20, 5);
    std::vector<PushSumAgent> agents;
    for (Vertex v = 0; v < 31; ++v) {
      agents.emplace_back(std::sin(static_cast<double>(v)), 1.0);
    }
    Executor<PushSumAgent> exec(net, std::move(agents),
                                CommModel::kOutdegreeAware, 0x5eedull,
                                threads);
    exec.run(30);
    std::vector<std::pair<double, double>> state;
    for (const auto& a : exec.agents()) state.emplace_back(a.y(), a.z());
    return state;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first) << i;   // bitwise
    EXPECT_EQ(serial[i].second, parallel[i].second) << i; // bitwise
  }
}

// A faithful copy of the seed executor's round loop (nested per-round inbox,
// shared sequential mt19937_64 shuffle, graph copy via at(t)): the reference
// for multiset-semantics preservation. Message *orders* differ from the new
// engine (different RNG), so agents compared through it must be
// order-independent — which Push-Sum over exact rationals and set-gossip
// are.
template <typename Alg>
std::vector<Alg> run_seed_reference(const DynamicGraphPtr& net,
                                    std::vector<Alg> agents, CommModel model,
                                    int rounds) {
  using Message = typename Alg::Message;
  std::mt19937_64 rng(0x5eedull);
  for (int t = 1; t <= rounds; ++t) {
    const Digraph g = net->at(t);
    const auto n = static_cast<std::size_t>(g.vertex_count());
    std::vector<std::vector<Message>> inbox(n);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const auto out = g.out_edges(v);
      const int d = static_cast<int>(out.size());
      const Alg& agent = agents[static_cast<std::size_t>(v)];
      const int visible = sees_outdegree(model) ? d : 0;
      const Message message = agent.send(visible, 0);
      for (EdgeId id : out) {
        inbox[static_cast<std::size_t>(g.edge(id).target)].push_back(message);
      }
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      auto& messages = inbox[static_cast<std::size_t>(v)];
      std::shuffle(messages.begin(), messages.end(), rng);
      agents[static_cast<std::size_t>(v)].receive(
          std::span<const Message>(messages));
    }
  }
  return agents;
}

TEST(ExecutorDeterminism, ExactPushSumMatchesSeedSemantics) {
  auto net = std::make_shared<RandomStronglyConnectedSchedule>(9, 6, 11);
  std::vector<ExactPushSumAgent> init;
  for (Vertex v = 0; v < 9; ++v) init.emplace_back(Rational(v), Rational(1));
  const auto reference =
      run_seed_reference(net, init, CommModel::kOutdegreeAware, 12);

  std::vector<ExactPushSumAgent> agents = init;
  Executor<ExactPushSumAgent> exec(net, std::move(agents),
                                   CommModel::kOutdegreeAware);
  exec.run(12);
  for (Vertex v = 0; v < 9; ++v) {
    EXPECT_EQ(exec.agent(v).y(), reference[static_cast<std::size_t>(v)].y());
    EXPECT_EQ(exec.agent(v).z(), reference[static_cast<std::size_t>(v)].z());
  }
}

TEST(ExecutorDeterminism, GossipMatchesSeedSemantics) {
  auto net = std::make_shared<RandomStronglyConnectedSchedule>(13, 4, 3);
  std::vector<SetGossipAgent> init;
  for (Vertex v = 0; v < 13; ++v) init.emplace_back(100 + v % 5);
  const auto reference =
      run_seed_reference(net, init, CommModel::kSimpleBroadcast, 6);

  std::vector<SetGossipAgent> agents = init;
  Executor<SetGossipAgent> exec(net, std::move(agents),
                                CommModel::kSimpleBroadcast, 0x5eedull, 4);
  exec.run(6);
  for (Vertex v = 0; v < 13; ++v) {
    EXPECT_EQ(exec.agent(v).known(),
              reference[static_cast<std::size_t>(v)].known());
  }
}

TEST(ExecutorDeterminism, PhaseTimingsAccumulate) {
  auto net = std::make_shared<StaticSchedule>(complete_graph(8));
  Executor<ProbeAgent> exec(net, std::vector<ProbeAgent>(8),
                            CommModel::kSimpleBroadcast);
  exec.run(10);
  const PhaseTimings& t = exec.stats().timings;
  EXPECT_GE(t.validate_seconds, 0.0);
  EXPECT_GE(t.send_seconds, 0.0);
  EXPECT_GT(t.deliver_seconds, 0.0);
}

TEST(Convergence, Helpers) {
  const std::vector<double> outputs{1.0, 1.5, 0.5};
  EXPECT_DOUBLE_EQ(max_abs_error(outputs, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(spread(outputs), 1.0);
  EXPECT_TRUE(all_equal_to<int>(std::vector<int>{2, 2}, 2));
  EXPECT_FALSE(all_equal_to<int>(std::vector<int>{2, 3}, 2));
}

TEST(Convergence, StabilizationDetector) {
  StabilizationDetector<int> detector(7);
  detector.observe(std::vector<int>{7, 6});
  EXPECT_EQ(detector.stabilized_since(), -1);
  detector.observe(std::vector<int>{7, 7});
  EXPECT_EQ(detector.stabilized_since(), 2);
  detector.observe(std::vector<int>{7, 7});
  EXPECT_EQ(detector.stabilized_since(), 2);
  detector.observe(std::vector<int>{7, 0});
  EXPECT_EQ(detector.stabilized_since(), -1);
}

}  // namespace
}  // namespace anonet
