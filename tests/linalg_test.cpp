// Tests for exact matrices, kernels, and the Perron helpers — the machinery
// behind the Section 4.2 fibre-equation solve.

#include <gtest/gtest.h>

#include "core/freq_static.hpp"
#include "fibration/minimum_base.hpp"
#include "graph/generators.hpp"
#include "linalg/kernel.hpp"
#include "linalg/matrix.hpp"
#include "linalg/perron.hpp"

namespace anonet {
namespace {

Rational r(std::int64_t num, std::int64_t den = 1) {
  return Rational(BigInt(num), BigInt(den));
}

TEST(Matrix, Multiplication) {
  const RationalMatrix a{{r(1), r(2)}, {r(3), r(4)}};
  const RationalMatrix b{{r(0), r(1)}, {r(1), r(0)}};
  const RationalMatrix product = a * b;
  EXPECT_EQ(product.at(0, 0), r(2));
  EXPECT_EQ(product.at(0, 1), r(1));
  EXPECT_EQ(product.at(1, 0), r(4));
  EXPECT_EQ(product.at(1, 1), r(3));
}

TEST(Matrix, IdentityAndApply) {
  const RationalMatrix id = RationalMatrix::identity(3);
  const std::vector<Rational> v{r(1), r(2), r(3)};
  EXPECT_EQ(id.apply(v), v);
  EXPECT_THROW(id.apply({r(1)}), std::invalid_argument);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RationalMatrix{{r(1), r(2)}, {r(3)}}), std::invalid_argument);
}

TEST(Kernel, RankOfSingularMatrix) {
  const RationalMatrix m{{r(1), r(2)}, {r(2), r(4)}};
  EXPECT_EQ(rank(m), 1u);
  EXPECT_EQ(rank(RationalMatrix::identity(4)), 4u);
}

TEST(Kernel, KernelBasisSpansTheKernel) {
  const RationalMatrix m{{r(1), r(2), r(3)}, {r(2), r(4), r(6)}};
  const auto basis = kernel_basis(m);
  ASSERT_EQ(basis.size(), 2u);
  for (const auto& vec : basis) {
    for (const Rational& entry : m.apply(vec)) {
      EXPECT_EQ(entry, r(0));
    }
  }
}

TEST(Kernel, InjectiveMatrixHasEmptyKernel) {
  EXPECT_TRUE(kernel_basis(RationalMatrix::identity(3)).empty());
}

TEST(Kernel, CoprimeIntegerVector) {
  const std::vector<Rational> v{r(1, 2), r(1, 3), r(1, 6)};
  const auto ints = coprime_integer_vector(v);
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints[0], BigInt(3));
  EXPECT_EQ(ints[1], BigInt(2));
  EXPECT_EQ(ints[2], BigInt(1));
  EXPECT_THROW(coprime_integer_vector({r(0), r(0)}), std::invalid_argument);
}

TEST(Kernel, PositiveCoprimeKernelVector) {
  // M = [[-1, 2], [1, -2]] has kernel spanned by (2, 1).
  const RationalMatrix m{{r(-1), r(2)}, {r(1), r(-2)}};
  const auto z = positive_coprime_kernel_vector(m);
  ASSERT_TRUE(z.has_value());
  EXPECT_EQ((*z)[0], BigInt(2));
  EXPECT_EQ((*z)[1], BigInt(1));
}

TEST(Kernel, RejectsMixedSignKernel) {
  // Kernel spanned by (1, -1): no positive generator.
  const RationalMatrix m{{r(1), r(1)}, {r(1), r(1)}};
  EXPECT_FALSE(positive_coprime_kernel_vector(m).has_value());
}

TEST(Kernel, RejectsHigherDimensionalKernel) {
  const RationalMatrix zero(2, 2);
  EXPECT_FALSE(positive_coprime_kernel_vector(zero).has_value());
}

TEST(Kernel, FibreMatrixKernelGivesFibreSizes) {
  // End-to-end Section 4.2 on a known lift: ker M must be R·(fibre sizes).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Digraph base_graph = random_strongly_connected(4, 3, seed + 50);
    const std::vector<int> sizes{3, 3, 3, 3};
    const LiftedGraph lift = random_lift(base_graph, sizes, seed);
    const Digraph& g = lift.graph;
    const std::vector<int> labels = outdegree_labels(g);
    const MinimumBase mb = minimum_base(g, labels);
    // Read off per-class outdegrees.
    std::vector<int> b(static_cast<std::size_t>(mb.base.vertex_count()));
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      b[static_cast<std::size_t>(
          mb.projection[static_cast<std::size_t>(v)])] = g.outdegree(v);
    }
    const auto z = positive_coprime_kernel_vector(fibre_matrix(mb.base, b));
    ASSERT_TRUE(z.has_value()) << seed;
    // The true fibre sizes must be an integer multiple of z.
    const std::vector<int> fibres = mb.fibre_sizes();
    ASSERT_EQ(z->size(), fibres.size());
    const BigInt k = BigInt(fibres[0]) / (*z)[0];
    EXPECT_FALSE(k.is_zero());
    for (std::size_t i = 0; i < fibres.size(); ++i) {
      EXPECT_EQ(BigInt(fibres[i]), k * (*z)[i]) << seed << " i=" << i;
    }
  }
}

TEST(Perron, ShiftedFibreMatrixHasSpectralRadiusAlpha) {
  // The Section 4.2 argument: the Perron eigenvalue of M is 0, so
  // ρ(M + αI) = α exactly.
  const Digraph base_graph = random_strongly_connected(3, 3, 99);
  const LiftedGraph lift = random_lift(base_graph, {3, 3, 3}, 4);
  const std::vector<int> labels = outdegree_labels(lift.graph);
  const MinimumBase mb = minimum_base(lift.graph, labels);
  std::vector<int> b(static_cast<std::size_t>(mb.base.vertex_count()));
  for (Vertex v = 0; v < lift.graph.vertex_count(); ++v) {
    b[static_cast<std::size_t>(mb.projection[static_cast<std::size_t>(v)])] =
        lift.graph.outdegree(v);
  }
  const RationalMatrix m = fibre_matrix(mb.base, b);
  double alpha = 0.0;
  const DoubleMatrix p = perron_shift(m, &alpha);
  EXPECT_TRUE(is_irreducible_nonnegative(p));
  EXPECT_NEAR(spectral_radius(p), alpha, 1e-6);
}

TEST(Perron, SpectralRadiusOfKnownMatrix) {
  // [[0, 1], [1, 0]] has spectral radius 1... but is 2-periodic; use a
  // primitive matrix instead: [[1, 1], [1, 1]] has radius 2.
  EXPECT_NEAR(spectral_radius({{1.0, 1.0}, {1.0, 1.0}}), 2.0, 1e-9);
  EXPECT_NEAR(spectral_radius({{2.0, 0.0}, {0.0, 1.0}}), 2.0, 1e-9);
}

TEST(Perron, IrreducibilityCheck) {
  EXPECT_TRUE(is_irreducible_nonnegative({{1.0, 1.0}, {1.0, 1.0}}));
  EXPECT_FALSE(is_irreducible_nonnegative({{1.0, 0.0}, {0.0, 1.0}}));
  EXPECT_FALSE(is_irreducible_nonnegative({{1.0, -1.0}, {1.0, 1.0}}));
}

}  // namespace
}  // namespace anonet
