// Tests for history-tree frequency computation (core/history_tree.hpp):
// exact frequencies on dynamic symmetric networks with NO bound on n and NO
// outdegree awareness — the mechanism behind Di Luna & Viglietta's cells of
// Table 2.

#include "core/history_tree.hpp"

#include <gtest/gtest.h>

#include "core/census.hpp"
#include "dynamics/schedules.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"

namespace anonet {
namespace {

struct Rig {
  std::shared_ptr<ViewRegistry> registry = std::make_shared<ViewRegistry>();
  std::shared_ptr<LabelCodec> codec = std::make_shared<LabelCodec>();

  std::vector<HistoryFrequencyAgent> agents(
      const std::vector<std::int64_t>& inputs) {
    std::vector<HistoryFrequencyAgent> result;
    for (std::int64_t input : inputs) {
      result.emplace_back(registry, codec, input);
    }
    return result;
  }
};

TEST(HistoryTree, ExactFrequenciesOnDynamicSymmetricNoBound) {
  const std::vector<std::int64_t> inputs{7, 7, 3, 3, 3, 3};
  const Frequency truth = Frequency::of(inputs);
  Rig rig;
  Executor<HistoryFrequencyAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 2, 5), rig.agents(inputs),
      CommModel::kSymmetricBroadcast);
  exec.run(20);
  for (int extra = 0; extra < 5; ++extra) {
    exec.step();
    for (Vertex v = 0; v < 6; ++v) {
      const auto estimate = exec.agent(v).frequency_estimate();
      ASSERT_TRUE(estimate.has_value()) << v;
      EXPECT_EQ(*estimate, truth) << v;
    }
  }
}

TEST(HistoryTree, ExactOnStaticSymmetricWithCollapsedClasses) {
  // Alternating ring: classes never refine below two (size-3) classes —
  // the relations must still pin the 1:1 ratio.
  const std::vector<std::int64_t> inputs{1, 2, 1, 2, 1, 2};
  const Frequency truth = Frequency::of(inputs);
  Rig rig;
  Executor<HistoryFrequencyAgent> exec(
      std::make_shared<StaticSchedule>(bidirectional_ring(6)),
      rig.agents(inputs), CommModel::kSymmetricBroadcast);
  exec.run(24);
  for (Vertex v = 0; v < 6; ++v) {
    const auto estimate = exec.agent(v).frequency_estimate();
    ASSERT_TRUE(estimate.has_value()) << v;
    EXPECT_EQ(*estimate, truth) << v;
  }
}

TEST(HistoryTree, UnevenFrequenciesOnStaticStar) {
  // Hub + 4 identical leaves: classes {hub}, {leaves} with sizes 1:4.
  Digraph star(5);
  for (Vertex v = 1; v < 5; ++v) {
    star.add_edge(0, v);
    star.add_edge(v, 0);
  }
  star.ensure_self_loops();
  const std::vector<std::int64_t> inputs{9, 4, 4, 4, 4};
  const Frequency truth = Frequency::of(inputs);
  Rig rig;
  Executor<HistoryFrequencyAgent> exec(std::make_shared<StaticSchedule>(star),
                                       rig.agents(inputs),
                                       CommModel::kSymmetricBroadcast);
  exec.run(24);
  for (Vertex v = 0; v < 5; ++v) {
    const auto estimate = exec.agent(v).frequency_estimate();
    ASSERT_TRUE(estimate.has_value()) << v;
    EXPECT_EQ(*estimate, truth) << v;
  }
}

TEST(HistoryTree, WorksOnSparseMatchingSchedule) {
  // Pairwise interactions (population-protocol regime): rounds are heavily
  // disconnected, the class relations accumulate across the window.
  const std::vector<std::int64_t> inputs{5, 5, 5, 8};
  const Frequency truth = Frequency::of(inputs);
  Rig rig;
  Executor<HistoryFrequencyAgent> exec(
      std::make_shared<RandomMatchingSchedule>(4, 11), rig.agents(inputs),
      CommModel::kSymmetricBroadcast);
  exec.run(60);
  int exact = 0;
  for (Vertex v = 0; v < 4; ++v) {
    const auto estimate = exec.agent(v).frequency_estimate();
    if (estimate.has_value() && *estimate == truth) ++exact;
  }
  EXPECT_EQ(exact, 4);
}

TEST(HistoryTree, LeaderVariantRecoversExactMultiset) {
  const std::vector<std::int64_t> values{3, 3, 3, 9, 9, 4};
  std::vector<std::int64_t> inputs;
  for (std::size_t i = 0; i < values.size(); ++i) {
    inputs.push_back(encode_leader_input(values[i], i == 5));
  }
  Rig rig;
  Executor<HistoryFrequencyAgent> exec(
      std::make_shared<RandomSymmetricSchedule>(6, 3, 9), rig.agents(inputs),
      CommModel::kSymmetricBroadcast);
  exec.run(24);
  for (Vertex v = 0; v < 6; ++v) {
    const auto multiset = exec.agent(v).multiset_estimate(1);
    ASSERT_TRUE(multiset.has_value()) << v;
    EXPECT_EQ(multiset->at(3), BigInt(3)) << v;
    EXPECT_EQ(multiset->at(9), BigInt(2)) << v;
    EXPECT_EQ(multiset->at(4), BigInt(1)) << v;
  }
}

TEST(HistoryTree, NoEstimateInTheFirstRounds) {
  Rig rig;
  Executor<HistoryFrequencyAgent> exec(
      std::make_shared<StaticSchedule>(bidirectional_ring(4)),
      rig.agents({1, 2, 1, 2}), CommModel::kSymmetricBroadcast);
  exec.step();  // t = 1: window [t/4, t/2] is empty, no estimate yet
  EXPECT_FALSE(exec.agent(0).frequency_estimate().has_value());
}

TEST(HistoryTree, InputValidation) {
  Rig rig;
  EXPECT_THROW(HistoryFrequencyAgent(nullptr, rig.codec, 1),
               std::invalid_argument);
  HistoryFrequencyAgent agent(rig.registry, rig.codec, 1);
  EXPECT_THROW(agent.multiset_estimate(0), std::invalid_argument);
}

}  // namespace
}  // namespace anonet
