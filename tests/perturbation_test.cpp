// Tests for the perturbation subsystem (src/dynamics/perturbation.*): the
// StartSchedule / FaultPlan executor axes, the drop lottery, churn
// schedules, the realistic topology families, and the determinism of a
// perturbed run across thread counts.

#include "dynamics/perturbation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/gossip.hpp"
#include "dynamics/schedules.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "runtime/executor.hpp"
#include "wire/codecs.hpp"
#include "wire/meter.hpp"

namespace anonet {
namespace {

Executor<SetGossipAgent> make_gossip(DynamicGraphPtr schedule,
                                     const std::vector<std::int64_t>& inputs,
                                     int threads = 1) {
  std::vector<SetGossipAgent> agents;
  for (std::int64_t input : inputs) agents.emplace_back(input);
  return Executor<SetGossipAgent>(std::move(schedule), std::move(agents),
                                  CommModel::kSimpleBroadcast, 0x5eedull,
                                  threads);
}

TEST(StartScheduleShape, StaggeredAndStraggler) {
  const StartSchedule sync = StartSchedule::synchronous();
  EXPECT_TRUE(sync.trivial());
  EXPECT_TRUE(sync.awake(0, 1));

  const StartSchedule staggered = StartSchedule::staggered(4, 3);
  ASSERT_EQ(staggered.wake_rounds.size(), 4u);
  EXPECT_EQ(staggered.wake_rounds[0], 1);
  EXPECT_EQ(staggered.wake_rounds[3], 10);
  EXPECT_FALSE(staggered.trivial());
  EXPECT_TRUE(staggered.awake(0, 1));
  EXPECT_FALSE(staggered.awake(3, 9));
  EXPECT_TRUE(staggered.awake(3, 10));

  const StartSchedule straggler = StartSchedule::straggler(4, 25);
  EXPECT_TRUE(straggler.awake(2, 1));
  EXPECT_FALSE(straggler.awake(3, 24));
  EXPECT_TRUE(straggler.awake(3, 25));

  // All-ones wake rounds gate nothing.
  StartSchedule noop;
  noop.wake_rounds = {1, 1, 1};
  EXPECT_TRUE(noop.trivial());
}

TEST(FaultPlanShape, CrashAndDrop) {
  const FaultPlan none;
  EXPECT_TRUE(none.trivial());
  EXPECT_FALSE(none.crashed(0, 100));

  const FaultPlan crash = FaultPlan::crash_first_agent(3, 5);
  EXPECT_FALSE(crash.trivial());
  EXPECT_FALSE(crash.crashed(0, 4));
  EXPECT_TRUE(crash.crashed(0, 5));
  EXPECT_TRUE(crash.crashed(0, 500));
  EXPECT_FALSE(crash.crashed(1, 500));

  const FaultPlan drops = FaultPlan::drop(0.25, 42);
  EXPECT_FALSE(drops.trivial());
  EXPECT_FALSE(drops.crashed(0, 100));
}

TEST(DropLottery, ThresholdAndDeterminism) {
  EXPECT_EQ(drop_threshold(0.0), 0u);
  EXPECT_EQ(drop_threshold(-1.0), 0u);
  EXPECT_EQ(drop_threshold(1.0), ~0ull);
  EXPECT_EQ(drop_threshold(2.0), ~0ull);
  // 0.5 scales to the top half of the u64 range (within rounding).
  EXPECT_NEAR(static_cast<double>(drop_threshold(0.5)) /
                  static_cast<double>(~0ull),
              0.5, 1e-9);

  // The decision is a pure function of (seed, round, edge).
  const std::uint64_t half = drop_threshold(0.5);
  int dropped = 0;
  for (EdgeId e = 0; e < 1000; ++e) {
    const bool a = drops_message(7, 3, e, half);
    const bool b = drops_message(7, 3, e, half);
    EXPECT_EQ(a, b);
    if (a) ++dropped;
  }
  // Roughly half at rate 0.5 (loose 4-sigma-ish band).
  EXPECT_GT(dropped, 400);
  EXPECT_LT(dropped, 600);
  // Threshold 0 never drops, without even consulting the RNG.
  EXPECT_FALSE(drops_message(7, 3, 0, 0));
}

TEST(ExecutorPerturbation, SleepingAgentSendsNothingAndIgnoresDeliveries) {
  // Complete graph, distinct inputs; vertex 2 sleeps until round 3. While
  // asleep its value is invisible to the others and its own known set is
  // frozen; after it wakes, flooding completes as usual.
  const std::vector<std::int64_t> inputs = {10, 20, 30, 40};
  auto exec = make_gossip(
      std::make_shared<StaticSchedule>(complete_graph(4)), inputs);
  StartSchedule starts;
  starts.wake_rounds = {1, 1, 3, 1};
  exec.set_start_schedule(starts);

  exec.step();  // round 1
  EXPECT_EQ(exec.agent(2).known(), (std::set<std::int64_t>{30}));
  for (Vertex v : {Vertex{0}, Vertex{1}, Vertex{3}}) {
    EXPECT_EQ(exec.agent(v).known(), (std::set<std::int64_t>{10, 20, 40}))
        << "vertex " << v << " heard a sleeper";
  }

  exec.step();  // round 2: still asleep
  EXPECT_EQ(exec.agent(2).known(), (std::set<std::int64_t>{30}));

  exec.step();  // round 3: awake — sends and receives
  const std::set<std::int64_t> all(inputs.begin(), inputs.end());
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(exec.agent(v).known(), all) << "vertex " << v;
  }
}

TEST(ExecutorPerturbation, CrashedAgentFreezesAndItsValueIsLost) {
  // Vertex 0 crashes at round 1: it never sends, never receives, and its
  // input never reaches anyone (the negative half of gossip's missing
  // crash-stop tolerance claim).
  const std::vector<std::int64_t> inputs = {11, 22, 33, 44};
  auto exec = make_gossip(
      std::make_shared<StaticSchedule>(complete_graph(4)), inputs);
  exec.set_fault_plan(FaultPlan::crash_first_agent(4, 1));
  for (int t = 0; t < 4; ++t) exec.step();
  EXPECT_EQ(exec.agent(0).known(), (std::set<std::int64_t>{11}));
  for (Vertex v = 1; v < 4; ++v) {
    EXPECT_EQ(exec.agent(v).known(), (std::set<std::int64_t>{22, 33, 44}))
        << "vertex " << v;
  }
}

TEST(ExecutorPerturbation, DroppedMessagesAreMeteredThenDiscarded) {
  // Send-side metering happens before the receiver-side drop decision: a
  // lossy round 1 meters exactly the same wire bits as a clean one, while
  // delivering strictly fewer messages. Self-loops are immune, so every
  // agent still hears itself.
  const std::vector<std::int64_t> inputs = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto graph = complete_graph(8);

  auto clean = make_gossip(std::make_shared<StaticSchedule>(graph), inputs);
  clean.set_channel_policy(wire::channel_policy_from_bits(-1));
  clean.step();

  auto lossy = make_gossip(std::make_shared<StaticSchedule>(graph), inputs);
  lossy.set_channel_policy(wire::channel_policy_from_bits(-1));
  lossy.set_fault_plan(FaultPlan::drop(0.5, 99));
  lossy.step();

  EXPECT_EQ(lossy.bandwidth_meter().total_bits_sent(),
            clean.bandwidth_meter().total_bits_sent());
  EXPECT_LT(lossy.stats().messages_delivered,
            clean.stats().messages_delivered);
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_TRUE(lossy.agent(v).known().count(inputs[v]) == 1)
        << "self-loop dropped at " << v;
  }
}

TEST(ExecutorPerturbation, PerturbedRunIsThreadCountInvariant) {
  // The full stack at once — staggered starts, a crash, drops, churn —
  // must give bit-identical agent states and stats at 1 and 4 threads.
  const std::vector<std::int64_t> inputs = {5, 6, 7, 8, 9, 10, 11, 12};
  const auto run = [&](int threads) {
    auto exec = make_gossip(preferential_churn_schedule(8, 0xabcdull), inputs,
                            threads);
    exec.set_start_schedule(StartSchedule::staggered(8, 2));
    FaultPlan plan = FaultPlan::crash_first_agent(8, 6);
    plan.drop_rate = 0.3;
    plan.drop_seed = 0x7777ull;
    exec.set_fault_plan(plan);
    for (int t = 0; t < 20; ++t) exec.step();
    std::vector<std::set<std::int64_t>> known;
    for (Vertex v = 0; v < 8; ++v) known.push_back(exec.agent(v).known());
    return std::make_tuple(known, exec.stats().messages_delivered,
                           exec.stats().payload_units);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ChurnSchedule, EpochZeroIsFullAndAnchorNeverLeaves) {
  const auto inner = std::make_shared<StaticSchedule>(complete_graph(12));
  const ChurnSchedule churn(inner, 4, 0.5, 0x1234ull);
  // Rounds 1..4 are epoch 0: everyone present.
  for (int t = 1; t <= 4; ++t) {
    for (Vertex v = 0; v < 12; ++v) {
      EXPECT_TRUE(churn.present(v, t)) << "t=" << t << " v=" << v;
    }
    EXPECT_EQ(churn.at(t).edge_count(), inner->at(t).edge_count());
  }
  // Vertex 0 anchors every later epoch; at 50% churn somebody leaves.
  bool someone_left = false;
  for (int t = 5; t <= 40; ++t) {
    EXPECT_TRUE(churn.present(0, t));
    for (Vertex v = 1; v < 12; ++v) {
      someone_left = someone_left || !churn.present(v, t);
    }
  }
  EXPECT_TRUE(someone_left);
}

TEST(ChurnSchedule, AbsentVerticesKeepOnlySelfLoopsAndSymmetryHolds) {
  const auto inner = std::make_shared<StaticSchedule>(complete_graph(10));
  const ChurnSchedule churn(inner, 3, 0.4, 0x77ull);
  for (int t = 4; t <= 30; ++t) {
    const Digraph g = churn.at(t);
    EXPECT_TRUE(g.is_symmetric()) << "t=" << t;
    for (Vertex v = 0; v < 10; ++v) {
      EXPECT_TRUE(g.has_edge(v, v)) << "self-loop missing at t=" << t;
      if (churn.present(v, t)) continue;
      for (Vertex u = 0; u < 10; ++u) {
        if (u == v) continue;
        EXPECT_FALSE(g.has_edge(v, u)) << "absent " << v << " sends at " << t;
        EXPECT_FALSE(g.has_edge(u, v)) << "absent " << v << " hears at " << t;
      }
    }
  }
  // Membership is an epoch function: rounds of one epoch share it.
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(churn.present(v, 4), churn.present(v, 5));
    EXPECT_EQ(churn.present(v, 4), churn.present(v, 6));
  }
  // at(t) is a pure function of (construction args, t).
  const ChurnSchedule again(inner, 3, 0.4, 0x77ull);
  for (int t : {1, 5, 9, 23}) {
    EXPECT_EQ(churn.at(t).edges(), again.at(t).edges()) << "t=" << t;
  }
}

TEST(ChurnSchedule, RejectsBadArguments) {
  const auto inner = std::make_shared<StaticSchedule>(complete_graph(4));
  EXPECT_THROW(ChurnSchedule(nullptr, 4, 0.2, 1), std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(inner, 0, 0.2, 1), std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(inner, 4, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(inner, 4, 1.0, 1), std::invalid_argument);
}

TEST(TopologyFamilies, PreferentialAttachmentIsConnectedSymmetricLooped) {
  for (std::uint64_t seed : {1ull, 2ull, 77ull}) {
    const Digraph g = preferential_attachment_graph(24, 2, seed);
    EXPECT_EQ(g.vertex_count(), 24);
    EXPECT_TRUE(g.is_symmetric());
    EXPECT_TRUE(is_strongly_connected(g));
    for (Vertex v = 0; v < 24; ++v) EXPECT_TRUE(g.has_edge(v, v));
    // Same seed, same graph.
    EXPECT_EQ(g.edges(), preferential_attachment_graph(24, 2, seed).edges());
  }
  EXPECT_THROW(preferential_attachment_graph(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(preferential_attachment_graph(5, 0, 1), std::invalid_argument);
}

TEST(TopologyFamilies, RandomGeometricIsConnectedSymmetricLooped) {
  for (std::uint64_t seed : {3ull, 4ull, 99ull}) {
    // A radius below the connectivity threshold: the nearest-predecessor
    // backbone must still hold the graph together.
    const Digraph g = random_geometric_graph(24, 0.05, seed);
    EXPECT_EQ(g.vertex_count(), 24);
    EXPECT_TRUE(g.is_symmetric());
    EXPECT_TRUE(is_strongly_connected(g));
    for (Vertex v = 0; v < 24; ++v) EXPECT_TRUE(g.has_edge(v, v));
    EXPECT_EQ(g.edges(), random_geometric_graph(24, 0.05, seed).edges());
  }
  EXPECT_THROW(random_geometric_graph(0, 0.2, 1), std::invalid_argument);
  EXPECT_THROW(random_geometric_graph(5, -0.2, 1), std::invalid_argument);
}

TEST(TopologyFamilies, CampaignFactoriesComposeChurnOverRealTopologies) {
  for (auto factory : {preferential_churn_schedule, geometric_churn_schedule}) {
    const DynamicGraphPtr schedule = factory(16, 0x5eedull);
    ASSERT_NE(schedule, nullptr);
    EXPECT_EQ(schedule->vertex_count(), 16);
    // Determinism across separately constructed instances.
    const DynamicGraphPtr again = factory(16, 0x5eedull);
    for (int t : {1, 7, 19}) {
      EXPECT_EQ(schedule->at(t).edges(), again->at(t).edges()) << "t=" << t;
    }
    // Symmetric with self-loops every round (Metropolis-compatible).
    for (int t : {1, 9, 17}) {
      const Digraph g = schedule->at(t);
      EXPECT_TRUE(g.is_symmetric());
      for (Vertex v = 0; v < 16; ++v) EXPECT_TRUE(g.has_edge(v, v));
    }
  }
}

TEST(ExecutorPerturbation, SetterValidatesSizes) {
  auto exec = make_gossip(std::make_shared<StaticSchedule>(complete_graph(3)),
                          {1, 2, 3});
  StartSchedule wrong;
  wrong.wake_rounds = {1, 1};  // 2 entries for 3 agents
  EXPECT_THROW(exec.set_start_schedule(wrong), std::invalid_argument);
  FaultPlan plan;
  plan.crash_rounds = {0, 0, 0, 0};
  EXPECT_THROW(exec.set_fault_plan(plan), std::invalid_argument);
}

}  // namespace
}  // namespace anonet
