// Tests for SCC / diameter analysis (graph/analysis.hpp).

#include "graph/analysis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace anonet {
namespace {

TEST(Analysis, SccOnTwoComponents) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(0, 2);  // bridge, one direction only
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
}

TEST(Analysis, SccSingletons) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 3);
}

TEST(Analysis, StrongConnectivity) {
  EXPECT_TRUE(is_strongly_connected(directed_ring(6)));
  EXPECT_TRUE(is_strongly_connected(complete_graph(1)));
  Digraph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_FALSE(is_strongly_connected(path));
  EXPECT_FALSE(is_strongly_connected(Digraph(0)));
}

TEST(Analysis, SccHandlesDeepRecursionIteratively) {
  // A 20000-cycle would blow a recursive Tarjan's stack.
  const Vertex n = 20000;
  Digraph g(n);
  for (Vertex v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Analysis, BfsDistances) {
  const Digraph g = directed_ring(5);
  const std::vector<int> dist = bfs_distances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
  Digraph disconnected(2);
  EXPECT_EQ(bfs_distances(disconnected, 0)[1], -1);
}

TEST(Analysis, Diameter) {
  EXPECT_EQ(diameter(directed_ring(5)), 4);
  EXPECT_EQ(diameter(bidirectional_ring(6)), 3);
  EXPECT_EQ(diameter(complete_graph(4)), 1);
  Digraph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_EQ(diameter(path), -1);  // not strongly connected
}

}  // namespace
}  // namespace anonet
